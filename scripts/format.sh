#!/usr/bin/env bash
# Reformats every tracked C++ source in place with the repo .clang-format.
# CI runs the same file set with --dry-run -Werror (the `format` job), so
# a clean run here means a green style gate.
set -euo pipefail
cd "$(dirname "$0")/.."
git ls-files '*.cpp' '*.hpp' | xargs clang-format -i "$@"
