#!/usr/bin/env python3
"""Self-test for bench_compare.py, invoked from the CI perf job.

Exercises the compare/merge happy paths and — the reason it exists — the
malformed-snapshot paths: every missing key must produce a clear per-key
error message and exit status 1, never a KeyError traceback.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def snapshot(metrics, bench="selftest", schema=1):
    data = {"schema": schema, "bench": bench,
            "toolchain": {"compiler": "selftest"}, "metrics": metrics}
    return data


def metric(value, better="higher", gate=True):
    return {"value": value, "unit": "x/sec", "better": better, "gate": gate}


def write(tmp, name, data):
    path = os.path.join(tmp, name)
    with open(path, "w") as f:
        json.dump(data, f)
    return path


def run(*args):
    return subprocess.run([sys.executable, SCRIPT, *args],
                          capture_output=True, text=True)


def check(label, ok, detail=""):
    if not ok:
        print(f"FAIL: {label}\n{detail}")
        sys.exit(1)
    print(f"ok: {label}")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        base = write(tmp, "base.json",
                     snapshot({"rate": metric(100.0),
                               "latency": metric(10.0, better="lower")}))
        good = write(tmp, "good.json",
                     snapshot({"rate": metric(98.0),
                               "latency": metric(10.5, better="lower")}))
        slow = write(tmp, "slow.json",
                     snapshot({"rate": metric(50.0),
                               "latency": metric(30.0, better="lower")}))

        r = run(base, good)
        check("in-band run passes", r.returncode == 0, r.stdout + r.stderr)

        r = run(base, slow)
        check("regression fails with named metrics",
              r.returncode == 1 and "rate" in r.stderr
              and "latency" in r.stderr and "Traceback" not in r.stderr,
              r.stdout + r.stderr)

        # Best-of-N: one good run among bad ones passes.
        r = run(base, slow, good)
        check("best-of-N absorbs a slow run", r.returncode == 0,
              r.stdout + r.stderr)

        # Gated metric absent from every current run -> failure, not crash.
        partial = write(tmp, "partial.json", snapshot({"rate": metric(99.0)}))
        r = run(base, partial)
        check("absent gated metric fails cleanly",
              r.returncode == 1 and "latency" in r.stderr
              and "Traceback" not in r.stderr, r.stdout + r.stderr)

        # Malformed snapshots: per-key messages, never a KeyError traceback.
        no_metrics = write(tmp, "no_metrics.json",
                           {"schema": 1, "bench": "selftest"})
        r = run(no_metrics, good)
        check("missing 'metrics' key named in error",
              r.returncode == 1 and "'metrics'" in r.stderr
              and "no_metrics.json" in r.stderr
              and "Traceback" not in r.stderr, r.stdout + r.stderr)

        no_bench = write(tmp, "no_bench.json",
                         {"schema": 1, "metrics": {"rate": metric(1.0)}})
        r = run(no_bench, good)
        check("missing 'bench' key named in error",
              r.returncode == 1 and "'bench'" in r.stderr
              and "Traceback" not in r.stderr, r.stdout + r.stderr)

        no_value = write(tmp, "no_value.json",
                         snapshot({"rate": {"unit": "x/sec",
                                            "better": "higher"}}))
        r = run(no_value, good)
        check("metric missing 'value' key named in error",
              r.returncode == 1 and "'rate'" in r.stderr
              and "'value'" in r.stderr and "Traceback" not in r.stderr,
              r.stdout + r.stderr)

        bad_schema = write(tmp, "bad_schema.json",
                           snapshot({"rate": metric(1.0)}, schema=2))
        r = run(bad_schema, good)
        check("unsupported schema rejected", r.returncode == 1,
              r.stdout + r.stderr)

        not_json = os.path.join(tmp, "not_json.json")
        with open(not_json, "w") as f:
            f.write("{ torn")
        r = run(not_json, good)
        check("invalid JSON rejected cleanly",
              r.returncode == 1 and "Traceback" not in r.stderr,
              r.stdout + r.stderr)

        mismatch = write(tmp, "other.json",
                         snapshot({"rate": metric(1.0)}, bench="other"))
        r = run(base, mismatch)
        check("bench-name mismatch rejected",
              r.returncode == 1 and "mismatch" in r.stderr,
              r.stdout + r.stderr)

        # Merge mode still works and picks the per-metric best.
        merged_path = os.path.join(tmp, "merged.json")
        r = run("--merge-best", merged_path, base, good, slow)
        check("merge-best succeeds", r.returncode == 0,
              r.stdout + r.stderr)
        with open(merged_path) as f:
            merged = json.load(f)
        check("merge-best picks best per metric",
              merged["metrics"]["rate"]["value"] == 100.0
              and merged["metrics"]["latency"]["value"] == 10.0,
              json.dumps(merged))

        # The capped scaling-ratio gate (BENCH_serve_scale.json): baseline
        # pinned at the cap 10/3 so the 10% band puts the pass/fail line
        # at exactly 3.0x. A 3.05x machine passes; a 2.8x one fails.
        cap = 10.0 / 3.0
        scale_base = write(tmp, "scale_base.json",
                           snapshot({"scaling_ratio_capped": metric(cap)},
                                    bench="bench_serve_scale"))
        ratio_ok = write(tmp, "ratio_ok.json",
                         snapshot({"scaling_ratio_capped": metric(3.05)},
                                  bench="bench_serve_scale"))
        ratio_bad = write(tmp, "ratio_bad.json",
                          snapshot({"scaling_ratio_capped": metric(2.8)},
                                   bench="bench_serve_scale"))
        r = run(scale_base, ratio_ok)
        check("capped scaling ratio at 3.05x passes the 3.0x line",
              r.returncode == 0, r.stdout + r.stderr)
        r = run(scale_base, ratio_bad)
        check("capped scaling ratio at 2.8x fails the 3.0x line",
              r.returncode == 1 and "scaling_ratio_capped" in r.stderr,
              r.stdout + r.stderr)

    print("bench_compare selftest: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
