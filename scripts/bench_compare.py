#!/usr/bin/env python3
"""Compare BENCH_*.json perf snapshots against a committed baseline.

Usage:
  bench_compare.py BASELINE CURRENT [CURRENT2 ...] [--band 0.10] [--all]
  bench_compare.py --merge-best OUT RUN1 [RUN2 ...]

Compare mode takes one or more current runs of the same bench (CI runs the
binary twice and passes both: per-metric best-of-N absorbs scheduler
noise) and fails (exit 1) when a gated metric regresses beyond the noise
band relative to the baseline value:

  better=higher  fails when best_current < baseline * (1 - band)
  better=lower   fails when best_current > baseline * (1 + band)

Only metrics the baseline marks "gate": true are enforced — absolute
rates (sims/sec, Msteps/sec) depend on the host and stay informational
unless --all promotes every directional metric to a gate (useful locally,
where the baseline was measured on the same machine).

Merge mode writes a new snapshot whose metrics are the per-metric best of
the input runs (scripts/update_bench_baseline.sh uses it to commit
best-of-2 baselines).
"""

import argparse
import json
import sys


def load(path):
    """Loads and validates one snapshot.

    Validation is exhaustive up front so a malformed or hand-edited
    snapshot fails with a per-key message naming the file and the missing
    key, never a KeyError traceback from deep inside compare().
    """
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        sys.exit(f"{path}: cannot read snapshot: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON: {e}")
    if not isinstance(data, dict):
        sys.exit(f"{path}: snapshot must be a JSON object, got "
                 f"{type(data).__name__}")
    if data.get("schema") != 1:
        sys.exit(f"{path}: unsupported schema {data.get('schema')!r}")
    for key in ("bench", "metrics"):
        if key not in data:
            sys.exit(f"{path}: snapshot is missing the {key!r} key")
    if not isinstance(data["metrics"], dict):
        sys.exit(f"{path}: 'metrics' must be an object mapping metric "
                 f"names to entries")
    for name, metric in data["metrics"].items():
        if not isinstance(metric, dict):
            sys.exit(f"{path}: metric {name!r} must be an object")
        if "value" not in metric:
            sys.exit(f"{path}: metric {name!r} is missing the 'value' key")
        if not isinstance(metric["value"], (int, float)):
            sys.exit(f"{path}: metric {name!r} has a non-numeric value "
                     f"{metric['value']!r}")
    return data


def best(values, better):
    return max(values) if better == "higher" else min(values)


def merge_best(out_path, run_paths):
    runs = [load(p) for p in run_paths]
    merged = runs[0]
    for name, metric in merged["metrics"].items():
        values = []
        for run in runs:
            other = run["metrics"].get(name)
            if other is not None:
                values.append(other["value"])
        if values and metric.get("better") in ("higher", "lower"):
            metric["value"] = best(values, metric["better"])
    with open(out_path, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    print(f"wrote best-of-{len(runs)} snapshot to {out_path}")


def compare(baseline_path, current_paths, band, gate_all):
    baseline = load(baseline_path)
    currents = [load(p) for p in current_paths]
    for current in currents:
        if current["bench"] != baseline["bench"]:
            sys.exit(
                f"bench mismatch: baseline is {baseline['bench']!r}, "
                f"current is {current['bench']!r}"
            )

    failures = []
    print(f"{baseline['bench']}: current (best of {len(currents)}) vs "
          f"baseline {baseline_path}, band {band:.0%}")
    print(f"  {'metric':42s} {'baseline':>12s} {'current':>12s} "
          f"{'delta':>8s}  status")
    for name, metric in baseline["metrics"].items():
        better = metric.get("better", "")
        values = [
            c["metrics"][name]["value"]
            for c in currents
            if name in c["metrics"]
        ]
        gated = metric.get("gate", False) or (gate_all and better)
        if not values:
            status = "MISSING" if gated else "missing (ungated)"
            if gated:
                failures.append(f"{name}: gated metric absent from current run")
            print(f"  {name:42s} {metric['value']:12.4g} {'-':>12s} "
                  f"{'-':>8s}  {status}")
            continue
        value = best(values, better) if better else values[0]
        base = metric["value"]
        delta = (value - base) / base if base != 0 else 0.0
        if not better:
            status = "info"
        elif not gated:
            status = "ok (ungated)"
        else:
            regressed = (
                value < base * (1.0 - band)
                if better == "higher"
                else value > base * (1.0 + band)
            )
            if regressed:
                status = "FAIL"
                failures.append(
                    f"{name}: {value:.4g} vs baseline {base:.4g} "
                    f"({delta:+.1%}, better={better}, band {band:.0%})"
                )
            else:
                status = "ok"
        print(f"  {name:42s} {base:12.4g} {value:12.4g} {delta:+8.1%}  "
              f"{status}")

    if failures:
        print(f"\n{len(failures)} perf regression(s) beyond the "
              f"{band:.0%} band:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno gated regressions")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--merge-best", metavar="OUT",
                        help="write per-metric best-of of the inputs to OUT")
    parser.add_argument("--band", type=float, default=0.10,
                        help="allowed relative regression (default 0.10)")
    parser.add_argument("--all", action="store_true",
                        help="gate every directional metric, not just "
                             "those marked gate:true")
    parser.add_argument("files", nargs="+",
                        help="baseline then current run(s), or runs to merge")
    args = parser.parse_args()

    if args.merge_best:
        merge_best(args.merge_best, args.files)
        return 0
    if len(args.files) < 2:
        parser.error("compare mode needs a baseline and at least one current")
    return compare(args.files[0], args.files[1:], args.band, args.all)


if __name__ == "__main__":
    sys.exit(main())
