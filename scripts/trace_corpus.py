#!/usr/bin/env python3
"""Importer-corpus check over the fixtures in tests/fixtures/traces/,
run by CI (the trace_corpus job) on both g++ and clang++ builds.

For every well-formed fixture (no ``bad_`` prefix) the script drives the
CLI exactly as a user would and enforces the ingestion contract from
docs/traces.md:

  * ``respin_trace import`` converts it, twice, into byte-identical
    native .rspt files (deterministic conversion);
  * ``respin_trace info`` decodes the converted trace (header + CRC ok);
  * ``respin_trace fit`` produces a profile, and ``respin_trace synth``
    regenerates a trace from that profile, twice, byte-identically;
  * ``respin_sim --trace-file`` replays the import on 1 and 2 host
    threads and both runs print identical result rows (bit-identical
    replay, thread-count independent).

Every ``bad_*`` fixture must make ``respin_trace import`` exit 1 with
the typed error named in its first comment line -- never crash (the
sanitizer jobs rerun this script under ASan+UBSan).

Usage:
  trace_corpus.py /path/to/respin_trace /path/to/respin_sim [fixture-dir]
"""

import pathlib
import subprocess
import sys
import tempfile

# bad_<name>.hst -> substring the importer's stderr must carry. Kept in
# lockstep with the fixture README table.
EXPECTED_ERRORS = {
    "bad_truncated": "syntax error",
    "bad_nonnumeric": "syntax error",
    "bad_coreid": "bad core id",
    "bad_order": "interleaving violation",
}


def fail(message):
    print(f"trace_corpus: FAIL: {message}")
    sys.exit(1)


def check(label, ok, detail=""):
    if not ok:
        fail(f"{label}: {detail}")
    print(f"trace_corpus: ok: {label}")


def run(argv, env=None):
    return subprocess.run(argv, capture_output=True, text=True, env=env)


def check_good(fixture, trace_bin, sim_bin, tmp):
    name = fixture.stem
    rspt = [tmp / f"{name}.{i}.rspt" for i in (1, 2)]
    for out in rspt:
        r = run([trace_bin, "import", "--format", "hybridsim",
                 str(fixture), "--out", str(out)])
        check(f"{name}: import", r.returncode == 0, r.stderr.strip())
    check(f"{name}: import deterministic",
          rspt[0].read_bytes() == rspt[1].read_bytes(),
          "two imports differ")

    r = run([trace_bin, "info", str(rspt[0])])
    check(f"{name}: info decodes import", r.returncode == 0,
          r.stderr.strip())

    profile = tmp / f"{name}.profile.json"
    r = run([trace_bin, "fit", str(rspt[0]), "--out", str(profile)])
    check(f"{name}: fit", r.returncode == 0, r.stderr.strip())

    synth = [tmp / f"{name}.synth.{i}.rspt" for i in (1, 2)]
    for out in synth:
        r = run([trace_bin, "synth", "--profile", str(profile),
                 "--seed", "7", "--out", str(out)])
        check(f"{name}: synth", r.returncode == 0, r.stderr.strip())
    check(f"{name}: synth deterministic",
          synth[0].read_bytes() == synth[1].read_bytes(),
          "two syntheses differ")

    rows = []
    for threads in ("1", "2"):
        r = run([sim_bin, "--trace-file", str(rspt[0]),
                 "--config", "SH-STT", "--threads", threads])
        check(f"{name}: replay on {threads} thread(s)", r.returncode == 0,
              r.stderr.strip())
        rows.append(r.stdout)
    check(f"{name}: replay thread-count independent", rows[0] == rows[1],
          "1- and 2-thread replays printed different results")


def check_bad(fixture, trace_bin, tmp):
    name = fixture.stem
    expected = EXPECTED_ERRORS.get(name)
    if expected is None:
        fail(f"{name}: no expected error registered in trace_corpus.py "
             f"(update EXPECTED_ERRORS and the fixture README)")
    r = run([trace_bin, "import", "--format", "hybridsim", str(fixture),
             "--out", str(tmp / f"{name}.rspt")])
    check(f"{name}: rejected with exit 1", r.returncode == 1,
          f"exit {r.returncode}, stderr: {r.stderr.strip()}")
    check(f"{name}: typed error '{expected}'", expected in r.stderr,
          f"stderr: {r.stderr.strip()}")


def main():
    if len(sys.argv) not in (3, 4):
        fail("usage: trace_corpus.py RESPIN_TRACE RESPIN_SIM [FIXTURE_DIR]")
    trace_bin, sim_bin = sys.argv[1], sys.argv[2]
    fixtures = pathlib.Path(
        sys.argv[3] if len(sys.argv) == 4 else
        pathlib.Path(__file__).resolve().parent.parent / "tests" /
        "fixtures" / "traces")
    corpus = sorted(fixtures.glob("*.hst"))
    if not corpus:
        fail(f"no *.hst fixtures under {fixtures}")

    with tempfile.TemporaryDirectory(prefix="respin_corpus_") as d:
        tmp = pathlib.Path(d)
        for fixture in corpus:
            if fixture.stem.startswith("bad_"):
                check_bad(fixture, trace_bin, tmp)
            else:
                check_good(fixture, trace_bin, sim_bin, tmp)
    print(f"trace_corpus: PASS ({len(corpus)} fixtures)")


if __name__ == "__main__":
    main()
