#!/usr/bin/env bash
# Regenerates the committed BENCH_*.json perf baselines after an
# intentional performance change. Run from anywhere; builds the bench
# binaries first so the snapshot always reflects the current tree, and
# runs each bench twice, committing the per-metric best-of-2 (via
# scripts/bench_compare.py --merge-best) to absorb scheduler noise.
#
#   scripts/update_bench_baseline.sh [build-dir]
#
# Review the resulting diff before committing: the gated ratio metrics
# (skip speedup, replay overhead, arbitration cost) are what CI enforces
# with a 10% band — a drop there is a real simulator regression, not host
# noise. Absolute rates are informational and simply track the trajectory.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

benches=(bench_throughput bench_trace_replay bench_micro_controller)

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" --target "${benches[@]}" -j "$(nproc)"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

for bench in "${benches[@]}"; do
  out="$repo/BENCH_${bench#bench_}.json"
  for run in 1 2; do
    echo "== $bench run $run/2 =="
    (cd "$tmp" && "$build/bench/$bench" --json "$tmp/$bench.$run.json")
  done
  python3 "$repo/scripts/bench_compare.py" --merge-best "$out" \
    "$tmp/$bench.1.json" "$tmp/$bench.2.json"
done

echo
echo "Updated BENCH_*.json — review with:"
echo "  git diff BENCH_*.json"
