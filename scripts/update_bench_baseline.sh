#!/usr/bin/env bash
# Regenerates the committed BENCH_*.json perf baselines after an
# intentional performance change. Run from anywhere; builds the bench
# binaries first so the snapshot always reflects the current tree, and
# runs each bench twice, committing the per-metric best-of-2 (via
# scripts/bench_compare.py --merge-best) to absorb scheduler noise.
#
#   scripts/update_bench_baseline.sh [build-dir]
#
# Review the resulting diff before committing: the gated ratio metrics
# (skip speedup, replay overhead, arbitration cost) are what CI enforces
# with a 10% band — a drop there is a real simulator regression, not host
# noise. Absolute rates are informational and simply track the trajectory.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

benches=(bench_throughput bench_trace_replay bench_trace_import
         bench_micro_controller)

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" --target "${benches[@]}" bench_serve_scale respin_serve \
  -j "$(nproc)"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

for bench in "${benches[@]}"; do
  out="$repo/BENCH_${bench#bench_}.json"
  for run in 1 2; do
    echo "== $bench run $run/2 =="
    (cd "$tmp" && "$build/bench/$bench" --json "$tmp/$bench.$run.json")
  done
  python3 "$repo/scripts/bench_compare.py" --merge-best "$out" \
    "$tmp/$bench.1.json" "$tmp/$bench.2.json"
done

# The scale-out bench only measures real scaling with a core per worker
# (4 workers + router + client threads); on smaller hosts the ratio is
# meaningless, so keep the committed baseline untouched there. Note the
# gated scaling_ratio_capped is pinned at 10/3 by construction — merge-best
# preserves it; only the informational absolutes move.
if [ "$(nproc)" -ge 4 ]; then
  for run in 1 2; do
    echo "== bench_serve_scale run $run/2 =="
    (cd "$tmp" && "$build/bench/bench_serve_scale" \
      --serve-bin "$build/tools/respin_serve" \
      --json "$tmp/bench_serve_scale.$run.json")
  done
  python3 "$repo/scripts/bench_compare.py" --merge-best \
    "$repo/BENCH_serve_scale.json" \
    "$tmp/bench_serve_scale.1.json" "$tmp/bench_serve_scale.2.json"
else
  echo "== bench_serve_scale skipped: $(nproc) cores < 4 (baseline kept) =="
fi

echo
echo "Updated BENCH_*.json — review with:"
echo "  git diff BENCH_*.json"
