#!/usr/bin/env bash
# Regenerates tests/goldens/metrics.csv after an intentional behaviour
# change. Run from anywhere; builds the generator first so the snapshot
# always reflects the current tree.
#
#   scripts/update_goldens.sh [build-dir]
#
# Review the resulting diff before committing: every drifted counter is a
# deliberate simulator change, not noise — the grid is fully deterministic.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake -B "$build" -S "$repo" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" --target respin_goldens -j "$(nproc)"
"$build/tools/respin_goldens" --out "$repo/tests/goldens/metrics.csv"

echo
echo "Updated $repo/tests/goldens/metrics.csv — review with:"
echo "  git diff tests/goldens/metrics.csv"
