#!/usr/bin/env python3
"""End-to-end smoke test of the serving tier over TCP, run by CI.

Single-worker mode (the default) starts the respin_serve daemon on a
kernel-assigned port with a fresh results store, then drives the
documented client flow: submit a simulation, submit the identical request
again and prove it was answered from the cache (the `source` field and
the serve.cache_hits / serve.sims_run counters), run a Pareto query, and
finally shut down gracefully via SIGTERM, checking the daemon drains and
exits 0.

Sharded mode (--workers N, N >= 2) additionally starts a respin_router
over N worker processes and drives the scale-out contract
(docs/serving.md, "Sharding topology"):

  * distinct keys route to their owner shard and stay there — repeats are
    cache hits on the same shard, proven via per-worker counters;
  * a sweep streams per-cell `sweep_progress` events;
  * SIGKILLing one worker mid-sweep fails only that shard's remaining
    cells (no failover for sweep cells — shard-pure stores), and after
    restarting the worker on the same port and store, re-issuing the
    identical sweep completes with zero failures and re-simulates NONE of
    the previously acknowledged cells (flushed store = committed cell).

Usage:
  serve_smoke.py /path/to/respin_serve
  serve_smoke.py --workers 2 /path/to/respin_serve /path/to/respin_router
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time


def fail(message):
    print(f"serve_smoke: FAIL: {message}")
    sys.exit(1)


def check(label, ok, detail=""):
    if not ok:
        fail(f"{label}: {detail}")
    print(f"serve_smoke: ok: {label}")


class Client:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        self.buf = b""

    def _read_line(self):
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                fail("connection closed mid-response")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def ask(self, request):
        self.sock.sendall((json.dumps(request) + "\n").encode())
        return self._read_line()

    def ask_stream(self, request):
        """Sends one request and reads until the terminal response line.

        Returns (events, terminal): every intermediate line carrying an
        "event" field, then the final response. `on_event(event)` hooks
        (set as an attribute) run as each event arrives, which is how the
        sweep test injects a worker kill mid-stream.
        """
        self.sock.sendall((json.dumps(request) + "\n").encode())
        events = []
        while True:
            line = self._read_line()
            if "event" not in line:
                return events, line
            events.append(line)
            hook = getattr(self, "on_event", None)
            if hook:
                hook(line)

    def close(self):
        self.sock.close()


def spawn(args, log_path):
    """Starts a daemon with stderr appended to log_path and waits for its
    "listening on port N" banner, returning (process, port)."""
    log = open(log_path, "ab")
    proc = subprocess.Popen(args, stderr=log)
    log.close()
    deadline = time.time() + 120
    while time.time() < deadline:
        with open(log_path) as f:
            m = re.search(r"listening on port (\d+)", f.read())
        if m:
            return proc, int(m.group(1))
        if proc.poll() is not None:
            fail(f"daemon exited {proc.returncode} before binding"
                 f" ({' '.join(args)})")
        time.sleep(0.02)
    fail(f"daemon never printed its port ({' '.join(args)})")


def store_records(path):
    """Record lines in a JSONL store, excluding the generation header."""
    if not os.path.exists(path):
        return 0
    with open(path) as f:
        return sum(1 for line in f if '"key"' in line)


def smoke_single(binary):
    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "results.jsonl")
        daemon, port = spawn(
            [binary, "--port", "0", "--store", store, "--threads", "2"],
            os.path.join(tmp, "serve.log"))
        try:
            client = Client(port)

            pong = client.ask({"op": "ping", "id": 1})
            check("ping answered with echoed id",
                  pong.get("ok") and pong.get("id") == 1, pong)

            request = {"op": "run", "config": "SH-STT",
                       "benchmark": "ocean", "scale": 0.05}
            first = client.ask(request)
            check("first submit simulated",
                  first.get("ok") and first.get("source") == "sim"
                  and first["result"]["cycles"] > 0, first)

            second = client.ask(request)
            check("duplicate submit answered from cache",
                  second.get("ok") and second.get("source") == "cache"
                  and second.get("cached") is True, second)
            check("cached result identical",
                  second["result"] == first["result"])

            stats = client.ask({"op": "stats"})["counters"]
            check("cache-hit counter recorded the dedupe",
                  stats["serve.cache_hits"] == 1
                  and stats["serve.sims_run"] == 1, stats)

            # A second config gives the Pareto query something to rank.
            client.ask({"op": "run", "config": "PR-SRAM-NT",
                        "benchmark": "ocean", "scale": 0.05})
            pareto = client.ask({"op": "pareto", "x": "energy_pj",
                                 "y": "cycles"})
            check("pareto query returns a frontier",
                  pareto.get("ok") and 1 <= pareto["count"] <= 2
                  and all("x" in p and "y" in p for p in pareto["points"]),
                  pareto)

            check("results checkpointed to the store",
                  store_records(store) == 2)

            client.close()
            daemon.send_signal(signal.SIGTERM)
            status = daemon.wait(timeout=120)
            with open(os.path.join(tmp, "serve.log")) as f:
                tail = f.read()
            check("graceful shutdown on SIGTERM",
                  status == 0 and "drained" in tail,
                  f"status={status} stderr={tail!r}")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


def smoke_router(serve_bin, router_bin, n_workers):
    with tempfile.TemporaryDirectory() as tmp:
        workers = []  # (proc, port, store, log)
        router = None
        try:
            for i in range(n_workers):
                store = os.path.join(tmp, f"store{i}.jsonl")
                log = os.path.join(tmp, f"worker{i}.log")
                proc, port = spawn(
                    [serve_bin, "--port", "0", "--store", store,
                     "--threads", "1"], log)
                workers.append([proc, port, store, log])

            router_args = [router_bin, "--port", "0"]
            for _, port, _, _ in workers:
                router_args += ["--worker", f"127.0.0.1:{port}"]
            router, router_port = spawn(router_args,
                                        os.path.join(tmp, "router.log"))
            client = Client(router_port)

            version = client.ask({"op": "version"})
            check("router reports its worker roster",
                  version.get("ok") and version.get("workers") == n_workers,
                  version)

            # --- Shard-stable caching -------------------------------------
            # Distinct keys (seed-disambiguated), each asked twice: the
            # repeat must be a cache hit on the same shard.
            runs = [{"op": "run", "config": "SH-STT", "benchmark": "ocean",
                     "scale": 0.02, "seed": 100 + i} for i in range(4)]
            first_shard = {}
            for request in runs:
                response = client.ask(request)
                check(f"seed {request['seed']} simulated on a shard",
                      response.get("ok") and response.get("source") == "sim"
                      and "shard" in response, response)
                first_shard[request["seed"]] = response["shard"]
            for request in runs:
                repeat = client.ask(request)
                check(f"seed {request['seed']} repeat cached on its owner",
                      repeat.get("ok") and repeat.get("cached") is True
                      and repeat["shard"] == first_shard[request["seed"]],
                      repeat)

            stats = client.ask({"op": "stats"})
            per_worker = stats["workers"]
            sims = sum(w["response"]["counters"]["serve.sims_run"]
                       for w in per_worker)
            hits = sum(w["response"]["counters"]["serve.cache_hits"]
                       for w in per_worker)
            check("tier-wide counters: 4 sims, 4 cache hits",
                  sims == len(runs) and hits == len(runs),
                  {"sims": sims, "hits": hits})
            check("router counted the forwards",
                  stats["counters"]["router.forwarded"] == 2 * len(runs)
                  and stats["counters"]["router.failovers"] == 0,
                  stats["counters"])

            # --- Kill a worker mid-sweep, then resume ---------------------
            sweep = {"op": "sweep", "configs": ["SH-STT", "PR-SRAM-NT"],
                     "benchmarks": ["ocean", "radix", "fft", "lu"],
                     "scale": 0.02, "seed": 777}
            victim = workers[-1]
            kill_state = {"acked": [], "killed": False}

            def on_event(event):
                if event.get("ok"):
                    kill_state["acked"].append(event["key"])
                # First acknowledged cell -> SIGKILL the last worker while
                # the sweep is still streaming.
                if not kill_state["killed"] and kill_state["acked"]:
                    victim[0].kill()
                    victim[0].wait()
                    kill_state["killed"] = True

            client.on_event = on_event
            events, terminal = client.ask_stream(sweep)
            client.on_event = None
            check("sweep streamed per-cell progress events",
                  len(events) == terminal["cells"] == 8, terminal)
            check("worker was killed mid-sweep", kill_state["killed"])
            check("dead shard's remaining cells failed without failover",
                  terminal["failed"] > 0
                  and terminal["failed"] + terminal["ran"]
                  + terminal["cached"] == terminal["cells"], terminal)
            dead_shard = n_workers - 1
            check("failures confined to the dead shard",
                  all(e["shard"] == dead_shard
                      for e in events if not e["ok"]), events)

            # Restart the victim on the SAME port with the SAME store: its
            # acknowledged cells were flushed before the ack, so they must
            # come back from the store, not re-simulate. (Fresh log file —
            # spawn() scans for the banner, and the old log already has
            # one from the first incarnation.)
            restart_log = victim[3] + ".restart"
            proc, port = spawn(
                [serve_bin, "--port", str(victim[1]), "--store", victim[2],
                 "--threads", "1"], restart_log)
            victim[3] = restart_log
            check("victim worker restarted on its old port",
                  port == victim[1], (port, victim[1]))
            victim[0] = proc

            events2, terminal2 = client.ask_stream(sweep)
            check("resumed sweep completed every cell",
                  terminal2["failed"] == 0
                  and terminal2["cells"] == 8, terminal2)
            resimulated = {e["key"] for e in events2 if e["source"] == "sim"}
            lost = resimulated.intersection(kill_state["acked"])
            check("no acknowledged cell was lost (none re-simulated)",
                  not lost, sorted(lost))

            # --- Store replication: merge one shard's log everywhere ------
            merge = client.ask({"op": "merge", "path": workers[0][2]})
            check("merge fanned out to every worker",
                  merge.get("ok") and len(merge["workers"]) == n_workers
                  and all(w["response"].get("ok")
                          for w in merge["workers"]), merge)

            down = client.ask({"op": "shutdown"})
            check("tier shutdown acknowledged", down.get("ok"), down)
            client.close()
            for w in workers:
                status = w[0].wait(timeout=120)
                check(f"worker on port {w[1]} drained and exited 0",
                      status == 0, status)
            status = router.wait(timeout=120)
            check("router drained and exited 0", status == 0, status)
            router = None
        finally:
            for w in workers:
                if w[0].poll() is None:
                    w[0].kill()
                    w[0].wait()
            if router is not None and router.poll() is None:
                router.kill()
                router.wait()


def main():
    args = sys.argv[1:]
    n_workers = 0
    if args and args[0] == "--workers":
        if len(args) < 2:
            fail("--workers needs a count")
        n_workers = int(args[1])
        args = args[2:]
    if n_workers > 0:
        if len(args) != 2:
            fail("usage: serve_smoke.py --workers N "
                 "/path/to/respin_serve /path/to/respin_router")
        smoke_router(args[0], args[1], n_workers)
    else:
        if len(args) != 1:
            fail("usage: serve_smoke.py /path/to/respin_serve")
        smoke_single(args[0])

    print("serve_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
