#!/usr/bin/env python3
"""End-to-end smoke test of the respin_serve daemon over TCP, run by CI.

Starts the daemon on a kernel-assigned port with a fresh results store,
then drives the documented client flow: submit a simulation, submit the
identical request again and prove it was answered from the cache (the
`source` field and the serve.cache_hits / serve.sims_run counters), run a
Pareto query, and finally shut down gracefully via SIGTERM, checking the
daemon drains and exits 0.

Usage: serve_smoke.py /path/to/respin_serve
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time


def fail(message):
    print(f"serve_smoke: FAIL: {message}")
    sys.exit(1)


def check(label, ok, detail=""):
    if not ok:
        fail(f"{label}: {detail}")
    print(f"serve_smoke: ok: {label}")


class Client:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=120)
        self.buf = b""

    def ask(self, request):
        self.sock.sendall((json.dumps(request) + "\n").encode())
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                fail("connection closed mid-response")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        return json.loads(line)

    def close(self):
        self.sock.close()


def main():
    if len(sys.argv) != 2:
        fail("usage: serve_smoke.py /path/to/respin_serve")
    binary = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "results.jsonl")
        daemon = subprocess.Popen(
            [binary, "--port", "0", "--store", store, "--threads", "2"],
            stderr=subprocess.PIPE, text=True)
        try:
            # The daemon prints the kernel-assigned port on startup.
            banner = daemon.stderr.readline()
            m = re.search(r"listening on port (\d+)", banner)
            check("daemon started and printed its port", m is not None,
                  repr(banner))
            client = Client(int(m.group(1)))

            pong = client.ask({"op": "ping", "id": 1})
            check("ping answered with echoed id",
                  pong.get("ok") and pong.get("id") == 1, pong)

            request = {"op": "run", "config": "SH-STT",
                       "benchmark": "ocean", "scale": 0.05}
            first = client.ask(request)
            check("first submit simulated",
                  first.get("ok") and first.get("source") == "sim"
                  and first["result"]["cycles"] > 0, first)

            second = client.ask(request)
            check("duplicate submit answered from cache",
                  second.get("ok") and second.get("source") == "cache"
                  and second.get("cached") is True, second)
            check("cached result identical",
                  second["result"] == first["result"])

            stats = client.ask({"op": "stats"})["counters"]
            check("cache-hit counter recorded the dedupe",
                  stats["serve.cache_hits"] == 1
                  and stats["serve.sims_run"] == 1, stats)

            # A second config gives the Pareto query something to rank.
            client.ask({"op": "run", "config": "PR-SRAM-NT",
                        "benchmark": "ocean", "scale": 0.05})
            pareto = client.ask({"op": "pareto", "x": "energy_pj",
                                 "y": "cycles"})
            check("pareto query returns a frontier",
                  pareto.get("ok") and 1 <= pareto["count"] <= 2
                  and all("x" in p and "y" in p for p in pareto["points"]),
                  pareto)

            check("results checkpointed to the store",
                  os.path.exists(store)
                  and sum(1 for _ in open(store)) == 2)

            client.close()
            daemon.send_signal(signal.SIGTERM)
            status = daemon.wait(timeout=120)
            tail = daemon.stderr.read()
            check("graceful shutdown on SIGTERM",
                  status == 0 and "drained" in tail,
                  f"status={status} stderr={tail!r}")
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    print("serve_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
