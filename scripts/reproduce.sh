#!/usr/bin/env bash
# Full reproduction pipeline: build, test, and regenerate every paper
# table/figure. Outputs land in test_output.txt and bench_output.txt at
# the repository root.
#
# Usage:  scripts/reproduce.sh [RESPIN_SIM_SCALE]
set -euo pipefail
cd "$(dirname "$0")/.."

scale="${1:-1}"
export RESPIN_SIM_SCALE="$scale"

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=Release
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
      echo "===== $(basename "$b") ====="
      "$b"
    fi
  done
} 2>&1 | tee bench_output.txt

echo "Done. See test_output.txt and bench_output.txt."
