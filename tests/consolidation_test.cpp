// Tests for the greedy consolidation governor (paper Fig. 5), the
// efficiency ranking, and the round-robin remapping helpers.
#include <gtest/gtest.h>

#include <limits>

#include "core/consolidation.hpp"

namespace respin::core {
namespace {

GovernorParams quiet_params() {
  GovernorParams p;
  p.min_active_cores = 4;
  p.epi_threshold = 0.02;
  return p;
}

TEST(Greedy, FirstDecisionShutsOneCoreDown) {
  GreedyGovernor governor(quiet_params(), 16);
  EXPECT_EQ(governor.decide(100.0, 16), 15u);
}

TEST(Greedy, KeepsDescendingWhileEpiImproves) {
  GreedyGovernor governor(quiet_params(), 16);
  std::uint32_t k = governor.decide(100.0, 16);
  double epi = 95.0;
  for (int i = 0; i < 5; ++i) {
    const std::uint32_t next = governor.decide(epi, k);
    EXPECT_EQ(next, k - 1);
    k = next;
    epi *= 0.95;  // Monotone improvement, above threshold.
  }
}

TEST(Greedy, ReversesOnRegression) {
  GreedyGovernor governor(quiet_params(), 16);
  std::uint32_t k = governor.decide(100.0, 16);  // 15.
  k = governor.decide(90.0, k);                  // 14, improving.
  const std::uint32_t reversed = governor.decide(99.0, k);  // Worse: back up.
  EXPECT_EQ(reversed, k + 1);
}

TEST(Greedy, HoldsWithinThreshold) {
  GreedyGovernor governor(quiet_params(), 16);
  std::uint32_t k = governor.decide(100.0, 16);
  k = governor.decide(90.0, k);
  EXPECT_EQ(governor.decide(90.5, k), k);  // 0.55% change: hold.
}

TEST(Greedy, RespectsFloorAndCeiling) {
  GovernorParams params = quiet_params();
  GreedyGovernor governor(params, 16);
  std::uint32_t k = governor.decide(100.0, 16);
  double epi = 95.0;
  for (int i = 0; i < 30 && k > params.min_active_cores; ++i) {
    k = governor.decide(epi, k);
    epi *= 0.9;
  }
  EXPECT_EQ(k, params.min_active_cores);
  // Still improving: must not go below the floor.
  EXPECT_EQ(governor.decide(epi * 0.9, k), params.min_active_cores);
}

TEST(Greedy, InfiniteEpiHolds) {
  GreedyGovernor governor(quiet_params(), 16);
  std::uint32_t k = governor.decide(100.0, 16);
  EXPECT_EQ(governor.decide(std::numeric_limits<double>::infinity(), k), k);
}

// Drives the governor into a 15,15,16,15 hover: four decisions within one
// core of each other with a reversal, which must engage the back-off.
std::uint32_t drive_into_hold(GreedyGovernor& governor) {
  std::uint32_t k = governor.decide(100.0, 16);   // First epoch: 15.
  EXPECT_EQ(k, 15u);
  k = governor.decide(101.0, k);                  // 1% change: hold at 15.
  EXPECT_EQ(k, 15u);
  k = governor.decide(105.0, k);                  // Worse: reverse up -> 16.
  EXPECT_EQ(k, 16u);
  k = governor.decide(109.0, k);                  // Worse again: reverse.
  return k;
}

TEST(Greedy, OscillationTriggersExponentialBackoff) {
  GreedyGovernor governor(quiet_params(), 16);
  const std::uint32_t k = drive_into_hold(governor);
  // Oscillation detected: the governor pins the current state and holds.
  EXPECT_EQ(k, 16u);
  EXPECT_GT(governor.hold_remaining(), 0u);
  // While holding, small EPI changes do not move the state.
  EXPECT_EQ(governor.decide(108.0, k), k);
}

TEST(Greedy, BackoffEscalatesOnRepeatedOscillation) {
  GovernorParams params = quiet_params();
  GreedyGovernor governor(params, 16);
  std::uint32_t k = drive_into_hold(governor);
  const std::uint32_t first_hold = governor.hold_remaining();
  EXPECT_EQ(first_hold, params.backoff_initial);
  // Drain the hold with stable EPIs, then oscillate again.
  while (governor.hold_remaining() > 0) k = governor.decide(109.0, k);
  k = governor.decide(104.0, k);  // Improve: step.
  k = governor.decide(109.0, k);  // Worse: reverse.
  k = governor.decide(104.5, k);  // Worse-ish: reverse again -> hover.
  if (governor.hold_remaining() == 0) k = governor.decide(109.0, k);
  EXPECT_GE(governor.hold_remaining(), first_hold);
}

TEST(Greedy, PhaseChangeEscapesHold) {
  GovernorParams params = quiet_params();
  params.phase_change_threshold = 0.25;
  GreedyGovernor governor(params, 16);
  std::uint32_t k = drive_into_hold(governor);
  ASSERT_GT(governor.hold_remaining(), 0u);
  // A 3x EPI jump (program phase change) must break the hold and move.
  const std::uint32_t after = governor.decide(400.0, k);
  EXPECT_EQ(governor.hold_remaining(), 0u);
  EXPECT_NE(after, k);
}

TEST(Greedy, RejectsOutOfRangeState) {
  GreedyGovernor governor(quiet_params(), 16);
  EXPECT_THROW(governor.decide(1.0, 17), std::logic_error);
  EXPECT_THROW(governor.decide(1.0, 2), std::logic_error);
  EXPECT_THROW(GreedyGovernor(quiet_params(), 2), std::logic_error);
}

TEST(EfficiencyRanking, FasterCoresFirstTiesById) {
  const std::vector<int> multipliers = {6, 4, 5, 4, 6, 5};
  const auto order = efficiency_ranking(multipliers);
  EXPECT_EQ(order, (std::vector<std::uint32_t>{1, 3, 2, 5, 0, 4}));
}

TEST(EfficiencyRanking, EmptyAndUniform) {
  EXPECT_TRUE(efficiency_ranking({}).empty());
  const auto order = efficiency_ranking({5, 5, 5});
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(RoundRobin, StartsWithMostEfficientCore) {
  const std::vector<std::uint32_t> active = {3, 1, 7};
  const auto assignment = round_robin_assignment(active, 7);
  EXPECT_EQ(assignment,
            (std::vector<std::uint32_t>{3, 1, 7, 3, 1, 7, 3}));
}

TEST(RoundRobin, LoadSpreadIsBalanced) {
  const std::vector<std::uint32_t> active = {0, 1, 2, 3, 4};
  const auto assignment = round_robin_assignment(active, 16);
  std::vector<int> load(5, 0);
  for (std::uint32_t host : assignment) ++load[host];
  const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
  EXPECT_LE(*hi - *lo, 1);
}

TEST(RoundRobin, RejectsEmptyActiveSet) {
  EXPECT_THROW(round_robin_assignment({}, 4), std::logic_error);
}

}  // namespace
}  // namespace respin::core
