// Tests for respin::mem::Backside — L2/L3/DRAM walk, latency composition,
// inclusive installs and writeback accounting.
#include <gtest/gtest.h>

#include "mem/backside.hpp"

namespace respin::mem {
namespace {

BacksideParams small_params() {
  BacksideParams p;
  p.l2_capacity_bytes = 4 * 1024;
  p.l2_line_bytes = 64;
  p.l2_ways = 2;
  p.l2_hit_cycles = 8;
  p.l3_capacity_bytes = 16 * 1024;
  p.l3_line_bytes = 128;
  p.l3_ways = 2;
  p.l3_hit_cycles = 24;
  p.memory_cycles = 250;
  return p;
}

TEST(Backside, ColdMissWalksToMemory) {
  Backside backside(small_params());
  const FillResult first = backside.fill(0x1000);
  EXPECT_EQ(first.source, FillSource::kMemory);
  EXPECT_EQ(first.latency_cycles, 8u + 24u + 250u);
  EXPECT_EQ(backside.stats().memory_reads, 1u);
}

TEST(Backside, SecondFillHitsL2) {
  Backside backside(small_params());
  backside.fill(0x1000);
  const FillResult second = backside.fill(0x1000);
  EXPECT_EQ(second.source, FillSource::kL2);
  EXPECT_EQ(second.latency_cycles, 8u);
}

TEST(Backside, L3HitAfterL2Eviction) {
  BacksideParams p = small_params();
  Backside backside(p);
  backside.fill(0x1000);
  // Thrash the single L2 set this line maps to until it is evicted, using
  // addresses that collide in L2 but not (all) in L3.
  const std::uint32_t l2_sets = p.l2_capacity_bytes / p.l2_line_bytes / 2;
  for (int i = 1; i <= 4; ++i) {
    backside.fill(0x1000 + static_cast<Addr>(i) * l2_sets * 64);
  }
  const FillResult refill = backside.fill(0x1000);
  EXPECT_EQ(refill.source, FillSource::kL3);
  EXPECT_EQ(refill.latency_cycles, 8u + 24u);
}

TEST(Backside, DifferentL1LinesShareAnL2Line) {
  Backside backside(small_params());
  backside.fill(0x1000);            // Installs 64B L2 line.
  const FillResult sibling = backside.fill(0x1020);  // Same 64B line.
  EXPECT_EQ(sibling.source, FillSource::kL2);
}

TEST(Backside, WritebackMarksL2Dirty) {
  Backside backside(small_params());
  backside.fill(0x2000);
  const auto writes_before = backside.stats().l2_writes;
  backside.writeback(0x2000);
  EXPECT_EQ(backside.stats().l2_writes, writes_before + 1);
  EXPECT_EQ(*backside.l2().probe(0x2000 / 64), Mesi::kModified);
}

TEST(Backside, WritebackToEvictedParentFlowsToL3) {
  Backside backside(small_params());
  const auto l3_writes_before = backside.stats().l3_writes;
  backside.writeback(0xBEEF00);  // Line never fetched: L2 misses.
  EXPECT_EQ(backside.stats().l3_writes, l3_writes_before + 1);
}

TEST(Backside, DirtyL2VictimWritesTowardL3) {
  BacksideParams p = small_params();
  Backside backside(p);
  backside.fill(0x1000);
  backside.writeback(0x1000);  // Dirty in L2.
  const auto l3_writes_before = backside.stats().l3_writes;
  const std::uint32_t l2_sets = p.l2_capacity_bytes / p.l2_line_bytes / 2;
  for (int i = 1; i <= 2; ++i) {  // Evict from the 2-way set.
    backside.fill(0x1000 + static_cast<Addr>(i) * l2_sets * 64);
  }
  EXPECT_GT(backside.stats().l3_writes, l3_writes_before);
}

TEST(Backside, StatsAccumulateAcrossLevels) {
  Backside backside(small_params());
  backside.fill(0x1000);  // L2 miss, L3 miss, memory.
  backside.fill(0x1000);  // L2 hit.
  EXPECT_EQ(backside.stats().l2_reads, 2u);
  EXPECT_EQ(backside.stats().l3_reads, 1u);
  EXPECT_EQ(backside.stats().memory_reads, 1u);
  EXPECT_EQ(backside.stats().l2_writes, 1u);  // One fill installed.
}

TEST(Backside, LargeSliceHoldsWorkingSet) {
  BacksideParams p;  // Default 4MB/12MB medium slice.
  Backside backside(p);
  // 1 MB working set: first pass misses, second pass all L2 hits.
  for (Addr a = 0; a < (1 << 20); a += 64) backside.fill(a);
  const auto memory_before = backside.stats().memory_reads;
  for (Addr a = 0; a < (1 << 20); a += 64) {
    EXPECT_EQ(backside.fill(a).source, FillSource::kL2);
  }
  EXPECT_EQ(backside.stats().memory_reads, memory_before);
}

}  // namespace
}  // namespace respin::mem
