// respin::trace import — foreign-format ingestion. Covers the HybridSim
// text reader (field forms, comment handling, compute-gap synthesis,
// cluster padding), conversion determinism (same input -> byte-identical
// .rspt), the replay bit-identity contract for imported traces, and the
// malformed-input taxonomy: every bad foreign file raises a typed
// ImportError (never a crash) — these paths run under the ASan+UBSan CI
// job.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "sim_result_eq.hpp"
#include "trace/capture.hpp"
#include "trace/import/import.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"

namespace respin {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "respin_import_test_" + name;
}

std::string write_text(const std::string& name, const std::string& content) {
  const std::string path = temp_path(name);
  std::ofstream os(path, std::ios::trunc);
  os << content;
  EXPECT_TRUE(os.good()) << path;
  return path;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(is),
                           std::istreambuf_iterator<char>());
}

/// Imports `content` as a hybridsim trace and returns the typed failure.
trace::ImportErrorKind import_error_kind(const std::string& name,
                                         const std::string& content,
                                         const trace::ImportOptions& options =
                                             {}) {
  const std::string in = write_text(name, content);
  const std::string out = temp_path(name + ".rspt");
  try {
    trace::import_trace("hybridsim", in, out, options);
  } catch (const trace::ImportError& e) {
    std::remove(in.c_str());
    return e.kind();
  }
  std::remove(in.c_str());
  ADD_FAILURE() << "expected ImportError for " << name;
  return trace::ImportErrorKind::kIo;
}

constexpr const char* kMini =
    "# comment line, then mixed mnemonics / radixes\n"
    "0 100 0x1000 R\n"
    "1 105 0x2000 W\n"
    "0 160 0x1040 read\n"
    "1 170 0x2000 LOAD\n"
    "0 200 0x1000 write\n"
    "1 240 0x3000 STORE\n"
    "0 260 4096 LD\n";

// ---- Conversion ----------------------------------------------------------

TEST(ImportHybridSim, ConvertsMultiCoreTextToNativeTrace) {
  const std::string in = write_text("mini.hst", kMini);
  const std::string out = temp_path("mini.rspt");
  const trace::ImportStats stats = trace::import_trace("hybridsim", in, out);

  EXPECT_EQ(stats.cores_seen, 2u);
  EXPECT_EQ(stats.thread_count, 2u);
  EXPECT_EQ(stats.lines, 8u);
  EXPECT_EQ(stats.mem_ops, 7u);

  const trace::TraceData data = trace::load_trace(out);
  EXPECT_EQ(data.header.thread_count, 2u);
  // Default label is derived from the input file's basename.
  EXPECT_EQ(data.header.benchmark, "import:respin_import_test_mini");
  ASSERT_EQ(data.threads.size(), 2u);

  // Core 0: the first record starts its clock (no gap); each later record
  // synthesizes a compute run covering the timestamp delta.
  using workload::OpKind;
  const std::vector<workload::Op>& ops = data.threads[0].ops;
  ASSERT_EQ(ops.size(), 7u);
  EXPECT_EQ(ops[0].kind, OpKind::kLoad);
  EXPECT_EQ(ops[0].addr, 0x1000u);
  EXPECT_EQ(ops[1].kind, OpKind::kCompute);
  EXPECT_EQ(ops[1].count, 60u);  // 160 - 100.
  EXPECT_EQ(ops[2].kind, OpKind::kLoad);
  EXPECT_EQ(ops[2].addr, 0x1040u);
  EXPECT_EQ(ops[3].kind, OpKind::kCompute);
  EXPECT_EQ(ops[3].count, 40u);
  EXPECT_EQ(ops[4].kind, OpKind::kStore);
  EXPECT_EQ(ops[4].addr, 0x1000u);
  EXPECT_EQ(ops[6].kind, OpKind::kLoad);
  EXPECT_EQ(ops[6].addr, 4096u);  // Decimal address form.
  EXPECT_EQ(data.threads[0].instructions, 164u);

  // No barriers are ever synthesized: imported cores finish independently
  // (a partial barrier would deadlock the all-arrive release).
  for (const trace::ThreadTrace& thread : data.threads) {
    for (const workload::Op& op : thread.ops) {
      EXPECT_NE(op.kind, OpKind::kBarrier);
    }
    // The ifetch budget covers the replay core model's fetch cadence.
    EXPECT_GE(thread.ifetch.size(),
              thread.instructions / trace::kMinInstructionsPerFetch);
  }
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(ImportHybridSim, PadsCoreCountToReplayableClusterSize) {
  const std::string in = write_text("three.hst",
                                    "0 1 0x100 R\n"
                                    "1 2 0x200 W\n"
                                    "2 3 0x300 R\n");
  const std::string out = temp_path("three.rspt");
  const trace::ImportStats stats = trace::import_trace("hybridsim", in, out);
  EXPECT_EQ(stats.cores_seen, 3u);
  EXPECT_EQ(stats.thread_count, 4u);  // Padded to the next cluster size.

  const trace::TraceData data = trace::load_trace(out);
  ASSERT_EQ(data.threads.size(), 4u);
  EXPECT_FALSE(data.threads[2].ops.empty());
  EXPECT_TRUE(data.threads[3].ops.empty());  // Padding thread: no work.
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(ImportHybridSim, ClampsPathologicalTimestampGaps) {
  trace::ImportOptions options;
  options.max_compute_gap = 500;
  const std::string in = write_text("gap.hst",
                                    "0 0 0x100 R\n"
                                    "0 9999999 0x140 R\n");
  const std::string out = temp_path("gap.rspt");
  trace::import_trace("hybridsim", in, out, options);
  const trace::TraceData data = trace::load_trace(out);
  ASSERT_GE(data.threads[0].ops.size(), 3u);
  EXPECT_EQ(data.threads[0].ops[1].kind, workload::OpKind::kCompute);
  EXPECT_EQ(data.threads[0].ops[1].count, 500u);  // Clamped, not 9999999.
  std::remove(in.c_str());
  std::remove(out.c_str());
}

TEST(ImportHybridSim, SameInputYieldsByteIdenticalTraces) {
  const std::string in = write_text("det.hst", kMini);
  const std::string out1 = temp_path("det1.rspt");
  const std::string out2 = temp_path("det2.rspt");
  trace::ImportOptions options;
  options.name = "det";  // Pin the label so both conversions match fully.
  trace::import_trace("hybridsim", in, out1, options);
  trace::import_trace("hybridsim", in, out2, options);
  EXPECT_EQ(read_file(out1), read_file(out2));
  std::remove(in.c_str());
  std::remove(out1.c_str());
  std::remove(out2.c_str());
}

TEST(ImportHybridSim, PaddedThreadCountFollowsClusterContract) {
  EXPECT_EQ(trace::padded_thread_count(1), 2u);
  EXPECT_EQ(trace::padded_thread_count(2), 2u);
  EXPECT_EQ(trace::padded_thread_count(3), 4u);
  EXPECT_EQ(trace::padded_thread_count(9), 16u);
  EXPECT_EQ(trace::padded_thread_count(32), 32u);
  try {
    trace::padded_thread_count(33);
    FAIL() << "expected ImportError";
  } catch (const trace::ImportError& e) {
    EXPECT_EQ(e.kind(), trace::ImportErrorKind::kLimit);
  }
}

// ---- Replay determinism --------------------------------------------------

TEST(ImportReplay, ImportedTraceReplaysBitIdentically) {
  const std::string in = write_text("replay.hst", kMini);
  const std::string out = temp_path("replay.rspt");
  trace::import_trace("hybridsim", in, out);

  // Two independent loads + replays of the same file must agree bit for
  // bit, on a plain governor and on the consolidation governor.
  for (const char* config : {"SH-STT", "SH-STT-CC"}) {
    const core::ConfigId id = core::parse_config_id(config);
    const trace::TraceData first = trace::load_trace(out);
    const trace::TraceData second = trace::load_trace(out);
    const core::SimResult a = trace::replay_trace(id, first, {});
    const core::SimResult b = trace::replay_trace(id, second, {});
    core::expect_same_result(a, b);
    EXPECT_GT(a.instructions, 0u);
    EXPECT_FALSE(a.hit_cycle_limit);
  }
  std::remove(in.c_str());
  std::remove(out.c_str());
}

// ---- Malformed input taxonomy --------------------------------------------

TEST(ImportErrors, TruncatedLineIsSyntax) {
  EXPECT_EQ(import_error_kind("trunc.hst", "0 100 0x1000\n"),
            trace::ImportErrorKind::kSyntax);
}

TEST(ImportErrors, ExtraFieldIsSyntax) {
  EXPECT_EQ(import_error_kind("extra.hst", "0 100 0x1000 R 7\n"),
            trace::ImportErrorKind::kSyntax);
}

TEST(ImportErrors, NonNumericFieldsAreSyntax) {
  EXPECT_EQ(import_error_kind("nan_core.hst", "zero 100 0x1000 R\n"),
            trace::ImportErrorKind::kSyntax);
  EXPECT_EQ(import_error_kind("nan_ts.hst", "0 10s0 0x1000 R\n"),
            trace::ImportErrorKind::kSyntax);
  EXPECT_EQ(import_error_kind("nan_addr.hst", "0 100 0xZZ R\n"),
            trace::ImportErrorKind::kSyntax);
  EXPECT_EQ(import_error_kind("neg.hst", "0 -100 0x1000 R\n"),
            trace::ImportErrorKind::kSyntax);
  EXPECT_EQ(import_error_kind("overflow.hst",
                              "0 99999999999999999999999 0x1000 R\n"),
            trace::ImportErrorKind::kSyntax);
}

TEST(ImportErrors, UnknownOperationIsSyntax) {
  EXPECT_EQ(import_error_kind("badop.hst", "0 100 0x1000 X\n"),
            trace::ImportErrorKind::kSyntax);
}

TEST(ImportErrors, OutOfRangeCoreIdIsTyped) {
  EXPECT_EQ(import_error_kind("core99.hst", "99 100 0x1000 R\n"),
            trace::ImportErrorKind::kBadCoreId);
}

TEST(ImportErrors, BackwardsTimestampIsInterleavingViolation) {
  const std::string bad =
      "0 200 0x1000 R\n"
      "1 100 0x2000 R\n"  // Fine: cross-core order is free.
      "0 100 0x3000 R\n";  // Core 0 went backwards.
  try {
    const std::string in = write_text("order.hst", bad);
    const std::string out = temp_path("order.rspt");
    trace::import_trace("hybridsim", in, out);
    FAIL() << "expected ImportError";
  } catch (const trace::ImportError& e) {
    EXPECT_EQ(e.kind(), trace::ImportErrorKind::kBadOrder);
    EXPECT_EQ(e.line(), 3u);  // 1-based line numbers in every message.
  }
}

TEST(ImportErrors, EmptyInputIsTyped) {
  EXPECT_EQ(import_error_kind("empty.hst", ""),
            trace::ImportErrorKind::kEmpty);
  EXPECT_EQ(import_error_kind("comments.hst", "# nothing here\n\n"),
            trace::ImportErrorKind::kEmpty);
}

TEST(ImportErrors, MissingFileIsIo) {
  try {
    trace::import_trace("hybridsim", temp_path("does_not_exist.hst"),
                        temp_path("x.rspt"));
    FAIL() << "expected ImportError";
  } catch (const trace::ImportError& e) {
    EXPECT_EQ(e.kind(), trace::ImportErrorKind::kIo);
  }
}

TEST(ImportErrors, UnknownFormatListsRegisteredNames) {
  try {
    trace::import_trace("nosuch", "in", "out");
    FAIL() << "expected ImportError";
  } catch (const trace::ImportError& e) {
    EXPECT_EQ(e.kind(), trace::ImportErrorKind::kUnknownFormat);
    EXPECT_NE(std::string(e.what()).find("hybridsim"), std::string::npos);
  }
}

TEST(ImportErrors, CoreCountBeyondLargestClusterIsLimit) {
  trace::ImportOptions options;
  options.max_cores = 64;  // Let the parser accept the id; padding rejects.
  EXPECT_EQ(import_error_kind("wide.hst", "40 100 0x1000 R\n", options),
            trace::ImportErrorKind::kLimit);
}

}  // namespace
}  // namespace respin
