// Property tests driven by the deterministic RNG.
//
// CacheArray is checked against an executable reference model (per-set MRU
// lists) over random access streams: hit/miss outcomes, true-LRU victim
// selection, dirty-eviction reporting and set/way invariants must all
// match. SharedCacheController's event-driven interface is checked by
// replaying identical random request schedules through a cycle-by-cycle
// copy and a next_activity_cycle/note_skipped_cycles-jumping copy: the
// serviced-read streams and statistics must be identical, and every
// predicted activity cycle must be strictly in the future and stable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/shared_cache_controller.hpp"
#include "mem/cache_array.hpp"
#include "mem/cache_types.hpp"
#include "reference_controller.hpp"
#include "trace/format.hpp"
#include "util/rng.hpp"

namespace respin {
namespace {

// ---- CacheArray vs a reference model -------------------------------------

// Reference model: one MRU-ordered list of (line, state) per set.
class RefCache {
 public:
  RefCache(std::uint32_t set_count, std::uint32_t ways)
      : set_count_(set_count), ways_(ways), sets_(set_count) {}

  struct Entry {
    mem::LineAddr line;
    mem::Mesi state;
  };

  Entry* find(mem::LineAddr line) {
    auto& set = sets_[line % set_count_];
    for (Entry& e : set) {
      if (e.line == line) return &e;
    }
    return nullptr;
  }

  // Mirrors CacheArray::access: hit promotes to MRU.
  std::optional<mem::Mesi> access(mem::LineAddr line) {
    auto& set = sets_[line % set_count_];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->line == line) {
        const Entry e = *it;
        set.erase(it);
        set.push_front(e);
        return e.state;
      }
    }
    return std::nullopt;
  }

  // Mirrors CacheArray::insert: evicts the LRU entry of a full set.
  std::optional<mem::Eviction> insert(mem::LineAddr line, mem::Mesi state) {
    auto& set = sets_[line % set_count_];
    std::optional<mem::Eviction> evicted;
    if (set.size() == ways_) {
      const Entry victim = set.back();
      set.pop_back();
      evicted = mem::Eviction{victim.line, victim.state == mem::Mesi::kModified};
    }
    set.push_front({line, state});
    return evicted;
  }

  bool invalidate(mem::LineAddr line, bool* was_dirty) {
    auto& set = sets_[line % set_count_];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->line == line) {
        if (was_dirty != nullptr) *was_dirty = it->state == mem::Mesi::kModified;
        set.erase(it);
        return true;
      }
    }
    return false;
  }

  std::uint64_t resident() const {
    std::uint64_t n = 0;
    for (const auto& set : sets_) n += set.size();
    return n;
  }

  std::size_t set_occupancy(std::uint32_t set) const {
    return sets_[set].size();
  }

 private:
  std::uint32_t set_count_;
  std::uint32_t ways_;
  std::vector<std::deque<Entry>> sets_;  // Front = MRU, back = LRU.
};

TEST(CacheArrayProperty, MatchesReferenceModelOnRandomStreams) {
  const struct {
    std::uint64_t capacity;
    std::uint32_t line;
    std::uint32_t ways;
  } shapes[] = {
      {1024, 32, 4},   // 8 sets: heavy conflict pressure.
      {2048, 64, 2},   // 16 sets, direct-mapped-ish.
      {4096, 32, 8},   // High associativity.
  };
  const mem::Mesi states[] = {mem::Mesi::kShared, mem::Mesi::kExclusive,
                              mem::Mesi::kModified};

  for (const auto& shape : shapes) {
    mem::CacheArray cache(shape.capacity, shape.line, shape.ways);
    RefCache ref(cache.set_count(), cache.ways());
    util::Rng rng("property.cache_array", shape.capacity + shape.ways);
    SCOPED_TRACE("ways=" + std::to_string(shape.ways) +
                 " sets=" + std::to_string(cache.set_count()));

    // Footprint ~4x capacity so evictions are constant.
    const std::uint64_t line_space = 4 * cache.set_count() * cache.ways();
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    for (int op = 0; op < 20'000; ++op) {
      const mem::LineAddr line = rng.uniform_u64(line_space);
      const std::uint64_t action = rng.uniform_u64(100);
      if (action < 80) {
        // Lookup, inserting on miss — the simulator's common path.
        const auto got = cache.access(line);
        const auto want = ref.access(line);
        ASSERT_EQ(got.has_value(), want.has_value()) << "op " << op;
        if (got.has_value()) {
          ASSERT_EQ(*got, *want) << "op " << op;
          ++hits;
        } else {
          ++misses;
          const mem::Mesi state = states[rng.uniform_u64(3)];
          const auto evicted = cache.insert(line, state);
          const auto ref_evicted = ref.insert(line, state);
          ASSERT_EQ(evicted.has_value(), ref_evicted.has_value())
              << "op " << op;
          if (evicted.has_value()) {
            EXPECT_EQ(evicted->line, ref_evicted->line)
                << "op " << op << ": LRU victim mismatch";
            EXPECT_EQ(evicted->dirty, ref_evicted->dirty) << "op " << op;
          }
        }
      } else if (action < 90) {
        // Upgrade a (possibly absent) line to Modified.
        const bool got = cache.set_state(line, mem::Mesi::kModified);
        RefCache::Entry* entry = ref.find(line);
        EXPECT_EQ(got, entry != nullptr) << "op " << op;
        if (entry != nullptr) entry->state = mem::Mesi::kModified;
      } else {
        bool got_dirty = false;
        bool want_dirty = false;
        const bool got = cache.invalidate(line, &got_dirty);
        const bool want = ref.invalidate(line, &want_dirty);
        ASSERT_EQ(got, want) << "op " << op;
        EXPECT_EQ(got_dirty, want_dirty) << "op " << op;
      }

      if (op % 1000 == 0) {
        // Structural invariants: occupancy bounds and probe agreement.
        EXPECT_EQ(cache.resident_lines(), ref.resident());
        EXPECT_LE(cache.resident_lines(),
                  std::uint64_t{cache.set_count()} * cache.ways());
        for (int s = 0; s < 4; ++s) {
          const mem::LineAddr probe_line = rng.uniform_u64(line_space);
          EXPECT_EQ(cache.probe(probe_line).has_value(),
                    ref.find(probe_line) != nullptr);
        }
      }
    }

    EXPECT_EQ(cache.stats().hits, hits);
    EXPECT_EQ(cache.stats().misses, misses);
    EXPECT_GT(misses, 0u);
    EXPECT_GT(hits, 0u);
  }
}

// ---- SharedCacheController: event-driven clock vs reference --------------

struct ScheduledRead {
  std::int64_t cycle;
  std::uint32_t core;
  std::uint32_t multiplier;
};
struct ScheduledWrite {
  std::int64_t cycle;
  bool fill;           // Otherwise a store.
  bool accepted;       // Store-queue admission recorded from the reference.
};

struct Schedule {
  std::vector<ScheduledRead> reads;
  std::vector<ScheduledWrite> writes;
  std::vector<core::ServicedRead> serviced;
  core::ControllerStats stats;
};

// Drives the reference (cycle-by-cycle) controller with a random request
// stream, recording the exact schedule so it can be replayed.
Schedule run_reference(const core::ControllerParams& params,
                       std::uint64_t seed, std::int64_t horizon) {
  core::SharedCacheController ctrl(params, seed);
  util::Rng rng("property.controller", seed);
  Schedule schedule;
  std::vector<bool> outstanding(params.core_count, false);
  std::vector<core::ServicedRead> out;

  for (std::int64_t now = 0; now < horizon; ++now) {
    if (rng.bernoulli(0.25)) {
      const std::uint32_t core =
          static_cast<std::uint32_t>(rng.uniform_u64(params.core_count));
      if (!outstanding[core]) {
        // Core periods must exceed the request wire delay (asserted by
        // the controller).
        const std::uint32_t multiplier =
            params.request_delay_cycles + 1 +
            static_cast<std::uint32_t>(rng.uniform_u64(4));
        ctrl.submit_read(core, multiplier, now);
        outstanding[core] = true;
        schedule.reads.push_back({now, core, multiplier});
      }
    }
    if (rng.bernoulli(0.10)) {
      const bool fill = rng.bernoulli(0.3);
      bool accepted = true;
      if (fill) {
        ctrl.submit_fill(now);
      } else {
        accepted = ctrl.submit_store(now);
      }
      schedule.writes.push_back({now, fill, accepted});
    }
    out.clear();
    ctrl.step(now, out);
    for (const core::ServicedRead& r : out) {
      outstanding[r.core] = false;
      schedule.serviced.push_back(r);
    }
  }
  schedule.stats = ctrl.stats();
  return schedule;
}

void expect_same_stats(const core::ControllerStats& a,
                       const core::ControllerStats& b) {
  EXPECT_EQ(a.reads_serviced, b.reads_serviced);
  EXPECT_EQ(a.half_misses, b.half_misses);
  EXPECT_EQ(a.stores_accepted, b.stores_accepted);
  EXPECT_EQ(a.store_queue_rejections, b.store_queue_rejections);
  EXPECT_EQ(a.fills, b.fills);
  EXPECT_EQ(a.busy_cycles, b.busy_cycles);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  ASSERT_EQ(a.arrivals_per_cycle.bucket_count(),
            b.arrivals_per_cycle.bucket_count());
  EXPECT_EQ(a.arrivals_per_cycle.total(), b.arrivals_per_cycle.total());
  for (std::size_t i = 0; i < a.arrivals_per_cycle.bucket_count(); ++i) {
    EXPECT_EQ(a.arrivals_per_cycle.bucket(i), b.arrivals_per_cycle.bucket(i))
        << "bucket " << i;
  }
}

TEST(ControllerProperty, EventDrivenClockMatchesCycleByCycle) {
  const core::ControllerParams shapes[] = {
      {},  // Paper defaults: 16 cores, STT write occupancy.
      {.core_count = 4, .read_occupancy = 2, .write_occupancy = 2,
       .store_queue_depth = 4},
      {.core_count = 32, .arbitration = core::ArbitrationPolicy::kRoundRobin,
       .store_queue_depth = 8},
  };
  const std::int64_t horizon = 3000;

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const core::ControllerParams& params : shapes) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " cores=" + std::to_string(params.core_count));
      const Schedule schedule = run_reference(params, seed, horizon);
      ASSERT_GT(schedule.serviced.size(), 0u);

      // Replay on a copy that jumps with next_activity_cycle.
      core::SharedCacheController ctrl(params, seed);
      std::vector<core::ServicedRead> serviced;
      std::vector<core::ServicedRead> out;
      std::size_t next_read = 0;
      std::size_t next_write = 0;
      std::int64_t now = 0;
      while (now < horizon) {
        while (next_read < schedule.reads.size() &&
               schedule.reads[next_read].cycle == now) {
          const ScheduledRead& r = schedule.reads[next_read++];
          ctrl.submit_read(r.core, r.multiplier, now);
        }
        while (next_write < schedule.writes.size() &&
               schedule.writes[next_write].cycle == now) {
          const ScheduledWrite& w = schedule.writes[next_write++];
          if (w.fill) {
            ctrl.submit_fill(now);
          } else {
            EXPECT_EQ(ctrl.submit_store(now), w.accepted)
                << "store admission diverged at cycle " << now;
          }
        }
        out.clear();
        ctrl.step(now, out);
        serviced.insert(serviced.end(), out.begin(), out.end());

        // Predicted activity must be strictly in the future and stable
        // across repeated queries (const purity).
        const std::int64_t na = ctrl.next_activity_cycle(now);
        EXPECT_GT(na, now);
        EXPECT_EQ(ctrl.next_activity_cycle(now), na);

        std::int64_t next = std::min(na, horizon);
        if (next_read < schedule.reads.size()) {
          next = std::min(next, schedule.reads[next_read].cycle);
        }
        if (next_write < schedule.writes.size()) {
          next = std::min(next, schedule.writes[next_write].cycle);
        }
        ASSERT_GT(next, now) << "the jumping clock must advance";
        if (next > now + 1) ctrl.note_skipped_cycles(next - now - 1);
        now = next;
      }

      // Identical serviced-read streams, field by field.
      ASSERT_EQ(serviced.size(), schedule.serviced.size());
      for (std::size_t i = 0; i < serviced.size(); ++i) {
        EXPECT_EQ(serviced[i].core, schedule.serviced[i].core) << i;
        EXPECT_EQ(serviced[i].issued_at, schedule.serviced[i].issued_at) << i;
        EXPECT_EQ(serviced[i].serviced_at, schedule.serviced[i].serviced_at)
            << i;
        EXPECT_EQ(serviced[i].half_misses, schedule.serviced[i].half_misses)
            << i;
      }
      expect_same_stats(ctrl.stats(), schedule.stats);
    }
  }
}

// ---- Trace varint encoding vs its decoder --------------------------------

// LEB128 varints and zigzag signed deltas are the substrate of the trace
// format; random values of every magnitude (plus the boundary cases) must
// survive an encode/decode round trip exactly, and the reader must land on
// a byte boundary after each value.
TEST(TraceVarintProperty, UnsignedRoundTripsAllMagnitudes) {
  util::Rng rng("property.varint", 1);
  std::vector<std::uint64_t> values = {
      0, 1, 127, 128, 16383, 16384, (1ull << 32) - 1, 1ull << 32,
      std::numeric_limits<std::uint64_t>::max()};
  for (int i = 0; i < 20'000; ++i) {
    // Shift by a random amount so every encoded length 1..10 is exercised.
    values.push_back(rng.next_u64() >> rng.uniform_u64(64));
  }

  std::vector<std::uint8_t> buf;
  for (const std::uint64_t v : values) trace::put_varint(buf, v);
  EXPECT_LE(buf.size(), values.size() * 10);  // 10-byte cap per value.

  trace::ByteReader reader(buf);
  for (const std::uint64_t v : values) {
    ASSERT_EQ(reader.varint(), v);
  }
  EXPECT_TRUE(reader.done());
}

TEST(TraceVarintProperty, SignedZigzagRoundTrips) {
  util::Rng rng("property.svarint", 2);
  std::vector<std::int64_t> values = {
      0, 1, -1, 63, -64, 64, -65, std::numeric_limits<std::int64_t>::max(),
      std::numeric_limits<std::int64_t>::min()};
  for (int i = 0; i < 20'000; ++i) {
    const std::uint64_t raw = rng.next_u64() >> rng.uniform_u64(64);
    values.push_back(static_cast<std::int64_t>(raw) *
                     (rng.uniform_u64(2) == 0 ? 1 : -1));
  }

  std::vector<std::uint8_t> buf;
  for (const std::int64_t v : values) trace::put_svarint(buf, v);
  trace::ByteReader reader(buf);
  for (const std::int64_t v : values) {
    // Zigzag keeps small magnitudes small: |v| < 64 must fit in one byte.
    ASSERT_EQ(reader.svarint(), v);
  }
  EXPECT_TRUE(reader.done());

  // The small-magnitude guarantee, explicitly.
  for (std::int64_t v = -64; v <= 63; ++v) {
    std::vector<std::uint8_t> one;
    trace::put_svarint(one, v);
    EXPECT_EQ(one.size(), 1u) << v;
  }
}

TEST(TraceVarintProperty, DecoderRejectsOverlongAndTruncatedInput) {
  // Truncated: a continuation bit with no following byte.
  {
    const std::vector<std::uint8_t> buf = {0x80};
    trace::ByteReader reader(buf);
    try {
      reader.varint();
      FAIL() << "expected TraceError";
    } catch (const trace::TraceError& e) {
      EXPECT_EQ(e.kind(), trace::TraceErrorKind::kTruncated);
    }
  }
  // Overlong: 11 continuation bytes can never encode a u64.
  {
    const std::vector<std::uint8_t> buf(11, 0x80);
    trace::ByteReader reader(buf);
    try {
      reader.varint();
      FAIL() << "expected TraceError";
    } catch (const trace::TraceError& e) {
      EXPECT_EQ(e.kind(), trace::TraceErrorKind::kBadRecord);
    }
  }
  // 10th byte carrying bits beyond 2^64.
  {
    std::vector<std::uint8_t> buf(9, 0x80);
    buf.push_back(0x02);
    trace::ByteReader reader(buf);
    try {
      reader.varint();
      FAIL() << "expected TraceError";
    } catch (const trace::TraceError& e) {
      EXPECT_EQ(e.kind(), trace::TraceErrorKind::kBadRecord);
    }
  }
}

// ---- SharedCacheController vs the AoS reference oracle -------------------

// The production controller keeps its per-core read slots
// struct-of-arrays (packed visibility bitmasks, parallel priority/issue
// arrays); tests/reference_controller.hpp preserves the original
// array-of-structs slot walk. Both run the same random schedule in
// lockstep: serviced reads, admissions, statistics, activity predictions
// and the RNG tie-break draws must agree cycle by cycle.
TEST(ControllerProperty, SoaControllerMatchesAosReference) {
  const core::ControllerParams shapes[] = {
      {},  // Paper defaults: 16 cores, priority arbitration, STT writes.
      {.core_count = 4, .read_occupancy = 2, .write_occupancy = 2,
       .store_queue_depth = 4},
      // 96 cores spans multiple 64-bit visibility words.
      {.core_count = 96, .read_occupancy = 3, .store_queue_depth = 8},
      {.core_count = 32, .arbitration = core::ArbitrationPolicy::kRoundRobin,
       .store_queue_depth = 8},
  };
  const std::int64_t horizon = 2500;

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    for (const core::ControllerParams& params : shapes) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " cores=" + std::to_string(params.core_count));
      core::SharedCacheController soa(params, seed);
      test::ReferenceController aos(params, seed);
      util::Rng rng("property.soa_vs_aos", seed);
      std::vector<bool> outstanding(params.core_count, false);
      std::vector<core::ServicedRead> soa_out;
      std::vector<core::ServicedRead> aos_out;
      std::uint64_t serviced_total = 0;

      for (std::int64_t now = 0; now < horizon; ++now) {
        // Heavier arrival rate than the port can drain, so priority
        // registers age, half-miss and re-arm constantly.
        if (rng.bernoulli(0.4)) {
          const std::uint32_t core =
              static_cast<std::uint32_t>(rng.uniform_u64(params.core_count));
          if (!outstanding[core]) {
            const std::uint32_t multiplier =
                params.request_delay_cycles + 1 +
                static_cast<std::uint32_t>(rng.uniform_u64(4));
            soa.submit_read(core, multiplier, now);
            aos.submit_read(core, multiplier, now);
            outstanding[core] = true;
          }
        }
        if (rng.bernoulli(0.15)) {
          if (rng.bernoulli(0.3)) {
            soa.submit_fill(now);
            aos.submit_fill(now);
          } else {
            ASSERT_EQ(soa.submit_store(now), aos.submit_store(now))
                << "store admission diverged at cycle " << now;
          }
        }
        soa_out.clear();
        aos_out.clear();
        soa.step(now, soa_out);
        aos.step(now, aos_out);
        ASSERT_EQ(soa_out.size(), aos_out.size()) << "cycle " << now;
        for (std::size_t i = 0; i < soa_out.size(); ++i) {
          ASSERT_EQ(soa_out[i].core, aos_out[i].core) << "cycle " << now;
          ASSERT_EQ(soa_out[i].issued_at, aos_out[i].issued_at)
              << "cycle " << now;
          ASSERT_EQ(soa_out[i].serviced_at, aos_out[i].serviced_at)
              << "cycle " << now;
          ASSERT_EQ(soa_out[i].half_misses, aos_out[i].half_misses)
              << "cycle " << now;
          outstanding[soa_out[i].core] = false;
          ++serviced_total;
        }
        ASSERT_EQ(soa.next_activity_cycle(now), aos.next_activity_cycle(now))
            << "cycle " << now;
        ASSERT_EQ(soa.has_pending_work(), aos.has_pending_work())
            << "cycle " << now;
        ASSERT_EQ(soa.store_queue_size(), aos.store_queue_size())
            << "cycle " << now;
      }
      ASSERT_GT(serviced_total, 0u);
      expect_same_stats(soa.stats(), aos.stats());
    }
  }
}

TEST(ControllerProperty, IdleControllerReportsNoActivity) {
  core::SharedCacheController ctrl({}, 1);
  std::vector<core::ServicedRead> out;
  ctrl.step(0, out);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(ctrl.has_pending_work());
  EXPECT_EQ(ctrl.next_activity_cycle(0),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(ctrl.next_activity_cycle(1'000'000),
            std::numeric_limits<std::int64_t>::max());
}

}  // namespace
}  // namespace respin
