// Tests for respin::mem::PrivateL1System — the MESI directory protocol of
// the private-cache baseline, including a cross-core invariant sweep.
#include <gtest/gtest.h>

#include "mem/backside.hpp"
#include "mem/private_l1.hpp"
#include "util/rng.hpp"

namespace respin::mem {
namespace {

class PrivateL1Test : public ::testing::Test {
 protected:
  PrivateL1Test() : backside_(BacksideParams{}), system_(params()) {}

  static PrivateL1Params params() {
    PrivateL1Params p;
    p.core_count = 4;
    return p;
  }

  Backside backside_;
  PrivateL1System system_;
};

TEST_F(PrivateL1Test, ColdLoadMissesThenHits) {
  auto first = system_.access(0, 0x1000, AccessType::kLoad, backside_);
  EXPECT_FALSE(first.l1_hit);
  EXPECT_GT(first.extra_cycles, 0u);
  auto second = system_.access(0, 0x1000, AccessType::kLoad, backside_);
  EXPECT_TRUE(second.l1_hit);
  EXPECT_EQ(second.extra_cycles, 0u);
}

TEST_F(PrivateL1Test, FirstLoaderGetsExclusive) {
  system_.access(0, 0x1000, AccessType::kLoad, backside_);
  EXPECT_EQ(*system_.l1d(0).probe(0x1000 / 32), Mesi::kExclusive);
}

TEST_F(PrivateL1Test, SecondLoaderDemotesToShared) {
  system_.access(0, 0x1000, AccessType::kLoad, backside_);
  system_.access(1, 0x1000, AccessType::kLoad, backside_);
  EXPECT_EQ(*system_.l1d(1).probe(0x1000 / 32), Mesi::kShared);
}

TEST_F(PrivateL1Test, StoreHitOnExclusiveIsSilent) {
  system_.access(0, 0x1000, AccessType::kLoad, backside_);
  auto store = system_.access(0, 0x1000, AccessType::kStore, backside_);
  EXPECT_TRUE(store.l1_hit);
  EXPECT_EQ(store.extra_cycles, 0u);
  EXPECT_EQ(*system_.l1d(0).probe(0x1000 / 32), Mesi::kModified);
  EXPECT_EQ(system_.coherence_stats().upgrades, 0u);
}

TEST_F(PrivateL1Test, StoreOnSharedUpgradesAndInvalidates) {
  system_.access(0, 0x1000, AccessType::kLoad, backside_);
  system_.access(1, 0x1000, AccessType::kLoad, backside_);
  auto store = system_.access(0, 0x1000, AccessType::kStore, backside_);
  EXPECT_TRUE(store.l1_hit);
  EXPECT_GT(store.extra_cycles, 0u);  // Directory round trip.
  EXPECT_EQ(system_.coherence_stats().upgrades, 1u);
  EXPECT_GE(system_.coherence_stats().invalidations_sent, 1u);
  EXPECT_FALSE(system_.l1d(1).probe(0x1000 / 32).has_value());
  EXPECT_EQ(*system_.l1d(0).probe(0x1000 / 32), Mesi::kModified);
}

TEST_F(PrivateL1Test, LoadOfDirtyPeerLineIntervenes) {
  system_.access(0, 0x1000, AccessType::kStore, backside_);
  const auto writebacks_before = system_.coherence_stats().writebacks;
  auto load = system_.access(1, 0x1000, AccessType::kLoad, backside_);
  EXPECT_FALSE(load.l1_hit);
  EXPECT_EQ(system_.coherence_stats().interventions, 1u);
  EXPECT_GT(system_.coherence_stats().writebacks, writebacks_before);
  // Both copies now Shared.
  EXPECT_EQ(*system_.l1d(0).probe(0x1000 / 32), Mesi::kShared);
  EXPECT_EQ(*system_.l1d(1).probe(0x1000 / 32), Mesi::kShared);
}

TEST_F(PrivateL1Test, StoreOverDirtyPeerTransfersOwnership) {
  system_.access(0, 0x1000, AccessType::kStore, backside_);
  auto store = system_.access(1, 0x1000, AccessType::kStore, backside_);
  EXPECT_FALSE(store.l1_hit);
  EXPECT_FALSE(system_.l1d(0).probe(0x1000 / 32).has_value());
  EXPECT_EQ(*system_.l1d(1).probe(0x1000 / 32), Mesi::kModified);
  // A third core reading pulls a writeback from core 1.
  system_.access(2, 0x1000, AccessType::kLoad, backside_);
  EXPECT_EQ(*system_.l1d(1).probe(0x1000 / 32), Mesi::kShared);
}

TEST_F(PrivateL1Test, StoreMissWithCleanPeersInvalidatesAll) {
  system_.access(0, 0x1000, AccessType::kLoad, backside_);
  system_.access(1, 0x1000, AccessType::kLoad, backside_);
  system_.access(2, 0x1000, AccessType::kStore, backside_);
  EXPECT_FALSE(system_.l1d(0).probe(0x1000 / 32).has_value());
  EXPECT_FALSE(system_.l1d(1).probe(0x1000 / 32).has_value());
  EXPECT_EQ(*system_.l1d(2).probe(0x1000 / 32), Mesi::kModified);
}

TEST_F(PrivateL1Test, IfetchFillsInstructionCacheOnly) {
  auto fetch = system_.access(0, 0x9000, AccessType::kIfetch, backside_);
  EXPECT_FALSE(fetch.l1_hit);
  EXPECT_TRUE(system_.l1i(0).probe(0x9000 / 32).has_value());
  EXPECT_FALSE(system_.l1d(0).probe(0x9000 / 32).has_value());
  EXPECT_TRUE(
      system_.access(0, 0x9000, AccessType::kIfetch, backside_).l1_hit);
}

TEST_F(PrivateL1Test, IfetchSharedAcrossCoresWithoutCoherence) {
  system_.access(0, 0x9000, AccessType::kIfetch, backside_);
  const auto coh = system_.coherence_stats();
  system_.access(1, 0x9000, AccessType::kIfetch, backside_);
  EXPECT_EQ(system_.coherence_stats().invalidations_sent,
            coh.invalidations_sent);
  EXPECT_EQ(system_.coherence_stats().upgrades, coh.upgrades);
}

TEST_F(PrivateL1Test, FlushWritesBackDirtyLines) {
  system_.access(0, 0x1000, AccessType::kStore, backside_);
  system_.access(0, 0x2000, AccessType::kLoad, backside_);
  const auto writebacks_before = system_.coherence_stats().writebacks;
  system_.flush_core(0, backside_);
  EXPECT_EQ(system_.l1d(0).resident_lines(), 0u);
  EXPECT_EQ(system_.l1i(0).resident_lines(), 0u);
  EXPECT_EQ(system_.coherence_stats().writebacks, writebacks_before + 1);
  // Reload misses again (the "cold cache" consolidation cost).
  EXPECT_FALSE(
      system_.access(0, 0x1000, AccessType::kLoad, backside_).l1_hit);
}

TEST_F(PrivateL1Test, FlushLeavesPeersIntact) {
  system_.access(0, 0x1000, AccessType::kLoad, backside_);
  system_.access(1, 0x1000, AccessType::kLoad, backside_);
  system_.flush_core(0, backside_);
  EXPECT_TRUE(system_.l1d(1).probe(0x1000 / 32).has_value());
  // Peer's copy still coherent: a store by core 2 must invalidate it.
  system_.access(2, 0x1000, AccessType::kStore, backside_);
  EXPECT_FALSE(system_.l1d(1).probe(0x1000 / 32).has_value());
}

TEST_F(PrivateL1Test, AccessCountsForEnergy) {
  system_.access(0, 0x1000, AccessType::kLoad, backside_);   // read + fill.
  system_.access(0, 0x1000, AccessType::kStore, backside_);  // write.
  EXPECT_EQ(system_.l1_reads(), 1u);
  EXPECT_EQ(system_.l1_writes(), 2u);  // Fill + store.
}

TEST_F(PrivateL1Test, RejectsBadCore) {
  EXPECT_THROW(system_.access(9, 0x0, AccessType::kLoad, backside_),
               std::logic_error);
  EXPECT_THROW(system_.flush_core(9, backside_), std::logic_error);
}

// Randomized invariant sweep: after any access sequence, (a) a Modified
// line exists in at most one L1 and (b) any valid line in an L1 has no
// Modified copy elsewhere.
TEST(PrivateL1Property, SingleWriterInvariant) {
  PrivateL1Params params;
  params.core_count = 8;
  Backside backside{BacksideParams{}};
  PrivateL1System system(params);
  util::Rng rng("mesi.property", 3);

  constexpr int kLines = 64;
  for (int i = 0; i < 20000; ++i) {
    const auto core = static_cast<std::uint32_t>(rng.uniform_u64(8));
    const Addr addr = 32 * rng.uniform_u64(kLines);
    const auto type =
        rng.bernoulli(0.4) ? AccessType::kStore : AccessType::kLoad;
    system.access(core, addr, type, backside);

    if (i % 500 == 0) {
      for (int line = 0; line < kLines; ++line) {
        int modified = 0;
        int valid = 0;
        for (std::uint32_t c = 0; c < 8; ++c) {
          const auto state = system.l1d(c).probe(static_cast<LineAddr>(line));
          if (!state.has_value()) continue;
          ++valid;
          if (*state == Mesi::kModified) ++modified;
        }
        ASSERT_LE(modified, 1) << "line " << line << " after op " << i;
        if (modified == 1) {
          ASSERT_EQ(valid, 1) << "M must be exclusive, line " << line;
        }
      }
    }
  }
}

// Under pure loads, no coherence traffic is ever generated.
TEST(PrivateL1Property, ReadOnlySharingIsFree) {
  PrivateL1Params params;
  params.core_count = 8;
  Backside backside{BacksideParams{}};
  PrivateL1System system(params);
  util::Rng rng("mesi.readonly", 4);
  for (int i = 0; i < 5000; ++i) {
    system.access(static_cast<std::uint32_t>(rng.uniform_u64(8)),
                  32 * rng.uniform_u64(128), AccessType::kLoad, backside);
  }
  EXPECT_EQ(system.coherence_stats().upgrades, 0u);
  EXPECT_EQ(system.coherence_stats().invalidations_sent, 0u);
  EXPECT_EQ(system.coherence_stats().interventions, 0u);
}

}  // namespace
}  // namespace respin::mem
