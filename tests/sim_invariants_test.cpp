// Cross-cutting simulator invariants, checked over a (config x benchmark)
// grid: accounting identities that must hold for any run.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <tuple>

#include "core/experiment.hpp"

namespace respin::core {
namespace {

using Case = std::tuple<ConfigId, std::string>;

const SimResult& run_case(const Case& c) {
  static std::map<Case, SimResult> cache;
  auto it = cache.find(c);
  if (it == cache.end()) {
    RunOptions options;
    options.workload_scale = 0.08;
    it = cache.emplace(c, run_experiment(std::get<0>(c), std::get<1>(c),
                                         options))
             .first;
  }
  return it->second;
}

class SimInvariantsTest : public ::testing::TestWithParam<Case> {};

TEST_P(SimInvariantsTest, ArrivalCensusCoversEveryCycle) {
  const SimResult& r = run_case(GetParam());
  if (r.dl1_cycles == 0) GTEST_SKIP() << "private-cache configuration";
  // The controller samples the arrival histogram exactly once per cycle.
  EXPECT_EQ(r.dl1_arrivals.total(), r.dl1_cycles);
  EXPECT_EQ(static_cast<std::int64_t>(r.dl1_cycles), r.cycles);
}

TEST_P(SimInvariantsTest, ReadsSplitIntoHitsAndMisses) {
  const SimResult& r = run_case(GetParam());
  if (r.dl1_cycles == 0) GTEST_SKIP();
  EXPECT_EQ(r.read_hit_latency.total(), r.dl1_read_hits);
  EXPECT_GT(r.dl1_read_hits + r.dl1_read_misses, 0u);
  // Hit-rate sanity bounds only: memory-bound benchmarks (radix's 2MB
  // scatter) legitimately miss most reads in the 256KB shared L1D.
  const double hit_rate =
      static_cast<double>(r.dl1_read_hits) /
      static_cast<double>(r.dl1_read_hits + r.dl1_read_misses);
  EXPECT_GT(hit_rate, 0.05);
  EXPECT_LT(hit_rate, 1.0);
}

TEST_P(SimInvariantsTest, EnergyIdentities) {
  const SimResult& r = run_case(GetParam());
  EXPECT_NEAR(r.energy.total(),
              r.energy.core_dynamic + r.energy.core_leakage +
                  r.energy.cache_dynamic + r.energy.cache_leakage +
                  r.energy.dram + r.energy.network,
              1e-3);
  EXPECT_GE(r.energy.core_leakage, 0.0);
  EXPECT_GT(r.epi_pj(), 0.0);
}

TEST_P(SimInvariantsTest, TimeAndCyclesAgree) {
  const SimResult& r = run_case(GetParam());
  EXPECT_NEAR(r.seconds, static_cast<double>(r.cycles) * 0.4e-9, 1e-12);
}

TEST_P(SimInvariantsTest, MemoryHierarchyFlowsDownward) {
  const SimResult& r = run_case(GetParam());
  // Every L3 read was an L2 miss; every DRAM access was an L3 miss.
  EXPECT_LE(r.counts.l3_reads, r.counts.l2_reads);
  EXPECT_LE(r.counts.dram_accesses,
            r.counts.l3_reads + r.counts.l3_writes + r.counts.l2_writes);
  // Every backside fill originates from an L1-side event (load miss,
  // store miss, or ifetch miss), so total L1 traffic bounds L2 reads.
  EXPECT_GT(r.counts.l1_reads + r.counts.l1_writes, r.counts.l2_reads);
}

TEST_P(SimInvariantsTest, OnCoreIntegralBounded) {
  const SimResult& r = run_case(GetParam());
  const double elapsed_ps = static_cast<double>(r.cycles) * 400.0;
  EXPECT_LE(r.counts.core_on_ps, 16.0 * elapsed_ps * 1.001);
  EXPECT_GT(r.counts.core_on_ps, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimInvariantsTest,
    ::testing::Values(Case{ConfigId::kPrSramNt, "ocean"},
                      Case{ConfigId::kPrSramNt, "swaptions"},
                      Case{ConfigId::kHpSramCmp, "fft"},
                      Case{ConfigId::kShSramNom, "raytrace"},
                      Case{ConfigId::kShStt, "ocean"},
                      Case{ConfigId::kShStt, "radix"},
                      Case{ConfigId::kShSttCc, "bodytrack"},
                      Case{ConfigId::kPrSttCc, "lu"},
                      Case{ConfigId::kShSttCcOs, "streamcluster"}),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_" + std::get<1>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace respin::core
