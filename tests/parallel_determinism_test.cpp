// Pins the performance engine's determinism contract: serial vs parallel
// execution and cycle-by-cycle vs event-driven clocking must produce
// bit-identical SimResults — same cycle counts, same histograms, same
// energy — for every Table IV configuration.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/chip.hpp"
#include "core/experiment.hpp"
#include "exec/thread_pool.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

namespace respin::core {
namespace {

void expect_same_histogram(const util::Histogram& a, const util::Histogram& b,
                           const std::string& what) {
  ASSERT_EQ(a.bucket_count(), b.bucket_count()) << what;
  EXPECT_EQ(a.total(), b.total()) << what;
  for (std::size_t i = 0; i < a.bucket_count(); ++i) {
    EXPECT_EQ(a.bucket(i), b.bucket(i)) << what << " bucket " << i;
  }
}

void expect_same_result(const SimResult& a, const SimResult& b) {
  SCOPED_TRACE(a.config_name + "/" + a.benchmark);
  EXPECT_EQ(a.config_name, b.config_name);
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.seconds, b.seconds);  // Bit-identical, not approximately.
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.hit_cycle_limit, b.hit_cycle_limit);

  EXPECT_EQ(a.counts.instructions, b.counts.instructions);
  EXPECT_EQ(a.counts.core_busy_cycles, b.counts.core_busy_cycles);
  EXPECT_EQ(a.counts.core_idle_cycles, b.counts.core_idle_cycles);
  EXPECT_EQ(a.counts.l1_reads, b.counts.l1_reads);
  EXPECT_EQ(a.counts.l1_writes, b.counts.l1_writes);
  EXPECT_EQ(a.counts.l2_reads, b.counts.l2_reads);
  EXPECT_EQ(a.counts.l2_writes, b.counts.l2_writes);
  EXPECT_EQ(a.counts.l3_reads, b.counts.l3_reads);
  EXPECT_EQ(a.counts.l3_writes, b.counts.l3_writes);
  EXPECT_EQ(a.counts.dram_accesses, b.counts.dram_accesses);
  EXPECT_EQ(a.counts.coherence_messages, b.counts.coherence_messages);
  EXPECT_EQ(a.counts.level_shifter_crossings,
            b.counts.level_shifter_crossings);
  EXPECT_EQ(a.counts.core_on_ps, b.counts.core_on_ps);

  EXPECT_EQ(a.energy.core_dynamic, b.energy.core_dynamic);
  EXPECT_EQ(a.energy.core_leakage, b.energy.core_leakage);
  EXPECT_EQ(a.energy.cache_dynamic, b.energy.cache_dynamic);
  EXPECT_EQ(a.energy.cache_leakage, b.energy.cache_leakage);
  EXPECT_EQ(a.energy.dram, b.energy.dram);
  EXPECT_EQ(a.energy.network, b.energy.network);

  expect_same_histogram(a.read_hit_latency, b.read_hit_latency,
                        "read_hit_latency");
  EXPECT_EQ(a.dl1_read_hits, b.dl1_read_hits);
  EXPECT_EQ(a.dl1_read_misses, b.dl1_read_misses);
  EXPECT_EQ(a.dl1_half_misses, b.dl1_half_misses);
  EXPECT_EQ(a.dl1_store_rejections, b.dl1_store_rejections);
  expect_same_histogram(a.dl1_arrivals, b.dl1_arrivals, "dl1_arrivals");
  EXPECT_EQ(a.dl1_cycles, b.dl1_cycles);

  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].cycle, b.trace[i].cycle) << "trace sample " << i;
    EXPECT_EQ(a.trace[i].active_cores, b.trace[i].active_cores)
        << "trace sample " << i;
    EXPECT_EQ(a.trace[i].epi_pj, b.trace[i].epi_pj) << "trace sample " << i;
  }
  EXPECT_EQ(a.avg_active_cores, b.avg_active_cores);
  EXPECT_EQ(a.min_active_cores, b.min_active_cores);
  EXPECT_EQ(a.max_active_cores, b.max_active_cores);
}

RunOptions tiny_options() {
  RunOptions options;
  options.workload_scale = 0.05;
  return options;
}

// --- Event-driven clock vs cycle-by-cycle reference, all configs ----------

class SkipEquivalenceTest : public ::testing::TestWithParam<ConfigId> {};

TEST_P(SkipEquivalenceTest, SkipAndNoSkipAreBitIdentical) {
  RunOptions skip = tiny_options();
  skip.cycle_skip = true;
  RunOptions no_skip = tiny_options();
  no_skip.cycle_skip = false;
  const SimResult a = run_experiment(GetParam(), "ocean", skip);
  const SimResult b = run_experiment(GetParam(), "ocean", no_skip);
  expect_same_result(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SkipEquivalenceTest,
    ::testing::ValuesIn(all_config_ids()),
    [](const ::testing::TestParamInfo<ConfigId>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// A second benchmark with different phase structure, on the key shared
// and private configurations.
TEST(SkipEquivalence, RadixOnSharedAndPrivate) {
  for (ConfigId id :
       {ConfigId::kPrSramNt, ConfigId::kShStt, ConfigId::kShSttCcOs}) {
    RunOptions skip = tiny_options();
    RunOptions no_skip = tiny_options();
    no_skip.cycle_skip = false;
    expect_same_result(run_experiment(id, "radix", skip),
                       run_experiment(id, "radix", no_skip));
  }
}

// --- Serial vs parallel fan-out -------------------------------------------

TEST(ParallelDeterminism, RunSuiteMatchesSerial) {
  const RunOptions options = tiny_options();
  exec::set_thread_count(1);
  const std::vector<SimResult> serial =
      run_suite(ConfigId::kShSttCc, options);
  exec::set_thread_count(4);
  const std::vector<SimResult> parallel =
      run_suite(ConfigId::kShSttCc, options);
  exec::set_thread_count(0);

  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), workload::benchmark_names().size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].benchmark, workload::benchmark_names()[i]);
    expect_same_result(serial[i], parallel[i]);
  }
}

TEST(ParallelDeterminism, RunChipMatchesSerial) {
  const RunOptions options = tiny_options();
  exec::set_thread_count(1);
  const ChipResult serial = run_chip(ConfigId::kShStt, "fft", options);
  exec::set_thread_count(4);
  const ChipResult parallel = run_chip(ConfigId::kShStt, "fft", options);
  exec::set_thread_count(0);

  EXPECT_EQ(serial.config_name, parallel.config_name);
  EXPECT_EQ(serial.seconds, parallel.seconds);
  EXPECT_EQ(serial.instructions, parallel.instructions);
  EXPECT_EQ(serial.energy.core_dynamic, parallel.energy.core_dynamic);
  EXPECT_EQ(serial.energy.core_leakage, parallel.energy.core_leakage);
  EXPECT_EQ(serial.energy.cache_dynamic, parallel.energy.cache_dynamic);
  EXPECT_EQ(serial.energy.cache_leakage, parallel.energy.cache_leakage);
  EXPECT_EQ(serial.energy.dram, parallel.energy.dram);
  EXPECT_EQ(serial.energy.network, parallel.energy.network);
  ASSERT_EQ(serial.clusters.size(), parallel.clusters.size());
  for (std::size_t c = 0; c < serial.clusters.size(); ++c) {
    expect_same_result(serial.clusters[c], parallel.clusters[c]);
  }
}

TEST(ParallelDeterminism, RunMatrixMatchesRunExperimentCells) {
  const RunOptions options = tiny_options();
  const std::vector<ConfigId> configs = {ConfigId::kPrSramNt,
                                         ConfigId::kShStt};
  const std::vector<std::string> benches = {"ocean", "lu"};
  exec::set_thread_count(4);
  const auto matrix = run_matrix(configs, benches, options);
  exec::set_thread_count(0);

  ASSERT_EQ(matrix.size(), configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    ASSERT_EQ(matrix[c].size(), benches.size());
    for (std::size_t b = 0; b < benches.size(); ++b) {
      expect_same_result(matrix[c][b],
                         run_experiment(configs[c], benches[b], options));
    }
  }
}

}  // namespace
}  // namespace respin::core
