// Pins the performance engine's determinism contract: serial vs parallel
// execution and cycle-by-cycle vs event-driven clocking must produce
// bit-identical SimResults — same cycle counts, same histograms, same
// energy — for every Table IV configuration.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "core/chip.hpp"
#include "core/experiment.hpp"
#include "exec/thread_pool.hpp"
#include "sim_result_eq.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

namespace respin::core {
namespace {

RunOptions tiny_options() {
  RunOptions options;
  options.workload_scale = 0.05;
  return options;
}

// --- Event-driven clock vs cycle-by-cycle reference, all configs ----------

class SkipEquivalenceTest : public ::testing::TestWithParam<ConfigId> {};

TEST_P(SkipEquivalenceTest, SkipAndNoSkipAreBitIdentical) {
  RunOptions skip = tiny_options();
  skip.cycle_skip = true;
  RunOptions no_skip = tiny_options();
  no_skip.cycle_skip = false;
  const SimResult a = run_experiment(GetParam(), "ocean", skip);
  const SimResult b = run_experiment(GetParam(), "ocean", no_skip);
  expect_same_result(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, SkipEquivalenceTest,
    ::testing::ValuesIn(all_config_ids()),
    [](const ::testing::TestParamInfo<ConfigId>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        // Config names use '-' and, for the hybrid partition, '+'.
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// A second benchmark with different phase structure, on the key shared
// and private configurations.
TEST(SkipEquivalence, RadixOnSharedAndPrivate) {
  for (ConfigId id :
       {ConfigId::kPrSramNt, ConfigId::kShStt, ConfigId::kShSttCcOs}) {
    RunOptions skip = tiny_options();
    RunOptions no_skip = tiny_options();
    no_skip.cycle_skip = false;
    expect_same_result(run_experiment(id, "radix", skip),
                       run_experiment(id, "radix", no_skip));
  }
}

// --- Serial vs parallel fan-out -------------------------------------------

TEST(ParallelDeterminism, RunSuiteMatchesSerial) {
  const RunOptions options = tiny_options();
  exec::set_thread_count(1);
  const std::vector<SimResult> serial =
      run_suite(ConfigId::kShSttCc, options);
  exec::set_thread_count(4);
  const std::vector<SimResult> parallel =
      run_suite(ConfigId::kShSttCc, options);
  exec::set_thread_count(0);

  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), workload::benchmark_names().size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].benchmark, workload::benchmark_names()[i]);
    expect_same_result(serial[i], parallel[i]);
  }
}

TEST(ParallelDeterminism, RunChipMatchesSerial) {
  const RunOptions options = tiny_options();
  exec::set_thread_count(1);
  const ChipResult serial = run_chip(ConfigId::kShStt, "fft", options);
  exec::set_thread_count(4);
  const ChipResult parallel = run_chip(ConfigId::kShStt, "fft", options);
  exec::set_thread_count(0);

  EXPECT_EQ(serial.config_name, parallel.config_name);
  EXPECT_EQ(serial.seconds, parallel.seconds);
  EXPECT_EQ(serial.instructions, parallel.instructions);
  EXPECT_EQ(serial.energy.core_dynamic, parallel.energy.core_dynamic);
  EXPECT_EQ(serial.energy.core_leakage, parallel.energy.core_leakage);
  EXPECT_EQ(serial.energy.cache_dynamic, parallel.energy.cache_dynamic);
  EXPECT_EQ(serial.energy.cache_leakage, parallel.energy.cache_leakage);
  EXPECT_EQ(serial.energy.dram, parallel.energy.dram);
  EXPECT_EQ(serial.energy.network, parallel.energy.network);
  ASSERT_EQ(serial.clusters.size(), parallel.clusters.size());
  for (std::size_t c = 0; c < serial.clusters.size(); ++c) {
    expect_same_result(serial.clusters[c], parallel.clusters[c]);
  }
}

TEST(ParallelDeterminism, RunMatrixMatchesRunExperimentCells) {
  const RunOptions options = tiny_options();
  const std::vector<ConfigId> configs = {ConfigId::kPrSramNt,
                                         ConfigId::kShStt};
  const std::vector<std::string> benches = {"ocean", "lu"};
  exec::set_thread_count(4);
  const auto matrix = run_matrix(configs, benches, options);
  exec::set_thread_count(0);

  ASSERT_EQ(matrix.size(), configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    ASSERT_EQ(matrix[c].size(), benches.size());
    for (std::size_t b = 0; b < benches.size(); ++b) {
      expect_same_result(matrix[c][b],
                         run_experiment(configs[c], benches[b], options));
    }
  }
}

}  // namespace
}  // namespace respin::core
