// Tests for respin::power — energy conversion arithmetic, leakage
// integrals, power gating, and EPI edge cases.
#include <gtest/gtest.h>

#include <cmath>

#include "power/energy.hpp"

namespace respin::power {
namespace {

PowerModel simple_model() {
  PowerModel m;
  m.core_instruction_pj = 10.0;
  m.core_leakage_w = 2.0;
  m.gated_leakage_fraction = 0.0;
  m.core_count = 4;
  m.core_idle_fraction = 0.5;
  m.l1_read_pj = 1.0;
  m.l1_write_pj = 3.0;
  m.l1_leakage_w = 0.5;
  m.l2_read_pj = 10.0;
  m.l2_write_pj = 12.0;
  m.l2_leakage_w = 1.5;
  m.l3_read_pj = 20.0;
  m.l3_write_pj = 25.0;
  m.l3_leakage_w = 4.0;
  m.dram_access_pj = 100.0;
  m.coherence_message_pj = 2.0;
  m.level_shifter_pj = 0.1;
  m.uncore_w = 1.0;
  return m;
}

TEST(Energy, CoreDynamicFromInstructions) {
  ActivityCounts counts;
  counts.instructions = 1000;
  counts.core_busy_cycles = 1000;
  const auto e = compute_energy(simple_model(), counts, 0);
  EXPECT_DOUBLE_EQ(e.core_dynamic, 10'000.0);
}

TEST(Energy, IdleCyclesChargeTheConfiguredFloor) {
  ActivityCounts counts;
  counts.instructions = 1000;
  counts.core_busy_cycles = 500;   // 2 instr per busy cycle.
  counts.core_idle_cycles = 100;
  const auto e = compute_energy(simple_model(), counts, 0);
  // busy: 10000 pJ; per-busy-cycle: 20 pJ; idle: 100 * 20 * 0.5 = 1000.
  EXPECT_DOUBLE_EQ(e.core_dynamic, 11'000.0);
}

TEST(Energy, CoreLeakageFollowsOnIntegral) {
  ActivityCounts counts;
  counts.core_on_ps = 4.0 * 1000.0;  // 4 cores on for 1000 ps.
  const auto e = compute_energy(simple_model(), counts, 1000);
  EXPECT_DOUBLE_EQ(e.core_leakage, 2.0 * 4000.0);
}

TEST(Energy, GatedCoresLeakResidualFraction) {
  PowerModel m = simple_model();
  m.gated_leakage_fraction = 0.25;
  ActivityCounts counts;
  counts.core_on_ps = 2.0 * 1000.0;  // 2 of 4 cores on for 1000 ps.
  const auto e = compute_energy(m, counts, 1000);
  // On: 2*2W*1000ps = 4000; gated: 2 cores * 0.25 * 2W * 1000 = 1000.
  EXPECT_DOUBLE_EQ(e.core_leakage, 5000.0);
}

TEST(Energy, CacheDynamicPerAccess) {
  ActivityCounts counts;
  counts.l1_reads = 10;
  counts.l1_writes = 5;
  counts.l2_reads = 2;
  counts.l2_writes = 1;
  counts.l3_reads = 1;
  counts.l3_writes = 2;
  const auto e = compute_energy(simple_model(), counts, 0);
  EXPECT_DOUBLE_EQ(e.cache_dynamic,
                   10 * 1.0 + 5 * 3.0 + 2 * 10.0 + 12.0 + 20.0 + 2 * 25.0);
}

TEST(Energy, CacheLeakageRunsForFullInterval) {
  ActivityCounts counts;
  const auto e = compute_energy(simple_model(), counts, 2000);
  EXPECT_DOUBLE_EQ(e.cache_leakage, (0.5 + 1.5 + 4.0) * 2000.0);
}

TEST(Energy, NetworkAndDram) {
  ActivityCounts counts;
  counts.dram_accesses = 3;
  counts.coherence_messages = 10;
  counts.level_shifter_crossings = 100;
  const auto e = compute_energy(simple_model(), counts, 500);
  EXPECT_DOUBLE_EQ(e.dram, 300.0);
  EXPECT_DOUBLE_EQ(e.network, 10 * 2.0 + 100 * 0.1 + 1.0 * 500.0);
}

TEST(Energy, TotalsAndSplits) {
  ActivityCounts counts;
  counts.instructions = 100;
  counts.core_busy_cycles = 100;
  counts.core_on_ps = 4.0 * 100.0;
  counts.l1_reads = 10;
  const auto e = compute_energy(simple_model(), counts, 100);
  EXPECT_DOUBLE_EQ(e.total(), e.core_dynamic + e.core_leakage +
                                  e.cache_dynamic + e.cache_leakage + e.dram +
                                  e.network);
  EXPECT_DOUBLE_EQ(e.leakage(), e.core_leakage + e.cache_leakage);
  EXPECT_DOUBLE_EQ(e.dynamic(), e.total() - e.leakage());
}

TEST(Energy, CountsSubtractionGivesEpochDeltas) {
  ActivityCounts a;
  a.instructions = 100;
  a.l1_reads = 50;
  a.core_on_ps = 1000.0;
  ActivityCounts b;
  b.instructions = 350;
  b.l1_reads = 80;
  b.core_on_ps = 2500.0;
  const ActivityCounts d = b - a;
  EXPECT_EQ(d.instructions, 250u);
  EXPECT_EQ(d.l1_reads, 30u);
  EXPECT_DOUBLE_EQ(d.core_on_ps, 1500.0);
}

TEST(Epi, NormalAndDegenerate) {
  EnergyBreakdown e;
  e.core_dynamic = 500.0;
  e.dram = 500.0;
  EXPECT_DOUBLE_EQ(energy_per_instruction(e, 100), 10.0);
  EXPECT_TRUE(std::isinf(energy_per_instruction(e, 0)));
}

TEST(Energy, ZeroActivityZeroDynamic) {
  ActivityCounts counts;
  const auto e = compute_energy(simple_model(), counts, 0);
  EXPECT_DOUBLE_EQ(e.core_dynamic, 0.0);
  EXPECT_DOUBLE_EQ(e.cache_dynamic, 0.0);
  EXPECT_DOUBLE_EQ(e.total(), 0.0);
}

}  // namespace
}  // namespace respin::power
