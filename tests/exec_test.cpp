// Tests for the respin::exec engine: order preservation, determinism,
// exception propagation, nested use, and concurrent top-level callers.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"

namespace respin::exec {
namespace {

TEST(ThreadPool, SizeCountsTheCallingThread) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  ThreadPool solo(1);
  EXPECT_EQ(solo.size(), 1u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroAndSingleTaskBatches) {
  ThreadPool pool(3);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
  int calls = 0;
  pool.run(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelMap, PreservesInputOrder) {
  ThreadPool pool(4);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<int> out =
      parallel_map(pool, items, [](const int& x) { return 3 * x + 1; });
  ASSERT_EQ(out.size(), items.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], 3 * static_cast<int>(i) + 1);
  }
}

TEST(ParallelMap, DeterministicAcrossRepeatsAndWidths) {
  auto compute = [](std::size_t i) {
    // Some mildly chaotic arithmetic so ordering bugs would show.
    std::uint64_t v = i * 2654435761u + 1;
    for (int k = 0; k < 50; ++k) v = v * 6364136223846793005ull + 11;
    return v;
  };
  ThreadPool serial(1);
  ThreadPool wide(8);
  const auto a = parallel_map_n(serial, 64, compute);
  const auto b = parallel_map_n(wide, 64, compute);
  const auto c = parallel_map_n(wide, 64, compute);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(ThreadPool, PropagatesTheLowestFailingIndex) {
  ThreadPool pool(4);
  // Indices 7 and upward all throw; whatever interleaving happens, index
  // 7's exception must be the one that surfaces.
  try {
    pool.run(64, [](std::size_t i) {
      if (i >= 7) throw std::runtime_error("boom@" + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom@7");
  }
}

TEST(ThreadPool, ExceptionLeavesThePoolReusable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run(8, [](std::size_t) { throw std::logic_error("once"); }),
      std::logic_error);
  std::atomic<int> ran{0};
  pool.run(8, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, NestedRunExecutesInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> inner_hits(64);
  std::atomic<int> outer_hits{0};
  pool.run(8, [&](std::size_t outer) {
    EXPECT_TRUE(ThreadPool::in_task());
    ++outer_hits;
    // Nested batches (and nested parallel_map) must not deadlock and must
    // still run every index.
    const auto values =
        parallel_map_n(pool, 8, [&](std::size_t inner) {
          ++inner_hits[outer * 8 + inner];
          return outer * 8 + inner;
        });
    for (std::size_t inner = 0; inner < 8; ++inner) {
      EXPECT_EQ(values[inner], outer * 8 + inner);
    }
  });
  EXPECT_EQ(outer_hits.load(), 8);
  for (const auto& h : inner_hits) EXPECT_EQ(h.load(), 1);
  EXPECT_FALSE(ThreadPool::in_task());
}

TEST(ThreadPool, ConcurrentTopLevelCallersAreSerializedSafely) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(2 * 128);
  std::thread other([&] {
    pool.run(128, [&](std::size_t i) { ++hits[i]; });
  });
  pool.run(128, [&](std::size_t i) { ++hits[128 + i]; });
  other.join();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(GlobalPool, SetThreadCountReconfigures) {
  set_thread_count(2);
  EXPECT_EQ(thread_count(), 2u);
  set_thread_count(3);
  EXPECT_EQ(thread_count(), 3u);
  set_thread_count(0);  // Back to auto for the rest of the test binary.
  EXPECT_GE(thread_count(), 1u);
}

}  // namespace
}  // namespace respin::exec
