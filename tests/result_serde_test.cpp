// Property test for result/request serialization: serialize -> parse is
// exact — every double bit-identical (to_chars/from_chars shortest form),
// every counter and histogram bucket equal — across the golden grid,
// fault-injection runs, and hybrid-technology runs. Also pins the
// canonical-key semantics the serving cache depends on: result-irrelevant
// knobs do not split keys, result-relevant ones do.
#include "core/serde.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "obs/json.hpp"
#include "sim_result_eq.hpp"

namespace respin::core {
namespace {

namespace obsj = obs::json;

RunOptions fast_options() {
  RunOptions options;
  options.workload_scale = 0.05;  // The golden grid's scale.
  return options;
}

/// Round-trips through text twice: result -> JSON text -> result must be
/// bit-identical, and the re-serialized text must be byte-identical (no
/// drift on repeated store rewrites).
void expect_exact_round_trip(const SimResult& result) {
  const std::string text = result_to_json(result).dump();
  const SimResult parsed = result_from_json(obsj::parse(text));
  expect_same_result(result, parsed);
  EXPECT_EQ(result_to_json(parsed).dump(), text);
}

TEST(ResultSerde, GoldenGridRoundTripsExactly) {
  const RunOptions options = fast_options();
  for (const ConfigId config : all_config_ids()) {
    for (const char* benchmark : {"ocean", "radix"}) {
      expect_exact_round_trip(run_experiment(config, benchmark, options));
    }
  }
}

TEST(ResultSerde, FaultRunRoundTripsExactly) {
  RunOptions options = fast_options();
  options.faults.enabled = true;
  options.faults.seed = 7;
  options.faults.stt.write_fail_prob = 0.01;
  options.faults.sram.vdd_override = 0.42;
  const SimResult stt = run_experiment(ConfigId::kShStt, "lu", options);
  EXPECT_TRUE(stt.faults_enabled);
  expect_exact_round_trip(stt);
  const SimResult sram =
      run_experiment(ConfigId::kPrSramNt, "ocean", options);
  expect_exact_round_trip(sram);
}

TEST(ResultSerde, HybridTechRunRoundTripsExactly) {
  const SimResult hybrid =
      run_experiment(ConfigId::kShHybrid, "ocean", fast_options());
  EXPECT_GT(hybrid.hybrid_sram_ways, 0u);
  expect_exact_round_trip(hybrid);

  RunOptions override_options = fast_options();
  override_options.tech.hybrid_sram_ways = 4;
  override_options.tech.hybrid_nvm_ways = 12;
  expect_exact_round_trip(
      run_experiment(ConfigId::kShStt, "radix", override_options));
}

TEST(ResultSerde, RequestSpecRoundTripsThroughJson) {
  RequestSpec spec;
  spec.config = ConfigId::kShSttCc;
  spec.benchmark = "fft";
  spec.options.workload_scale = 0.25;
  spec.options.seed = 18446744073709551615ull;  // Needs exact u64 text.
  spec.options.faults.enabled = true;
  spec.options.faults.stt.write_fail_prob = 0.001;
  const RequestSpec parsed =
      request_spec_from_json(request_spec_to_json(spec));
  EXPECT_EQ(canonical_key(parsed), canonical_key(spec));
  EXPECT_EQ(parsed.options.seed, spec.options.seed);
}

TEST(CanonicalKey, ExcludesResultIrrelevantKnobs) {
  RequestSpec a;
  RequestSpec b = a;
  b.options.cycle_skip = false;  // Bit-identical by the skip contract.
  EXPECT_EQ(canonical_key(a), canonical_key(b));

  // A disabled fault plan keys identically however its dormant model
  // parameters are tuned.
  RequestSpec c = a;
  c.options.faults.stt.write_fail_prob = 0.5;
  ASSERT_FALSE(c.options.faults.enabled);
  EXPECT_EQ(canonical_key(a), canonical_key(c));
}

TEST(CanonicalKey, SplitsOnResultRelevantFields) {
  const RequestSpec base;
  const std::string base_key = canonical_key(base);

  RequestSpec seed = base;
  seed.options.seed = 2;
  EXPECT_NE(canonical_key(seed), base_key);

  RequestSpec config = base;
  config.config = ConfigId::kShSramNom;
  EXPECT_NE(canonical_key(config), base_key);

  RequestSpec faults = base;
  faults.options.faults.enabled = true;
  EXPECT_NE(canonical_key(faults), base_key);

  RequestSpec tech = base;
  tech.options.tech.hybrid_sram_ways = 4;
  tech.options.tech.hybrid_nvm_ways = 12;
  EXPECT_NE(canonical_key(tech), base_key);
}

TEST(CanonicalKey, StableHash) {
  // FNV-1a 64 of a fixed string is a platform-independent constant; a
  // silent hash change would orphan every persisted store record's hash.
  EXPECT_EQ(key_hash("respin"), 0x82033c7cc943af38ull);
  EXPECT_EQ(key_hash_hex("respin"), "82033c7cc943af38");
}

TEST(ResultMetric, NamedMetricsAndErrors) {
  const SimResult result =
      run_experiment(ConfigId::kShStt, "ocean", fast_options());
  EXPECT_EQ(result_metric(result, "cycles"),
            static_cast<double>(result.cycles));
  EXPECT_EQ(result_metric(result, "energy_pj"), result.energy.total());
  EXPECT_GT(result_metric(result, "epi_pj"), 0.0);
  EXPECT_THROW(result_metric(result, "nope"), std::logic_error);
}

}  // namespace
}  // namespace respin::core
