// Randomized differential test for the event-driven clock: fuzzes
// (configuration, cluster shape, workload shape, seed) with the
// deterministic RNG and asserts that the event-skip ClusterSim and the
// cycle-by-cycle reference produce bit-identical SimResults AND identical
// full counter registries. The fixed-grid determinism tests pin the paper
// configurations; this one walks the parameter space around them.
//
// Streams are seeded by ("fuzz.differential", iteration), so a failure
// reproduces exactly from its iteration number.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster_sim.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "obs/golden.hpp"
#include "sim_result_eq.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace respin::core {
namespace {

template <typename T>
T pick(util::Rng& rng, const std::vector<T>& options) {
  return options[rng.uniform_u64(options.size())];
}

void expect_skip_equivalent(const SimResult& skip, const SimResult& no_skip,
                            const std::string& what) {
  SCOPED_TRACE(what);
  expect_same_result(skip, no_skip);
  const obs::GoldenDiff diff =
      obs::diff_metrics({metrics_row(no_skip)}, {metrics_row(skip)});
  EXPECT_TRUE(diff.ok()) << diff.report();
}

// --- Random draws over the real experiment surface ------------------------

TEST(DifferentialFuzz, RandomConfigurationsSkipEqualsNoSkip) {
  const std::vector<ConfigId> configs = all_config_ids();
  const std::vector<std::uint32_t> cluster_sizes = {4, 8, 16, 32};
  const std::vector<CacheSize> sizes = {CacheSize::kSmall, CacheSize::kMedium,
                                        CacheSize::kLarge};
  const std::vector<std::string> benches = workload::benchmark_names();

  for (std::uint64_t iteration = 0; iteration < 8; ++iteration) {
    util::Rng rng("fuzz.differential", iteration);
    RunOptions options;
    options.cluster_cores = pick(rng, cluster_sizes);
    options.size = pick(rng, sizes);
    options.workload_scale = rng.uniform(0.01, 0.06);
    options.seed = 1 + rng.uniform_u64(1000);
    const ConfigId config = pick(rng, configs);
    const std::string bench = pick(rng, benches);

    RunOptions no_skip = options;
    no_skip.cycle_skip = false;
    const SimResult a = run_experiment(config, bench, options);
    const SimResult b = run_experiment(config, bench, no_skip);
    expect_skip_equivalent(
        a, b,
        "iteration " + std::to_string(iteration) + ": " + to_string(config) +
            "/" + bench + " cores=" + std::to_string(options.cluster_cores) +
            " seed=" + std::to_string(options.seed));
    if (::testing::Test::HasFailure()) break;
  }
}

// --- Random synthetic workload shapes through ClusterSim directly ---------

workload::WorkloadSpec random_spec(util::Rng& rng) {
  workload::WorkloadSpec spec;
  spec.name = "fuzz";
  spec.code_kb = 8 + static_cast<std::uint32_t>(rng.uniform_u64(64));
  spec.repeat = 1 + static_cast<std::uint32_t>(rng.uniform_u64(2));
  const std::size_t phase_count = 1 + rng.uniform_u64(3);
  for (std::size_t i = 0; i < phase_count; ++i) {
    workload::Phase phase;
    phase.instructions = 2'000 + rng.uniform_u64(20'000);
    phase.ipc = rng.uniform(0.4, 2.0);
    phase.mem_fraction = rng.uniform(0.05, 0.6);
    phase.store_fraction = rng.uniform(0.05, 0.6);
    phase.shared_fraction = rng.uniform(0.0, 0.6);
    phase.hot_kb = 4 + static_cast<std::uint32_t>(rng.uniform_u64(24));
    phase.cold_kb = 64 + static_cast<std::uint32_t>(rng.uniform_u64(512));
    phase.hot_fraction = rng.uniform(0.5, 1.0);
    phase.shared_kb = 64 + static_cast<std::uint32_t>(rng.uniform_u64(512));
    phase.shared_hot_fraction = rng.uniform(0.5, 1.0);
    phase.shared_hot_kb = 8 + static_cast<std::uint32_t>(rng.uniform_u64(48));
    phase.parallel_fraction = rng.uniform(0.3, 1.0);
    phase.barriers = static_cast<std::uint32_t>(rng.uniform_u64(4));
    spec.phases.push_back(phase);
  }
  return spec;
}

TEST(DifferentialFuzz, RandomWorkloadShapesSkipEqualsNoSkip) {
  // Oracle configurations are excluded: bare ClusterSim::run does not
  // drive the oracle's external epoch loop.
  const std::vector<ConfigId> configs = {
      ConfigId::kPrSramNt, ConfigId::kHpSramCmp, ConfigId::kShSramNom,
      ConfigId::kShStt,    ConfigId::kShSttCc,   ConfigId::kPrSttCc,
      ConfigId::kShSttCcOs};
  const std::vector<std::uint32_t> cluster_sizes = {4, 8, 16, 32};

  for (std::uint64_t iteration = 0; iteration < 6; ++iteration) {
    util::Rng rng("fuzz.workload", iteration);
    const workload::WorkloadSpec spec = random_spec(rng);
    const ClusterConfig config = make_cluster_config(
        pick(rng, configs), CacheSize::kMedium, pick(rng, cluster_sizes),
        1 + rng.uniform_u64(1000));
    SimParams params;
    params.workload_scale = 1.0;
    params.seed = 1 + rng.uniform_u64(1000);

    SimParams no_skip = params;
    params.cycle_skip = true;
    no_skip.cycle_skip = false;

    ClusterSim skip_sim(config, spec, params);
    ClusterSim ref_sim(config, spec, no_skip);
    skip_sim.run();
    ref_sim.run();

    const std::string what =
        "iteration " + std::to_string(iteration) + ": " + config.name +
        " cores=" + std::to_string(config.cluster_cores) +
        " phases=" + std::to_string(spec.phases.size());
    expect_skip_equivalent(skip_sim.result(), ref_sim.result(), what);

    // The fine-grained registries (per-core, controller, backside) must
    // agree too, not just the SimResult summary.
    obs::MetricsRow skip_row{"sim", {}};
    obs::MetricsRow ref_row{"sim", {}};
    skip_sim.collect_counters(skip_row.counters);
    ref_sim.collect_counters(ref_row.counters);
    const obs::GoldenDiff diff = obs::diff_metrics({ref_row}, {skip_row});
    EXPECT_TRUE(diff.ok()) << what << "\n" << diff.report();
    if (::testing::Test::HasFailure()) break;
  }
}

}  // namespace
}  // namespace respin::core
