// Integration tests for the cluster simulator: completion, determinism,
// conservation invariants, consolidation mechanics, and parameterized
// sweeps across all eight Table IV configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cmath>

#include "core/cluster_sim.hpp"
#include "core/experiment.hpp"
#include "core/oracle.hpp"
#include "workload/workload.hpp"

namespace respin::core {
namespace {

SimParams tiny_params() {
  SimParams p;
  p.workload_scale = 0.05;
  p.seed = 1;
  return p;
}

SimResult run_tiny(ConfigId id, const std::string& bench = "ocean") {
  ClusterConfig config = make_cluster_config(id, CacheSize::kMedium);
  ClusterSim sim(config, workload::benchmark(bench), tiny_params());
  if (config.governor == GovernorKind::kOracle) {
    return run_with_oracle(sim);
  }
  sim.run();
  return sim.result();
}

// --- Parameterized sweep over all configurations ---------------------------

class AllConfigsTest : public ::testing::TestWithParam<ConfigId> {};

TEST_P(AllConfigsTest, RunsToCompletion) {
  const SimResult r = run_tiny(GetParam());
  EXPECT_FALSE(r.hit_cycle_limit);
  EXPECT_GT(r.cycles, 0);
  EXPECT_GT(r.instructions, 0u);
}

TEST_P(AllConfigsTest, EnergyComponentsArePositiveAndConsistent) {
  const SimResult r = run_tiny(GetParam());
  EXPECT_GT(r.energy.core_dynamic, 0.0);
  EXPECT_GT(r.energy.core_leakage, 0.0);
  EXPECT_GT(r.energy.cache_dynamic, 0.0);
  EXPECT_GT(r.energy.cache_leakage, 0.0);
  EXPECT_NEAR(r.energy.total(),
              r.energy.leakage() + r.energy.dynamic(), 1e-6);
  EXPECT_GT(r.watts(), 0.0);
  EXPECT_TRUE(std::isfinite(r.epi_pj()));
}

TEST_P(AllConfigsTest, DeterministicAcrossRuns) {
  const SimResult a = run_tiny(GetParam());
  const SimResult b = run_tiny(GetParam());
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

TEST_P(AllConfigsTest, BusyPlusIdleCoversPoweredTime) {
  const SimResult r = run_tiny(GetParam());
  EXPECT_GT(r.counts.core_busy_cycles, 0u);
  // Busy+idle core cycles (heterogeneous periods) cannot exceed the
  // all-cores-on upper bound of elapsed_time/shortest_period per core.
  const auto config = make_cluster_config(GetParam(), CacheSize::kMedium);
  const int min_mult = *std::min_element(config.multipliers.begin(),
                                         config.multipliers.end());
  const double upper =
      static_cast<double>(r.cycles) / min_mult * config.cluster_cores;
  EXPECT_LE(static_cast<double>(r.counts.core_busy_cycles +
                                r.counts.core_idle_cycles),
            upper * 1.01);
}

INSTANTIATE_TEST_SUITE_P(TableIV, AllConfigsTest,
                         ::testing::ValuesIn(all_config_ids()),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return name;
                         });

// --- Cross-configuration invariants ----------------------------------------

TEST(ClusterSim, InstructionCountIndependentOfArchitecture) {
  const std::uint64_t base = run_tiny(ConfigId::kPrSramNt).instructions;
  for (ConfigId id :
       {ConfigId::kHpSramCmp, ConfigId::kShSramNom, ConfigId::kShStt}) {
    EXPECT_EQ(run_tiny(id).instructions, base) << to_string(id);
  }
}

TEST(ClusterSim, SharedDesignOutperformsBaseline) {
  // Paper Fig. 7: coherence-free shared caches beat the private baseline.
  const SimResult baseline = run_tiny(ConfigId::kPrSramNt);
  const SimResult shared = run_tiny(ConfigId::kShStt);
  EXPECT_LT(shared.seconds, baseline.seconds);
  EXPECT_LT(shared.energy.total(), baseline.energy.total());
}

TEST(ClusterSim, HighPerformanceBaselineIsFastButHungry) {
  // Tiny ocean runs are barrier-dominated where HP's clock advantage
  // shrinks; a compute-bound benchmark shows the true clock-rate gap.
  const SimResult baseline = run_tiny(ConfigId::kPrSramNt, "swaptions");
  const SimResult hp = run_tiny(ConfigId::kHpSramCmp, "swaptions");
  // Tiny runs are warm-up dominated (absolute-latency misses hurt the
  // 2.5 GHz cores most); full-length runs land near 0.45x (Fig. 7 bench).
  EXPECT_LT(hp.seconds, 0.8 * baseline.seconds);
  EXPECT_GT(hp.energy.total(), baseline.energy.total());
}

TEST(ClusterSim, SttCutsCacheLeakageVersusNominalSram) {
  const SimResult nom = run_tiny(ConfigId::kShSramNom);
  const SimResult stt = run_tiny(ConfigId::kShStt);
  EXPECT_LT(stt.energy.cache_leakage, 0.3 * nom.energy.cache_leakage);
}

TEST(ClusterSim, SharedConfigReportsControllerBehaviour) {
  const SimResult r = run_tiny(ConfigId::kShStt);
  EXPECT_GT(r.dl1_read_hits, 0u);
  EXPECT_GT(r.dl1_cycles, 0u);
  EXPECT_GT(r.read_hit_latency.total(), 0u);
  // The vast majority of read hits complete in one core cycle (Fig. 11).
  EXPECT_GT(r.read_hit_latency.fraction(1), 0.85);
}

TEST(ClusterSim, PrivateConfigHasNoControllerStats) {
  const SimResult r = run_tiny(ConfigId::kPrSramNt);
  EXPECT_EQ(r.dl1_read_hits, 0u);
  EXPECT_EQ(r.dl1_cycles, 0u);
  EXPECT_EQ(r.read_hit_latency.total(), 0u);
}

TEST(ClusterSim, CoherenceTrafficOnlyInPrivateConfigs) {
  const SimResult priv = run_tiny(ConfigId::kPrSramNt, "raytrace");
  const SimResult shared = run_tiny(ConfigId::kShStt, "raytrace");
  EXPECT_GT(priv.counts.coherence_messages, 0u);
  EXPECT_EQ(shared.counts.coherence_messages, 0u);
}

TEST(ClusterSim, LevelShifterCrossingsOnlyAcrossDomains) {
  EXPECT_GT(run_tiny(ConfigId::kPrSramNt).counts.level_shifter_crossings, 0u);
  EXPECT_EQ(run_tiny(ConfigId::kHpSramCmp).counts.level_shifter_crossings,
            0u);
}

// --- Consolidation mechanics -----------------------------------------------

TEST(Consolidation, SetActiveCoresGatesAndRestores) {
  ClusterConfig config =
      make_cluster_config(ConfigId::kShSttCcOracle, CacheSize::kMedium);
  ClusterSim sim(config, workload::benchmark("ocean"), tiny_params());
  EXPECT_EQ(sim.active_cores(), 16u);
  sim.set_active_cores(10);
  EXPECT_EQ(sim.active_cores(), 10u);
  sim.set_active_cores(16);
  EXPECT_EQ(sim.active_cores(), 16u);
  sim.run();
  EXPECT_TRUE(sim.done());
}

TEST(Consolidation, RunCompletesAtMinimumCores) {
  ClusterConfig config =
      make_cluster_config(ConfigId::kShSttCcOracle, CacheSize::kMedium);
  ClusterSim sim(config, workload::benchmark("fft"), tiny_params());
  sim.set_active_cores(config.governor_params.min_active_cores);
  sim.run();
  EXPECT_TRUE(sim.done());
  const SimResult r = sim.result();
  EXPECT_EQ(r.instructions, run_tiny(ConfigId::kShStt, "fft").instructions);
}

TEST(Consolidation, GatedCoresSaveLeakageIntegral) {
  ClusterConfig config =
      make_cluster_config(ConfigId::kShSttCcOracle, CacheSize::kMedium);
  ClusterSim wide(config, workload::benchmark("swaptions"), tiny_params());
  ClusterSim narrow(config, workload::benchmark("swaptions"), tiny_params());
  narrow.set_active_cores(8);
  wide.run();
  narrow.run();
  const auto rw = wide.result();
  const auto rn = narrow.result();
  // Narrow runs longer but its per-time on-core integral is about half.
  EXPECT_GT(rn.seconds, rw.seconds);
  EXPECT_LT(rn.counts.core_on_ps / (rn.seconds * 1e12),
            0.6 * rw.counts.core_on_ps / (rw.seconds * 1e12));
}

TEST(Consolidation, GreedyTraceStaysWithinBounds) {
  const SimResult r = run_tiny(ConfigId::kShSttCc, "bodytrack");
  EXPECT_FALSE(r.trace.empty());
  for (const auto& sample : r.trace) {
    EXPECT_GE(sample.active_cores, 4u);
    EXPECT_LE(sample.active_cores, 16u);
  }
  EXPECT_GE(r.min_active_cores, 4u);
  EXPECT_LE(r.max_active_cores, 16u);
  EXPECT_GE(r.avg_active_cores, 4.0);
  EXPECT_LE(r.avg_active_cores, 16.0);
}

TEST(Consolidation, OracleNeverWorseThanFixedWide) {
  // The oracle can always choose 16 cores every epoch, so it should not
  // lose more than epoch-granularity slack to SH-STT.
  ClusterConfig oracle_cfg =
      make_cluster_config(ConfigId::kShSttCcOracle, CacheSize::kMedium);
  SimParams p;
  p.workload_scale = 0.2;
  p.seed = 1;
  ClusterSim sim(oracle_cfg, workload::benchmark("radix"), p);
  const SimResult oracle = run_with_oracle(sim);

  ClusterConfig stt_cfg = make_cluster_config(ConfigId::kShStt,
                                              CacheSize::kMedium);
  ClusterSim plain(stt_cfg, workload::benchmark("radix"), p);
  plain.run();
  const SimResult fixed = plain.result();
  EXPECT_LT(oracle.energy.total(), 1.10 * fixed.energy.total());
}

TEST(Consolidation, PrivateConsolidationFlushesCaches) {
  ClusterConfig config =
      make_cluster_config(ConfigId::kPrSttCc, CacheSize::kMedium);
  config.governor = GovernorKind::kOracle;  // Drive manually.
  ClusterSim sim(config, workload::benchmark("ocean"), tiny_params());
  // Let it warm up, then gate: dirty lines must be written back.
  sim.run_one_epoch();
  const auto l2_writes_before = sim.result().counts.l2_writes;
  sim.set_active_cores(8);
  EXPECT_GE(sim.result().counts.l2_writes, l2_writes_before);
  sim.run();
  EXPECT_TRUE(sim.done());
}

TEST(Consolidation, OsModeUsesTimeEpochs) {
  const SimResult r = run_tiny(ConfigId::kShSttCcOs, "ocean");
  // OS epochs are time-based; the trace samples (if any) must be spaced by
  // at least the OS epoch length.
  const auto config = make_cluster_config(ConfigId::kShSttCcOs,
                                          CacheSize::kMedium);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_GE(r.trace[i].cycle - r.trace[i - 1].cycle,
              config.os_epoch_cycles);
  }
}

TEST(ClusterSim, DescribeStateListsEveryCoreAndThread) {
  ClusterConfig config = make_cluster_config(ConfigId::kShStt,
                                             CacheSize::kMedium);
  ClusterSim sim(config, workload::benchmark("fft"), tiny_params());
  sim.run();
  const std::string state = sim.describe_state();
  for (int i = 0; i < 16; ++i) {
    const std::string id = std::to_string(i) + " ";
    EXPECT_NE(state.find("v" + id), std::string::npos);
    EXPECT_NE(state.find("p" + id), std::string::npos);
  }
  EXPECT_NE(state.find("finished=16/16"), std::string::npos);
}

// --- Oracle snapshot semantics ----------------------------------------------

TEST(Oracle, CopyIsAnIndependentSnapshot) {
  ClusterConfig config =
      make_cluster_config(ConfigId::kShSttCcOracle, CacheSize::kMedium);
  ClusterSim sim(config, workload::benchmark("fft"), tiny_params());
  sim.run_one_epoch();
  ClusterSim snapshot = sim;
  const auto mark = sim.now();
  snapshot.set_active_cores(6);
  snapshot.run_one_epoch();
  EXPECT_EQ(sim.now(), mark);           // Original untouched.
  EXPECT_EQ(sim.active_cores(), 16u);
  EXPECT_GT(snapshot.now(), mark);
}

TEST(Oracle, ReplayedEpochIsDeterministic) {
  ClusterConfig config =
      make_cluster_config(ConfigId::kShSttCcOracle, CacheSize::kMedium);
  ClusterSim sim(config, workload::benchmark("lu"), tiny_params());
  sim.run_one_epoch();
  ClusterSim a = sim;
  ClusterSim b = sim;
  a.set_active_cores(8);
  b.set_active_cores(8);
  a.run_one_epoch();
  b.run_one_epoch();
  EXPECT_EQ(a.now(), b.now());
  EXPECT_DOUBLE_EQ(a.last_epoch_epi(), b.last_epoch_epi());
}

// --- Experiment runner -------------------------------------------------------

TEST(Experiment, RunExperimentDispatchesOracle) {
  RunOptions opt;
  opt.workload_scale = 0.05;
  const SimResult r =
      run_experiment(ConfigId::kShSttCcOracle, "fft", opt);
  EXPECT_GT(r.instructions, 0u);
  EXPECT_EQ(r.benchmark, "fft");
  EXPECT_EQ(r.config_name, "SH-STT-CC-Oracle");
}

TEST(Experiment, MeanRatioMatchesByName) {
  RunOptions opt;
  opt.workload_scale = 0.05;
  std::vector<SimResult> base;
  std::vector<SimResult> other;
  for (const char* bench : {"fft", "swaptions"}) {
    base.push_back(run_experiment(ConfigId::kPrSramNt, bench, opt));
    other.push_back(run_experiment(ConfigId::kShStt, bench, opt));
  }
  const double ratio = mean_ratio(other, base, Metric::kSeconds);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 1.0);
  // Mismatched baselines are rejected.
  std::vector<SimResult> wrong = {base[0]};
  EXPECT_THROW(mean_ratio(other, wrong, Metric::kSeconds), std::logic_error);
}

// --- Parameterized benchmark sweep -----------------------------------------

class AllBenchmarksTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllBenchmarksTest, SharedSttCompletesAndSavesEnergy) {
  const SimResult baseline = run_tiny(ConfigId::kPrSramNt, GetParam());
  const SimResult stt = run_tiny(ConfigId::kShStt, GetParam());
  EXPECT_FALSE(stt.hit_cycle_limit);
  EXPECT_EQ(stt.instructions, baseline.instructions);
  EXPECT_LT(stt.energy.total(), baseline.energy.total()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AllBenchmarksTest,
    ::testing::ValuesIn(workload::benchmark_names()),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace respin::core
