// Tests for respin::fault: model math, plan validation, injection
// mechanics in CacheArray/ClusterSim, and the determinism contract
// (same (seed, plan, config) => same result, independent of host threads
// and of the event-driven clock; fault-free stays bit-identical).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "exec/parallel.hpp"
#include "fault/fault.hpp"
#include "mem/cache_array.hpp"
#include "nvsim/array_model.hpp"
#include "sim_result_eq.hpp"

namespace respin {
namespace {

using core::ConfigId;
using core::RunOptions;
using core::SimResult;

fault::FaultPlan enabled_plan() {
  fault::FaultPlan plan;
  plan.enabled = true;
  return plan;
}

RunOptions short_options() {
  RunOptions options;
  options.workload_scale = 0.05;
  options.seed = 1;
  return options;
}

// ---- FaultModel --------------------------------------------------------

TEST(FaultModel, BitFailureRisesAsRailDrops) {
  const fault::SramFaultParams params;  // Defaults: 0.35 V mean, 50 mV sigma.
  const double safe = fault::sram_bit_fail_probability(params, 0.65, 0.3, 0.3);
  const double low = fault::sram_bit_fail_probability(params, 0.40, 0.3, 0.3);
  EXPECT_LT(safe, 1e-6);  // 6-sigma margin at the paper's safe SRAM rail.
  EXPECT_GT(low, 0.1);    // Catastrophic at the 0.4 V core rail.
  double previous = 1.0;
  for (double vdd = 0.30; vdd <= 0.71; vdd += 0.05) {
    const double p = fault::sram_bit_fail_probability(params, vdd, 0.3, 0.3);
    EXPECT_LE(p, previous) << "not monotone at " << vdd;
    previous = p;
  }
}

TEST(FaultModel, HighVthCellsLoseMarginFirst) {
  const fault::SramFaultParams params;
  const double nominal =
      fault::sram_bit_fail_probability(params, 0.5, 0.30, 0.30);
  const double slow = fault::sram_bit_fail_probability(params, 0.5, 0.35, 0.30);
  const double fast = fault::sram_bit_fail_probability(params, 0.5, 0.25, 0.30);
  EXPECT_GT(slow, nominal);
  EXPECT_LT(fast, nominal);
}

TEST(FaultModel, VddOverrideReplacesTheRail) {
  fault::SramFaultParams params;
  const double at_low =
      fault::sram_bit_fail_probability(params, 0.42, 0.3, 0.3);
  params.vdd_override = 0.42;
  const double overridden =
      fault::sram_bit_fail_probability(params, 1.0, 0.3, 0.3);
  EXPECT_EQ(overridden, at_low);
}

TEST(FaultModel, LineOutcomeProbsFormADistribution) {
  const fault::SramFaultParams params;
  const fault::EccParams ecc;
  double previous_clean = 0.0;
  for (double vdd = 0.30; vdd <= 0.71; vdd += 0.01) {
    const fault::LineOutcomeProbs probs =
        fault::sram_line_outcome_probs(params, ecc, vdd, 0.3, 0.3, 32);
    EXPECT_NEAR(probs.p_clean + probs.p_correctable + probs.p_disabled, 1.0,
                1e-12);
    EXPECT_GE(probs.p_clean, previous_clean) << "capacity not monotone";
    previous_clean = probs.p_clean;
  }
  const fault::LineOutcomeProbs safe =
      fault::sram_line_outcome_probs(params, ecc, 0.65, 0.3, 0.3, 32);
  EXPECT_GT(safe.p_clean, 0.999);
  const fault::LineOutcomeProbs dead =
      fault::sram_line_outcome_probs(params, ecc, 0.40, 0.3, 0.3, 32);
  EXPECT_GT(dead.p_disabled, 0.999);
}

TEST(FaultModel, SecdedCheckBitsMatchHammingBound) {
  EXPECT_EQ(nvsim::secded_check_bits(1), 3u);
  EXPECT_EQ(nvsim::secded_check_bits(8), 5u);
  EXPECT_EQ(nvsim::secded_check_bits(16), 6u);
  EXPECT_EQ(nvsim::secded_check_bits(32), 7u);
  EXPECT_EQ(nvsim::secded_check_bits(64), 8u);
}

// ---- FaultPlanValidation ----------------------------------------------

TEST(FaultPlanValidation, RejectsMalformedPlans) {
  fault::FaultPlan plan = enabled_plan();
  plan.sram.vccmin_sigma = 0.0;
  EXPECT_THROW(fault::validate(plan), std::logic_error);

  plan = enabled_plan();
  plan.sram.vccmin_mean = -0.1;
  EXPECT_THROW(fault::validate(plan), std::logic_error);

  plan = enabled_plan();
  plan.sram.vth_coupling = -1.0;
  EXPECT_THROW(fault::validate(plan), std::logic_error);

  plan = enabled_plan();
  plan.sram.vdd_override = -0.4;
  EXPECT_THROW(fault::validate(plan), std::logic_error);

  plan = enabled_plan();
  plan.stt.write_fail_prob = 1.0;
  EXPECT_THROW(fault::validate(plan), std::logic_error);

  plan = enabled_plan();
  plan.ecc.word_bits = 0;
  EXPECT_THROW(fault::validate(plan), std::logic_error);
}

TEST(FaultPlanValidation, InjectorConstructionValidates) {
  fault::FaultPlan plan = enabled_plan();
  plan.stt.write_fail_prob = -0.5;
  EXPECT_THROW(fault::FaultInjector(plan, 0.3), std::logic_error);
}

TEST(FaultPlanValidation, LineMustHoldWholeEccWords) {
  const fault::SramFaultParams params;
  fault::EccParams ecc;
  ecc.word_bits = 96;  // 32-byte line = 256 bits, not a multiple of 96.
  EXPECT_THROW(
      fault::sram_line_outcome_probs(params, ecc, 0.5, 0.3, 0.3, 32),
      std::logic_error);
}

// ---- FaultInjection ----------------------------------------------------

TEST(FaultInjection, SramMapCensusMatchesMapContents) {
  fault::FaultPlan plan = enabled_plan();
  // Put the rail ~3 sigma above Vccmin so all three classes appear.
  plan.sram.vccmin_mean = 0.35;
  fault::FaultInjector injector(plan, 0.30);
  const std::vector<std::uint8_t> map =
      injector.sram_line_map("census", 256, 4, 32, 0.50, 0.30);
  ASSERT_EQ(map.size(), 256u * 4u);

  std::uint64_t correctable = 0;
  std::uint64_t disabled = 0;
  for (std::uint8_t cell : map) {
    if (cell == static_cast<std::uint8_t>(fault::LineFault::kCorrectable)) {
      ++correctable;
    } else if (cell == static_cast<std::uint8_t>(fault::LineFault::kDisabled)) {
      ++disabled;
    }
  }
  EXPECT_GT(correctable, 0u);
  EXPECT_GT(disabled, 0u);
  const fault::FaultStats& stats = injector.stats();
  EXPECT_EQ(stats.sram_lines_mapped, map.size());
  EXPECT_EQ(stats.sram_lines_correctable, correctable);
  EXPECT_EQ(stats.sram_lines_disabled, disabled);
}

TEST(FaultInjection, MapsAreIndependentOfBuildOrder) {
  const fault::FaultPlan plan = enabled_plan();
  fault::FaultInjector first(plan, 0.30);
  (void)first.sram_line_map("other", 64, 4, 32, 0.50, 0.30);
  const auto map_after = first.sram_line_map("target", 64, 4, 32, 0.50, 0.30);

  fault::FaultInjector second(plan, 0.30);
  const auto map_alone = second.sram_line_map("target", 64, 4, 32, 0.50, 0.30);
  EXPECT_EQ(map_after, map_alone);
}

TEST(FaultInjection, DisabledWaysRejectInserts) {
  mem::CacheArray array(/*capacity_bytes=*/4 * 2 * 32, /*line_bytes=*/32,
                        /*ways=*/2);
  ASSERT_EQ(array.set_count(), 4u);
  // Disable both ways of set 0; mark set 1's first way correctable.
  std::vector<std::uint8_t> map(4 * 2, 0);
  map[0] = map[1] = static_cast<std::uint8_t>(fault::LineFault::kDisabled);
  map[2] = static_cast<std::uint8_t>(fault::LineFault::kCorrectable);
  array.apply_fault_map(map);

  EXPECT_FALSE(array.can_insert(/*line=*/0));  // Set 0 is dead.
  EXPECT_FALSE(array.insert(0, mem::Mesi::kExclusive).has_value());
  EXPECT_FALSE(array.probe(0).has_value());
  EXPECT_TRUE(array.can_insert(/*line=*/1));

  EXPECT_EQ(array.disabled_ways(), 2u);
  EXPECT_EQ(array.correctable_ways(), 1u);
  EXPECT_EQ(array.usable_capacity_bytes(), array.capacity_bytes() - 2 * 32);

  // A hit on the correctable way reports the correction.
  array.insert(1, mem::Mesi::kExclusive);
  bool corrected = false;
  EXPECT_TRUE(array.access(1, &corrected).has_value());
  EXPECT_TRUE(corrected);
  EXPECT_EQ(array.stats().ecc_corrections, 1u);
}

TEST(FaultInjection, DisableLineRetiresTheWay) {
  mem::CacheArray array(4 * 2 * 32, 32, 2);
  array.insert(0, mem::Mesi::kModified);
  EXPECT_TRUE(array.disable_line(0));
  EXPECT_FALSE(array.probe(0).has_value());
  EXPECT_EQ(array.disabled_ways(), 1u);
  // The set still has one live way.
  EXPECT_TRUE(array.can_insert(0));
  EXPECT_TRUE(array.insert(4, mem::Mesi::kExclusive) == std::nullopt);
  EXPECT_TRUE(array.probe(4).has_value());
  EXPECT_FALSE(array.disable_line(8));  // Absent line: nothing to disable.
}

TEST(FaultInjection, WriteRetriesRespectTheBudget) {
  fault::FaultPlan plan = enabled_plan();
  plan.stt.write_fail_prob = 0.5;
  plan.stt.max_write_retries = 2;
  fault::FaultInjector injector(plan, 0.30);

  std::uint64_t total_retries = 0;
  std::uint64_t faulted = 0;
  std::uint64_t exhausted_count = 0;
  for (int i = 0; i < 2000; ++i) {
    bool exhausted = false;
    const std::uint32_t retries = injector.draw_write_retries(&exhausted);
    EXPECT_LE(retries, plan.stt.max_write_retries);
    if (exhausted) {
      ++exhausted_count;
      EXPECT_EQ(retries, plan.stt.max_write_retries);
    }
    if (retries > 0 || exhausted) ++faulted;
    total_retries += retries;
  }
  EXPECT_GT(exhausted_count, 0u);  // p=0.5^3 per write: ~250 expected.
  const fault::FaultStats& stats = injector.stats();
  EXPECT_EQ(stats.stt_write_faults, faulted);
  EXPECT_EQ(stats.stt_write_retries, total_retries);
  EXPECT_EQ(stats.stt_lines_disabled, 0u);  // Owner's notes, not the draw's.
}

TEST(FaultInjection, ZeroFailProbabilityNeverDraws) {
  fault::FaultPlan plan = enabled_plan();
  plan.stt.write_fail_prob = 0.0;
  fault::FaultInjector injector(plan, 0.30);
  for (int i = 0; i < 100; ++i) {
    bool exhausted = true;
    EXPECT_EQ(injector.draw_write_retries(&exhausted), 0u);
    EXPECT_FALSE(exhausted);
  }
  EXPECT_EQ(injector.stats().stt_write_faults, 0u);
}

TEST(FaultInjection, SramVoltageSweepDegradesCapacity) {
  RunOptions options = short_options();
  options.faults = enabled_plan();
  options.faults.sram.vdd_override = 0.42;
  const SimResult low =
      core::run_experiment(ConfigId::kPrSramNt, "fft", options);
  ASSERT_TRUE(low.faults_enabled);
  EXPECT_GT(low.faults.sram_lines_mapped, 0u);
  EXPECT_GT(low.faults.sram_lines_disabled, 0u);
  EXPECT_LT(low.fault_l1_usable_bytes, low.fault_l1_total_bytes);
  EXPECT_GT(low.instructions, 0u);  // Degraded, but still completes.

  // At the configuration's own 0.65 V rail the margin is 6 sigma: the map
  // draws find nothing to inject.
  options.faults.sram.vdd_override = 0.0;
  const SimResult safe =
      core::run_experiment(ConfigId::kPrSramNt, "fft", options);
  ASSERT_TRUE(safe.faults_enabled);
  EXPECT_GT(safe.faults.sram_lines_mapped, 0u);
  EXPECT_EQ(safe.faults.sram_lines_disabled, 0u);
  EXPECT_EQ(safe.fault_l1_usable_bytes, safe.fault_l1_total_bytes);
}

TEST(FaultInjection, SttWriteFaultsCostEnergyAndRetries) {
  RunOptions options = short_options();
  const SimResult clean =
      core::run_experiment(ConfigId::kShStt, "radix", options);
  options.faults = enabled_plan();
  options.faults.stt.write_fail_prob = 0.01;
  const SimResult faulty =
      core::run_experiment(ConfigId::kShStt, "radix", options);
  ASSERT_TRUE(faulty.faults_enabled);
  EXPECT_GT(faulty.faults.stt_write_faults, 0u);
  EXPECT_GT(faulty.faults.stt_write_retries, 0u);
  // STT arrays get no static SRAM map.
  EXPECT_EQ(faulty.faults.sram_lines_mapped, 0u);
  // Retries pulse the array again: strictly more write energy.
  EXPECT_GT(faulty.counts.l1_writes, clean.counts.l1_writes);
}

TEST(FaultInjection, PrivateSttPathDrawsWriteFaults) {
  RunOptions options = short_options();
  options.faults = enabled_plan();
  options.faults.stt.write_fail_prob = 0.01;
  const SimResult result =
      core::run_experiment(ConfigId::kPrSttCc, "lu", options);
  ASSERT_TRUE(result.faults_enabled);
  EXPECT_GT(result.faults.stt_write_faults, 0u);
  EXPECT_GT(result.instructions, 0u);
}

TEST(FaultInjection, MetricsAppearOnlyWhenFaultsRan) {
  RunOptions options = short_options();
  const SimResult clean =
      core::run_experiment(ConfigId::kShStt, "fft", options);
  const obs::CounterSet clean_metrics = core::metrics_of(clean);
  EXPECT_EQ(clean_metrics.find("fault.sram_lines_mapped"), nullptr);
  EXPECT_EQ(clean_metrics.find("fault.stt_write_faults"), nullptr);

  options.faults = enabled_plan();
  options.faults.stt.write_fail_prob = 0.01;
  const SimResult faulty =
      core::run_experiment(ConfigId::kShStt, "fft", options);
  const obs::CounterSet metrics = core::metrics_of(faulty);
  ASSERT_NE(metrics.find("fault.stt_write_faults"), nullptr);
  EXPECT_EQ(*metrics.find("fault.stt_write_faults"),
            static_cast<double>(faulty.faults.stt_write_faults));
  ASSERT_NE(metrics.find("fault.l1_usable_bytes"), nullptr);
}

TEST(FaultInjection, DisabledPlanIsIdenticalToNoPlan) {
  const RunOptions baseline = short_options();
  RunOptions disarmed = short_options();
  // Knobs set but enabled=false: no stream may be seeded, results must be
  // bit-identical to a run that never heard of faults.
  disarmed.faults.enabled = false;
  disarmed.faults.stt.write_fail_prob = 0.5;
  disarmed.faults.sram.vdd_override = 0.40;
  const SimResult a = core::run_experiment(ConfigId::kShStt, "fft", baseline);
  const SimResult b = core::run_experiment(ConfigId::kShStt, "fft", disarmed);
  core::expect_same_result(a, b);
  EXPECT_FALSE(b.faults_enabled);
}

// ---- FaultDeterminism --------------------------------------------------

RunOptions stt_fault_options() {
  RunOptions options = short_options();
  options.faults = enabled_plan();
  options.faults.stt.write_fail_prob = 0.01;
  return options;
}

RunOptions sram_fault_options() {
  RunOptions options = short_options();
  options.faults = enabled_plan();
  options.faults.sram.vdd_override = 0.45;
  return options;
}

TEST(FaultDeterminism, SameSeedSamePlanSameResult) {
  const RunOptions options = stt_fault_options();
  const SimResult a = core::run_experiment(ConfigId::kShStt, "lu", options);
  const SimResult b = core::run_experiment(ConfigId::kShStt, "lu", options);
  core::expect_same_result(a, b);

  const RunOptions sram = sram_fault_options();
  const SimResult c = core::run_experiment(ConfigId::kPrSramNt, "lu", sram);
  const SimResult d = core::run_experiment(ConfigId::kPrSramNt, "lu", sram);
  core::expect_same_result(c, d);
}

TEST(FaultDeterminism, DifferentFaultSeedDiverges) {
  RunOptions options = stt_fault_options();
  const SimResult a = core::run_experiment(ConfigId::kShStt, "lu", options);
  options.faults.seed = 99;
  const SimResult b = core::run_experiment(ConfigId::kShStt, "lu", options);
  // Same workload, different fault stream: the retry pattern must change.
  EXPECT_NE(a.faults.stt_write_retries, b.faults.stt_write_retries);
}

TEST(FaultDeterminism, IndependentOfHostThreads) {
  const RunOptions options = stt_fault_options();
  const std::vector<ConfigId> configs = {ConfigId::kShStt,
                                         ConfigId::kPrSramNt};
  const std::vector<std::string> benchmarks = {"fft", "lu"};
  exec::set_thread_count(1);
  const auto serial = core::run_matrix(configs, benchmarks, options);
  exec::set_thread_count(4);
  const auto parallel = core::run_matrix(configs, benchmarks, options);
  exec::set_thread_count(0);  // Back to auto for the rest of the binary.
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t c = 0; c < serial.size(); ++c) {
    ASSERT_EQ(serial[c].size(), parallel[c].size());
    for (std::size_t b = 0; b < serial[c].size(); ++b) {
      core::expect_same_result(serial[c][b], parallel[c][b]);
    }
  }
}

TEST(FaultDeterminism, SkipEquivalenceHoldsUnderFaults) {
  for (const ConfigId id : {ConfigId::kShStt, ConfigId::kPrSttCc}) {
    RunOptions options = stt_fault_options();
    const SimResult skip = core::run_experiment(id, "fft", options);
    options.cycle_skip = false;
    const SimResult step = core::run_experiment(id, "fft", options);
    core::expect_same_result(skip, step);
  }
  RunOptions options = sram_fault_options();
  const SimResult skip =
      core::run_experiment(ConfigId::kPrSramNt, "fft", options);
  options.cycle_skip = false;
  const SimResult step =
      core::run_experiment(ConfigId::kPrSramNt, "fft", options);
  core::expect_same_result(skip, step);
}

}  // namespace
}  // namespace respin
