// Tests for the oracle consolidation driver: candidate generation via the
// public behaviour, snapshot replay correctness, and stride validation.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/oracle.hpp"
#include "workload/workload.hpp"

namespace respin::core {
namespace {

SimParams small_params() {
  SimParams p;
  p.workload_scale = 0.1;
  p.seed = 1;
  return p;
}

ClusterSim make_oracle_sim(const std::string& bench) {
  return ClusterSim(
      make_cluster_config(ConfigId::kShSttCcOracle, CacheSize::kMedium),
      workload::benchmark(bench), small_params());
}

TEST(OracleDriver, CompletesAndRecordsTrace) {
  ClusterSim sim = make_oracle_sim("bodytrack");
  const SimResult r = run_with_oracle(sim);
  EXPECT_TRUE(sim.done());
  EXPECT_FALSE(r.trace.empty());
  EXPECT_GE(r.min_active_cores, 4u);
  EXPECT_LE(r.max_active_cores, 16u);
}

TEST(OracleDriver, RejectsZeroStride) {
  ClusterSim sim = make_oracle_sim("fft");
  EXPECT_THROW(run_with_oracle(sim, OracleParams{.stride = 0}),
               std::logic_error);
}

TEST(OracleDriver, StrideOneComparableToCoarse) {
  // The oracle minimizes EPI *per epoch*, which is not globally optimal:
  // a locally better choice can steer later epochs into worse states, so
  // a finer candidate stride is not guaranteed to win outright. It must,
  // however, stay in the same ballpark.
  ClusterSim fine = make_oracle_sim("radix");
  ClusterSim coarse = make_oracle_sim("radix");
  const SimResult rf = run_with_oracle(fine, OracleParams{.stride = 1});
  const SimResult rc = run_with_oracle(coarse, OracleParams{.stride = 4});
  EXPECT_LT(rf.energy.total(), 1.15 * rc.energy.total());
  EXPECT_GT(rf.energy.total(), 0.85 * rc.energy.total());
}

TEST(OracleDriver, DeterministicAcrossRuns) {
  ClusterSim a = make_oracle_sim("lu");
  ClusterSim b = make_oracle_sim("lu");
  const SimResult ra = run_with_oracle(a);
  const SimResult rb = run_with_oracle(b);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_DOUBLE_EQ(ra.energy.total(), rb.energy.total());
  ASSERT_EQ(ra.trace.size(), rb.trace.size());
  for (std::size_t i = 0; i < ra.trace.size(); ++i) {
    EXPECT_EQ(ra.trace[i].active_cores, rb.trace[i].active_cores);
  }
}

TEST(OracleDriver, InstructionsConservedVersusPlainRun) {
  ClusterSim sim = make_oracle_sim("cholesky");
  const SimResult oracle = run_with_oracle(sim);

  ClusterConfig plain_cfg =
      make_cluster_config(ConfigId::kShStt, CacheSize::kMedium);
  ClusterSim plain(plain_cfg, workload::benchmark("cholesky"),
                   small_params());
  plain.run();
  EXPECT_EQ(oracle.instructions, plain.result().instructions);
}

TEST(OracleDriver, ExploresBelowFullWidth) {
  // On an imbalanced benchmark the oracle must find states below 16 cores.
  ClusterSim sim = make_oracle_sim("bodytrack");
  const SimResult r = run_with_oracle(sim);
  EXPECT_LT(r.avg_active_cores, 15.9);
}

}  // namespace
}  // namespace respin::core
