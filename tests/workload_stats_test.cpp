// Parameterized statistical validation of every catalog benchmark: the
// generated op stream must deliver each benchmark's specified memory
// intensity, store ratio, and shared-access fraction, with all addresses
// inside their regions. This pins the workload models to their published
// characterizations benchmark by benchmark.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "workload/workload.hpp"

namespace respin::workload {
namespace {

struct StreamStats {
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t shared = 0;
  std::uint64_t barriers = 0;
};

StreamStats measure(const WorkloadSpec& spec, std::uint32_t thread) {
  ThreadWorkload work(spec, thread, 16, 0.2, 1);
  StreamStats stats;
  while (!work.finished()) {
    const Op op = work.next();
    switch (op.kind) {
      case OpKind::kLoad:
        ++stats.loads;
        break;
      case OpKind::kStore:
        ++stats.stores;
        break;
      case OpKind::kBarrier:
        ++stats.barriers;
        break;
      default:
        break;
    }
    if ((op.kind == OpKind::kLoad || op.kind == OpKind::kStore) &&
        op.addr >= ThreadWorkload::shared_base() &&
        op.addr < ThreadWorkload::code_base()) {
      ++stats.shared;
    }
  }
  stats.instructions = work.instructions_emitted();
  return stats;
}

// Instruction-weighted expectation of a phase field over the spec.
template <typename Getter>
double expected(const WorkloadSpec& spec, Getter get) {
  double weighted = 0.0;
  double total = 0.0;
  for (const Phase& p : spec.phases) {
    const auto instr = static_cast<double>(p.instructions);
    weighted += get(p) * instr;
    total += instr;
  }
  return weighted / total;
}

class BenchmarkStatsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BenchmarkStatsTest, MemoryIntensityMatchesSpec) {
  const WorkloadSpec& spec = benchmark(GetParam());
  const StreamStats stats = measure(spec, 3);
  const double measured =
      static_cast<double>(stats.loads + stats.stores) /
      static_cast<double>(stats.instructions);
  const double target =
      expected(spec, [](const Phase& p) { return p.mem_fraction; });
  // Work imbalance reweights phases per thread; allow a modest band.
  EXPECT_NEAR(measured, target, 0.06) << GetParam();
}

TEST_P(BenchmarkStatsTest, StoreRatioMatchesSpec) {
  const WorkloadSpec& spec = benchmark(GetParam());
  const StreamStats stats = measure(spec, 5);
  const double measured = static_cast<double>(stats.stores) /
                          static_cast<double>(stats.loads + stats.stores);
  const double target = expected(spec, [](const Phase& p) {
    return p.store_fraction * p.mem_fraction;
  }) / expected(spec, [](const Phase& p) { return p.mem_fraction; });
  EXPECT_NEAR(measured, target, 0.08) << GetParam();
}

TEST_P(BenchmarkStatsTest, SharedFractionMatchesSpec) {
  const WorkloadSpec& spec = benchmark(GetParam());
  const StreamStats stats = measure(spec, 7);
  const double measured = static_cast<double>(stats.shared) /
                          static_cast<double>(stats.loads + stats.stores);
  const double target = expected(spec, [](const Phase& p) {
    return p.shared_fraction * p.mem_fraction;
  }) / expected(spec, [](const Phase& p) { return p.mem_fraction; });
  EXPECT_NEAR(measured, target, 0.08) << GetParam();
}

TEST_P(BenchmarkStatsTest, EveryThreadTerminates) {
  const WorkloadSpec& spec = benchmark(GetParam());
  for (std::uint32_t t : {0u, 8u, 15u}) {
    ThreadWorkload work(spec, t, 16, 0.05, 2);
    std::size_t guard = 0;
    while (!work.finished() && guard++ < (1u << 22)) work.next();
    EXPECT_TRUE(work.finished()) << GetParam() << " thread " << t;
  }
}

TEST_P(BenchmarkStatsTest, BarrierCountIndependentOfThread) {
  const WorkloadSpec& spec = benchmark(GetParam());
  const StreamStats a = measure(spec, 0);
  const StreamStats b = measure(spec, 11);
  EXPECT_EQ(a.barriers, b.barriers) << GetParam();
  EXPECT_GT(a.barriers, 0u);
}

INSTANTIATE_TEST_SUITE_P(Catalog, BenchmarkStatsTest,
                         ::testing::ValuesIn(benchmark_names()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace respin::workload
