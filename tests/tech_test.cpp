// Tests for respin::tech — alpha-power-law frequency scaling, voltage
// scaling of dynamic/leakage power, and cluster clock quantization.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tech/technology.hpp"
#include "util/units.hpp"

namespace respin::tech {
namespace {

TEST(Technology, NominalPathRunsAtNominalFrequency) {
  const TechnologyParams tp = TechnologyParams::ipdps2017();
  EXPECT_NEAR(max_frequency_hz(tp, tp.nominal_vdd, tp.vth_mean),
              tp.nominal_frequency_hz, 1.0);
}

TEST(Technology, FrequencyDropsSteeplyNearThreshold) {
  const TechnologyParams tp = TechnologyParams::ipdps2017();
  const double nominal = max_frequency_hz(tp, tp.nominal_vdd, tp.vth_mean);
  const double nt = max_frequency_hz(tp, tp.nt_core_vdd, tp.vth_mean);
  // The paper quotes roughly an order of magnitude slowdown at NT; our
  // alpha-power fit lands in the 4-10x band that the evaluation uses.
  EXPECT_GT(nominal / nt, 4.0);
  EXPECT_LT(nominal / nt, 12.0);
}

TEST(Technology, NoSwitchingBelowThreshold) {
  const TechnologyParams tp = TechnologyParams::ipdps2017();
  EXPECT_EQ(max_frequency_hz(tp, tp.vth_mean, tp.vth_mean), 0.0);
  EXPECT_EQ(max_frequency_hz(tp, tp.vth_mean - 0.05, tp.vth_mean), 0.0);
}

TEST(Technology, HigherVthMeansSlowerPath) {
  const TechnologyParams tp = TechnologyParams::ipdps2017();
  const double fast = max_frequency_hz(tp, 0.4, tp.vth_mean - 0.02);
  const double slow = max_frequency_hz(tp, 0.4, tp.vth_mean + 0.02);
  EXPECT_GT(fast, slow);
  // Near threshold, small Vth shifts produce large frequency spread
  // (the paper: fast cores are almost twice as fast as slow ones).
  EXPECT_GT(fast / slow, 1.4);
}

TEST(Technology, VthSensitivityShrinksAtNominal) {
  const TechnologyParams tp = TechnologyParams::ipdps2017();
  const double spread_nt = max_frequency_hz(tp, 0.4, tp.vth_mean - 0.02) /
                           max_frequency_hz(tp, 0.4, tp.vth_mean + 0.02);
  const double spread_nom = max_frequency_hz(tp, 1.0, tp.vth_mean - 0.02) /
                            max_frequency_hz(tp, 1.0, tp.vth_mean + 0.02);
  EXPECT_GT(spread_nt, spread_nom);
}

TEST(Technology, DynamicEnergyScalesQuadratically) {
  const TechnologyParams tp = TechnologyParams::ipdps2017();
  EXPECT_DOUBLE_EQ(dynamic_energy_scale(tp, 1.0), 1.0);
  EXPECT_NEAR(dynamic_energy_scale(tp, 0.5), 0.25, 1e-12);
  EXPECT_NEAR(dynamic_energy_scale(tp, 0.4), 0.16, 1e-12);
}

TEST(Technology, CoreLeakageScalesNearLinearly) {
  const TechnologyParams tp = TechnologyParams::ipdps2017();
  EXPECT_DOUBLE_EQ(leakage_power_scale(tp, 1.0), 1.0);
  // ~Linear in Vdd (the paper: "leakage power only scales linearly"), so
  // NT cores retain ~40% of nominal leakage — the paper's motivation for
  // gating idle cores. Monotone in Vdd.
  const double at_040 = leakage_power_scale(tp, 0.40);
  EXPECT_NEAR(at_040, 0.40, 0.05);
  EXPECT_LT(at_040, leakage_power_scale(tp, 0.65));
  EXPECT_LT(leakage_power_scale(tp, 0.65), 1.0);
}

TEST(Technology, InvalidVddRejected) {
  const TechnologyParams tp = TechnologyParams::ipdps2017();
  EXPECT_THROW(max_frequency_hz(tp, 0.0, 0.3), std::logic_error);
  EXPECT_THROW(max_frequency_hz(tp, -1.0, 0.3), std::logic_error);
}

TEST(ClusterClocking, PaperExampleMultipliers) {
  ClusterClocking clocking;  // 0.4 ns cache, multipliers 4..6.
  // 625 MHz core -> 1.6 ns -> multiplier 4 (paper Fig. 3 core 0).
  EXPECT_EQ(clocking.multiplier_for_max_frequency(625e6), 4);
  // 500 MHz -> 2.0 ns -> 5.
  EXPECT_EQ(clocking.multiplier_for_max_frequency(500e6), 5);
  // 417 MHz -> 2.4 ns -> 6.
  EXPECT_EQ(clocking.multiplier_for_max_frequency(417e6), 6);
}

TEST(ClusterClocking, PeriodRoundsUpNeverOverclocks) {
  ClusterClocking clocking;
  // 600 MHz -> 1.667 ns minimum period; the next multiple of 0.4 ns is
  // 2.0 ns (multiplier 5) — never 1.6 ns, which would overclock the core.
  EXPECT_EQ(clocking.multiplier_for_max_frequency(600e6), 5);
}

TEST(ClusterClocking, ClampsToConfiguredRange) {
  ClusterClocking clocking;
  EXPECT_EQ(clocking.multiplier_for_max_frequency(10e9), 4);   // Fast cores capped.
  EXPECT_EQ(clocking.multiplier_for_max_frequency(100e6), 6);  // Slow cores floored.
}

TEST(ClusterClocking, CorePeriodIsMultipleOfCachePeriod) {
  ClusterClocking clocking;
  for (int m = clocking.min_core_multiplier; m <= clocking.max_core_multiplier;
       ++m) {
    EXPECT_EQ(clocking.core_period(m) % clocking.cache_period, 0);
  }
  EXPECT_EQ(clocking.core_period(4), util::ns(1.6));
  EXPECT_EQ(clocking.core_period(6), util::ns(2.4));
}

TEST(ClusterClocking, RejectsNonPositiveFrequency) {
  ClusterClocking clocking;
  EXPECT_THROW(clocking.multiplier_for_max_frequency(0.0), std::logic_error);
}

}  // namespace
}  // namespace respin::tech
