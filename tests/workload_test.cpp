// Tests for respin::workload — determinism, op-stream statistics, barrier
// alignment across threads, and the benchmark catalog.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "workload/workload.hpp"

namespace respin::workload {
namespace {

WorkloadSpec two_phase_spec() {
  WorkloadSpec spec;
  spec.name = "test";
  Phase a;
  a.instructions = 10'000;
  a.mem_fraction = 0.3;
  a.store_fraction = 0.4;
  a.shared_fraction = 0.25;
  a.barriers = 2;
  Phase b = a;
  b.instructions = 5'000;
  b.parallel_fraction = 0.5;
  b.barriers = 1;
  spec.phases = {a, b};
  spec.repeat = 2;
  return spec;
}

std::vector<Op> drain(ThreadWorkload& thread, std::size_t cap = 1u << 22) {
  std::vector<Op> ops;
  while (!thread.finished() && ops.size() < cap) {
    ops.push_back(thread.next());
  }
  return ops;
}

TEST(ThreadWorkload, DeterministicStream) {
  const WorkloadSpec spec = two_phase_spec();
  ThreadWorkload a(spec, 0, 4, 1.0, 7);
  ThreadWorkload b(spec, 0, 4, 1.0, 7);
  for (int i = 0; i < 5000; ++i) {
    const Op x = a.next();
    const Op y = b.next();
    ASSERT_EQ(static_cast<int>(x.kind), static_cast<int>(y.kind));
    ASSERT_EQ(x.addr, y.addr);
    ASSERT_EQ(x.count, y.count);
  }
}

TEST(ThreadWorkload, DifferentSeedsDifferentStreams) {
  const WorkloadSpec spec = two_phase_spec();
  ThreadWorkload a(spec, 0, 4, 1.0, 7);
  ThreadWorkload b(spec, 0, 4, 1.0, 8);
  int diffs = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next().addr != b.next().addr) ++diffs;
  }
  EXPECT_GT(diffs, 100);
}

TEST(ThreadWorkload, BarrierSequenceIdenticalAcrossThreads) {
  const WorkloadSpec spec = two_phase_spec();
  std::vector<std::vector<std::uint64_t>> barrier_ids(4);
  for (std::uint32_t t = 0; t < 4; ++t) {
    ThreadWorkload thread(spec, t, 4, 1.0, 7);
    for (const Op& op : drain(thread)) {
      if (op.kind == OpKind::kBarrier) barrier_ids[t].push_back(op.addr);
    }
  }
  for (std::uint32_t t = 1; t < 4; ++t) {
    EXPECT_EQ(barrier_ids[t], barrier_ids[0]) << "thread " << t;
  }
  // (barriers-in-phase + end barrier) summed over the unrolled phases:
  // ((2+1) + (1+1)) * 2 repeats = 10.
  ASSERT_EQ(barrier_ids[0].size(), 10u);
  for (std::size_t i = 0; i < barrier_ids[0].size(); ++i) {
    EXPECT_EQ(barrier_ids[0][i], i);  // Dense, ordered ids.
  }
}

TEST(ThreadWorkload, BarrierCountsAlignedEvenAtExtremeScales) {
  // Regression: a light thread whose phase budget is smaller than the
  // phase's barrier count must still emit every barrier, or the cluster
  // barrier deadlocks (found via the 32-core robustness test).
  const WorkloadSpec& ocean = benchmark("ocean");
  for (double scale : {0.01, 0.03}) {
    std::uint64_t expected = 0;
    for (std::uint32_t t = 0; t < 16; ++t) {
      ThreadWorkload thread(ocean, t, 16, scale, 1);
      std::uint64_t barriers = 0;
      for (const Op& op : drain(thread)) {
        if (op.kind == OpKind::kBarrier) ++barriers;
      }
      if (t == 0) {
        expected = barriers;
      } else {
        ASSERT_EQ(barriers, expected) << "thread " << t << " scale " << scale;
      }
    }
  }
}

TEST(ThreadWorkload, InstructionCountMatchesSpec) {
  WorkloadSpec spec = two_phase_spec();
  spec.phases[1].parallel_fraction = 1.0;  // Every thread full-work.
  ThreadWorkload thread(spec, 0, 4, 1.0, 7);
  drain(thread);
  // Full-work thread: (10000 + 5000) * 2 within the +-10% work jitter.
  const auto emitted = static_cast<double>(thread.instructions_emitted());
  EXPECT_GT(emitted, 27'000.0);
  EXPECT_LT(emitted, 33'100.0);
}

TEST(ThreadWorkload, ScaleMultipliesWork) {
  WorkloadSpec spec = two_phase_spec();
  spec.phases[1].parallel_fraction = 1.0;
  ThreadWorkload full(spec, 0, 4, 1.0, 7);
  ThreadWorkload quarter(spec, 0, 4, 0.25, 7);
  drain(full);
  drain(quarter);
  EXPECT_NEAR(static_cast<double>(quarter.instructions_emitted()),
              0.25 * static_cast<double>(full.instructions_emitted()),
              0.05 * static_cast<double>(full.instructions_emitted()));
}

TEST(ThreadWorkload, ReducedParallelismShrinksSomeThreads) {
  WorkloadSpec spec = two_phase_spec();  // Phase b: par 0.5.
  spec.repeat = 1;  // One reduced phase, so the light slots are visible.
  std::vector<std::uint64_t> totals;
  for (std::uint32_t t = 0; t < 4; ++t) {
    ThreadWorkload thread(spec, t, 4, 1.0, 7);
    drain(thread);
    totals.push_back(thread.instructions_emitted());
  }
  const auto [lo, hi] = std::minmax_element(totals.begin(), totals.end());
  EXPECT_LT(static_cast<double>(*lo), 0.8 * static_cast<double>(*hi));
}

TEST(ThreadWorkload, MemFractionApproximatesTarget) {
  WorkloadSpec spec = two_phase_spec();
  spec.phases.resize(1);
  spec.phases[0].instructions = 200'000;
  spec.phases[0].barriers = 0;
  spec.repeat = 1;
  ThreadWorkload thread(spec, 0, 4, 1.0, 7);
  std::uint64_t mem_ops = 0;
  for (const Op& op : drain(thread)) {
    if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) ++mem_ops;
  }
  const double fraction = static_cast<double>(mem_ops) /
                          static_cast<double>(thread.instructions_emitted());
  EXPECT_NEAR(fraction, 0.3, 0.02);
}

TEST(ThreadWorkload, StoreFractionApproximatesTarget) {
  WorkloadSpec spec = two_phase_spec();
  spec.phases.resize(1);
  spec.phases[0].instructions = 200'000;
  spec.repeat = 1;
  ThreadWorkload thread(spec, 0, 4, 1.0, 7);
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  for (const Op& op : drain(thread)) {
    if (op.kind == OpKind::kLoad) ++loads;
    if (op.kind == OpKind::kStore) ++stores;
  }
  EXPECT_NEAR(static_cast<double>(stores) / (loads + stores), 0.4, 0.03);
}

TEST(ThreadWorkload, AddressesStayInTheRightRegions) {
  const WorkloadSpec spec = two_phase_spec();
  for (std::uint32_t t : {0u, 3u}) {
    ThreadWorkload thread(spec, t, 4, 1.0, 7);
    std::uint64_t shared = 0;
    std::uint64_t total = 0;
    for (const Op& op : drain(thread)) {
      if (op.kind != OpKind::kLoad && op.kind != OpKind::kStore) continue;
      ++total;
      if (op.addr >= ThreadWorkload::shared_base() &&
          op.addr < ThreadWorkload::code_base()) {
        ++shared;
      } else {
        const mem::Addr base = ThreadWorkload::private_base(t);
        ASSERT_GE(op.addr, base);
        ASSERT_LT(op.addr, ThreadWorkload::private_base(t + 1));
      }
    }
    EXPECT_NEAR(static_cast<double>(shared) / total, 0.25, 0.04);
  }
}

TEST(ThreadWorkload, PrivateRegionsAreDisjointAcrossThreads) {
  EXPECT_LT(ThreadWorkload::private_base(0), ThreadWorkload::private_base(1));
  EXPECT_LT(ThreadWorkload::private_base(15), ThreadWorkload::shared_base());
  EXPECT_LT(ThreadWorkload::shared_base(), ThreadWorkload::code_base());
}

TEST(ThreadWorkload, IfetchStreamStaysInCodeRegion) {
  const WorkloadSpec spec = two_phase_spec();
  ThreadWorkload thread(spec, 1, 4, 1.0, 7);
  mem::Addr previous = 0;
  int sequential = 0;
  for (int i = 0; i < 2000; ++i) {
    const mem::Addr addr = thread.next_ifetch_addr();
    ASSERT_GE(addr, ThreadWorkload::code_base());
    ASSERT_LT(addr, ThreadWorkload::code_base() + spec.code_kb * 1024ull);
    if (addr == previous + 32) ++sequential;
    previous = addr;
  }
  // Mostly sequential fetch with occasional taken branches.
  EXPECT_GT(sequential, 1500);
  EXPECT_LT(sequential, 1999);
}

TEST(ThreadWorkload, FinishedIsSticky) {
  WorkloadSpec spec = two_phase_spec();
  spec.phases.resize(1);
  spec.phases[0].instructions = 100;
  spec.repeat = 1;
  ThreadWorkload thread(spec, 0, 4, 1.0, 7);
  drain(thread);
  EXPECT_TRUE(thread.finished());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(static_cast<int>(thread.next().kind),
              static_cast<int>(OpKind::kFinished));
  }
}

TEST(ThreadWorkload, ComputeOpsCarryPhaseIpc) {
  WorkloadSpec spec = two_phase_spec();
  spec.phases.resize(1);
  spec.phases[0].ipc = 1.7;
  spec.repeat = 1;
  ThreadWorkload thread(spec, 0, 4, 1.0, 7);
  bool saw_compute = false;
  for (const Op& op : drain(thread)) {
    if (op.kind == OpKind::kCompute) {
      EXPECT_DOUBLE_EQ(op.ipc, 1.7);
      saw_compute = true;
    }
  }
  EXPECT_TRUE(saw_compute);
}

TEST(ThreadWorkload, RejectsBadConstruction) {
  const WorkloadSpec spec = two_phase_spec();
  EXPECT_THROW(ThreadWorkload(spec, 4, 4, 1.0, 7), std::logic_error);
  EXPECT_THROW(ThreadWorkload(spec, 0, 4, 0.0, 7), std::logic_error);
  WorkloadSpec empty;
  empty.name = "empty";
  EXPECT_THROW(ThreadWorkload(empty, 0, 4, 1.0, 7), std::logic_error);
}

TEST(Catalog, ContainsThePapersThirteenBenchmarks) {
  const auto names = benchmark_names();
  ASSERT_EQ(names.size(), 13u);
  const std::set<std::string> expected = {
      "barnes",       "cholesky", "fft",       "lu",        "ocean",
      "radiosity",    "radix",    "raytrace",  "water-ns",  "blackscholes",
      "bodytrack",    "streamcluster", "swaptions"};
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), expected);
}

TEST(Catalog, LookupByNameAndUnknownRejected) {
  EXPECT_EQ(benchmark("ocean").name, "ocean");
  EXPECT_THROW(benchmark("doom"), std::logic_error);
}

TEST(Catalog, OceanHasManyBarriers) {
  const WorkloadSpec& ocean = benchmark("ocean");
  std::uint32_t barriers = 0;
  for (const Phase& p : ocean.phases) barriers += p.barriers + 1;
  barriers *= ocean.repeat;
  EXPECT_GT(barriers, 100u);  // "hundreds of barriers".
}

TEST(Catalog, RaytraceIsSharingHeavy) {
  const WorkloadSpec& raytrace = benchmark("raytrace");
  double max_shared = 0.0;
  for (const Phase& p : raytrace.phases) {
    max_shared = std::max(max_shared, p.shared_fraction);
  }
  EXPECT_GE(max_shared, 0.5);
}

TEST(Catalog, LuLosesParallelismInLaterStages) {
  const WorkloadSpec& lu = benchmark("lu");
  EXPECT_GT(lu.phases.front().parallel_fraction,
            lu.phases.back().parallel_fraction + 0.5);
}

TEST(Catalog, AllPhasesAreWellFormed) {
  for (const WorkloadSpec& spec : benchmark_catalog()) {
    EXPECT_FALSE(spec.phases.empty()) << spec.name;
    EXPECT_GE(spec.repeat, 1u) << spec.name;
    for (const Phase& p : spec.phases) {
      EXPECT_GT(p.instructions, 0u) << spec.name;
      EXPECT_GT(p.ipc, 0.0) << spec.name;
      EXPECT_LE(p.ipc, 2.0) << spec.name;
      EXPECT_GE(p.mem_fraction, 0.0) << spec.name;
      EXPECT_LE(p.mem_fraction, 1.0) << spec.name;
      EXPECT_GE(p.parallel_fraction, 0.0) << spec.name;
      EXPECT_LE(p.parallel_fraction, 1.0) << spec.name;
    }
  }
}

// Property: every thread of every catalog benchmark terminates and emits
// the same barrier count.
TEST(CatalogProperty, AllBenchmarksTerminateWithAlignedBarriers) {
  for (const WorkloadSpec& spec : benchmark_catalog()) {
    std::uint64_t expected_barriers = UINT64_MAX;
    for (std::uint32_t t = 0; t < 4; ++t) {
      ThreadWorkload thread(spec, t, 4, 0.05, 1);
      std::uint64_t barriers = 0;
      for (const Op& op : drain(thread)) {
        if (op.kind == OpKind::kBarrier) ++barriers;
      }
      ASSERT_TRUE(thread.finished()) << spec.name;
      if (expected_barriers == UINT64_MAX) {
        expected_barriers = barriers;
      } else {
        ASSERT_EQ(barriers, expected_barriers) << spec.name;
      }
    }
  }
}

}  // namespace
}  // namespace respin::workload
