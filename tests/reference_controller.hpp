// Test-only array-of-structs controller: the pre-refactor per-core slot
// walk, kept verbatim as an executable oracle for the production
// struct-of-arrays SharedCacheController. Every observable — serviced
// reads field by field, statistics, store admissions, next_activity_cycle
// predictions and the RNG tie-break draw sequence — must match the SoA
// implementation exactly; property_test.cpp replays random schedules
// through both. Do not optimize this file: its value is being the simple,
// obviously-correct formulation.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "core/priority_register.hpp"
#include "core/shared_cache_controller.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace respin::test {

class ReferenceController {
 public:
  ReferenceController(const core::ControllerParams& params,
                      std::uint64_t rng_seed)
      : params_(params),
        rng_("controller", rng_seed),
        slots_(params.core_count) {
    arrival_ring_.fill(0);
  }

  void submit_read(std::uint32_t core, std::uint32_t multiplier,
                   std::int64_t now) {
    ReadSlot& slot = slots_[core];
    RESPIN_REQUIRE(!slot.valid, "core already has an outstanding read");
    slot.valid = true;
    slot.issued_at = now;
    slot.visible_at = now + params_.request_delay_cycles;
    slot.half_misses = 0;
    slot.priority.preload(multiplier - params_.request_delay_cycles);
    note_arrival(slot.visible_at);
    ++outstanding_;
  }

  bool submit_store(std::int64_t now) {
    if (store_queue_size() >= params_.store_queue_depth) {
      ++stats_.store_queue_rejections;
      return false;
    }
    const std::int64_t visible = now + params_.request_delay_cycles;
    pending_store_times_.push_back(visible);
    ++pending_stores_;
    note_arrival(visible);
    ++stats_.stores_accepted;
    ++outstanding_;
    return true;
  }

  void submit_fill(std::int64_t now) {
    const std::int64_t visible = now + 1;
    fill_queue_.push_back(visible);
    note_arrival(visible);
    ++stats_.fills;
    ++outstanding_;
  }

  bool has_pending_work() const {
    return outstanding_ > 0 || !store_queue_.empty() || !fill_queue_.empty();
  }

  std::uint32_t store_queue_size() const {
    return static_cast<std::uint32_t>(store_queue_.size()) + pending_stores_;
  }

  std::int64_t next_activity_cycle(std::int64_t now) const {
    std::int64_t next = std::numeric_limits<std::int64_t>::max();
    for (const ReadSlot& slot : slots_) {
      if (!slot.valid) continue;
      if (slot.visible_at <= now) return now + 1;
      next = std::min(next, slot.visible_at);
    }
    if (!pending_store_times_.empty()) {
      next = std::min(next, pending_store_times_.front());
    }
    for (const std::int64_t visible : fill_queue_) {
      next = std::min(next, visible > now
                                ? visible
                                : std::max(write_port_free_at_, now + 1));
    }
    if (!store_queue_.empty()) {
      next = std::min(next, std::max(write_port_free_at_, now + 1));
    }
    return std::max(next, now + 1);
  }

  void note_skipped_cycles(std::int64_t cycles) {
    if (cycles <= 0) return;
    stats_.total_cycles += static_cast<std::uint64_t>(cycles);
    stats_.arrivals_per_cycle.add(0, static_cast<std::uint64_t>(cycles));
    if (has_pending_work()) {
      stats_.busy_cycles += static_cast<std::uint64_t>(cycles);
    }
  }

  void step(std::int64_t now, std::vector<core::ServicedRead>& out) {
    ++stats_.total_cycles;
    auto& ring_slot =
        arrival_ring_[static_cast<std::size_t>(now) % arrival_ring_.size()];
    stats_.arrivals_per_cycle.add(ring_slot);
    ring_slot = 0;

    if (outstanding_ == 0) return;
    ++stats_.busy_cycles;

    while (!pending_store_times_.empty() &&
           pending_store_times_.front() <= now) {
      store_queue_.push_back(pending_store_times_.front());
      pending_store_times_.pop_front();
      --pending_stores_;
    }

    if (read_port_free_at_ <= now) {
      ReadSlot* winner = nullptr;
      std::uint32_t winner_core = 0;
      std::uint32_t tie_count = 0;
      if (params_.arbitration == core::ArbitrationPolicy::kRoundRobin) {
        for (std::uint32_t offset = 0; offset < slots_.size(); ++offset) {
          const std::uint32_t c =
              (rr_cursor_ + offset) %
              static_cast<std::uint32_t>(slots_.size());
          ReadSlot& slot = slots_[c];
          if (!slot.valid || slot.visible_at > now) continue;
          winner = &slot;
          winner_core = c;
          rr_cursor_ = (c + 1) % static_cast<std::uint32_t>(slots_.size());
          break;
        }
      } else {
        for (std::uint32_t c = 0; c < slots_.size(); ++c) {
          ReadSlot& slot = slots_[c];
          if (!slot.valid || slot.visible_at > now) continue;
          if (winner == nullptr ||
              slot.priority.slack() < winner->priority.slack()) {
            winner = &slot;
            winner_core = c;
            tie_count = 1;
          } else if (slot.priority.slack() == winner->priority.slack()) {
            ++tie_count;
            if (rng_.uniform_u64(tie_count) == 0) {
              winner = &slot;
              winner_core = c;
            }
          }
        }
      }
      if (winner != nullptr) {
        out.push_back(core::ServicedRead{.core = winner_core,
                                         .issued_at = winner->issued_at,
                                         .serviced_at = now,
                                         .half_misses = winner->half_misses});
        winner->valid = false;
        --outstanding_;
        ++stats_.reads_serviced;
        read_port_free_at_ = now + params_.read_occupancy;
      }
    }

    if (write_port_free_at_ <= now) {
      if (!fill_queue_.empty() && fill_queue_.front() <= now) {
        fill_queue_.pop_front();
        --outstanding_;
        write_port_free_at_ = now + params_.write_occupancy;
      } else if (!store_queue_.empty() && store_queue_.front() <= now) {
        store_queue_.pop_front();
        --outstanding_;
        write_port_free_at_ = now + params_.write_occupancy;
      }
    }

    for (ReadSlot& slot : slots_) {
      if (!slot.valid || slot.visible_at > now) continue;
      slot.priority.shift();
      if (slot.priority.expired()) {
        if (slot.half_misses == 0) ++stats_.half_misses;
        ++slot.half_misses;
        slot.priority.preload(1);
      }
    }
  }

  const core::ControllerStats& stats() const { return stats_; }

 private:
  struct ReadSlot {
    bool valid = false;
    std::int64_t issued_at = 0;
    std::int64_t visible_at = 0;
    std::uint32_t half_misses = 0;
    core::PriorityRegister priority;
  };

  void note_arrival(std::int64_t visible_at) {
    ++arrival_ring_[static_cast<std::size_t>(visible_at) %
                    arrival_ring_.size()];
  }

  core::ControllerParams params_;
  util::Rng rng_;
  std::vector<ReadSlot> slots_;
  std::deque<std::int64_t> pending_store_times_;
  std::deque<std::int64_t> store_queue_;
  std::uint32_t pending_stores_ = 0;
  std::deque<std::int64_t> fill_queue_;
  std::int64_t read_port_free_at_ = 0;
  std::int64_t write_port_free_at_ = 0;
  std::array<std::uint32_t, 8> arrival_ring_{};
  std::uint32_t outstanding_ = 0;
  std::uint32_t rr_cursor_ = 0;
  core::ControllerStats stats_;
};

}  // namespace respin::test
