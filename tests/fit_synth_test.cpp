// respin::trace::fit + workload synthesis — the trace-fitting analyzer
// and the profile-driven generator. Pins:
//   - fit_trace measures hand-built traces exactly (mix, sharing, exact
//     LRU stack-distance histogram),
//   - the profile JSON form round-trips byte-stably,
//   - SynthFromProfile is deterministic in (profile, seed) and clones
//     mid-stream (the ClusterSim snapshot contract),
//   - fit(synth(fit(trace))) reproduces the measured mix and reuse
//     histogram within the tolerances documented in docs/traces.md,
//   - a synthesized trace replays bit-identically to the live synth run,
//   - profile-backed request specs get canonical keys.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/serde.hpp"
#include "sim_result_eq.hpp"
#include "trace/capture.hpp"
#include "trace/fit/fit.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"
#include "workload/synth.hpp"
#include "workload/workload.hpp"

namespace respin {
namespace {

using workload::OpKind;
using workload::WorkloadProfile;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "respin_fit_test_" + name;
}

workload::Op compute(std::uint32_t count, double ipc = 1.0) {
  return {.kind = OpKind::kCompute, .count = count, .addr = 0, .ipc = ipc};
}

workload::Op load(mem::Addr addr) {
  return {.kind = OpKind::kLoad, .count = 1, .addr = addr};
}

workload::Op store(mem::Addr addr) {
  return {.kind = OpKind::kStore, .count = 1, .addr = addr};
}

/// Writes a hand-built trace: one op vector per thread.
std::string write_trace(const std::string& name,
                        const std::vector<std::vector<workload::Op>>& threads) {
  const std::string path = temp_path(name);
  trace::TraceHeader header;
  header.thread_count = static_cast<std::uint32_t>(threads.size());
  header.benchmark = "handmade";
  trace::TraceWriter writer(path, header);
  for (std::uint32_t t = 0; t < threads.size(); ++t) {
    for (const workload::Op& op : threads[t]) writer.add_op(t, op);
  }
  writer.finish();
  return path;
}

/// Records the radix benchmark small and fits it — the shared fixture for
/// the round-trip and synthesis tests.
WorkloadProfile fitted_radix(double scale = 0.02, std::uint32_t threads = 4) {
  const std::string path = temp_path("radix_fixture.rspt");
  trace::record_benchmark(workload::benchmark("radix"), threads, scale, 7,
                          path);
  const trace::TraceData data = trace::load_trace(path);
  WorkloadProfile profile = trace::fit::fit_trace(data);
  std::remove(path.c_str());
  return profile;
}

// ---- Measurement ---------------------------------------------------------

TEST(FitProfile, MeasuresMixAndExactReuseDistances) {
  // One thread: 8 compute, then accesses with known stack distances.
  //   load A   cold
  //   load A   distance 0 -> bucket 0
  //   load B   cold
  //   load A   distance 1 -> bucket 1
  //   store B  distance 1 -> bucket 1
  const mem::Addr A = 0x1000, B = 0x2000;
  const std::string path = write_trace(
      "mix.rspt",
      {{compute(8), load(A), load(A), load(B), load(A), store(B)}});
  const WorkloadProfile p = trace::fit::fit_trace(trace::load_trace(path));

  EXPECT_EQ(p.thread_count, 1u);
  EXPECT_EQ(p.instructions, 13u);  // 8 compute + 5 accesses.
  EXPECT_EQ(p.mem_ops, 5u);
  EXPECT_EQ(p.loads, 4u);
  EXPECT_EQ(p.stores, 1u);
  EXPECT_DOUBLE_EQ(p.mem_fraction, 5.0 / 13.0);
  EXPECT_DOUBLE_EQ(p.store_fraction, 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(p.shared_fraction, 0.0);
  EXPECT_EQ(p.shared_pool_lines, 0u);

  ASSERT_EQ(p.reuse_hist.size(), workload::kReuseBuckets);
  EXPECT_EQ(p.reuse_hist[0], 1u);                            // Distance 0.
  EXPECT_EQ(p.reuse_hist[1], 2u);                            // Distance 1.
  EXPECT_EQ(p.reuse_hist[workload::kReuseBuckets - 1], 2u);  // Cold.
  std::uint64_t total = 0;
  for (const std::uint64_t b : p.reuse_hist) total += b;
  EXPECT_EQ(total, p.mem_ops);
  std::remove(path.c_str());
}

TEST(FitProfile, MeasuresSharingAcrossThreads) {
  // Line S is touched by both threads (3 of 4 accesses); P is private.
  const mem::Addr S = 0x8000, P = 0x9000;
  const std::string path = write_trace(
      "share.rspt", {{load(S), load(S)}, {load(S), store(P)}});
  const WorkloadProfile p = trace::fit::fit_trace(trace::load_trace(path));
  EXPECT_EQ(p.mem_ops, 4u);
  EXPECT_DOUBLE_EQ(p.shared_fraction, 3.0 / 4.0);
  EXPECT_EQ(p.shared_pool_lines, 1u);
  std::remove(path.c_str());
}

TEST(FitProfile, ComputeOnlyTraceHasNothingToFit) {
  const std::string path = write_trace("pure.rspt", {{compute(100)}});
  const trace::TraceData data = trace::load_trace(path);
  try {
    trace::fit::fit_trace(data);
    FAIL() << "expected TraceError";
  } catch (const trace::TraceError& e) {
    EXPECT_EQ(e.kind(), trace::TraceErrorKind::kMismatch);
  }
  std::remove(path.c_str());
}

TEST(FitProfile, ReuseBucketMappingIsLog2) {
  EXPECT_EQ(workload::reuse_bucket(0), 0u);
  EXPECT_EQ(workload::reuse_bucket(1), 1u);
  EXPECT_EQ(workload::reuse_bucket(2), 2u);
  EXPECT_EQ(workload::reuse_bucket(3), 2u);
  EXPECT_EQ(workload::reuse_bucket(4), 3u);
  EXPECT_EQ(workload::reuse_bucket(workload::kColdDistance),
            workload::kReuseBuckets - 1);
  // Deep-but-finite distances saturate the last finite bucket, not cold.
  EXPECT_EQ(workload::reuse_bucket(std::uint64_t{1} << 40),
            workload::kReuseBuckets - 2);
}

// ---- Profile JSON --------------------------------------------------------

TEST(FitProfile, JsonRoundTripsByteStably) {
  const WorkloadProfile p = fitted_radix();
  const std::string dumped = trace::fit::profile_to_json(p).dump();
  const WorkloadProfile parsed =
      trace::fit::profile_from_json(obs::json::parse(dumped));
  // Byte-stable: serialize -> parse -> serialize is the identity.
  EXPECT_EQ(trace::fit::profile_to_json(parsed).dump(), dumped);

  EXPECT_EQ(parsed.name, p.name);
  EXPECT_EQ(parsed.thread_count, p.thread_count);
  EXPECT_EQ(parsed.mem_ops, p.mem_ops);
  EXPECT_EQ(parsed.reuse_hist, p.reuse_hist);
  ASSERT_EQ(parsed.phases.size(), p.phases.size());
  for (std::size_t i = 0; i < p.phases.size(); ++i) {
    EXPECT_EQ(parsed.phases[i].instructions, p.phases[i].instructions);
    EXPECT_EQ(parsed.phases[i].mem_fraction, p.phases[i].mem_fraction);
    EXPECT_EQ(parsed.phases[i].store_fraction, p.phases[i].store_fraction);
  }
}

TEST(FitProfile, SaveAndLoadFileForms) {
  const WorkloadProfile p = fitted_radix();
  const std::string path = temp_path("profile.json");
  trace::fit::save_profile(p, path);
  const WorkloadProfile loaded = trace::fit::load_profile(path);
  EXPECT_EQ(trace::fit::profile_to_json(loaded).dump(),
            trace::fit::profile_to_json(p).dump());
  std::remove(path.c_str());

  try {
    trace::fit::load_profile(temp_path("missing_profile.json"));
    FAIL() << "expected TraceError";
  } catch (const trace::TraceError& e) {
    EXPECT_EQ(e.kind(), trace::TraceErrorKind::kIo);
  }
}

// ---- Synthesis -----------------------------------------------------------

TEST(SynthFromProfile, DeterministicAndCloneable) {
  const auto profile = std::make_shared<const WorkloadProfile>(fitted_radix());
  workload::SynthFromProfile a(profile, 0, 4, 1.0, 3);
  workload::SynthFromProfile b(profile, 0, 4, 1.0, 3);

  // Drain halfway, snapshot, and require the clone to continue in
  // lockstep with the original — ClusterSim snapshots depend on this.
  std::unique_ptr<workload::OpSource> clone;
  for (int i = 0; i < 100000; ++i) {
    const workload::Op oa = a.next();
    const workload::Op ob = i < 500 ? b.next() : clone->next();
    if (i == 499) clone = b.clone();
    ASSERT_EQ(static_cast<int>(oa.kind), static_cast<int>(ob.kind)) << i;
    ASSERT_EQ(oa.count, ob.count) << i;
    ASSERT_EQ(oa.addr, ob.addr) << i;
    if (oa.kind == OpKind::kFinished) break;
  }
  EXPECT_EQ(a.next_ifetch_addr(), b.next_ifetch_addr());

  // A different seed diverges (not a constant generator).
  workload::SynthFromProfile c(profile, 0, 4, 1.0, 4);
  bool diverged = false;
  workload::SynthFromProfile a2(profile, 0, 4, 1.0, 3);
  for (int i = 0; i < 1000 && !diverged; ++i) {
    const workload::Op oa = a2.next();
    const workload::Op oc = c.next();
    diverged = oa.kind != oc.kind || oa.count != oc.count || oa.addr != oc.addr;
  }
  EXPECT_TRUE(diverged);
}

TEST(SynthFromProfile, ThreadsShareIdenticalBarrierSchedules) {
  const auto profile = std::make_shared<const WorkloadProfile>(fitted_radix());
  std::vector<std::uint64_t> barrier_counts;
  for (std::uint32_t t = 0; t < 4; ++t) {
    workload::SynthFromProfile s(profile, t, 4, 1.0, 3);
    std::uint64_t barriers = 0;
    for (;;) {
      const workload::Op op = s.next();
      if (op.kind == OpKind::kFinished) break;
      if (op.kind == OpKind::kBarrier) ++barriers;
    }
    barrier_counts.push_back(barriers);
  }
  // Every thread must arrive at every barrier or replay would deadlock.
  for (const std::uint64_t count : barrier_counts) {
    EXPECT_EQ(count, barrier_counts.front());
  }
  EXPECT_EQ(barrier_counts.front(), profile->phases.size());
}

// The headline tolerance contract (documented in docs/traces.md):
// fitting a synthesized trace reproduces the source profile's read/write
// mix within 10% relative (0.02 absolute floor) and its reuse-distance
// histogram within 0.15 total-variation distance.
TEST(SynthFromProfile, FitOfSynthReproducesProfileWithinTolerance) {
  const WorkloadProfile p = fitted_radix(/*scale=*/0.05);
  const std::string path = temp_path("synth_rt.rspt");
  trace::fit::synthesize_trace(p, p.thread_count, 1.0, 11, path);
  const WorkloadProfile q =
      trace::fit::fit_trace(trace::load_trace(path));
  std::remove(path.c_str());

  const auto close = [](double got, double want, double rel, double floor) {
    const double tol = std::max(floor, rel * std::abs(want));
    EXPECT_NEAR(got, want, tol);
  };
  close(q.mem_fraction, p.mem_fraction, 0.10, 0.02);
  close(q.store_fraction, p.store_fraction, 0.10, 0.02);
  close(q.shared_fraction, p.shared_fraction, 0.25, 0.05);
  close(static_cast<double>(q.instructions),
        static_cast<double>(p.instructions), 0.10, 0.0);

  // Total-variation distance between the normalized reuse histograms.
  double tv = 0.0;
  for (std::size_t b = 0; b < p.reuse_hist.size(); ++b) {
    const double pw =
        static_cast<double>(p.reuse_hist[b]) / static_cast<double>(p.mem_ops);
    const double qw =
        static_cast<double>(q.reuse_hist[b]) / static_cast<double>(q.mem_ops);
    tv += std::abs(pw - qw);
  }
  tv /= 2.0;
  EXPECT_LE(tv, 0.15) << "reuse-distance histogram drifted";
}

TEST(SynthReplay, SynthesizedTraceReplaysBitIdenticallyToLiveRun) {
  const WorkloadProfile p = fitted_radix();
  const std::string path = temp_path("synth_replay.rspt");
  trace::fit::synthesize_trace(p, /*thread_count=*/4, 1.0, 5, path);
  const trace::TraceData data = trace::load_trace(path);

  const core::ConfigId id = core::parse_config_id("SH-STT");
  const core::SimResult replayed = trace::replay_trace(id, data, {});

  core::RunOptions options;
  options.cluster_cores = 4;
  options.seed = 5;
  const core::SimResult live = trace::fit::run_profile(
      id, std::make_shared<const WorkloadProfile>(p), options);

  core::expect_same_result(live, replayed);
  EXPECT_FALSE(replayed.hit_cycle_limit);
  std::remove(path.c_str());
}

// ---- Serving integration -------------------------------------------------

TEST(ProfileRequests, ProfileFileGetsItsOwnCanonicalKey) {
  const obs::json::Value request = obs::json::parse(
      R"({"config":"SH-STT","profile_file":"p.json","cluster":4,"seed":9})");
  const core::RequestSpec spec = core::request_spec_from_json(request);
  EXPECT_EQ(spec.profile_file, "p.json");
  const std::string key = core::canonical_key(spec);
  EXPECT_NE(key.find("\"profile_file\":\"p.json\""), std::string::npos);
  EXPECT_NE(key.find("\"cluster\":4"), std::string::npos);
  EXPECT_EQ(key.find("benchmark"), std::string::npos);

  // Round trip: parsing the canonical form reproduces the key.
  EXPECT_EQ(core::canonical_key(
                core::request_spec_from_json(obs::json::parse(key))),
            key);
}

TEST(ProfileRequests, RejectsAmbiguousWorkloadReferences) {
  EXPECT_THROW(core::request_spec_from_json(obs::json::parse(
                   R"({"benchmark":"ocean","profile_file":"p.json"})")),
               std::logic_error);
  EXPECT_THROW(core::request_spec_from_json(obs::json::parse(
                   R"({"trace_file":"t.rspt","profile_file":"p.json"})")),
               std::logic_error);
}

}  // namespace
}  // namespace respin
