// Tests for the configuration layer — the eight Table IV configurations
// plus the three technology-exploration ones must build with mutually
// consistent derived parameters.
#include <gtest/gtest.h>

#include "core/config.hpp"

namespace respin::core {
namespace {

TEST(Config, AllConfigurationsBuild) {
  const auto ids = all_config_ids();
  ASSERT_EQ(ids.size(), 11u);
  for (ConfigId id : ids) {
    const ClusterConfig cfg = make_cluster_config(id, CacheSize::kMedium);
    EXPECT_EQ(cfg.cluster_cores, 16u);
    EXPECT_EQ(cfg.clusters_per_chip, 4u);
    EXPECT_EQ(cfg.multipliers.size(), 16u);
    EXPECT_GT(cfg.power.core_instruction_pj, 0.0);
    EXPECT_GT(cfg.power.core_leakage_w, 0.0);
    EXPECT_GT(cfg.power.l1_leakage_w, 0.0);
  }
}

TEST(Config, NamesMatchPaperTableIV) {
  EXPECT_STREQ(to_string(ConfigId::kPrSramNt), "PR-SRAM-NT");
  EXPECT_STREQ(to_string(ConfigId::kHpSramCmp), "HP-SRAM-CMP");
  EXPECT_STREQ(to_string(ConfigId::kShSramNom), "SH-SRAM-Nom");
  EXPECT_STREQ(to_string(ConfigId::kShStt), "SH-STT");
  EXPECT_STREQ(to_string(ConfigId::kShSttCc), "SH-STT-CC");
  EXPECT_STREQ(to_string(ConfigId::kShSttCcOracle), "SH-STT-CC-Oracle");
  EXPECT_STREQ(to_string(ConfigId::kPrSttCc), "PR-STT-CC");
  EXPECT_STREQ(to_string(ConfigId::kShSttCcOs), "SH-STT-CC-OS");
  // Technology-exploration configurations (not in the paper's table).
  EXPECT_STREQ(to_string(ConfigId::kShPcm), "SH-PCM");
  EXPECT_STREQ(to_string(ConfigId::kShEdram), "SH-EDRAM");
  EXPECT_STREQ(to_string(ConfigId::kShHybrid), "SH-HYBRID-4+12");
}

TEST(Config, BaselineIsPrivateSramAtSafeRail) {
  const auto cfg = make_cluster_config(ConfigId::kPrSramNt, CacheSize::kMedium);
  EXPECT_FALSE(cfg.shared_l1);
  EXPECT_EQ(cfg.cache_tech, nvsim::MemTech::kSram);
  EXPECT_DOUBLE_EQ(cfg.cache_vdd, 0.65);
  EXPECT_DOUBLE_EQ(cfg.core_vdd, 0.40);
  EXPECT_EQ(cfg.governor, GovernorKind::kNone);
  EXPECT_TRUE(cfg.l1_crosses_domains);
}

TEST(Config, HighPerformanceRunsEverythingNominal) {
  const auto cfg =
      make_cluster_config(ConfigId::kHpSramCmp, CacheSize::kMedium);
  EXPECT_DOUBLE_EQ(cfg.core_vdd, 1.0);
  EXPECT_DOUBLE_EQ(cfg.cache_vdd, 1.0);
  EXPECT_FALSE(cfg.l1_crosses_domains);
  for (int m : cfg.multipliers) {
    EXPECT_GE(m, 1);
    EXPECT_LE(m, 2);
  }
}

TEST(Config, SharedSttIsTheProposal) {
  const auto cfg = make_cluster_config(ConfigId::kShStt, CacheSize::kMedium);
  EXPECT_TRUE(cfg.shared_l1);
  EXPECT_EQ(cfg.cache_tech, nvsim::MemTech::kSttRam);
  EXPECT_DOUBLE_EQ(cfg.cache_vdd, 1.0);
  EXPECT_DOUBLE_EQ(cfg.core_vdd, 0.40);
  EXPECT_EQ(cfg.l1_shared_capacity, 256u * 1024u);  // 16KB x 16 cores.
  // The paper's single-cycle STT read at 2.5 GHz.
  EXPECT_EQ(cfg.controller.read_occupancy, 1u);
}

TEST(Config, SharedSramReadTakesTwoCycles) {
  const auto cfg =
      make_cluster_config(ConfigId::kShSramNom, CacheSize::kMedium);
  EXPECT_EQ(cfg.controller.read_occupancy, 2u);  // 533.6 ps at 0.4 ns clock.
}

TEST(Config, GovernorsWiredPerConfig) {
  EXPECT_EQ(make_cluster_config(ConfigId::kShSttCc, CacheSize::kMedium)
                .governor,
            GovernorKind::kGreedy);
  EXPECT_EQ(make_cluster_config(ConfigId::kShSttCcOracle, CacheSize::kMedium)
                .governor,
            GovernorKind::kOracle);
  EXPECT_EQ(make_cluster_config(ConfigId::kPrSttCc, CacheSize::kMedium)
                .governor,
            GovernorKind::kGreedy);
  EXPECT_EQ(make_cluster_config(ConfigId::kShSttCcOs, CacheSize::kMedium)
                .governor,
            GovernorKind::kOs);
  EXPECT_FALSE(
      make_cluster_config(ConfigId::kPrSttCc, CacheSize::kMedium).shared_l1);
}

TEST(Config, NtMultipliersInPaperRange) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto cfg =
        make_cluster_config(ConfigId::kShStt, CacheSize::kMedium, 16, seed);
    for (int m : cfg.multipliers) {
      EXPECT_GE(m, 4);  // 1.6 ns.
      EXPECT_LE(m, 6);  // 2.4 ns.
    }
  }
}

TEST(Config, TableICacheSizes) {
  EXPECT_EQ(chip_l2_bytes(CacheSize::kSmall), 8ull << 20);
  EXPECT_EQ(chip_l2_bytes(CacheSize::kMedium), 16ull << 20);
  EXPECT_EQ(chip_l2_bytes(CacheSize::kLarge), 32ull << 20);
  EXPECT_EQ(chip_l3_bytes(CacheSize::kSmall), 24ull << 20);
  EXPECT_EQ(chip_l3_bytes(CacheSize::kMedium), 48ull << 20);
  EXPECT_EQ(chip_l3_bytes(CacheSize::kLarge), 96ull << 20);
}

TEST(Config, BacksideSlicesScaleWithSizeClass) {
  const auto small = make_cluster_config(ConfigId::kShStt, CacheSize::kSmall);
  const auto large = make_cluster_config(ConfigId::kShStt, CacheSize::kLarge);
  EXPECT_EQ(small.backside.l2_capacity_bytes, 2ull << 20);
  EXPECT_EQ(large.backside.l2_capacity_bytes, 8ull << 20);
  EXPECT_EQ(small.backside.l3_capacity_bytes, 6ull << 20);
  EXPECT_EQ(large.backside.l3_capacity_bytes, 24ull << 20);
  EXPECT_GT(large.power.l2_leakage_w, small.power.l2_leakage_w);
}

TEST(Config, ClusterSizeSweepGeometry) {
  for (std::uint32_t cores : {4u, 8u, 16u, 32u}) {
    const auto cfg =
        make_cluster_config(ConfigId::kShStt, CacheSize::kMedium, cores);
    EXPECT_EQ(cfg.cluster_cores, cores);
    EXPECT_EQ(cfg.clusters_per_chip, 64u / cores);
    EXPECT_EQ(cfg.l1_shared_capacity, 16ull * 1024 * cores);
    // Total chip L2/L3 stays constant across cluster sizes.
    EXPECT_EQ(cfg.backside.l2_capacity_bytes * cfg.clusters_per_chip,
              chip_l2_bytes(CacheSize::kMedium));
  }
}

TEST(Config, NtSramBacksideIsSlowerThanStt) {
  const auto baseline =
      make_cluster_config(ConfigId::kPrSramNt, CacheSize::kMedium);
  const auto stt = make_cluster_config(ConfigId::kShStt, CacheSize::kMedium);
  EXPECT_GT(baseline.backside.l2_hit_cycles, stt.backside.l2_hit_cycles);
  EXPECT_GT(baseline.backside.l3_hit_cycles, stt.backside.l3_hit_cycles);
}

TEST(Config, PrivateSttStoreTakesAboutThreeCoreCycles) {
  // Paper §II: nominal-voltage STT-RAM writes complete in ~3 cycles of a
  // 500 MHz core.
  const auto cfg = make_cluster_config(ConfigId::kPrSttCc, CacheSize::kMedium);
  EXPECT_GE(cfg.private_store_cycles, 2u);
  EXPECT_LE(cfg.private_store_cycles, 4u);
}

TEST(Config, BarrierCostsReflectCoherence) {
  const auto shared = make_cluster_config(ConfigId::kShStt, CacheSize::kMedium);
  const auto private_cfg =
      make_cluster_config(ConfigId::kPrSramNt, CacheSize::kMedium);
  EXPECT_LT(shared.barrier_arrival_cycles, private_cfg.barrier_arrival_cycles);
  EXPECT_EQ(shared.barrier_arrival_messages, 0u);
  EXPECT_GT(private_cfg.barrier_arrival_messages, 0u);
}

TEST(Config, LeakagePowersFollowTableIIIRatios) {
  const auto nt = make_cluster_config(ConfigId::kPrSramNt, CacheSize::kMedium);
  const auto nom =
      make_cluster_config(ConfigId::kShSramNom, CacheSize::kMedium);
  const auto stt = make_cluster_config(ConfigId::kShStt, CacheSize::kMedium);
  // SRAM at 0.65 V leaks 65% of nominal; STT leaks ~13% of nominal SRAM.
  EXPECT_NEAR(nt.power.l2_leakage_w / nom.power.l2_leakage_w, 0.65, 0.01);
  EXPECT_NEAR(stt.power.l2_leakage_w / nom.power.l2_leakage_w, 114.0 / 881.0,
              0.01);
}

TEST(Config, InvalidClusterSizesRejected) {
  EXPECT_THROW(make_cluster_config(ConfigId::kShStt, CacheSize::kMedium, 3),
               std::logic_error);
  EXPECT_THROW(make_cluster_config(ConfigId::kShStt, CacheSize::kMedium, 64),
               std::logic_error);
  EXPECT_THROW(make_cluster_config(ConfigId::kShStt, CacheSize::kMedium, 0),
               std::logic_error);
}

TEST(Config, SeedsChangeMultipliersOnly) {
  const auto a = make_cluster_config(ConfigId::kShStt, CacheSize::kMedium, 16, 1);
  const auto b = make_cluster_config(ConfigId::kShStt, CacheSize::kMedium, 16, 2);
  EXPECT_EQ(a.backside.l2_hit_cycles, b.backside.l2_hit_cycles);
  EXPECT_EQ(a.power.l1_read_pj, b.power.l1_read_pj);
  EXPECT_NE(a.multipliers, b.multipliers);
}

}  // namespace
}  // namespace respin::core
