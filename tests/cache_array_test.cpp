// Tests for respin::mem::CacheArray — lookup/insert/LRU/invalidations plus
// a randomized property test against a reference model.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "mem/cache_array.hpp"
#include "util/rng.hpp"

namespace respin::mem {
namespace {

TEST(CacheArray, GeometryDerivation) {
  CacheArray cache(16 * 1024, 32, 4);
  EXPECT_EQ(cache.set_count(), 128u);
  EXPECT_EQ(cache.ways(), 4u);
  EXPECT_EQ(cache.capacity_bytes(), 16u * 1024u);
}

TEST(CacheArray, NonPowerOfTwoSetCountAllowed) {
  // 12 MB L3 slice with 128B lines, 16 ways -> 6144 sets.
  CacheArray cache(12ull << 20, 128, 16);
  EXPECT_EQ(cache.set_count(), 6144u);
}

TEST(CacheArray, MissThenHit) {
  CacheArray cache(1024, 32, 2);
  EXPECT_FALSE(cache.access(5).has_value());
  cache.insert(5, Mesi::kExclusive);
  auto state = cache.access(5);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(*state, Mesi::kExclusive);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheArray, LruEvictsLeastRecentlyUsed) {
  CacheArray cache(2 * 32, 32, 2);  // One set, two ways.
  cache.insert(0, Mesi::kExclusive);
  cache.insert(1, Mesi::kExclusive);
  cache.access(0);  // 1 is now LRU.
  auto evicted = cache.insert(2, Mesi::kExclusive);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line, 1u);
  EXPECT_TRUE(cache.probe(0).has_value());
  EXPECT_TRUE(cache.probe(2).has_value());
  EXPECT_FALSE(cache.probe(1).has_value());
}

TEST(CacheArray, DirtyEvictionReported) {
  CacheArray cache(2 * 32, 32, 2);
  cache.insert(0, Mesi::kModified);
  cache.insert(1, Mesi::kExclusive);
  cache.access(1);
  auto evicted = cache.insert(2, Mesi::kExclusive);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line, 0u);
  EXPECT_TRUE(evicted->dirty);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheArray, InsertPrefersInvalidWay) {
  CacheArray cache(2 * 32, 32, 2);
  cache.insert(0, Mesi::kExclusive);
  EXPECT_FALSE(cache.insert(1, Mesi::kExclusive).has_value());
}

TEST(CacheArray, DoubleInsertRejected) {
  CacheArray cache(1024, 32, 2);
  cache.insert(3, Mesi::kShared);
  EXPECT_THROW(cache.insert(3, Mesi::kShared), std::logic_error);
}

TEST(CacheArray, ProbeDoesNotDisturbState) {
  CacheArray cache(2 * 32, 32, 2);
  cache.insert(0, Mesi::kExclusive);
  cache.insert(1, Mesi::kExclusive);
  const auto hits_before = cache.stats().hits;
  cache.probe(0);
  EXPECT_EQ(cache.stats().hits, hits_before);
  // Probe must not refresh LRU: 0 is still the LRU victim.
  auto evicted = cache.insert(2, Mesi::kExclusive);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line, 0u);
}

TEST(CacheArray, SetStateAndInvalidate) {
  CacheArray cache(1024, 32, 2);
  cache.insert(9, Mesi::kShared);
  EXPECT_TRUE(cache.set_state(9, Mesi::kModified));
  EXPECT_EQ(*cache.probe(9), Mesi::kModified);
  bool dirty = false;
  EXPECT_TRUE(cache.invalidate(9, &dirty));
  EXPECT_TRUE(dirty);
  EXPECT_FALSE(cache.probe(9).has_value());
  EXPECT_FALSE(cache.invalidate(9, &dirty));
  EXPECT_FALSE(dirty);
  EXPECT_FALSE(cache.set_state(9, Mesi::kShared));
}

TEST(CacheArray, SetStateToInvalidRejected) {
  CacheArray cache(1024, 32, 2);
  cache.insert(1, Mesi::kShared);
  EXPECT_THROW(cache.set_state(1, Mesi::kInvalid), std::logic_error);
}

TEST(CacheArray, FlushDropsEverythingCountsWritebacks) {
  CacheArray cache(1024, 32, 2);
  cache.insert(1, Mesi::kModified);
  cache.insert(2, Mesi::kShared);
  cache.flush();
  EXPECT_EQ(cache.resident_lines(), 0u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
}

TEST(CacheArray, DistinctSetsDoNotConflict) {
  CacheArray cache(4 * 32, 32, 2);  // Two sets.
  cache.insert(0, Mesi::kExclusive);  // Set 0.
  cache.insert(1, Mesi::kExclusive);  // Set 1.
  cache.insert(2, Mesi::kExclusive);  // Set 0.
  cache.insert(3, Mesi::kExclusive);  // Set 1.
  EXPECT_EQ(cache.resident_lines(), 4u);
}

TEST(CacheArray, BadGeometryRejected) {
  EXPECT_THROW(CacheArray(1000, 33, 2), std::logic_error);   // Non-pow2 line.
  EXPECT_THROW(CacheArray(1024, 32, 0), std::logic_error);   // Zero ways.
  EXPECT_THROW(CacheArray(100, 32, 2), std::logic_error);    // Ragged sets.
}

// Property test: against a reference model (per-set map with LRU ordering),
// a long random operation sequence must behave identically.
class ReferenceCache {
 public:
  ReferenceCache(std::uint32_t sets, std::uint32_t ways)
      : sets_(sets), ways_(ways), storage_(sets) {}

  bool access(LineAddr line) {
    auto& set = storage_[line % sets_];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->line == line) {
        Entry entry = *it;
        set.erase(it);
        set.push_back(entry);  // MRU at back.
        return true;
      }
    }
    return false;
  }

  void insert(LineAddr line) {
    auto& set = storage_[line % sets_];
    if (set.size() == ways_) set.erase(set.begin());
    set.push_back(Entry{line});
  }

  bool invalidate(LineAddr line) {
    auto& set = storage_[line % sets_];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->line == line) {
        set.erase(it);
        return true;
      }
    }
    return false;
  }

 private:
  struct Entry {
    LineAddr line;
  };
  std::uint32_t sets_;
  std::uint32_t ways_;
  std::vector<std::vector<Entry>> storage_;
};

TEST(CacheArrayProperty, MatchesReferenceModel) {
  constexpr std::uint32_t kSets = 16;
  constexpr std::uint32_t kWays = 4;
  CacheArray cache(kSets * kWays * 32, 32, kWays);
  ReferenceCache reference(kSets, kWays);
  util::Rng rng("cache.property", 1);

  for (int i = 0; i < 20000; ++i) {
    const LineAddr line = rng.uniform_u64(kSets * kWays * 3);
    const double action = rng.uniform();
    if (action < 0.7) {
      const bool expect_hit = reference.access(line);
      const bool hit = cache.access(line).has_value();
      ASSERT_EQ(hit, expect_hit) << "op " << i << " line " << line;
      if (!hit) {
        reference.insert(line);
        cache.insert(line, Mesi::kExclusive);
      }
    } else if (action < 0.85) {
      ASSERT_EQ(cache.invalidate(line), reference.invalidate(line))
          << "op " << i;
    } else {
      ASSERT_EQ(cache.probe(line).has_value(), reference.access(line))
          << "op " << i;
      // Reference access refreshed LRU; mirror it.
      if (cache.probe(line).has_value()) cache.access(line);
    }
  }
}

TEST(CacheArrayProperty, ResidencyNeverExceedsCapacity) {
  CacheArray cache(64 * 32, 32, 4);
  util::Rng rng("cache.residency", 2);
  for (int i = 0; i < 5000; ++i) {
    const LineAddr line = rng.uniform_u64(1024);
    if (!cache.access(line).has_value()) {
      cache.insert(line, rng.bernoulli(0.5) ? Mesi::kModified
                                            : Mesi::kExclusive);
    }
    ASSERT_LE(cache.resident_lines(), 64u);
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 5000u);
}

}  // namespace
}  // namespace respin::mem
