// Golden-stats regression test: reruns the pinned golden grid (every
// Table IV configuration x {ocean, radix, lu, fft} at the golden workload
// scale) and diffs the full counter registries against the checked-in
// snapshot tests/goldens/metrics.csv.
//
// The simulator is deterministic, so ANY drift is a real behaviour change:
// the failure message names every drifted counter with both values. After
// an intentional change, regenerate with scripts/update_goldens.sh and
// review the diff.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "obs/golden.hpp"

#ifndef RESPIN_GOLDENS_FILE
#error "RESPIN_GOLDENS_FILE must point at tests/goldens/metrics.csv"
#endif

namespace respin {
namespace {

std::vector<obs::MetricsRow> load_goldens() {
  std::ifstream in(RESPIN_GOLDENS_FILE);
  EXPECT_TRUE(in.good()) << "cannot open " << RESPIN_GOLDENS_FILE
                         << " — run scripts/update_goldens.sh";
  return obs::read_metrics_csv(in);
}

TEST(Goldens, GridShapeIsPinned) {
  const std::vector<obs::MetricsRow> golden = load_goldens();
  EXPECT_EQ(golden.size(), core::all_config_ids().size() *
                               core::golden_benchmarks().size());
  for (const obs::MetricsRow& row : golden) {
    EXPECT_FALSE(row.counters.empty()) << row.run;
    EXPECT_NE(row.counters.find("sim.cycles"), nullptr) << row.run;
    EXPECT_NE(row.counters.find("energy.total_pj"), nullptr) << row.run;
  }
}

TEST(Goldens, LiveRunsMatchCheckedInSnapshot) {
  const std::vector<obs::MetricsRow> golden = load_goldens();
  ASSERT_FALSE(golden.empty());
  const std::vector<obs::MetricsRow> live = core::golden_snapshot();
  const obs::GoldenDiff diff = obs::diff_metrics(golden, live);
  EXPECT_TRUE(diff.ok())
      << "golden drift (" << diff.count() << " counters) — if intentional, "
      << "regenerate with scripts/update_goldens.sh:\n"
      << diff.report();
}

// The harness itself must fail loudly: a perturbed counter produces a
// drift line naming the run and counter.
TEST(Goldens, PerturbedCounterFailsWithItsName) {
  std::vector<obs::MetricsRow> golden = load_goldens();
  ASSERT_FALSE(golden.empty());
  std::vector<obs::MetricsRow> live = golden;

  obs::CounterSet perturbed;
  for (const obs::Counter& c : live[0].counters.items()) {
    perturbed.add(c.name, c.name == "sim.cycles" ? c.value + 1.0 : c.value);
  }
  live[0].counters = perturbed;

  const obs::GoldenDiff diff = obs::diff_metrics(golden, live);
  ASSERT_EQ(diff.count(), 1u) << diff.report();
  EXPECT_NE(diff.report().find(live[0].run), std::string::npos)
      << diff.report();
  EXPECT_NE(diff.report().find("sim.cycles"), std::string::npos)
      << diff.report();
}

}  // namespace
}  // namespace respin
