// Paper-shape regression tests.
//
// These lock in the *qualitative results* of the reproduction at reduced
// workload scale: who wins, in which direction, and roughly by how much.
// They are the contract between this repository and the paper's claims;
// the bench harnesses print the full-scale versions.
#include <gtest/gtest.h>

#include <map>

#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

namespace respin::core {
namespace {

// One shared run cache so each (config, benchmark) simulates once.
const SimResult& cached(ConfigId id, const std::string& bench) {
  static std::map<std::pair<ConfigId, std::string>, SimResult> cache;
  const auto key = std::make_pair(id, bench);
  auto it = cache.find(key);
  if (it == cache.end()) {
    RunOptions options;
    options.workload_scale = 0.3;
    it = cache.emplace(key, run_experiment(id, bench, options)).first;
  }
  return it->second;
}

double suite_energy_ratio(ConfigId id) {
  std::vector<double> ratios;
  for (const std::string& bench : workload::benchmark_names()) {
    ratios.push_back(cached(id, bench).energy.total() /
                     cached(ConfigId::kPrSramNt, bench).energy.total());
  }
  return util::geometric_mean(ratios);
}

double suite_time_ratio(ConfigId id) {
  std::vector<double> ratios;
  for (const std::string& bench : workload::benchmark_names()) {
    ratios.push_back(cached(id, bench).seconds /
                     cached(ConfigId::kPrSramNt, bench).seconds);
  }
  return util::geometric_mean(ratios);
}

// --- Figure 7: performance -------------------------------------------------

TEST(PaperShapes, Fig7SharedSttSpeedsUpTheSuite) {
  const double ratio = suite_time_ratio(ConfigId::kShStt);
  // Paper: 0.89. Allow the scaled-down band.
  EXPECT_LT(ratio, 0.97);
  EXPECT_GT(ratio, 0.80);
}

TEST(PaperShapes, Fig7HighPerformanceChipIsFastest) {
  EXPECT_LT(suite_time_ratio(ConfigId::kHpSramCmp),
            suite_time_ratio(ConfigId::kShStt));
}

TEST(PaperShapes, Fig7RaytraceBenefitsMost) {
  // raytrace's shared-scene reuse makes it a top shared-cache winner.
  const double raytrace = cached(ConfigId::kShStt, "raytrace").seconds /
                          cached(ConfigId::kPrSramNt, "raytrace").seconds;
  EXPECT_LT(raytrace, suite_time_ratio(ConfigId::kShStt));
}

// --- Figures 8/9: energy ----------------------------------------------------

TEST(PaperShapes, Fig9SharedSttSavesAboutAQuarter) {
  const double ratio = suite_energy_ratio(ConfigId::kShStt);
  // Paper: 0.77.
  EXPECT_LT(ratio, 0.85);
  EXPECT_GT(ratio, 0.68);
}

TEST(PaperShapes, Fig9HighPerformanceChipCostsMore) {
  const double ratio = suite_energy_ratio(ConfigId::kHpSramCmp);
  // Paper: 1.40.
  EXPECT_GT(ratio, 1.15);
  EXPECT_LT(ratio, 1.75);
}

TEST(PaperShapes, Fig9OracleBeatsPlainShared) {
  EXPECT_LT(suite_energy_ratio(ConfigId::kShSttCcOracle),
            suite_energy_ratio(ConfigId::kShStt));
}

TEST(PaperShapes, Fig9OsConsolidationIsCounterproductive) {
  // Paper: +27% vs SH-STT.
  EXPECT_GT(suite_energy_ratio(ConfigId::kShSttCcOs),
            1.1 * suite_energy_ratio(ConfigId::kShStt));
}

TEST(PaperShapes, Fig8SavingsGrowWithCacheSize) {
  auto ratio_at = [&](CacheSize size) {
    RunOptions options;
    options.workload_scale = 0.3;
    options.size = size;
    std::vector<double> ratios;
    for (const char* bench : {"ocean", "raytrace", "swaptions"}) {
      const double base =
          run_experiment(ConfigId::kPrSramNt, bench, options).energy.total();
      ratios.push_back(
          run_experiment(ConfigId::kShStt, bench, options).energy.total() /
          base);
    }
    return util::geometric_mean(ratios);
  };
  const double small = ratio_at(CacheSize::kSmall);
  const double large = ratio_at(CacheSize::kLarge);
  EXPECT_LT(large, small);  // Bigger caches -> bigger leakage savings.
}

// --- Figures 10/11: shared-cache service quality ----------------------------

TEST(PaperShapes, Fig10MostCyclesAreQuiet) {
  util::Histogram total(9);
  for (const char* bench : {"ocean", "raytrace", "radix"}) {
    total.merge(cached(ConfigId::kShStt, bench).dl1_arrivals);
  }
  // Paper: ~49% of cycles see no request; the distribution is decreasing.
  EXPECT_GT(total.fraction(0), 0.30);
  EXPECT_GT(total.fraction(0), total.fraction(1));
  EXPECT_GT(total.fraction(1), total.fraction(3));
}

TEST(PaperShapes, Fig11SingleCycleHitsDominate) {
  util::Histogram total(8);
  std::uint64_t half_misses = 0;
  std::uint64_t reads = 0;
  for (const std::string& bench : workload::benchmark_names()) {
    const SimResult& r = cached(ConfigId::kShStt, bench);
    total.merge(r.read_hit_latency);
    half_misses += r.dl1_half_misses;
    reads += r.dl1_read_hits + r.dl1_read_misses;
  }
  // Paper: 95.8% in one cycle, ~4% half-misses.
  EXPECT_GT(total.fraction(1), 0.90);
  const double half_miss_rate =
      static_cast<double>(half_misses) / static_cast<double>(reads);
  EXPECT_LT(half_miss_rate, 0.10);
}

// --- Figures 12-14: consolidation -------------------------------------------

TEST(PaperShapes, Fig12RadixConsolidatesDeep) {
  const SimResult& r = cached(ConfigId::kShSttCcOracle, "radix");
  EXPECT_LT(r.avg_active_cores, 12.0);
  // Radix is the paper's best consolidation case: large extra savings.
  EXPECT_LT(r.energy.total(),
            0.85 * cached(ConfigId::kShStt, "radix").energy.total());
}

TEST(PaperShapes, Fig13GreedyLagsOracleOnLu) {
  const SimResult& greedy = cached(ConfigId::kShSttCc, "lu");
  const SimResult& oracle = cached(ConfigId::kShSttCcOracle, "lu");
  // Paper Fig. 13: the greedy search is visibly sub-optimal on lu.
  EXPECT_GT(greedy.energy.total(), oracle.energy.total());
  EXPECT_GT(greedy.avg_active_cores, oracle.avg_active_cores);
}

TEST(PaperShapes, Fig14ConsolidationUsesTheDynamicRange) {
  util::RunningStat avg;
  std::uint32_t deepest = 16;
  for (const std::string& bench : workload::benchmark_names()) {
    const SimResult& r = cached(ConfigId::kShSttCcOracle, bench);
    avg.add(r.avg_active_cores);
    deepest = std::min(deepest, r.min_active_cores);
  }
  // Paper: average ~10/16 with excursions down to 4.
  EXPECT_LT(avg.mean(), 15.0);
  EXPECT_LE(deepest, 6u);
}

// --- Section V.D: cluster size ----------------------------------------------

TEST(PaperShapes, ClusterOf16BeatsClusterOf32) {
  auto gain = [&](std::uint32_t cores) {
    RunOptions options;
    options.workload_scale = 0.3;
    options.cluster_cores = cores;
    std::vector<double> ratios;
    for (const char* bench : {"ocean", "raytrace", "streamcluster"}) {
      const double base =
          run_experiment(ConfigId::kPrSramNt, bench, options).seconds;
      ratios.push_back(
          run_experiment(ConfigId::kShStt, bench, options).seconds / base);
    }
    return util::geometric_mean(ratios);
  };
  // Lower time ratio = bigger gain; 16 must beat 32 (paper §V.D).
  EXPECT_LT(gain(16), gain(32));
}

}  // namespace
}  // namespace respin::core
