// Hybrid SRAM+NVM way-partition tests, in two tiers:
//  * CacheArray unit tests for the partition mechanics (kPreferSram
//    steering, per-class reporting, pure arrays ignoring hints), and
//  * differential cluster tests pinning the degenerate-hybrid contract:
//    a hybrid configuration with all ways in one class must reproduce the
//    corresponding pure-technology configuration bit-identically.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "mem/cache_array.hpp"
#include "sim_result_eq.hpp"

namespace respin {
namespace {

// One-set array (4 ways, 64 B lines) so every line contends in set 0.
mem::CacheArray one_set_array() { return mem::CacheArray(256, 64, 4); }

TEST(HybridArray, PartitionValidatesAndReportsClass) {
  mem::CacheArray array = one_set_array();
  EXPECT_FALSE(array.hybrid());
  EXPECT_EQ(array.sram_ways(), 0u);
  EXPECT_THROW(array.set_way_partition(5), std::logic_error);

  array.set_way_partition(2);
  EXPECT_TRUE(array.hybrid());
  EXPECT_EQ(array.sram_ways(), 2u);

  // 0 and ways() both mean "pure".
  array.set_way_partition(4);
  EXPECT_FALSE(array.hybrid());
  array.set_way_partition(0);
  EXPECT_FALSE(array.hybrid());
}

TEST(HybridArray, AccessReportsWayClass) {
  mem::CacheArray array = one_set_array();
  array.set_way_partition(2);
  bool placed_sram = false;
  // Fills with kAny take free ways in order: 0,1 (SRAM class), 2,3 (NVM).
  for (mem::LineAddr line = 0; line < 4; ++line) {
    array.insert(line, mem::Mesi::kExclusive, mem::WayClassHint::kAny,
                 &placed_sram);
    EXPECT_EQ(placed_sram, line < 2) << "line " << line;
  }
  bool corrected = false;
  bool sram_way = false;
  EXPECT_TRUE(array.access(0, &corrected, &sram_way).has_value());
  EXPECT_TRUE(sram_way);
  EXPECT_TRUE(array.access(3, &corrected, &sram_way).has_value());
  EXPECT_FALSE(sram_way);
  // Misses report false.
  EXPECT_FALSE(array.access(99, &corrected, &sram_way).has_value());
  EXPECT_FALSE(sram_way);
}

TEST(HybridArray, PreferSramEvictsWithinTheSramClass) {
  mem::CacheArray array = one_set_array();
  array.set_way_partition(2);
  for (mem::LineAddr line = 0; line < 4; ++line) {
    array.insert(line, mem::Mesi::kExclusive);
  }
  // Touch the SRAM lines so the whole-set LRU victim is NVM line 2; the
  // class-restricted policy must instead pick line 0, the LRU of the SRAM
  // class — proving the hint really narrows the victim search.
  (void)array.access(0);
  (void)array.access(1);

  // kPreferSram must evict within the SRAM class even though no SRAM way
  // is free and the set-wide LRU way is an NVM one.
  bool placed_sram = false;
  const auto evicted = array.insert(100, mem::Mesi::kExclusive,
                                    mem::WayClassHint::kPreferSram,
                                    &placed_sram);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->line, 0u);
  EXPECT_TRUE(placed_sram);

  // A free SRAM way wins over eviction: invalidate the other SRAM line.
  ASSERT_TRUE(array.invalidate(1));
  const auto none = array.insert(101, mem::Mesi::kExclusive,
                                 mem::WayClassHint::kPreferSram, &placed_sram);
  EXPECT_FALSE(none.has_value());
  EXPECT_TRUE(placed_sram);
}

TEST(HybridArray, PureArrayIgnoresHintBitIdentically) {
  // Same insert/access sequence on two pure arrays, one passing
  // kPreferSram: victims and reporting must be identical.
  mem::CacheArray a = one_set_array();
  mem::CacheArray b = one_set_array();
  for (mem::LineAddr line = 0; line < 7; ++line) {
    bool a_sram = true;  // Must be reset to false by insert.
    bool b_sram = true;
    const auto ea =
        a.insert(line, mem::Mesi::kExclusive, mem::WayClassHint::kAny, &a_sram);
    const auto eb = b.insert(line, mem::Mesi::kExclusive,
                             mem::WayClassHint::kPreferSram, &b_sram);
    ASSERT_EQ(ea.has_value(), eb.has_value()) << "line " << line;
    if (ea.has_value()) {
      EXPECT_EQ(ea->line, eb->line) << "line " << line;
    }
    EXPECT_FALSE(a_sram);
    EXPECT_FALSE(b_sram);
  }
  EXPECT_EQ(a.stats().evictions, b.stats().evictions);
}

TEST(HybridArray, SteeringFallsBackWhenSramClassIsDisabled) {
  mem::CacheArray array = one_set_array();
  array.set_way_partition(2);
  // Disable both SRAM ways of set 0; kPreferSram must fall back to the
  // whole-set policy and land in the NVM class.
  array.apply_fault_map({static_cast<std::uint8_t>(fault::LineFault::kDisabled),
                         static_cast<std::uint8_t>(fault::LineFault::kDisabled),
                         static_cast<std::uint8_t>(fault::LineFault::kNone),
                         static_cast<std::uint8_t>(fault::LineFault::kNone)});
  bool placed_sram = true;
  const auto evicted = array.insert(7, mem::Mesi::kExclusive,
                                    mem::WayClassHint::kPreferSram,
                                    &placed_sram);
  EXPECT_FALSE(evicted.has_value());
  EXPECT_FALSE(placed_sram);
  bool corrected = false;
  bool sram_way = true;
  EXPECT_TRUE(array.access(7, &corrected, &sram_way).has_value());
  EXPECT_FALSE(sram_way);
}

// ---- Configuration-layer collapse of degenerate hybrids ----------------

TEST(HybridConfig, DefaultPartitionIsFourPlusTwelve) {
  const core::ClusterConfig cfg = core::make_cluster_config(
      core::ConfigId::kShHybrid, core::CacheSize::kMedium);
  EXPECT_EQ(cfg.hybrid_sram_ways, 4u);
  EXPECT_EQ(cfg.hybrid_nvm_ways, 12u);
  EXPECT_EQ(cfg.l1d_ways, 16u);
  EXPECT_EQ(cfg.cache_tech, nvsim::MemTech::kSttRam);
  // The SRAM way class carries its own access-energy prices.
  EXPECT_GT(cfg.power.l1_sram_read_pj, 0.0);
  EXPECT_GT(cfg.power.l1_sram_write_pj, 0.0);
}

TEST(HybridConfig, DegenerateRequestsCollapseToPureConfigs) {
  core::TechOverride all_nvm;
  all_nvm.hybrid_sram_ways = 0;
  all_nvm.hybrid_nvm_ways = 16;
  const core::ClusterConfig nvm = core::make_cluster_config(
      core::ConfigId::kShHybrid, core::CacheSize::kMedium, 16, 1, {}, 0,
      all_nvm);
  EXPECT_EQ(nvm.hybrid_sram_ways, 0u);
  EXPECT_EQ(nvm.l1d_ways, 16u);
  EXPECT_EQ(nvm.cache_tech, nvsim::MemTech::kSttRam);
  EXPECT_EQ(nvm.power.l1_sram_read_pj, 0.0);

  core::TechOverride all_sram;
  all_sram.hybrid_sram_ways = 16;
  all_sram.hybrid_nvm_ways = 0;
  const core::ClusterConfig sram = core::make_cluster_config(
      core::ConfigId::kShHybrid, core::CacheSize::kMedium, 16, 1, {}, 0,
      all_sram);
  EXPECT_EQ(sram.hybrid_sram_ways, 0u);
  EXPECT_EQ(sram.l1d_ways, 16u);
  EXPECT_EQ(sram.cache_tech, nvsim::MemTech::kSram);
}

TEST(HybridConfig, SharedTechOverrideSelectsBackend) {
  core::TechOverride tech;
  tech.shared_tech = nvsim::MemTech::kPcm;
  const core::ClusterConfig pcm = core::make_cluster_config(
      core::ConfigId::kShStt, core::CacheSize::kMedium, 16, 1, {}, 0, tech);
  EXPECT_EQ(pcm.cache_tech, nvsim::MemTech::kPcm);
  // PCM's traits flow into the derived parameters: its reads cannot be
  // pipelined into one cache cycle (STT-RAM's can), and its asymmetric
  // write energy shows up in the power model. Write *latency* stays off
  // the port occupancy — stores are posted (see make_cluster_config).
  const core::ClusterConfig stt = core::make_cluster_config(
      core::ConfigId::kShStt, core::CacheSize::kMedium);
  EXPECT_GT(pcm.controller.read_occupancy, stt.controller.read_occupancy);
  EXPECT_GT(pcm.power.l1_write_pj, 4.0 * pcm.power.l1_read_pj);
}

// ---- Differential: degenerate hybrids vs pure configurations -----------
// The cross-check runs real workloads; scale is tuned so each run is a few
// hundred milliseconds while still exercising fills, evictions and DVFS.

core::RunOptions small_run() {
  core::RunOptions options;
  options.workload_scale = 0.05;
  return options;
}

TEST(HybridDifferential, AllNvmHybridMatchesPureSttBitIdentically) {
  core::RunOptions options = small_run();
  options.tech.hybrid_sram_ways = 0;
  options.tech.hybrid_nvm_ways = 16;
  const core::SimResult pure =
      core::run_experiment(core::ConfigId::kShStt, "ocean", options);
  core::SimResult hybrid =
      core::run_experiment(core::ConfigId::kShHybrid, "ocean", options);
  // Only the display name may differ between the two configurations.
  hybrid.config_name = pure.config_name;
  expect_same_result(pure, hybrid);
}

TEST(HybridDifferential, AllSramHybridMatchesPureSramBitIdentically) {
  core::RunOptions options = small_run();
  options.tech.hybrid_sram_ways = 16;
  options.tech.hybrid_nvm_ways = 0;
  const core::SimResult pure =
      core::run_experiment(core::ConfigId::kShSramNom, "ocean", options);
  core::SimResult hybrid =
      core::run_experiment(core::ConfigId::kShHybrid, "ocean", options);
  hybrid.config_name = pure.config_name;
  expect_same_result(pure, hybrid);
}

TEST(HybridDifferential, HybridRunIsDeterministicAndCountsSramTraffic) {
  const core::RunOptions options = small_run();
  const core::SimResult a =
      core::run_experiment(core::ConfigId::kShHybrid, "ocean", options);
  const core::SimResult b =
      core::run_experiment(core::ConfigId::kShHybrid, "ocean", options);
  expect_same_result(a, b);

  EXPECT_EQ(a.hybrid_sram_ways, 4u);
  EXPECT_EQ(a.hybrid_nvm_ways, 12u);
  // Write-biased steering means stores actually land in the SRAM class.
  EXPECT_GT(a.counts.l1_sram_writes, 0u);
  EXPECT_LE(a.counts.l1_sram_reads, a.counts.l1_reads);

  // The event-driven clock must agree with the cycle-by-cycle reference
  // on hybrid configurations too.
  core::RunOptions no_skip = options;
  no_skip.cycle_skip = false;
  const core::SimResult reference =
      core::run_experiment(core::ConfigId::kShHybrid, "ocean", no_skip);
  expect_same_result(a, reference);
}

}  // namespace
}  // namespace respin
