// Tests for the serving subsystem: protocol handling, the acceptance
// criteria of the serve layer — served results bit-identical to direct
// run_experiment calls, repeats answered from the cache without
// re-simulation, sweeps resuming from the checkpointed store — plus
// admission control, single-flight dedupe, deadlines, Pareto queries, and
// store durability across daemon restarts.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/serde.hpp"
#include "obs/json.hpp"
#include "serve/cache.hpp"
#include "serve/net.hpp"
#include "serve/store.hpp"
#include "sim_result_eq.hpp"

namespace respin::serve {
namespace {

namespace obsj = obs::json;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "respin_serve_test_" + name;
}

ServerConfig ephemeral_config() {
  ServerConfig config;
  config.store_path.clear();
  return config;
}

/// Issues one request line and parses the response.
obsj::Value ask(Server& server, const std::string& line) {
  return obsj::parse(server.handle_line(line));
}

double counter(const Server& server, const std::string& name) {
  const obs::CounterSet set = server.counters();
  const double* value = set.find(name);
  EXPECT_NE(value, nullptr) << name;
  return value != nullptr ? *value : -1.0;
}

/// A fast run request: the golden grid's 0.05 scale.
std::string run_line(const std::string& config, const std::string& benchmark,
                     const std::string& extra = "") {
  return "{\"op\":\"run\",\"config\":\"" + config + "\",\"benchmark\":\"" +
         benchmark + "\",\"scale\":0.05" + extra + "}";
}

TEST(ServeProtocol, PingVersionAndErrors) {
  Server server(ephemeral_config());
  EXPECT_TRUE(ask(server, "{\"op\":\"ping\"}").find("ok")->as_bool());

  const obsj::Value version = ask(server, "{\"op\":\"version\",\"id\":42}");
  EXPECT_TRUE(version.find("ok")->as_bool());
  EXPECT_EQ(version.find("id")->as_u64(), 42u);  // Correlation id echoed.

  const obsj::Value bad = ask(server, "this is not json");
  EXPECT_FALSE(bad.find("ok")->as_bool());
  EXPECT_EQ(bad.find("error")->find("kind")->as_string(), "parse_error");

  const obsj::Value unknown = ask(server, "{\"op\":\"frobnicate\"}");
  EXPECT_EQ(unknown.find("error")->find("kind")->as_string(), "bad_request");

  const obsj::Value bad_bench =
      ask(server, run_line("SH-STT", "not_a_benchmark"));
  EXPECT_EQ(bad_bench.find("error")->find("kind")->as_string(),
            "bad_request");
  EXPECT_EQ(counter(server, "serve.protocol_errors"), 3.0);
}

// Acceptance: a served result is bit-identical to a direct
// run_experiment call for >= 4 Table IV configurations.
TEST(ServeEquivalence, ServedResultsMatchDirectRuns) {
  Server server(ephemeral_config());
  core::RunOptions options;
  options.workload_scale = 0.05;
  const std::vector<core::ConfigId> configs = {
      core::ConfigId::kPrSramNt, core::ConfigId::kShStt,
      core::ConfigId::kShSttCc, core::ConfigId::kShHybrid};
  for (const core::ConfigId config : configs) {
    const std::string name = core::to_string(config);
    const obsj::Value response = ask(server, run_line(name, "ocean"));
    ASSERT_TRUE(response.find("ok")->as_bool()) << name;
    const core::SimResult served =
        core::result_from_json(*response.find("result"));
    const core::SimResult direct =
        core::run_experiment(config, "ocean", options);
    core::expect_same_result(direct, served);
  }
  EXPECT_EQ(counter(server, "serve.sims_run"), 4.0);
}

// Acceptance: a repeated identical request is answered from the cache
// without re-simulating.
TEST(ServeCache, RepeatIsACacheHitWithoutResimulation) {
  Server server(ephemeral_config());
  const obsj::Value first = ask(server, run_line("SH-STT", "radix"));
  ASSERT_TRUE(first.find("ok")->as_bool());
  EXPECT_EQ(first.find("source")->as_string(), "sim");

  const obsj::Value second = ask(server, run_line("SH-STT", "radix"));
  ASSERT_TRUE(second.find("ok")->as_bool());
  EXPECT_EQ(second.find("source")->as_string(), "cache");
  EXPECT_TRUE(second.find("cached")->as_bool());
  EXPECT_EQ(counter(server, "serve.cache_hits"), 1.0);
  EXPECT_EQ(counter(server, "serve.sims_run"), 1.0);

  // The two responses carry the same key and byte-identical results.
  EXPECT_EQ(first.find("key")->as_string(), second.find("key")->as_string());
  EXPECT_EQ(first.find("result")->dump(), second.find("result")->dump());

  // cycle_skip is excluded from the key (bit-identical contract), so the
  // no-skip spelling of the same request is also a hit.
  const obsj::Value noskip =
      ask(server, run_line("SH-STT", "radix", ",\"cycle_skip\":false"));
  EXPECT_EQ(noskip.find("source")->as_string(), "cache");
}

TEST(ServeSingleFlight, ConcurrentIdenticalRequestsRunOnce) {
  Server server(ephemeral_config());
  const std::string line = run_line("SH-STT", "ocean");
  std::vector<std::thread> clients;
  std::vector<std::string> responses(6);
  for (std::size_t i = 0; i < responses.size(); ++i) {
    clients.emplace_back(
        [&, i] { responses[i] = server.handle_line(line); });
  }
  for (std::thread& t : clients) t.join();
  for (const std::string& response : responses) {
    const obsj::Value v = obsj::parse(response);
    ASSERT_TRUE(v.find("ok")->as_bool());
    EXPECT_EQ(v.find("result")->dump(),
              obsj::parse(responses.front()).find("result")->dump());
  }
  // However the clients raced, exactly one simulation ran.
  EXPECT_EQ(counter(server, "serve.sims_run"), 1.0);
}

TEST(ServeAdmission, OverloadAndDrainingRejectsAreTyped) {
  ServerConfig config = ephemeral_config();
  config.queue_depth = 0;  // Admit nothing: deterministic overload.
  Server overloaded(config);
  const obsj::Value reject = ask(overloaded, run_line("SH-STT", "ocean"));
  EXPECT_FALSE(reject.find("ok")->as_bool());
  EXPECT_EQ(reject.find("error")->find("kind")->as_string(), "overloaded");
  EXPECT_EQ(counter(overloaded, "serve.rejected_overload"), 1.0);

  Server draining(ephemeral_config());
  const obsj::Value shutdown = ask(draining, "{\"op\":\"shutdown\"}");
  EXPECT_TRUE(shutdown.find("ok")->as_bool());
  const obsj::Value drained = ask(draining, run_line("SH-STT", "ocean"));
  EXPECT_EQ(drained.find("error")->find("kind")->as_string(), "draining");
  const obsj::Value sweep_reject =
      ask(draining, "{\"op\":\"sweep\",\"scale\":0.05}");
  EXPECT_EQ(sweep_reject.find("error")->find("kind")->as_string(),
            "draining");
  EXPECT_EQ(counter(draining, "serve.rejected_draining"), 2.0);
}

TEST(ServeDeadline, TimedOutRequestStillCompletesAndCaches) {
  Server server(ephemeral_config());
  // Occupy the scheduler with a slower run so the probe request below
  // cannot finish within its deadline.
  std::thread busy([&] {
    server.handle_line(
        "{\"op\":\"run\",\"config\":\"SH-STT-CC\",\"benchmark\":\"ocean\","
        "\"scale\":0.3}");
  });
  const obsj::Value timed_out = ask(
      server, run_line("SH-STT", "barnes", ",\"deadline_ms\":1"));
  EXPECT_FALSE(timed_out.find("ok")->as_bool());
  EXPECT_EQ(timed_out.find("error")->find("kind")->as_string(), "timeout");
  const std::string key = timed_out.find("key")->as_string();
  busy.join();
  server.drain();  // The abandoned simulation still runs to completion...
  EXPECT_EQ(counter(server, "serve.deadline_timeouts"), 1.0);
  // ...and a retry of the identical request is a cache/store answer.
  const obsj::Value retry = ask(server, run_line("SH-STT", "barnes"));
  ASSERT_TRUE(retry.find("ok")->as_bool());
  EXPECT_EQ(retry.find("key")->as_string(), key);
  EXPECT_TRUE(retry.find("cached")->as_bool());
}

// Acceptance: killing a sweep mid-run and restarting resumes from the
// checkpointed store, completing only the missing cells.
TEST(ServeSweep, ResumesFromCheckpointedStoreAfterRestart) {
  const std::string store_path = temp_path("sweep_store.jsonl");
  std::remove(store_path.c_str());
  const std::string sweep_line =
      "{\"op\":\"sweep\",\"configs\":[\"SH-STT\",\"PR-SRAM-NT\"],"
      "\"benchmarks\":[\"ocean\",\"radix\"],\"scale\":0.05}";
  {
    // First daemon: completes only half the matrix (as if killed before
    // the rest ran) — each completed cell is already checkpointed.
    ServerConfig config;
    config.store_path = store_path;
    Server server(config);
    const obsj::Value partial = ask(
        server,
        "{\"op\":\"sweep\",\"configs\":[\"SH-STT\"],"
        "\"benchmarks\":[\"ocean\",\"radix\"],\"scale\":0.05}");
    ASSERT_TRUE(partial.find("ok")->as_bool());
    EXPECT_EQ(partial.find("ran")->as_u64(), 2u);
    EXPECT_EQ(partial.find("resumed")->as_u64(), 0u);
  }
  // Simulate a crash artifact: a torn half-written trailing line.
  {
    std::ofstream out(store_path, std::ios::app);
    out << "{\"key\":\"torn";
  }
  {
    // Restarted daemon, full matrix: only the two missing cells run.
    ServerConfig config;
    config.store_path = store_path;
    Server server(config);
    EXPECT_EQ(server.store().loaded(), 2u);
    EXPECT_EQ(server.store().skipped_lines(), 1u);
    const obsj::Value resumed = ask(server, sweep_line);
    ASSERT_TRUE(resumed.find("ok")->as_bool());
    EXPECT_EQ(resumed.find("cells")->as_u64(), 4u);
    EXPECT_EQ(resumed.find("resumed")->as_u64(), 2u);
    EXPECT_EQ(resumed.find("ran")->as_u64(), 2u);
    EXPECT_EQ(resumed.find("failed")->as_u64(), 0u);
    EXPECT_EQ(counter(server, "serve.sweep_cells_resumed"), 2.0);

    // Rerunning the whole sweep is now a pure resume: zero simulations.
    const obsj::Value replay = ask(server, sweep_line);
    EXPECT_EQ(replay.find("resumed")->as_u64(), 4u);
    EXPECT_EQ(replay.find("ran")->as_u64(), 0u);

    // And the sweep's cells answer `run` requests straight from the store
    // with results bit-identical to a direct simulation.
    const obsj::Value run = ask(server, run_line("PR-SRAM-NT", "radix"));
    ASSERT_TRUE(run.find("ok")->as_bool());
    EXPECT_TRUE(run.find("cached")->as_bool());
    core::RunOptions options;
    options.workload_scale = 0.05;
    core::expect_same_result(
        core::run_experiment(core::ConfigId::kPrSramNt, "radix", options),
        core::result_from_json(*run.find("result")));
  }
  std::remove(store_path.c_str());
}

TEST(ServeQueries, GetListAndStats) {
  Server server(ephemeral_config());
  const obsj::Value miss =
      ask(server, "{\"op\":\"get\",\"key\":\"no-such-key\"}");
  EXPECT_EQ(miss.find("error")->find("kind")->as_string(), "not_found");

  const obsj::Value ran = ask(server, run_line("SH-STT", "ocean"));
  ASSERT_TRUE(ran.find("ok")->as_bool());
  // get by explicit key, and by respelling the request fields.
  const std::string key = ran.find("key")->as_string();
  obsj::Value by_key = obsj::Value::object();
  by_key.set("op", obsj::Value::str("get"));
  by_key.set("key", obsj::Value::str(key));
  const obsj::Value got = ask(server, by_key.dump());
  ASSERT_TRUE(got.find("ok")->as_bool());
  EXPECT_EQ(got.find("result")->dump(), ran.find("result")->dump());
  const obsj::Value by_spec = ask(
      server, "{\"op\":\"get\",\"config\":\"SH-STT\",\"benchmark\":"
              "\"ocean\",\"scale\":0.05}");
  ASSERT_TRUE(by_spec.find("ok")->as_bool());
  EXPECT_EQ(by_spec.find("key")->as_string(), key);

  const obsj::Value list = ask(server, "{\"op\":\"list\"}");
  EXPECT_EQ(list.find("count")->as_u64(), 1u);
  EXPECT_EQ(list.find("runs")->as_array()[0].find("benchmark")->as_string(),
            "ocean");

  const obsj::Value stats = ask(server, "{\"op\":\"stats\"}");
  EXPECT_EQ(stats.find("counters")->find("serve.sims_run")->as_double(),
            1.0);
}

TEST(ServePareto, FrontierDropsDominatedPoints) {
  // Fabricated results with known metric positions: (1,3) and (2,1) are
  // the frontier; (2,3) and (3,2) are dominated.
  ResultStore store("");
  const auto put = [&](const std::string& name, double energy,
                       double cycles) {
    core::SimResult result;
    result.config_name = name;
    result.benchmark = "synthetic";
    result.cycles = static_cast<std::uint64_t>(cycles);
    result.energy.cache_dynamic = energy;
    store.put(name, result);
  };
  put("a", 1.0, 3.0);
  put("b", 2.0, 1.0);
  put("c", 2.0, 3.0);
  put("d", 3.0, 2.0);
  const std::vector<ParetoPoint> frontier =
      store.pareto("energy_pj", "cycles");
  ASSERT_EQ(frontier.size(), 2u);
  EXPECT_EQ(frontier[0].key, "a");  // Sorted by x.
  EXPECT_EQ(frontier[1].key, "b");
  EXPECT_THROW(store.pareto("nope", "cycles"), std::logic_error);
}

TEST(ServeStdio, DrivesServerOverStreams) {
  Server server(ephemeral_config());
  std::istringstream in(
      "{\"op\":\"ping\"}\n"
      "\n"
      "{\"op\":\"stats\"}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"never-reached\"}\n");
  std::ostringstream out;
  const std::size_t handled = serve_stdio(server, in, out);
  EXPECT_EQ(handled, 3u);  // Blank skipped; loop ends after shutdown.
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(obsj::parse(line).find("ok")->as_bool());
  EXPECT_TRUE(server.draining());
}

TEST(ServeLruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  const auto result = [](const char* name) {
    auto r = std::make_shared<core::SimResult>();
    r->config_name = name;
    return r;
  };
  cache.put("a", result("a"));
  cache.put("b", result("b"));
  ASSERT_NE(cache.get("a"), nullptr);  // "a" is now most recent.
  cache.put("c", result("c"));         // Evicts "b".
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);

  LruCache disabled(0);
  disabled.put("a", result("a"));
  EXPECT_EQ(disabled.get("a"), nullptr);
}

}  // namespace
}  // namespace respin::serve
