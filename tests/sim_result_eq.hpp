// Shared bit-identity assertions for SimResult, used by every test that
// pins the determinism contract (skip vs no-skip, serial vs parallel,
// traced vs untraced). EXPECT_EQ on doubles here is deliberate: the
// contract is bit-identical results, not approximate ones.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "core/experiment.hpp"
#include "util/stats.hpp"

namespace respin::core {

inline void expect_same_histogram(const util::Histogram& a,
                                  const util::Histogram& b,
                                  const std::string& what) {
  ASSERT_EQ(a.bucket_count(), b.bucket_count()) << what;
  EXPECT_EQ(a.total(), b.total()) << what;
  for (std::size_t i = 0; i < a.bucket_count(); ++i) {
    EXPECT_EQ(a.bucket(i), b.bucket(i)) << what << " bucket " << i;
  }
}

inline void expect_same_result(const SimResult& a, const SimResult& b) {
  SCOPED_TRACE(a.config_name + "/" + a.benchmark);
  EXPECT_EQ(a.config_name, b.config_name);
  EXPECT_EQ(a.benchmark, b.benchmark);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.seconds, b.seconds);  // Bit-identical, not approximately.
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.hit_cycle_limit, b.hit_cycle_limit);

  EXPECT_EQ(a.counts.instructions, b.counts.instructions);
  EXPECT_EQ(a.counts.core_busy_cycles, b.counts.core_busy_cycles);
  EXPECT_EQ(a.counts.core_idle_cycles, b.counts.core_idle_cycles);
  EXPECT_EQ(a.counts.l1_reads, b.counts.l1_reads);
  EXPECT_EQ(a.counts.l1_writes, b.counts.l1_writes);
  EXPECT_EQ(a.counts.l1_sram_reads, b.counts.l1_sram_reads);
  EXPECT_EQ(a.counts.l1_sram_writes, b.counts.l1_sram_writes);
  EXPECT_EQ(a.counts.l2_reads, b.counts.l2_reads);
  EXPECT_EQ(a.counts.l2_writes, b.counts.l2_writes);
  EXPECT_EQ(a.counts.l3_reads, b.counts.l3_reads);
  EXPECT_EQ(a.counts.l3_writes, b.counts.l3_writes);
  EXPECT_EQ(a.counts.dram_accesses, b.counts.dram_accesses);
  EXPECT_EQ(a.counts.coherence_messages, b.counts.coherence_messages);
  EXPECT_EQ(a.counts.level_shifter_crossings,
            b.counts.level_shifter_crossings);
  EXPECT_EQ(a.counts.core_on_ps, b.counts.core_on_ps);

  EXPECT_EQ(a.energy.core_dynamic, b.energy.core_dynamic);
  EXPECT_EQ(a.energy.core_leakage, b.energy.core_leakage);
  EXPECT_EQ(a.energy.cache_dynamic, b.energy.cache_dynamic);
  EXPECT_EQ(a.energy.cache_leakage, b.energy.cache_leakage);
  EXPECT_EQ(a.energy.dram, b.energy.dram);
  EXPECT_EQ(a.energy.network, b.energy.network);

  expect_same_histogram(a.read_hit_latency, b.read_hit_latency,
                        "read_hit_latency");
  EXPECT_EQ(a.dl1_read_hits, b.dl1_read_hits);
  EXPECT_EQ(a.dl1_read_misses, b.dl1_read_misses);
  EXPECT_EQ(a.dl1_half_misses, b.dl1_half_misses);
  EXPECT_EQ(a.dl1_store_rejections, b.dl1_store_rejections);
  expect_same_histogram(a.dl1_arrivals, b.dl1_arrivals, "dl1_arrivals");
  EXPECT_EQ(a.dl1_cycles, b.dl1_cycles);

  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].cycle, b.trace[i].cycle) << "trace sample " << i;
    EXPECT_EQ(a.trace[i].active_cores, b.trace[i].active_cores)
        << "trace sample " << i;
    EXPECT_EQ(a.trace[i].epi_pj, b.trace[i].epi_pj) << "trace sample " << i;
  }
  EXPECT_EQ(a.avg_active_cores, b.avg_active_cores);
  EXPECT_EQ(a.min_active_cores, b.min_active_cores);
  EXPECT_EQ(a.max_active_cores, b.max_active_cores);

  EXPECT_EQ(a.hybrid_sram_ways, b.hybrid_sram_ways);
  EXPECT_EQ(a.hybrid_nvm_ways, b.hybrid_nvm_ways);

  EXPECT_EQ(a.faults_enabled, b.faults_enabled);
  EXPECT_EQ(a.faults.sram_lines_mapped, b.faults.sram_lines_mapped);
  EXPECT_EQ(a.faults.sram_lines_correctable, b.faults.sram_lines_correctable);
  EXPECT_EQ(a.faults.sram_lines_disabled, b.faults.sram_lines_disabled);
  EXPECT_EQ(a.faults.ecc_corrections, b.faults.ecc_corrections);
  EXPECT_EQ(a.faults.stt_write_faults, b.faults.stt_write_faults);
  EXPECT_EQ(a.faults.stt_write_retries, b.faults.stt_write_retries);
  EXPECT_EQ(a.faults.stt_lines_disabled, b.faults.stt_lines_disabled);
  EXPECT_EQ(a.fault_l1_disabled_ways, b.fault_l1_disabled_ways);
  EXPECT_EQ(a.fault_l1_correctable_ways, b.fault_l1_correctable_ways);
  EXPECT_EQ(a.fault_l1_usable_bytes, b.fault_l1_usable_bytes);
  EXPECT_EQ(a.fault_l1_total_bytes, b.fault_l1_total_bytes);
}

}  // namespace respin::core
