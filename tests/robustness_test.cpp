// Robustness and edge-case behaviour of the simulator: cycle limits,
// degenerate workloads, extreme configurations, and misuse rejection.
#include <gtest/gtest.h>

#include "core/cluster_sim.hpp"
#include "core/experiment.hpp"
#include "workload/workload.hpp"

namespace respin::core {
namespace {

TEST(Robustness, CycleLimitReportedNotFatal) {
  ClusterConfig config =
      make_cluster_config(ConfigId::kShStt, CacheSize::kMedium);
  SimParams params;
  params.workload_scale = 1.0;
  params.max_cycles = 5'000;  // Far too short to finish.
  ClusterSim sim(config, workload::benchmark("ocean"), params);
  sim.run();
  const SimResult r = sim.result();
  EXPECT_TRUE(r.hit_cycle_limit);
  EXPECT_FALSE(sim.done());
  EXPECT_LE(r.cycles, 5'001);
  // Metrics are still well-formed.
  EXPECT_GE(r.energy.total(), 0.0);
}

TEST(Robustness, SingleBarrierOnlyWorkload) {
  // A workload that is almost all synchronization still completes.
  workload::WorkloadSpec spec;
  spec.name = "barrier-storm";
  workload::Phase p;
  p.instructions = 200;
  p.barriers = 20;
  p.mem_fraction = 0.1;
  spec.phases = {p};
  spec.repeat = 3;
  ClusterConfig config =
      make_cluster_config(ConfigId::kShStt, CacheSize::kMedium);
  SimParams params;
  ClusterSim sim(config, spec, params);
  sim.run();
  EXPECT_TRUE(sim.done());
}

TEST(Robustness, PureComputeWorkload) {
  workload::WorkloadSpec spec;
  spec.name = "pure-compute";
  workload::Phase p;
  p.instructions = 5'000;
  p.mem_fraction = 0.0;
  p.barriers = 0;
  spec.phases = {p};
  ClusterConfig config =
      make_cluster_config(ConfigId::kPrSramNt, CacheSize::kMedium);
  ClusterSim sim(config, spec, SimParams{});
  sim.run();
  EXPECT_TRUE(sim.done());
  const SimResult r = sim.result();
  // Ifetch traffic still flows even with no data accesses.
  EXPECT_GT(r.counts.l1_reads, 0u);
}

TEST(Robustness, StoreOnlyMemoryTraffic) {
  workload::WorkloadSpec spec;
  spec.name = "store-storm";
  workload::Phase p;
  p.instructions = 20'000;
  p.mem_fraction = 0.6;
  p.store_fraction = 1.0;
  p.barriers = 0;
  spec.phases = {p};
  for (ConfigId id : {ConfigId::kShStt, ConfigId::kPrSramNt}) {
    ClusterConfig config = make_cluster_config(id, CacheSize::kMedium);
    ClusterSim sim(config, spec, SimParams{});
    sim.run();
    EXPECT_TRUE(sim.done()) << to_string(id);
  }
}

TEST(Robustness, LoadOnlyMemoryTraffic) {
  workload::WorkloadSpec spec;
  spec.name = "load-storm";
  workload::Phase p;
  p.instructions = 20'000;
  p.mem_fraction = 0.6;
  p.store_fraction = 0.0;
  p.barriers = 0;
  p.hot_kb = 2048;       // Bigger than any cache level.
  p.hot_fraction = 1.0;
  spec.phases = {p};
  ClusterConfig config =
      make_cluster_config(ConfigId::kShStt, CacheSize::kSmall);
  ClusterSim sim(config, spec, SimParams{});
  sim.run();
  EXPECT_TRUE(sim.done());
  EXPECT_GT(sim.result().counts.dram_accesses, 0u);
}

TEST(Robustness, TinyClusterOfFour) {
  RunOptions options;
  options.cluster_cores = 4;
  options.workload_scale = 0.05;
  for (ConfigId id : {ConfigId::kShStt, ConfigId::kShSttCc,
                      ConfigId::kPrSramNt}) {
    const SimResult r = run_experiment(id, "fft", options);
    EXPECT_GT(r.instructions, 0u) << to_string(id);
  }
}

TEST(Robustness, LargestCluster) {
  RunOptions options;
  options.cluster_cores = 32;
  options.workload_scale = 0.03;
  const SimResult r = run_experiment(ConfigId::kShStt, "ocean", options);
  EXPECT_GT(r.instructions, 0u);
  EXPECT_FALSE(r.hit_cycle_limit);
}

TEST(Robustness, ConsolidationWithTinyWorkload) {
  // Workload ends before the first epoch boundary: the governor must not
  // misbehave on an empty trace.
  RunOptions options;
  options.workload_scale = 0.01;
  const SimResult r = run_experiment(ConfigId::kShSttCc, "swaptions", options);
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GE(r.avg_active_cores, 4.0);
}

TEST(Robustness, SeedsProduceDifferentButSaneRuns) {
  RunOptions a;
  a.workload_scale = 0.05;
  a.seed = 1;
  RunOptions b = a;
  b.seed = 99;
  const SimResult ra = run_experiment(ConfigId::kShStt, "barnes", a);
  const SimResult rb = run_experiment(ConfigId::kShStt, "barnes", b);
  EXPECT_NE(ra.cycles, rb.cycles);
  // Same statistical workload: runtimes within 2x of each other.
  EXPECT_LT(ra.seconds, 2.0 * rb.seconds);
  EXPECT_LT(rb.seconds, 2.0 * ra.seconds);
}

}  // namespace
}  // namespace respin::core
