// Technology-conformance suite: every backend registered in the
// TechnologyRegistry is held to the same contract — anchor reproduction,
// sane scaling laws, the shared Vdd² energy law, leakage linearity,
// well-formed outputs over a fuzzed configuration grid, and a name that
// round-trips through the parser. Adding a technology means making these
// tests pass for it (docs/technologies.md has the checklist); nothing
// here is specific to any one backend.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "nvsim/tech_backend.hpp"

namespace respin::nvsim {
namespace {

// 4 significant digits.
constexpr double kRelTol = 5e-4;

double rel_err(double actual, double expected) {
  return std::abs(actual - expected) / std::max(std::abs(expected), 1e-300);
}

ArrayConfig base_config(MemTech tech) {
  ArrayConfig config;
  config.tech = tech;
  config.capacity_bytes = 256 * 1024;
  config.block_bytes = 32;
  config.associativity = 4;
  config.vdd = 1.0;
  config.bank_count = 1;
  return config;
}

class Conformance : public ::testing::TestWithParam<const TechBackend*> {};

TEST_P(Conformance, ReproducesAnchorsToFourSignificantDigits) {
  const TechBackend& backend = *GetParam();
  const ArrayModelParams params;
  const std::vector<TechAnchor> anchors = backend.anchors(params);
  ASSERT_FALSE(anchors.empty()) << backend.name();
  for (const TechAnchor& a : anchors) {
    SCOPED_TRACE(a.label);
    ASSERT_EQ(a.config.tech, backend.tech());
    const ArrayFigures f = evaluate(a.config, params);
    // Latencies are integer picoseconds: allow the rounding slack on top
    // of the 4-significant-digit band.
    EXPECT_LE(std::abs(static_cast<double>(f.read_latency) - a.read_ps),
              kRelTol * a.read_ps + 0.75);
    EXPECT_LE(std::abs(static_cast<double>(f.write_latency) - a.write_ps),
              kRelTol * a.write_ps + 0.75);
    EXPECT_LE(rel_err(f.read_energy, a.read_pj), kRelTol);
    EXPECT_LE(rel_err(f.write_energy, a.write_pj), kRelTol);
    EXPECT_LE(rel_err(f.leakage_power, a.leakage_w), kRelTol);
    EXPECT_LE(rel_err(f.area_mm2, a.area_mm2), kRelTol);
  }
}

TEST_P(Conformance, LatencyAndEnergyMonotonicInCapacity) {
  const TechBackend& backend = *GetParam();
  ArrayConfig config = base_config(backend.tech());
  ArrayFigures prev{};
  bool first = true;
  for (const std::uint64_t kb : {64, 128, 256, 512, 1024, 4096}) {
    config.capacity_bytes = kb * 1024;
    const ArrayFigures f = evaluate(config);
    if (!first) {
      SCOPED_TRACE(std::to_string(kb) + "KB");
      EXPECT_GE(f.read_latency, prev.read_latency);
      EXPECT_GE(f.write_latency, prev.write_latency);
      EXPECT_GT(f.read_energy, prev.read_energy);
      EXPECT_GT(f.write_energy, prev.write_energy);
      EXPECT_GT(f.leakage_power, prev.leakage_power);
      EXPECT_GT(f.area_mm2, prev.area_mm2);
    }
    prev = f;
    first = false;
  }
}

TEST_P(Conformance, AccessEnergyFollowsVddSquared) {
  const TechBackend& backend = *GetParam();
  ArrayConfig config = base_config(backend.tech());
  const ArrayModelParams params;
  const ArrayFigures nominal = evaluate(config, params);
  for (const double vdd : {0.5, 0.65, 0.8, 1.0}) {
    SCOPED_TRACE(vdd);
    config.vdd = vdd;
    const ArrayFigures f = evaluate(config, params);
    const double scale = (vdd / params.nominal_vdd) * (vdd / params.nominal_vdd);
    EXPECT_LE(rel_err(f.read_energy, nominal.read_energy * scale), 1e-9);
    EXPECT_LE(rel_err(f.write_energy, nominal.write_energy * scale), 1e-9);
  }
}

TEST_P(Conformance, LeakageIsLinearInCapacity) {
  const TechBackend& backend = *GetParam();
  // Leakage (including any always-on tax like eDRAM refresh) must scale
  // linearly with capacity at every operating voltage.
  for (const double vdd : {0.65, 1.0}) {
    ArrayConfig config = base_config(backend.tech());
    config.vdd = vdd;
    const ArrayFigures one = evaluate(config);
    config.capacity_bytes *= 2;
    const ArrayFigures two = evaluate(config);
    SCOPED_TRACE(vdd);
    EXPECT_LE(rel_err(two.leakage_power, 2.0 * one.leakage_power), 1e-9);
    EXPECT_LE(rel_err(two.area_mm2, 2.0 * one.area_mm2), 1e-9);
  }
}

TEST_P(Conformance, WellFormedOverFuzzedConfigurationGrid) {
  const TechBackend& backend = *GetParam();
  const ArrayModelParams params;
  // Deterministic LCG so failures reproduce; spans capacity, geometry and
  // the full validity voltage range.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int i = 0; i < 200; ++i) {
    ArrayConfig config;
    config.tech = backend.tech();
    config.capacity_bytes = (std::uint64_t{16} << (next() % 9)) * 1024;
    config.block_bytes = 32u << (next() % 2);
    config.associativity = 1u << (next() % 5);
    config.bank_count = 1u << (next() % 4);
    config.vdd = params.min_vdd +
                 (params.nominal_vdd - params.min_vdd) *
                     (static_cast<double>(next() % 1000) / 999.0);
    SCOPED_TRACE(describe(config) + " assoc=" +
                 std::to_string(config.associativity) + " banks=" +
                 std::to_string(config.bank_count));
    const ArrayFigures f = evaluate(config, params);
    EXPECT_GT(f.read_latency, 0);
    EXPECT_GT(f.write_latency, 0);
    EXPECT_GE(f.write_latency, f.read_latency);  // Writes never beat reads.
    EXPECT_TRUE(std::isfinite(f.read_energy) && f.read_energy > 0.0);
    EXPECT_TRUE(std::isfinite(f.write_energy) && f.write_energy > 0.0);
    EXPECT_TRUE(std::isfinite(f.leakage_power) && f.leakage_power > 0.0);
    EXPECT_TRUE(std::isfinite(f.area_mm2) && f.area_mm2 > 0.0);
  }
}

TEST_P(Conformance, RegistryNameRoundTrips) {
  const TechBackend& backend = *GetParam();
  EXPECT_STREQ(to_string(backend.tech()), backend.name());
  EXPECT_EQ(parse_mem_tech(backend.name()), backend.tech());
  EXPECT_EQ(TechnologyRegistry::instance().find(backend.name()), &backend);
  EXPECT_EQ(&TechnologyRegistry::instance().backend(backend.tech()),
            &backend);
}

TEST_P(Conformance, TraitsPickExactlyOneFaultModel) {
  // The fault subsystem has two injection mechanisms; a backend opts into
  // at most one of them (a hybrid array composes technologies instead).
  const TechTraits traits = GetParam()->traits();
  EXPECT_FALSE(traits.static_cell_faults && traits.write_retry_faults);
  EXPECT_GT(traits.write_fail_multiplier, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, Conformance,
    ::testing::ValuesIn(TechnologyRegistry::instance().all()),
    [](const ::testing::TestParamInfo<const TechBackend*>& info) {
      std::string name = info.param->name();
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---- ArrayConfig validation (regression: zero geometry used to flow
// silently into the set/scaling math as a division hazard) ---------------

TEST(ConformanceValidation, RejectsZeroCapacity) {
  ArrayConfig config = base_config(MemTech::kSram);
  config.capacity_bytes = 0;
  EXPECT_THROW(evaluate(config), InvalidArrayConfig);
  EXPECT_THROW(ArrayConfig::validated(config), InvalidArrayConfig);
}

TEST(ConformanceValidation, RejectsZeroAssociativity) {
  ArrayConfig config = base_config(MemTech::kSttRam);
  config.associativity = 0;
  EXPECT_THROW(evaluate(config), InvalidArrayConfig);
  EXPECT_THROW(ArrayConfig::validated(config), InvalidArrayConfig);
}

TEST(ConformanceValidation, RejectsZeroBlockZeroBanksAndLowVdd) {
  ArrayConfig config = base_config(MemTech::kPcm);
  config.block_bytes = 0;
  EXPECT_THROW(evaluate(config), InvalidArrayConfig);
  config = base_config(MemTech::kEdram);
  config.bank_count = 0;
  EXPECT_THROW(evaluate(config), InvalidArrayConfig);
  config = base_config(MemTech::kSram);
  config.vdd = 0.1;
  EXPECT_THROW(evaluate(config), InvalidArrayConfig);
}

TEST(ConformanceValidation, ValidatedReturnsTheConfigUnchanged) {
  const ArrayConfig config = ArrayConfig::validated(base_config(MemTech::kSram));
  EXPECT_EQ(config.capacity_bytes, 256u * 1024u);
  EXPECT_EQ(config.associativity, 4u);
}

TEST(ConformanceValidation, ErrorsRemainLogicErrorsForExistingCallers) {
  // InvalidArrayConfig derives std::invalid_argument -> std::logic_error,
  // so pre-refactor catch sites keep working.
  ArrayConfig config = base_config(MemTech::kSram);
  config.capacity_bytes = 0;
  EXPECT_THROW(evaluate(config), std::logic_error);
  EXPECT_THROW(parse_mem_tech("FeRAM"), std::logic_error);
  EXPECT_THROW(parse_mem_tech("sram"), InvalidArrayConfig);  // Case matters.
}

}  // namespace
}  // namespace respin::nvsim
