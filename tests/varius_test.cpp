// Tests for respin::varius — the process-variation map: determinism,
// distribution moments, spatial structure, and multiplier derivation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "tech/technology.hpp"
#include "util/stats.hpp"
#include "varius/variation.hpp"

namespace respin::varius {
namespace {

tech::TechnologyParams tech_params() {
  return tech::TechnologyParams::ipdps2017();
}

TEST(VariationMap, DeterministicPerSeed) {
  VariationParams params;
  params.seed = 42;
  VariationMap a(tech_params(), params, 8);
  VariationMap b(tech_params(), params, 8);
  for (std::uint32_t c = 0; c < a.core_count(); ++c) {
    EXPECT_DOUBLE_EQ(a.core_vth(c), b.core_vth(c));
  }
}

TEST(VariationMap, DifferentSeedsDifferentDies) {
  VariationParams pa;
  pa.seed = 1;
  VariationParams pb;
  pb.seed = 2;
  VariationMap a(tech_params(), pa, 8);
  VariationMap b(tech_params(), pb, 8);
  int differing = 0;
  for (std::uint32_t c = 0; c < a.core_count(); ++c) {
    if (a.core_vth(c) != b.core_vth(c)) ++differing;
  }
  EXPECT_GT(differing, 32);
}

TEST(VariationMap, GridMomentsMatchSigma) {
  const auto tp = tech_params();
  VariationParams params;
  params.grid_size = 64;
  util::RunningStat stat;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    params.seed = seed;
    VariationMap map(tp, params, 8);
    for (std::uint32_t y = 0; y < map.grid_size(); ++y) {
      for (std::uint32_t x = 0; x < map.grid_size(); ++x) {
        stat.add(map.grid_vth(x, y));
      }
    }
  }
  EXPECT_NEAR(stat.mean(), tp.vth_mean, 0.01);
  EXPECT_NEAR(stat.stddev(), tp.vth_mean * tp.vth_sigma_ratio, 0.005);
}

TEST(VariationMap, SpatialCorrelationDecaysWithDistance) {
  const auto tp = tech_params();
  VariationParams params;
  params.grid_size = 64;
  // Average product of deviations at distance 1 vs distance 24.
  double near_cov = 0.0;
  double far_cov = 0.0;
  int samples = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    params.seed = seed;
    VariationMap map(tp, params, 8);
    for (std::uint32_t y = 0; y < 64; ++y) {
      for (std::uint32_t x = 0; x + 24 < 64; ++x) {
        const double a = map.grid_vth(x, y) - tp.vth_mean;
        near_cov += a * (map.grid_vth(x + 1, y) - tp.vth_mean);
        far_cov += a * (map.grid_vth(x + 24, y) - tp.vth_mean);
        ++samples;
      }
    }
  }
  EXPECT_GT(near_cov / samples, 2.0 * std::abs(far_cov / samples));
}

TEST(VariationMap, CoreVthIsWorstOfFootprint) {
  const auto tp = tech_params();
  VariationParams params;
  params.grid_size = 32;
  params.seed = 7;
  VariationMap map(tp, params, 8);
  // Core (0,0) covers grid cells [0,4) x [0,4).
  double worst = -1.0;
  for (std::uint32_t y = 0; y < 4; ++y) {
    for (std::uint32_t x = 0; x < 4; ++x) {
      worst = std::max(worst, map.grid_vth(x, y));
    }
  }
  EXPECT_DOUBLE_EQ(map.core_vth(0), worst);
}

TEST(VariationMap, WorstCaseBiasesCoreVthAboveMean) {
  const auto tp = tech_params();
  VariationParams params;
  util::RunningStat stat;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    params.seed = seed;
    VariationMap map(tp, params, 8);
    for (std::uint32_t c = 0; c < map.core_count(); ++c) {
      stat.add(map.core_vth(c));
    }
  }
  EXPECT_GT(stat.mean(), tp.vth_mean);  // max over footprint > mean.
}

TEST(VariationMap, FrequencySpreadAtNearThreshold) {
  const auto tp = tech_params();
  VariationParams params;
  params.seed = 3;
  VariationMap map(tp, params, 8);
  double fmin = 1e18;
  double fmax = 0.0;
  for (std::uint32_t c = 0; c < map.core_count(); ++c) {
    const double f = map.core_max_frequency(c, tp.nt_core_vdd);
    fmin = std::min(fmin, f);
    fmax = std::max(fmax, f);
  }
  // Paper: fast cores are almost twice as fast as slow ones.
  EXPECT_GT(fmax / fmin, 1.3);
  EXPECT_LT(fmax / fmin, 3.0);
}

TEST(VariationMap, RejectsBadGeometry) {
  VariationParams params;
  params.grid_size = 4;
  EXPECT_THROW(VariationMap(tech_params(), params, 8), std::logic_error);
  params = VariationParams{};
  params.systematic_fraction = 1.5;
  EXPECT_THROW(VariationMap(tech_params(), params, 8), std::logic_error);
}

TEST(ClusterMultipliers, WithinConfiguredRange) {
  const auto tp = tech_params();
  tech::ClusterClocking clocking;
  VariationParams params;
  params.seed = 5;
  VariationMap map(tp, params, 8);
  const auto mults =
      cluster_multipliers(map, clocking, tp.nt_core_vdd, 0, 16);
  ASSERT_EQ(mults.size(), 16u);
  for (int m : mults) {
    EXPECT_GE(m, clocking.min_core_multiplier);
    EXPECT_LE(m, clocking.max_core_multiplier);
  }
}

TEST(ClusterMultipliers, HeterogeneousAcrossDies) {
  // Across several dies the quantizer should produce a mix of multipliers,
  // not a degenerate single bin (the time-multiplexing controller depends
  // on heterogeneous core frequencies).
  const auto tp = tech_params();
  tech::TechnologyParams fast = tp;
  fast.nominal_frequency_hz *= 1.35;  // Matches the config layer's margin.
  tech::ClusterClocking clocking;
  std::set<int> seen;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    VariationParams params;
    params.seed = seed;
    VariationMap map(fast, params, 8);
    for (int m :
         cluster_multipliers(map, clocking, tp.nt_core_vdd, 0, 64)) {
      seen.insert(m);
    }
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST(ClusterMultipliers, RangeChecked) {
  const auto tp = tech_params();
  tech::ClusterClocking clocking;
  VariationParams params;
  VariationMap map(tp, params, 8);
  EXPECT_THROW(cluster_multipliers(map, clocking, tp.nt_core_vdd, 60, 16),
               std::logic_error);
}

}  // namespace
}  // namespace respin::varius
