// Tests for the chip-level aggregation layer, the CSV/report module, and
// the configuration-name parsers.
#include <gtest/gtest.h>

#include <sstream>

#include "core/chip.hpp"
#include "core/report.hpp"

namespace respin::core {
namespace {

RunOptions tiny_options() {
  RunOptions options;
  options.workload_scale = 0.05;
  return options;
}

TEST(Parsers, RoundTripEveryConfigName) {
  for (ConfigId id : all_config_ids()) {
    EXPECT_EQ(parse_config_id(to_string(id)), id);
  }
  EXPECT_THROW(parse_config_id("SH-DRAM"), std::logic_error);
}

TEST(Parsers, CacheSizes) {
  EXPECT_EQ(parse_cache_size("small"), CacheSize::kSmall);
  EXPECT_EQ(parse_cache_size("medium"), CacheSize::kMedium);
  EXPECT_EQ(parse_cache_size("large"), CacheSize::kLarge);
  EXPECT_THROW(parse_cache_size("huge"), std::logic_error);
}

TEST(Chip, ClustersGetDistinctDieRegions) {
  const auto a = make_chip_cluster_config(ConfigId::kShStt,
                                          CacheSize::kMedium, 16, 0, 1);
  const auto b = make_chip_cluster_config(ConfigId::kShStt,
                                          CacheSize::kMedium, 16, 1, 1);
  // Same die (same seed), different regions: multipliers may overlap but
  // must not be forced identical.
  EXPECT_EQ(a.multipliers.size(), b.multipliers.size());
  EXPECT_NE(a.multipliers, b.multipliers);
}

TEST(Chip, FootprintBoundsChecked) {
  EXPECT_THROW(
      make_chip_cluster_config(ConfigId::kShStt, CacheSize::kMedium, 16, 4, 1),
      std::logic_error);
}

TEST(Chip, RunAggregatesAllClusters) {
  const ChipResult chip = run_chip(ConfigId::kShStt, "fft", tiny_options());
  ASSERT_EQ(chip.clusters.size(), 4u);
  EXPECT_EQ(chip.config_name, "SH-STT");
  EXPECT_EQ(chip.benchmark, "fft");

  double max_seconds = 0.0;
  std::uint64_t instructions = 0;
  double energy = 0.0;
  for (const SimResult& r : chip.clusters) {
    max_seconds = std::max(max_seconds, r.seconds);
    instructions += r.instructions;
    energy += r.energy.total();
  }
  EXPECT_DOUBLE_EQ(chip.seconds, max_seconds);
  EXPECT_EQ(chip.instructions, instructions);
  // Chip energy covers per-cluster energy plus idle-tail cache leakage.
  EXPECT_GE(chip.energy.total(), energy);
  EXPECT_GT(chip.watts(), 0.0);
}

TEST(Chip, SmallerClustersMeanMoreOfThem) {
  RunOptions options = tiny_options();
  options.cluster_cores = 8;
  const ChipResult chip = run_chip(ConfigId::kShStt, "swaptions", options);
  EXPECT_EQ(chip.clusters.size(), 8u);
}

TEST(Report, CsvRowFieldCountMatchesHeader) {
  const SimResult r = run_chip(ConfigId::kShStt, "fft", tiny_options())
                          .clusters.front();
  const std::string header = result_csv_header();
  const std::string row = result_csv_row(r);
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
  EXPECT_NE(row.find("SH-STT,fft,"), std::string::npos);
}

TEST(Report, WriteResultsCsv) {
  const ChipResult chip = run_chip(ConfigId::kShStt, "fft", tiny_options());
  std::ostringstream os;
  write_results_csv(os, chip.clusters);
  const std::string csv = os.str();
  // Header + 4 cluster rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  EXPECT_EQ(csv.rfind(result_csv_header(), 0), 0u);
}

TEST(Report, TraceCsvHasOneRowPerEpoch) {
  RunOptions options;
  options.workload_scale = 0.2;
  const SimResult r = run_experiment(ConfigId::kShSttCc, "bodytrack", options);
  std::ostringstream os;
  write_trace_csv(os, r);
  const std::string csv = os.str();
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            r.trace.size() + 1);
}

TEST(Report, SummaryMentionsConfigAndUnits) {
  const SimResult r = run_chip(ConfigId::kShStt, "fft", tiny_options())
                          .clusters.front();
  const std::string line = summarize(r);
  EXPECT_NE(line.find("SH-STT/fft"), std::string::npos);
  EXPECT_NE(line.find("ms"), std::string::npos);
  EXPECT_NE(line.find("mJ"), std::string::npos);
}

TEST(Report, ChipCsvRow) {
  const ChipResult chip = run_chip(ConfigId::kShStt, "fft", tiny_options());
  const std::string row = chip_csv_row(chip);
  const std::string header = chip_csv_header();
  EXPECT_NE(row.find("SH-STT,fft,4,"), std::string::npos);
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
}

}  // namespace
}  // namespace respin::core
