// Tests for the priority shift registers and the time-multiplexed shared
// cache controller, including a replay of the paper's Figure 3 example.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/priority_register.hpp"
#include "core/shared_cache_controller.hpp"

namespace respin::core {
namespace {

TEST(PriorityRegister, PreloadEncodesSlackInOnes) {
  PriorityRegister reg;
  reg.preload(2);  // "00011" for core 0 in paper Fig. 3(b).
  EXPECT_EQ(reg.raw(), 0b11u);
  EXPECT_EQ(reg.slack(), 2u);
  reg.preload(4);  // "01111" for core 1.
  EXPECT_EQ(reg.raw(), 0b1111u);
}

TEST(PriorityRegister, ShiftDrainsTowardExpiry) {
  PriorityRegister reg;
  reg.preload(3);
  EXPECT_FALSE(reg.critical());
  reg.shift();
  EXPECT_EQ(reg.slack(), 2u);
  reg.shift();
  EXPECT_TRUE(reg.critical());  // "00001".
  EXPECT_FALSE(reg.expired());
  reg.shift();
  EXPECT_TRUE(reg.expired());
}

TEST(PriorityRegister, BoundsChecked) {
  PriorityRegister reg;
  EXPECT_THROW(reg.preload(0), std::logic_error);
  EXPECT_THROW(reg.preload(PriorityRegister::kWidth + 1), std::logic_error);
}

ControllerParams stt_params(std::uint32_t cores = 16) {
  ControllerParams p;
  p.core_count = cores;
  p.request_delay_cycles = 2;
  p.read_occupancy = 1;
  p.write_occupancy = 2;
  p.store_queue_depth = 4;
  return p;
}

std::vector<ServicedRead> step_n(SharedCacheController& ctrl,
                                 std::int64_t from, std::int64_t to) {
  std::vector<ServicedRead> out;
  for (std::int64_t t = from; t < to; ++t) ctrl.step(t, out);
  return out;
}

TEST(Controller, SingleReadServicedWithinWindow) {
  SharedCacheController ctrl(stt_params(), 1);
  ctrl.submit_read(/*core=*/0, /*multiplier=*/4, /*now=*/0);
  const auto serviced = step_n(ctrl, 0, 4);
  ASSERT_EQ(serviced.size(), 1u);
  EXPECT_EQ(serviced[0].core, 0u);
  EXPECT_EQ(serviced[0].issued_at, 0);
  // Visible at cycle 2 (wire + level shifter), serviced immediately.
  EXPECT_EQ(serviced[0].serviced_at, 2);
  EXPECT_EQ(serviced[0].half_misses, 0u);
}

// Paper Figure 3: requests from cores with periods 4..6 landing in cycles
// 0-1; the cache services one per cycle, most urgent (fewest ones) first.
TEST(Controller, PaperFigure3Schedule) {
  ControllerParams params = stt_params(5);
  SharedCacheController ctrl(params, 1);
  // Core 0: multiplier 4, issues at 0 (visible 2, deadline end of 3).
  ctrl.submit_read(0, 4, 0);
  // Core 2: multiplier 5, issues at 0 (visible 2, deadline 4).
  ctrl.submit_read(2, 5, 0);
  // Core 3: multiplier 6, issues at 0 (visible 2, deadline 5)... with
  // re-arms, the controller must still return it by its stretched window.
  ctrl.submit_read(3, 6, 0);
  // Core 1: multiplier 6, issues at 1 (visible 3).
  ctrl.submit_read(1, 6, 1);
  // Core 4: multiplier 5, issues at 1 (visible 3).
  ctrl.submit_read(4, 5, 1);

  std::vector<ServicedRead> out;
  for (std::int64_t t = 0; t < 10; ++t) ctrl.step(t, out);
  ASSERT_EQ(out.size(), 5u);

  // One service per cycle starting at cycle 2; core 0 (tightest slack)
  // must be among the first two served, and every request must be serviced
  // by issue + 2 * multiplier (worst case one half-miss).
  for (const auto& s : out) {
    EXPECT_LE(s.serviced_at - s.issued_at, 2 * 6);
  }
  EXPECT_LE(out[0].serviced_at, 3);
  std::set<std::uint32_t> cores;
  for (const auto& s : out) cores.insert(s.core);
  EXPECT_EQ(cores.size(), 5u);
  // Total half-misses must match the stats (at most 2 in this overload).
  EXPECT_LE(ctrl.stats().half_misses, 2u);
}

TEST(Controller, UrgentRequestWinsArbitration) {
  SharedCacheController ctrl(stt_params(4), 1);
  ctrl.submit_read(0, 6, 0);  // Slack 4 at visibility.
  ctrl.submit_read(1, 4, 0);  // Slack 2 at visibility: tighter.
  const auto out = step_n(ctrl, 0, 3);
  ASSERT_GE(out.size(), 1u);
  EXPECT_EQ(out[0].core, 1u);
}

TEST(Controller, HalfMissRearmsCriticalAndWinsNextCycle) {
  ControllerParams params = stt_params(4);
  params.read_occupancy = 2;  // Slow read port to force a half-miss.
  SharedCacheController ctrl(params, 1);
  ctrl.submit_read(0, 4, 0);
  ctrl.submit_read(1, 4, 0);
  std::vector<ServicedRead> out;
  for (std::int64_t t = 0; t < 10; ++t) ctrl.step(t, out);
  ASSERT_EQ(out.size(), 2u);
  // The loser missed its first window: half-miss recorded, serviced at the
  // next opportunity, i.e. a 2-core-cycle hit (paper §II.A).
  EXPECT_EQ(ctrl.stats().half_misses, 1u);
  EXPECT_GE(out[1].half_misses, 1u);
  const auto latency = out[1].serviced_at + 1 - out[1].issued_at;
  EXPECT_LE(latency, 2 * 4);
}

TEST(Controller, OneOutstandingReadPerCoreEnforced) {
  SharedCacheController ctrl(stt_params(), 1);
  ctrl.submit_read(0, 4, 0);
  EXPECT_THROW(ctrl.submit_read(0, 4, 1), std::logic_error);
}

TEST(Controller, MultiplierMustExceedWireDelay) {
  SharedCacheController ctrl(stt_params(), 1);
  EXPECT_THROW(ctrl.submit_read(0, 2, 0), std::logic_error);
}

TEST(Controller, StoreQueueBackpressure) {
  SharedCacheController ctrl(stt_params(), 1);  // Depth 4.
  int accepted = 0;
  for (int i = 0; i < 8; ++i) {
    if (ctrl.submit_store(0)) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(ctrl.stats().store_queue_rejections, 4u);
  // Draining frees space: write port takes one every 2 cycles.
  std::vector<ServicedRead> out;
  for (std::int64_t t = 0; t < 12; ++t) ctrl.step(t, out);
  EXPECT_TRUE(ctrl.submit_store(12));
}

TEST(Controller, FillsOutrankStores) {
  ControllerParams params = stt_params();
  params.write_occupancy = 4;
  SharedCacheController ctrl(params, 1);
  ctrl.submit_store(0);
  ctrl.submit_store(0);
  ctrl.submit_fill(0);
  std::vector<ServicedRead> out;
  // After the current write completes, the fill must grab the port before
  // the queued stores: with occupancy 4, by cycle 12 all three have
  // drained only if the fill didn't wait behind both stores... verify
  // ordering indirectly via queue emptiness timing.
  for (std::int64_t t = 0; t < 5; ++t) ctrl.step(t, out);
  // At t=5: one write in flight. Ensure controller still has pending work.
  EXPECT_TRUE(ctrl.has_pending_work());
  for (std::int64_t t = 5; t < 20; ++t) ctrl.step(t, out);
  EXPECT_FALSE(ctrl.has_pending_work());
}

TEST(Controller, ArrivalHistogramCountsPerCycle) {
  SharedCacheController ctrl(stt_params(), 1);
  ctrl.submit_read(0, 4, 0);  // Visible cycle 2.
  ctrl.submit_read(1, 4, 0);  // Visible cycle 2.
  ctrl.submit_store(0);       // Visible cycle 2.
  std::vector<ServicedRead> out;
  for (std::int64_t t = 0; t < 8; ++t) ctrl.step(t, out);
  const auto& h = ctrl.stats().arrivals_per_cycle;
  EXPECT_EQ(h.total(), 8u);          // One sample per stepped cycle.
  EXPECT_EQ(h.bucket(3), 1u);        // The burst cycle.
  EXPECT_EQ(h.bucket(0), 7u);        // All other cycles quiet.
}

TEST(Controller, ReadsEventuallyServicedUnderSaturation) {
  ControllerParams params = stt_params(16);
  SharedCacheController ctrl(params, 1);
  std::vector<ServicedRead> out;
  std::int64_t t = 0;
  // 16 cores re-issue a read every core cycle for a while: saturated.
  std::vector<std::int64_t> next_issue(16, 0);
  std::vector<bool> outstanding(16, false);
  int serviced_total = 0;
  for (; t < 2000; ++t) {
    out.clear();
    ctrl.step(t, out);
    for (const auto& s : out) {
      outstanding[s.core] = false;
      next_issue[s.core] = t + 4;
      ++serviced_total;
    }
    for (int c = 0; c < 16; ++c) {
      if (!outstanding[c] && t >= next_issue[c] && t % 4 == 0) {
        ctrl.submit_read(static_cast<std::uint32_t>(c), 4, t);
        outstanding[c] = true;
      }
    }
  }
  // Read port limit: at most one service per cycle, so ~25% of offered
  // load at 16 requesters; but nobody starves.
  EXPECT_GT(serviced_total, 1500);
  EXPECT_EQ(ctrl.stats().reads_serviced,
            static_cast<std::uint64_t>(serviced_total));
}

// ---- next_activity_cycle skip points -------------------------------------
// The owner's event-driven clock jumps straight to these cycles, so each
// edge case is pinned: a wrong prediction silently breaks the bit-exact
// skip/no-skip equivalence contract rather than any single assertion.

TEST(ControllerSkipPoints, EmptyControllerReportsNever) {
  SharedCacheController ctrl(stt_params(), 1);
  EXPECT_EQ(ctrl.next_activity_cycle(0),
            std::numeric_limits<std::int64_t>::max());
  // Draining the only request returns the controller to "never".
  ctrl.submit_read(0, 4, 0);
  step_n(ctrl, 0, 4);
  EXPECT_FALSE(ctrl.has_pending_work());
  EXPECT_EQ(ctrl.next_activity_cycle(4),
            std::numeric_limits<std::int64_t>::max());
}

TEST(ControllerSkipPoints, VisibleReadPinsNextCycle) {
  SharedCacheController ctrl(stt_params(), 1);
  // Two reads so one is still visible after the first is serviced: a
  // waiting request is arbitrated and aged every cycle, so the clock may
  // never skip past it.
  ctrl.submit_read(0, 4, 0);
  ctrl.submit_read(1, 4, 0);
  std::vector<ServicedRead> out;
  ctrl.step(2, out);  // Both visible at 2; one wins the port.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(ctrl.next_activity_cycle(2), 3);
  EXPECT_EQ(ctrl.next_activity_cycle(100), 101);  // Still pinned to now+1.
}

TEST(ControllerSkipPoints, InFlightReadReportsItsVisibleCycle) {
  SharedCacheController ctrl(stt_params(), 1);
  ctrl.submit_read(0, 4, 10);  // Visible at 12 (2-cycle wire delay).
  EXPECT_EQ(ctrl.next_activity_cycle(10), 12);
  EXPECT_EQ(ctrl.next_activity_cycle(11), 12);
}

TEST(ControllerSkipPoints, DrainEligibleStoreWaitsOnWritePort) {
  ControllerParams params = stt_params();
  params.write_occupancy = 13;  // STT write pulse.
  SharedCacheController ctrl(params, 1);
  std::vector<ServicedRead> out;
  // A fill at cycle 0 becomes visible at 1 and takes the write port until
  // cycle 14; the store submitted at 0 matures into the drain queue at 2.
  ctrl.submit_fill(0);
  ctrl.submit_store(0);
  ctrl.step(1, out);
  ctrl.step(2, out);
  // The queued store is drain-eligible but blocked: the next activity is
  // the port release, max(write_port_free_at_, now + 1) = 14.
  EXPECT_EQ(ctrl.next_activity_cycle(2), 14);
  ctrl.note_skipped_cycles(11);
  ctrl.step(14, out);  // Store takes the port.
  // Port busy again until 27, but nothing else is pending — the drained
  // queue no longer pins activity.
  EXPECT_EQ(ctrl.next_activity_cycle(14),
            std::numeric_limits<std::int64_t>::max());
}

TEST(ControllerSkipPoints, DrainEligibleStoreOnFreePortIsImmediate) {
  SharedCacheController ctrl(stt_params(), 1);
  std::vector<ServicedRead> out;
  ctrl.submit_store(0);  // Visible at 2.
  ctrl.step(0, out);
  EXPECT_EQ(ctrl.next_activity_cycle(0), 2);
  ctrl.step(1, out);
  ctrl.step(2, out);  // Matured and drained the same cycle: port was free.
  EXPECT_EQ(ctrl.next_activity_cycle(2),
            std::numeric_limits<std::int64_t>::max());
}

TEST(Controller, BusyCycleAccounting) {
  SharedCacheController ctrl(stt_params(), 1);
  std::vector<ServicedRead> out;
  for (std::int64_t t = 0; t < 5; ++t) ctrl.step(t, out);  // Idle.
  EXPECT_EQ(ctrl.stats().busy_cycles, 0u);
  ctrl.submit_read(0, 4, 5);
  for (std::int64_t t = 5; t < 10; ++t) ctrl.step(t, out);
  EXPECT_GT(ctrl.stats().busy_cycles, 0u);
  EXPECT_EQ(ctrl.stats().total_cycles, 10u);
}

}  // namespace
}  // namespace respin::core
