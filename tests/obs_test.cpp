// Unit tests for the respin::obs observability layer: event JSON
// serialization, counter registries and their round-trip-exact text form,
// metrics CSV I/O, the golden differ's drift naming, scoped probes, and
// the wiring into ClusterSim / run_experiment — including the contract
// that tracing never perturbs a simulation.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/cluster_sim.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "obs/counters.hpp"
#include "obs/golden.hpp"
#include "obs/obs.hpp"
#include "sim_result_eq.hpp"

namespace respin {
namespace {

// ---- Compile-time zero-overhead contract ---------------------------------

static_assert(std::is_empty_v<obs::BasicScopedProbe<false>>,
              "the compiled-out probe must be an empty type");
static_assert(std::is_trivially_destructible_v<obs::BasicScopedProbe<false>>,
              "the compiled-out probe must have no destructor work");

// ---- Event serialization -------------------------------------------------

TEST(ObsEvent, SerializesTypedFieldsInOrder) {
  obs::Event event("epoch");
  event.str("config", "SH-STT").i64("cycle", 42).f64("epi_pj", 1.5);
  EXPECT_EQ(obs::to_json(event),
            "{\"event\":\"epoch\",\"config\":\"SH-STT\",\"cycle\":42,"
            "\"epi_pj\":1.5}");
}

TEST(ObsEvent, EscapesStringsPerJson) {
  obs::Event event("e");
  event.str("k", "a\"b\\c\nd\te\x01" "f");
  EXPECT_EQ(obs::to_json(event),
            "{\"event\":\"e\",\"k\":\"a\\\"b\\\\c\\nd\\te\\u0001f\"}");
}

TEST(ObsEvent, NonFiniteFloatsRenderAsNull) {
  obs::Event event("e");
  event.f64("inf", std::numeric_limits<double>::infinity());
  event.f64("nan", std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(obs::to_json(event), "{\"event\":\"e\",\"inf\":null,\"nan\":null}");
}

TEST(ObsEvent, NegativeAndLargeIntsSurviveExactly) {
  obs::Event event("e");
  event.i64("a", -7).i64("b", std::int64_t{1} << 62);
  EXPECT_EQ(obs::to_json(event),
            "{\"event\":\"e\",\"a\":-7,\"b\":4611686018427387904}");
}

TEST(ObsJsonlWriter, OneLinePerEvent) {
  std::ostringstream os;
  obs::JsonlWriter writer(os);
  writer.record(obs::Event("a"));
  writer.record(obs::Event("b"));
  EXPECT_EQ(os.str(), "{\"event\":\"a\"}\n{\"event\":\"b\"}\n");
}

// ---- Global sink + scoped probes -----------------------------------------

TEST(ObsGlobalSink, DefaultsToNullAndRoundTrips) {
  ASSERT_EQ(obs::global_sink(), nullptr);
  obs::CountingSink sink;
  obs::set_global_sink(&sink);
  EXPECT_EQ(obs::global_sink(), &sink);
  obs::set_global_sink(nullptr);
  EXPECT_EQ(obs::global_sink(), nullptr);
}

TEST(ObsScopedProbe, EmitsToInstalledSink) {
  std::ostringstream os;
  obs::JsonlWriter writer(os);
  obs::set_global_sink(&writer);
  {
    obs::BasicScopedProbe<true> probe("test.section");
    probe.add("items", 3);
  }
  obs::set_global_sink(nullptr);
  const std::string line = os.str();
  EXPECT_NE(line.find("\"event\":\"probe\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"name\":\"test.section\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"wall_us\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"items\":3"), std::string::npos) << line;
}

TEST(ObsScopedProbe, SilentWithNoSink) {
  ASSERT_EQ(obs::global_sink(), nullptr);
  obs::BasicScopedProbe<true> probe("test.noop");
  probe.add("ignored", 1);
  // Destruction must not crash or emit; nothing observable to assert
  // beyond reaching the end of scope.
}

// ---- Counter registries --------------------------------------------------

TEST(ObsCounterSet, PreservesOrderAndFinds) {
  obs::CounterSet set;
  set.add("b.second", 2.0);
  set.add("a.first", std::uint64_t{1});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.items()[0].name, "b.second");
  EXPECT_EQ(set.items()[1].name, "a.first");
  ASSERT_NE(set.find("a.first"), nullptr);
  EXPECT_EQ(*set.find("a.first"), 1.0);
  EXPECT_EQ(set.find("missing"), nullptr);
}

TEST(ObsFormatValue, IntegersPrintExactlyWithoutFraction) {
  EXPECT_EQ(obs::format_value(0.0), "0");
  EXPECT_EQ(obs::format_value(-17.0), "-17");
  EXPECT_EQ(obs::format_value(400000000.0), "400000000");
  // Largest exactly-representable contiguous integer.
  EXPECT_EQ(obs::format_value(9007199254740991.0), "9007199254740991");
}

TEST(ObsFormatValue, RoundTripIsBitExact) {
  const double values[] = {0.1,
                           1.0 / 3.0,
                           2.3283064365386963e-10,
                           6.02214076e23,
                           -123456.789,
                           0.00023738279999999999};
  for (const double v : values) {
    const std::string text = obs::format_value(v);
    EXPECT_EQ(obs::parse_value(text), v) << text;
  }
}

// ---- Metrics CSV round-trip ----------------------------------------------

std::vector<obs::MetricsRow> sample_rows() {
  std::vector<obs::MetricsRow> rows(2);
  rows[0].run = "CFG/ocean";
  rows[0].counters.add("sim.cycles", std::uint64_t{593457});
  rows[0].counters.add("sim.seconds", 0.00023738279999999999);
  rows[1].run = "CFG/radix";
  rows[1].counters.add("sim.cycles", std::uint64_t{100});
  return rows;
}

TEST(ObsMetricsCsv, RoundTripsThroughText) {
  std::ostringstream os;
  obs::write_metrics_csv(os, sample_rows(), "provenance line\nsecond line");
  const std::string text = os.str();
  EXPECT_EQ(text.find("# provenance line\n"), 0u) << text;
  EXPECT_NE(text.find("run,counter,value\n"), std::string::npos);
  EXPECT_NE(text.find("CFG/ocean,sim.cycles,593457\n"), std::string::npos);

  std::istringstream is(text);
  const std::vector<obs::MetricsRow> parsed = obs::read_metrics_csv(is);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].run, "CFG/ocean");
  ASSERT_EQ(parsed[0].counters.size(), 2u);
  EXPECT_EQ(*parsed[0].counters.find("sim.cycles"), 593457.0);
  EXPECT_EQ(*parsed[0].counters.find("sim.seconds"),
            0.00023738279999999999);
  EXPECT_EQ(parsed[1].run, "CFG/radix");
}

// ---- Golden differ -------------------------------------------------------

TEST(ObsGoldenDiff, CleanWhenIdentical) {
  const obs::GoldenDiff diff = obs::diff_metrics(sample_rows(), sample_rows());
  EXPECT_TRUE(diff.ok());
  EXPECT_EQ(diff.report(), "");
}

TEST(ObsGoldenDiff, NamesTheDriftedCounter) {
  std::vector<obs::MetricsRow> live = sample_rows();
  live[0].counters = obs::CounterSet();
  live[0].counters.add("sim.cycles", std::uint64_t{593458});  // +1
  live[0].counters.add("sim.seconds", 0.00023738279999999999);
  const obs::GoldenDiff diff = obs::diff_metrics(sample_rows(), live);
  ASSERT_FALSE(diff.ok());
  EXPECT_EQ(diff.count(), 1u);
  EXPECT_NE(diff.report().find("CFG/ocean"), std::string::npos)
      << diff.report();
  EXPECT_NE(diff.report().find("sim.cycles"), std::string::npos)
      << diff.report();
  EXPECT_NE(diff.report().find("593457"), std::string::npos) << diff.report();
  EXPECT_NE(diff.report().find("593458"), std::string::npos) << diff.report();
}

TEST(ObsGoldenDiff, FlagsMissingAndExtraRunsAndCounters) {
  std::vector<obs::MetricsRow> live = sample_rows();
  live.pop_back();                                      // CFG/radix missing.
  live[0].counters.add("sim.new_counter", 1.0);         // Unpinned counter.
  const obs::GoldenDiff diff = obs::diff_metrics(sample_rows(), live);
  ASSERT_FALSE(diff.ok());
  const std::string report = diff.report();
  EXPECT_NE(report.find("CFG/radix"), std::string::npos) << report;
  EXPECT_NE(report.find("sim.new_counter"), std::string::npos) << report;
}

// ---- Simulator wiring ----------------------------------------------------

core::RunOptions tiny_options() {
  core::RunOptions options;
  options.workload_scale = 0.05;
  return options;
}

TEST(ObsMetricsOf, MatchesSimResultFields) {
  const core::SimResult result =
      core::run_experiment(core::ConfigId::kShStt, "fft", tiny_options());
  const obs::CounterSet set = core::metrics_of(result);
  ASSERT_NE(set.find("sim.cycles"), nullptr);
  EXPECT_EQ(*set.find("sim.cycles"), static_cast<double>(result.cycles));
  ASSERT_NE(set.find("sim.seconds"), nullptr);
  EXPECT_EQ(*set.find("sim.seconds"), result.seconds);
  ASSERT_NE(set.find("energy.total_pj"), nullptr);
  EXPECT_EQ(*set.find("energy.total_pj"), result.energy.total());
  ASSERT_NE(set.find("dl1.read_hits"), nullptr);
  EXPECT_EQ(*set.find("dl1.read_hits"),
            static_cast<double>(result.dl1_read_hits));
  ASSERT_NE(set.find("dl1.arrivals.total"), nullptr);
  ASSERT_NE(set.find("consolidation.epochs"), nullptr);

  const obs::MetricsRow row = core::metrics_row(result);
  EXPECT_EQ(row.run, result.config_name + "/fft");
}

TEST(ObsClusterSim, CollectCountersCoversTheTaxonomy) {
  const core::ClusterConfig config = core::make_cluster_config(
      core::ConfigId::kShStt, core::CacheSize::kMedium);
  core::SimParams params;
  params.workload_scale = 0.05;
  core::ClusterSim sim = core::make_sim(config, "fft", params);
  sim.run();

  obs::CounterSet set;
  sim.collect_counters(set);
  EXPECT_NE(set.find("core0.busy_cycles"), nullptr);
  EXPECT_NE(set.find("core0.multiplier"), nullptr);
  EXPECT_NE(set.find("vcore0.instructions"), nullptr);
  EXPECT_NE(set.find("dl1.reads_serviced"), nullptr);
  EXPECT_NE(set.find("dl1.arrivals.bucket0"), nullptr);
  EXPECT_NE(set.find("backside.l2_reads"), nullptr);
  EXPECT_EQ(set.find("pl1.l1_reads"), nullptr);  // Shared config: no MESI.
}

TEST(ObsClusterSim, PrivateConfigExportsCoherenceCounters) {
  const core::ClusterConfig config = core::make_cluster_config(
      core::ConfigId::kPrSramNt, core::CacheSize::kMedium);
  core::SimParams params;
  params.workload_scale = 0.05;
  core::ClusterSim sim = core::make_sim(config, "fft", params);
  sim.run();

  obs::CounterSet set;
  sim.collect_counters(set);
  EXPECT_NE(set.find("pl1.l1_reads"), nullptr);
  EXPECT_NE(set.find("pl1.core0.l1d_hits"), nullptr);
  EXPECT_EQ(set.find("dl1.reads_serviced"), nullptr);
}

// The core contract: attaching a trace sink must not perturb the
// simulation in any way — bit-identical SimResult and metrics.
TEST(ObsTracing, NeverPerturbsTheSimulation) {
  const core::SimResult untraced =
      core::run_experiment(core::ConfigId::kShSttCc, "ocean", tiny_options());

  core::RunOptions traced_options = tiny_options();
  obs::CountingSink sink;
  traced_options.trace = &sink;
  const core::SimResult traced =
      core::run_experiment(core::ConfigId::kShSttCc, "ocean", traced_options);

  EXPECT_GT(sink.count(), 0u) << "tracing produced no events";
  core::expect_same_result(untraced, traced);

  // And the flattened metric registries agree exactly too.
  const obs::GoldenDiff diff = obs::diff_metrics(
      {core::metrics_row(untraced)}, {core::metrics_row(traced)});
  EXPECT_TRUE(diff.ok()) << diff.report();
}

TEST(ObsTracing, EmitsEpochConsolidateAndRunCompleteEvents) {
  std::ostringstream os;
  obs::JsonlWriter writer(os);
  core::RunOptions options = tiny_options();
  options.trace = &writer;
  core::run_experiment(core::ConfigId::kShSttCc, "ocean", options);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"event\":\"epoch\""), std::string::npos);
  EXPECT_NE(text.find("\"event\":\"run_complete\""), std::string::npos);
  EXPECT_NE(text.find("\"benchmark\":\"ocean\""), std::string::npos);
  // Every line is one JSON object.
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

}  // namespace
}  // namespace respin
