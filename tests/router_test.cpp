// Tests for the sharding front end: the acceptance criterion that routed
// results are bit-identical to a direct run_suite, deterministic shard
// ownership (each worker's store and cache hold only its key-slice),
// streamed sweep progress events, cost-model-ordered dispatch, failover
// for keyed requests (and deliberately not for sweep cells), and the
// fan-out ops (list, pareto, stats, merge).
#include "serve/router.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/serde.hpp"
#include "obs/json.hpp"
#include "serve/cost_model.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"
#include "sim_result_eq.hpp"
#include "workload/workload.hpp"

namespace respin::serve {
namespace {

namespace obsj = obs::json;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "respin_router_test_" + name;
}

/// A worker whose transport always fails — the failover scenarios.
class DeadWorker : public WorkerBackend {
 public:
  std::string name() const override { return "dead"; }
  std::string call(const std::string&) override {
    throw std::runtime_error("connection refused (simulated)");
  }
};

obsj::Value ask(Router& router, const std::string& line) {
  return obsj::parse(router.handle_line(line));
}

double counter(const Router& router, const std::string& name) {
  const obs::CounterSet set = router.counters();
  const double* value = set.find(name);
  EXPECT_NE(value, nullptr) << name;
  return value != nullptr ? *value : -1.0;
}

std::string run_line(const std::string& config, const std::string& benchmark) {
  return "{\"op\":\"run\",\"config\":\"" + config + "\",\"benchmark\":\"" +
         benchmark + "\",\"scale\":0.05}";
}

/// A router over `n` in-process ephemeral workers, owning the servers.
struct LocalTier {
  explicit LocalTier(std::size_t n, RouterConfig config = {}) {
    std::vector<std::unique_ptr<WorkerBackend>> backends;
    for (std::size_t i = 0; i < n; ++i) {
      ServerConfig worker_config;
      worker_config.store_path.clear();
      servers.push_back(std::make_unique<Server>(worker_config));
      backends.push_back(std::make_unique<LocalWorker>(
          "local:" + std::to_string(i), *servers.back()));
    }
    router = std::make_unique<Router>(config, std::move(backends));
  }
  std::vector<std::unique_ptr<Server>> servers;
  std::unique_ptr<Router> router;
};

TEST(RouterProtocol, PingVersionAndErrors) {
  LocalTier tier(2);
  Router& router = *tier.router;
  EXPECT_TRUE(ask(router, "{\"op\":\"ping\"}").find("ok")->as_bool());

  const obsj::Value version = ask(router, "{\"op\":\"version\",\"id\":7}");
  EXPECT_TRUE(version.find("ok")->as_bool());
  EXPECT_EQ(version.find("workers")->as_u64(), 2u);
  EXPECT_EQ(version.find("id")->as_u64(), 7u);

  const obsj::Value bad = ask(router, "not json");
  EXPECT_EQ(bad.find("error")->find("kind")->as_string(), "parse_error");
  const obsj::Value unknown = ask(router, "{\"op\":\"frobnicate\"}");
  EXPECT_EQ(unknown.find("error")->find("kind")->as_string(), "bad_request");
  EXPECT_EQ(counter(router, "router.protocol_errors"), 2.0);
}

// Acceptance: results served through the router (sweep fan-out + get)
// are bit-identical to a direct run_suite of the same configuration.
TEST(RouterEquivalence, RoutedSuiteMatchesDirectRunSuite) {
  LocalTier tier(3);
  Router& router = *tier.router;

  const obsj::Value sweep = ask(
      router,
      "{\"op\":\"sweep\",\"configs\":[\"SH-STT\"],\"scale\":0.05}");
  ASSERT_TRUE(sweep.find("ok")->as_bool());

  core::RunOptions options;
  options.workload_scale = 0.05;
  const std::vector<core::SimResult> suite =
      core::run_suite(core::ConfigId::kShStt, options);
  const std::vector<std::string> benchmarks = workload::benchmark_names();
  ASSERT_EQ(sweep.find("cells")->as_u64(), suite.size());
  ASSERT_EQ(sweep.find("ran")->as_u64(), suite.size());
  EXPECT_EQ(sweep.find("failed")->as_u64(), 0u);

  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const obsj::Value got = ask(
        router, "{\"op\":\"get\",\"config\":\"SH-STT\",\"benchmark\":\"" +
                    benchmarks[i] + "\",\"scale\":0.05}");
    ASSERT_TRUE(got.find("ok")->as_bool()) << benchmarks[i];
    core::expect_same_result(suite[i],
                             core::result_from_json(*got.find("result")));
  }
}

TEST(RouterSharding, KeysLandOnTheirOwnerAndStayCached) {
  LocalTier tier(2);
  Router& router = *tier.router;
  const std::vector<std::string> benchmarks = {"ocean", "radix", "fft", "lu"};

  for (const std::string& benchmark : benchmarks) {
    const obsj::Value first = ask(router, run_line("SH-STT", benchmark));
    ASSERT_TRUE(first.find("ok")->as_bool()) << benchmark;
    EXPECT_EQ(first.find("source")->as_string(), "sim");
    const std::string key = first.find("key")->as_string();
    const std::size_t shard = router.shard_of(key);
    EXPECT_EQ(first.find("shard")->as_u64(), shard);
    EXPECT_EQ(first.find("worker")->as_string(),
              "local:" + std::to_string(shard));

    // The repeat is a cache hit on the same worker: shard-stable routing
    // is what keeps worker caches hot for their key-slice.
    const obsj::Value repeat = ask(router, run_line("SH-STT", benchmark));
    EXPECT_EQ(repeat.find("source")->as_string(), "cache");
    EXPECT_EQ(repeat.find("worker")->as_string(),
              "local:" + std::to_string(shard));
  }
  // Exactly one simulation per key across the tier, however keys spread.
  double sims = 0;
  for (const auto& server : tier.servers) {
    const obs::CounterSet set = server->counters();
    sims += *set.find("serve.sims_run");
    EXPECT_EQ(*set.find("serve.cache_hits"), *set.find("serve.run_requests") -
                                                 *set.find("serve.sims_run"));
  }
  EXPECT_EQ(sims, static_cast<double>(benchmarks.size()));
}

TEST(RouterSweep, StreamsProgressEventsAndTalliesPerWorker) {
  LocalTier tier(2);
  Router& router = *tier.router;
  std::mutex mu;
  std::vector<obsj::Value> events;
  const Emit emit = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(obsj::parse(line));
  };
  const std::string sweep_line =
      "{\"op\":\"sweep\",\"configs\":[\"SH-STT\",\"PR-SRAM-NT\"],"
      "\"benchmarks\":[\"ocean\",\"radix\"],\"scale\":0.05,\"id\":5}";
  const obsj::Value sweep = obsj::parse(router.handle_line(sweep_line, emit));
  ASSERT_TRUE(sweep.find("ok")->as_bool());
  EXPECT_EQ(sweep.find("cells")->as_u64(), 4u);
  EXPECT_EQ(sweep.find("ran")->as_u64(), 4u);
  EXPECT_EQ(sweep.find("id")->as_u64(), 5u);

  ASSERT_EQ(events.size(), 4u);
  std::vector<bool> seen_done(events.size(), false);
  std::size_t per_worker_total = 0;
  for (const obsj::Value& event : events) {
    EXPECT_EQ(event.find("event")->as_string(), "sweep_progress");
    EXPECT_EQ(event.find("id")->as_u64(), 5u);  // Correlates to the sweep.
    EXPECT_EQ(event.find("total")->as_u64(), 4u);
    EXPECT_TRUE(event.find("ok")->as_bool());
    EXPECT_EQ(event.find("source")->as_string(), "sim");
    const std::size_t done = event.find("done")->as_u64();
    ASSERT_GE(done, 1u);
    ASSERT_LE(done, events.size());
    seen_done[done - 1] = true;
    // Every event names its cell's owner shard.
    EXPECT_EQ(router.shard_of(event.find("key")->as_string()),
              event.find("shard")->as_u64());
  }
  // done counts 1..N with no gaps, however lanes interleaved.
  for (const bool seen : seen_done) EXPECT_TRUE(seen);

  for (const obsj::Value& w : sweep.find("workers")->as_array()) {
    per_worker_total += w.find("ran")->as_u64() + w.find("cached")->as_u64() +
                        w.find("failed")->as_u64();
  }
  EXPECT_EQ(per_worker_total, 4u);
  EXPECT_EQ(counter(router, "router.progress_events"), 4.0);

  // A re-sweep reports every cell as cached (worker caches/stores are
  // warm), and the events say so.
  events.clear();
  const obsj::Value again = obsj::parse(router.handle_line(sweep_line, emit));
  EXPECT_EQ(again.find("cached")->as_u64(), 4u);
  EXPECT_EQ(again.find("ran")->as_u64(), 0u);
  for (const obsj::Value& event : events) {
    EXPECT_EQ(event.find("source")->as_string(), "cached");
  }
}

TEST(RouterFailover, KeyedRequestsFailOverSweepCellsDoNot) {
  // Worker 0 is dead; worker 1 is healthy.
  ServerConfig worker_config;
  Server healthy(worker_config);
  std::vector<std::unique_ptr<WorkerBackend>> backends;
  backends.push_back(std::make_unique<DeadWorker>());
  backends.push_back(std::make_unique<LocalWorker>("local:1", healthy));
  Router router(RouterConfig{}, std::move(backends));

  // Find a benchmark whose key is owned by the dead shard 0.
  std::string owned_by_dead;
  for (const std::string& benchmark : workload::benchmark_names()) {
    core::RequestSpec spec;
    spec.config = core::ConfigId::kShStt;
    spec.benchmark = benchmark;
    spec.options.workload_scale = 0.05;
    if (router.shard_of(core::canonical_key(spec)) == 0) {
      owned_by_dead = benchmark;
      break;
    }
  }
  ASSERT_FALSE(owned_by_dead.empty());

  // The keyed run fails over to the healthy worker and succeeds.
  const obsj::Value run = ask(router, run_line("SH-STT", owned_by_dead));
  ASSERT_TRUE(run.find("ok")->as_bool());
  EXPECT_EQ(run.find("shard")->as_u64(), 0u);       // Owner...
  EXPECT_EQ(run.find("worker")->as_string(), "local:1");  // ...stand-in.
  EXPECT_EQ(counter(router, "router.failovers"), 1.0);

  // Sweep cells owned by the dead shard fail instead of rerouting: the
  // healthy shard's store must stay pure for exact resume.
  const obsj::Value sweep = ask(
      router, "{\"op\":\"sweep\",\"configs\":[\"SH-STT\"],\"benchmarks\":[\"" +
                  owned_by_dead + "\",\"ocean\",\"radix\",\"fft\"],"
                  "\"scale\":0.05}");
  ASSERT_TRUE(sweep.find("ok")->as_bool());
  EXPECT_GE(sweep.find("failed")->as_u64(), 1u);
  EXPECT_EQ(sweep.find("failed")->as_u64() + sweep.find("ran")->as_u64() +
                sweep.find("cached")->as_u64(),
            4u);
  EXPECT_EQ(counter(router, "router.failovers"), 1.0);  // Unchanged.
}

TEST(RouterFailover, SingleDeadWorkerIsATypedError) {
  std::vector<std::unique_ptr<WorkerBackend>> backends;
  backends.push_back(std::make_unique<DeadWorker>());
  Router router(RouterConfig{}, std::move(backends));
  const obsj::Value run = ask(router, run_line("SH-STT", "ocean"));
  EXPECT_FALSE(run.find("ok")->as_bool());
  EXPECT_EQ(run.find("error")->find("kind")->as_string(),
            "worker_unavailable");
}

TEST(RouterQueries, ListParetoAndStatsMergeAcrossWorkers) {
  LocalTier tier(2);
  Router& router = *tier.router;
  ASSERT_TRUE(ask(router,
                  "{\"op\":\"sweep\",\"configs\":[\"SH-STT\",\"PR-SRAM-NT\"],"
                  "\"benchmarks\":[\"ocean\",\"radix\"],\"scale\":0.05}")
                  .find("ok")
                  ->as_bool());

  // list: the union of both shards, deduplicated and sorted by key.
  const obsj::Value list = ask(router, "{\"op\":\"list\"}");
  ASSERT_TRUE(list.find("ok")->as_bool());
  EXPECT_EQ(list.find("count")->as_u64(), 4u);
  const obsj::Array& runs = list.find("runs")->as_array();
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_LT(runs[i - 1].find("key")->as_string(),
              runs[i].find("key")->as_string());
  }

  // pareto: recomputed over the union — every returned point must be
  // non-dominated against every other returned point.
  const obsj::Value pareto = ask(router, "{\"op\":\"pareto\"}");
  ASSERT_TRUE(pareto.find("ok")->as_bool());
  const obsj::Array& points = pareto.find("points")->as_array();
  ASSERT_GE(points.size(), 1u);
  for (const obsj::Value& a : points) {
    for (const obsj::Value& b : points) {
      const bool dominates =
          b.find("x")->as_double() <= a.find("x")->as_double() &&
          b.find("y")->as_double() <= a.find("y")->as_double() &&
          (b.find("x")->as_double() < a.find("x")->as_double() ||
           b.find("y")->as_double() < a.find("y")->as_double());
      EXPECT_FALSE(dominates);
    }
  }
  const obsj::Value bad_metric =
      ask(router, "{\"op\":\"pareto\",\"x\":\"nope\"}");
  EXPECT_FALSE(bad_metric.find("ok")->as_bool());

  // stats: router counters plus one entry per worker.
  const obsj::Value stats = ask(router, "{\"op\":\"stats\"}");
  ASSERT_TRUE(stats.find("ok")->as_bool());
  EXPECT_EQ(stats.find("counters")->find("router.workers")->as_u64(), 2u);
  const obsj::Array& worker_stats = stats.find("workers")->as_array();
  ASSERT_EQ(worker_stats.size(), 2u);
  for (const obsj::Value& w : worker_stats) {
    const obsj::Value* counters =
        w.find("response")->find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("serve.backlog"), nullptr);
    ASSERT_NE(counters->find("serve.queue_wait_ms.count"), nullptr);
  }
  // The backlog gauge settles to 0 once the workers' schedulers retire
  // the sweep's jobs (the retire races the sweep response by design).
  double backlog_gauges = -1.0;
  for (int attempt = 0; attempt < 100 && backlog_gauges != 0.0; ++attempt) {
    backlog_gauges = 0.0;
    for (const auto& server : tier.servers) {
      backlog_gauges += *server->counters().find("serve.backlog");
    }
    if (backlog_gauges != 0.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_EQ(backlog_gauges, 0.0);
}

TEST(RouterMerge, FansOutToEveryWorkerStore) {
  // Two workers with durable stores; a third log merges into both, so
  // any shard can answer the merged keys (replication after failover).
  const std::string store0 = temp_path("merge_w0.jsonl");
  const std::string store1 = temp_path("merge_w1.jsonl");
  const std::string side = temp_path("merge_side.jsonl");
  for (const std::string& p : {store0, store1, side}) std::remove(p.c_str());
  {
    ResultStore source(side);
    core::SimResult result;
    result.config_name = "SH-STT";
    result.benchmark = "synthetic";
    result.cycles = 123;
    source.put("side-key", result);
  }
  {
    ServerConfig c0, c1;
    c0.store_path = store0;
    c1.store_path = store1;
    Server w0(c0), w1(c1);
    std::vector<std::unique_ptr<WorkerBackend>> backends;
    backends.push_back(std::make_unique<LocalWorker>("local:0", w0));
    backends.push_back(std::make_unique<LocalWorker>("local:1", w1));
    Router router(RouterConfig{}, std::move(backends));

    const obsj::Value merge =
        ask(router, "{\"op\":\"merge\",\"path\":\"" + side + "\"}");
    ASSERT_TRUE(merge.find("ok")->as_bool());
    for (const obsj::Value& w : merge.find("workers")->as_array()) {
      EXPECT_EQ(w.find("response")->find("inserted")->as_u64(), 1u);
    }
    EXPECT_TRUE(w0.store().contains("side-key"));
    EXPECT_TRUE(w1.store().contains("side-key"));

    const obsj::Value missing_path = ask(router, "{\"op\":\"merge\"}");
    EXPECT_EQ(missing_path.find("error")->find("kind")->as_string(),
              "bad_request");

    const obsj::Value compact = ask(router, "{\"op\":\"compact\"}");
    ASSERT_TRUE(compact.find("ok")->as_bool());

    // list sees the replicated key exactly once despite two copies.
    const obsj::Value list = ask(router, "{\"op\":\"list\"}");
    EXPECT_EQ(list.find("count")->as_u64(), 1u);
  }
  for (const std::string& p : {store0, store1, side}) std::remove(p.c_str());
}

TEST(RouterDrain, ShutdownForwardsToWorkersAndRejectsNewWork) {
  LocalTier tier(2);
  Router& router = *tier.router;
  const obsj::Value shutdown = ask(router, "{\"op\":\"shutdown\"}");
  EXPECT_TRUE(shutdown.find("ok")->as_bool());
  EXPECT_TRUE(router.draining());
  for (const auto& server : tier.servers) {
    EXPECT_TRUE(server->draining());
  }
  const obsj::Value rejected = ask(router, run_line("SH-STT", "ocean"));
  EXPECT_EQ(rejected.find("error")->find("kind")->as_string(), "draining");
  const obsj::Value sweep_rejected =
      ask(router, "{\"op\":\"sweep\",\"scale\":0.05}");
  EXPECT_EQ(sweep_rejected.find("error")->find("kind")->as_string(),
            "draining");
}

TEST(CostModel, BacksOffThroughTheHierarchy) {
  CostModel model;
  EXPECT_EQ(model.predict("SH-STT", "ocean"), 1.0);  // Cold: constant.

  model.observe("SH-STT", "ocean", 100.0);
  model.observe("SH-STT", "ocean", 300.0);
  EXPECT_EQ(model.predict("SH-STT", "ocean"), 200.0);  // Exact pair mean.

  // Unseen pair, seen benchmark: benchmark mean scaled by config factor.
  model.observe("PR-SRAM-NT", "radix", 1000.0);
  const double global_mean = (100.0 + 300.0 + 1000.0) / 3.0;
  EXPECT_DOUBLE_EQ(model.predict("PR-SRAM-NT", "ocean"),
                   200.0 * (1000.0 / global_mean));
  // Unseen benchmark, seen config: config mean.
  EXPECT_DOUBLE_EQ(model.predict("SH-STT", "lu"), 200.0);
  // Both unseen: global mean.
  EXPECT_DOUBLE_EQ(model.predict("SH-PCM", "lu"), global_mean);
  EXPECT_EQ(model.observations(), 3u);
}

TEST(CostModel, SeedsFromAStoreLog) {
  const std::string path = temp_path("cost_seed.jsonl");
  std::remove(path.c_str());
  {
    ResultStore store(path);
    core::SimResult result;
    result.config_name = "SH-STT";
    result.benchmark = "ocean";
    result.cycles = 4242;
    store.put("k", result);
  }
  CostModel model;
  EXPECT_EQ(model.seed_from_store(path), 1u);
  EXPECT_EQ(model.predict("SH-STT", "ocean"), 4242.0);
  EXPECT_EQ(model.seed_from_store(""), 0u);            // Disabled.
  EXPECT_EQ(model.seed_from_store("/no/such/file"), 0u);  // Missing: no-op.
  std::remove(path.c_str());
}

}  // namespace
}  // namespace respin::serve
