// Parameterized sweeps of the shared cache controller across the full
// (core multiplier x port occupancy) grid the configurations use:
// single-request service-time guarantees and saturation behaviour.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/shared_cache_controller.hpp"

namespace respin::core {
namespace {

using GridPoint = std::tuple<int /*multiplier*/, int /*read_occupancy*/>;

class ControllerSweepTest : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ControllerSweepTest, LoneRequestServicedWithinOneCoreCycle) {
  const auto [multiplier, occupancy] = GetParam();
  ControllerParams params;
  params.core_count = 16;
  params.read_occupancy = static_cast<std::uint32_t>(occupancy);
  SharedCacheController ctrl(params, 1);

  // An uncontended read issued at a core boundary must be serviced within
  // the issuing core's cycle (the paper's single-cycle-hit guarantee).
  ctrl.submit_read(3, static_cast<std::uint32_t>(multiplier), 100);
  std::vector<ServicedRead> out;
  for (std::int64_t t = 100; t <= 100 + multiplier; ++t) ctrl.step(t, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_LE(out[0].serviced_at + 1, 100 + multiplier);
  EXPECT_EQ(out[0].half_misses, 0u);
}

TEST_P(ControllerSweepTest, BackToBackRequestsFromOneCore) {
  const auto [multiplier, occupancy] = GetParam();
  ControllerParams params;
  params.core_count = 16;
  params.read_occupancy = static_cast<std::uint32_t>(occupancy);
  SharedCacheController ctrl(params, 1);

  std::vector<ServicedRead> out;
  std::int64_t t = 0;
  bool outstanding = false;
  int issued = 0;
  for (; t < 40 * multiplier; ++t) {
    ctrl.step(t, out);
    for (const auto& s : out) {
      (void)s;
      outstanding = false;
    }
    out.clear();
    if (!outstanding && t % multiplier == 0 && issued < 30) {
      ctrl.submit_read(0, static_cast<std::uint32_t>(multiplier), t);
      outstanding = true;
      ++issued;
    }
  }
  EXPECT_EQ(ctrl.stats().reads_serviced, 30u);
  EXPECT_EQ(ctrl.stats().half_misses, 0u);  // No contention, no misses.
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ControllerSweepTest,
    ::testing::Combine(::testing::Values(4, 5, 6),   // NT core multipliers.
                       ::testing::Values(1, 2)),     // STT / SRAM read ports.
    [](const auto& info) {
      return "mult" + std::to_string(std::get<0>(info.param)) + "_occ" +
             std::to_string(std::get<1>(info.param));
    });

class SaturationTest : public ::testing::TestWithParam<int> {};

TEST_P(SaturationTest, AllCoresIssuingEveryCycleNobodyStarves) {
  const int multiplier = GetParam();
  ControllerParams params;
  params.core_count = 16;
  SharedCacheController ctrl(params, 1);

  std::vector<std::int64_t> issued_at(16, -1);
  std::vector<std::int64_t> worst_wait(16, 0);
  std::vector<ServicedRead> out;
  for (std::int64_t t = 0; t < 4000; ++t) {
    out.clear();
    ctrl.step(t, out);
    for (const auto& s : out) {
      worst_wait[s.core] =
          std::max(worst_wait[s.core], s.serviced_at - s.issued_at);
      issued_at[s.core] = -1;
    }
    if (t % multiplier == 0) {
      for (std::uint32_t c = 0; c < 16; ++c) {
        if (issued_at[c] < 0) {
          ctrl.submit_read(c, static_cast<std::uint32_t>(multiplier), t);
          issued_at[c] = t;
        }
      }
    }
  }
  // Offered load is 16/multiplier requests per cycle against a 1/cycle
  // port: saturated for multiplier < 16, yet the priority ageing must keep
  // every core's worst-case wait bounded (no starvation).
  for (std::uint32_t c = 0; c < 16; ++c) {
    EXPECT_LT(worst_wait[c], 40 * multiplier) << "core " << c;
    EXPECT_GT(worst_wait[c], 0) << "core " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Multipliers, SaturationTest,
                         ::testing::Values(4, 5, 6),
                         [](const auto& info) {
                           return "mult" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace respin::core
