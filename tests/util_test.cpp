// Tests for respin::util — RNG determinism and distributions, streaming
// statistics, histograms, and the table renderer.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace respin::util {
namespace {

TEST(Units, NsRoundTrips) {
  EXPECT_EQ(ns(0.4), 400);
  EXPECT_EQ(ns(1.6), 1600);
  EXPECT_DOUBLE_EQ(to_ns(2400), 2.4);
}

TEST(Units, FrequencyOfPeriod) {
  EXPECT_DOUBLE_EQ(frequency_hz(400), 2.5e9);
  EXPECT_EQ(period_from_ghz(2.5), 400);
}

TEST(Units, LeakageEnergyIsWattsTimesPicoseconds) {
  // 1 W over 1 ns = 1000 pJ... 1 W * 1000 ps = 1000 pJ = 1 nJ.
  EXPECT_DOUBLE_EQ(leakage_energy(1.0, 1000), 1000.0);
}

TEST(Units, CapacityLiterals) {
  EXPECT_EQ(KiB(16), 16384u);
  EXPECT_EQ(MiB(4), 4u * 1024 * 1024);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a("stream", 7);
  Rng b("stream", 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DistinctStreamsDiffer) {
  Rng a("stream", 7);
  Rng b("stream", 8);
  Rng c("other", 7);
  int same_ab = 0;
  int same_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const auto x = a.next_u64();
    if (x == b.next_u64()) ++same_ab;
    if (x == c.next_u64()) ++same_ac;
  }
  EXPECT_EQ(same_ab, 0);
  EXPECT_EQ(same_ac, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng("uniform", 1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformU64Unbiased) {
  Rng rng("u64", 1);
  std::vector<int> counts(7, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_u64(7)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 7, kDraws / 7 * 0.15);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng("normal", 1);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.add(rng.normal());
  EXPECT_NEAR(stat.mean(), 0.0, 0.03);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(Rng, GeometricMeanMatchesTheory) {
  Rng rng("geom", 1);
  const double p = 0.3;
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.add(static_cast<double>(rng.geometric(p, 100000)));
  }
  EXPECT_NEAR(stat.mean(), (1.0 - p) / p, 0.08);
}

TEST(Rng, GeometricRespectsCap) {
  Rng rng("geomcap", 1);
  for (int i = 0; i < 1000; ++i) EXPECT_LE(rng.geometric(0.001, 5), 5u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng("bern", 1);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(heads / 20000.0, 0.25, 0.02);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  RunningStat all;
  RunningStat left;
  RunningStat right;
  Rng rng("merge", 1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(4);
  h.add(0);
  h.add(1, 2);
  h.add(3);
  h.add(10);  // Overflows into the last bucket.
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.4);
}

TEST(Histogram, Quantile) {
  Histogram h(8);
  for (std::uint64_t v = 0; v < 8; ++v) h.add(v, 10);
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 3u);
  EXPECT_EQ(h.quantile(1.0), 7u);
}

TEST(Histogram, MergeAddsMass) {
  Histogram a(4);
  Histogram b(4);
  a.add(1);
  b.add(1, 3);
  b.add(2);
  a.merge(b);
  EXPECT_EQ(a.bucket(1), 4u);
  EXPECT_EQ(a.bucket(2), 1u);
  EXPECT_EQ(a.total(), 5u);
}

TEST(Histogram, MergeRejectsMismatchedWidth) {
  Histogram a(4);
  Histogram b(5);
  EXPECT_THROW(a.merge(b), std::logic_error);
}

TEST(Means, GeometricAndArithmetic) {
  EXPECT_DOUBLE_EQ(geometric_mean({2.0, 8.0}), 4.0);
  EXPECT_DOUBLE_EQ(arithmetic_mean({2.0, 8.0}), 5.0);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_THROW(geometric_mean({1.0, -1.0}), std::logic_error);
}

TEST(Table, RendersAlignedRows) {
  TextTable t("Demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| bb    | 22    |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  TextTable t("Demo");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(percent(-0.112), "-11.2%");
  EXPECT_EQ(percent(0.05, 0), "+5%");
  EXPECT_EQ(ascii_bar(5.0, 10.0, 10), "#####");
  EXPECT_EQ(ascii_bar(0.0, 10.0, 10), "");
}

TEST(Env, FallbackWhenUnset) {
  EXPECT_EQ(env_long("RESPIN_DEFINITELY_UNSET_VAR", 42), 42);
}

}  // namespace
}  // namespace respin::util
