// Tests for respin::nvsim — the array model must reproduce the paper's
// Table III anchor points and obey its scaling laws.
#include <gtest/gtest.h>

#include <stdexcept>

#include "nvsim/array_model.hpp"
#include "util/units.hpp"

namespace respin::nvsim {
namespace {

ArrayConfig sram(std::uint64_t capacity, double vdd,
                 std::uint32_t banks = 1) {
  return ArrayConfig{.tech = MemTech::kSram,
                     .capacity_bytes = capacity,
                     .block_bytes = 32,
                     .associativity = 2,
                     .vdd = vdd,
                     .bank_count = banks};
}

ArrayConfig stt(std::uint64_t capacity, double vdd, std::uint32_t banks = 1) {
  ArrayConfig c = sram(capacity, vdd, banks);
  c.tech = MemTech::kSttRam;
  return c;
}

// --- Table III anchors -----------------------------------------------------

TEST(TableIII, Sram16KBx16At065V) {
  // 16 independent 16KB banks at 0.65 V: per-bank latency/energy with
  // whole-structure leakage/area.
  const ArrayFigures f = evaluate(sram(256 * util::KiB(1), 0.65, 16));
  EXPECT_NEAR(static_cast<double>(f.read_latency), 1337.0, 15.0);
  EXPECT_NEAR(f.read_energy, 2.578, 0.08);
  EXPECT_NEAR(f.leakage_power, 0.573, 0.01);
  EXPECT_NEAR(f.area_mm2, 0.9176, 0.01);
}

TEST(TableIII, Sram16KBx16At100V) {
  const ArrayFigures f = evaluate(sram(256 * util::KiB(1), 1.0, 16));
  EXPECT_NEAR(static_cast<double>(f.read_latency), 211.9, 2.0);
  EXPECT_NEAR(f.read_energy, 6.102, 0.19);
  EXPECT_NEAR(f.leakage_power, 0.881, 0.01);
  EXPECT_NEAR(f.area_mm2, 0.9176, 0.01);
}

TEST(TableIII, Sram256KBMonolithic) {
  const ArrayFigures f = evaluate(sram(256 * util::KiB(1), 1.0));
  EXPECT_NEAR(static_cast<double>(f.read_latency), 533.6, 5.0);
  EXPECT_NEAR(f.read_energy, 42.41, 1.3);
  EXPECT_NEAR(f.leakage_power, 0.881, 0.01);
}

TEST(TableIII, SttRam256KB) {
  const ArrayFigures f = evaluate(stt(256 * util::KiB(1), 1.0));
  EXPECT_NEAR(static_cast<double>(f.read_latency), 588.2, 6.0);
  EXPECT_NEAR(static_cast<double>(f.write_latency), 5208.0, 55.0);
  EXPECT_NEAR(f.read_energy, 29.32, 0.9);
  EXPECT_NEAR(f.leakage_power, 0.114, 0.005);
  EXPECT_NEAR(f.area_mm2, 0.2451, 0.005);
}

// --- Scaling laws ----------------------------------------------------------

TEST(Scaling, LatencyGrowsWithCubeRootOfCapacity) {
  const auto small = evaluate(sram(16 * util::KiB(1), 1.0));
  const auto big = evaluate(sram(128 * util::KiB(1), 1.0));
  const double ratio = static_cast<double>(big.read_latency) /
                       static_cast<double>(small.read_latency);
  EXPECT_NEAR(ratio, 2.0, 0.05);  // 8x capacity -> 8^(1/3) = 2.
}

TEST(Scaling, BankingRestoresPerBankLatency) {
  const auto mono = evaluate(sram(16 * util::KiB(1), 1.0));
  const auto banked = evaluate(sram(256 * util::KiB(1), 1.0, 16));
  EXPECT_EQ(mono.read_latency, banked.read_latency);
  // But leakage covers the whole banked structure.
  EXPECT_NEAR(banked.leakage_power / mono.leakage_power, 16.0, 0.01);
}

TEST(Scaling, EnergyScalesWithVddSquared) {
  const auto high = evaluate(sram(16 * util::KiB(1), 1.0));
  const auto low = evaluate(sram(16 * util::KiB(1), 0.65));
  EXPECT_NEAR(low.read_energy / high.read_energy, 0.65 * 0.65, 1e-6);
}

TEST(Scaling, LeakageScalesLinearlyWithVdd) {
  const auto high = evaluate(sram(64 * util::KiB(1), 1.0));
  const auto low = evaluate(sram(64 * util::KiB(1), 0.65));
  EXPECT_NEAR(low.leakage_power / high.leakage_power, 0.65, 1e-6);
}

TEST(Scaling, SttLeakageRatioHoldsAcrossSizes) {
  for (std::uint64_t kb : {64u, 256u, 1024u, 4096u}) {
    const auto s = evaluate(sram(kb * util::KiB(1), 1.0));
    const auto m = evaluate(stt(kb * util::KiB(1), 1.0));
    EXPECT_NEAR(m.leakage_power / s.leakage_power, 114.0 / 881.0, 1e-6)
        << kb << "KB";
  }
}

TEST(Scaling, SttWriteDominatedByPulseNotGeometry) {
  const auto small = evaluate(stt(64 * util::KiB(1), 1.0));
  const auto big = evaluate(stt(4096 * util::KiB(1), 1.0));
  // Write latency grows far slower than read latency with capacity.
  const double write_growth = static_cast<double>(big.write_latency) /
                              static_cast<double>(small.write_latency);
  const double read_growth = static_cast<double>(big.read_latency) /
                             static_cast<double>(small.read_latency);
  EXPECT_LT(write_growth, 1.2);
  EXPECT_GT(read_growth, 3.0);
}

TEST(Scaling, SttDensityAdvantage) {
  const auto s = evaluate(sram(util::MiB(1), 1.0));
  const auto m = evaluate(stt(util::MiB(1), 1.0));
  EXPECT_NEAR(m.area_mm2 / s.area_mm2, 0.2451 / 0.9176, 1e-6);
}

TEST(Scaling, WiderBlocksCostMoreEnergy) {
  ArrayConfig narrow = sram(64 * util::KiB(1), 1.0);
  ArrayConfig wide = narrow;
  wide.block_bytes = 128;
  EXPECT_GT(evaluate(wide).read_energy, evaluate(narrow).read_energy);
}

TEST(Scaling, HigherAssociativityCostsEnergy) {
  ArrayConfig low = sram(64 * util::KiB(1), 1.0);
  ArrayConfig high = low;
  high.associativity = 16;
  EXPECT_GT(evaluate(high).read_energy, evaluate(low).read_energy);
}

TEST(Scaling, SramSlowsExponentiallyBelowNominal) {
  const auto v10 = evaluate(sram(16 * util::KiB(1), 1.0));
  const auto v08 = evaluate(sram(16 * util::KiB(1), 0.8));
  const auto v065 = evaluate(sram(16 * util::KiB(1), 0.65));
  EXPECT_GT(v08.read_latency, v10.read_latency);
  EXPECT_GT(v065.read_latency, v08.read_latency);
  EXPECT_NEAR(static_cast<double>(v065.read_latency) /
                  static_cast<double>(v10.read_latency),
              1337.0 / 211.9, 0.2);
}

// --- Validation ------------------------------------------------------------

TEST(Validation, RejectsNonsenseConfigs) {
  EXPECT_THROW(evaluate(sram(0, 1.0)), std::logic_error);
  EXPECT_THROW(evaluate(sram(16 * util::KiB(1), 0.1)), std::logic_error);
  ArrayConfig c = sram(16 * util::KiB(1), 1.0);
  c.associativity = 0;
  EXPECT_THROW(evaluate(c), std::logic_error);
  c = sram(16 * util::KiB(1), 1.0);
  c.bank_count = 0;
  EXPECT_THROW(evaluate(c), std::logic_error);
  c = sram(16 * util::KiB(1), 1.0);
  c.block_bytes = 0;
  EXPECT_THROW(evaluate(c), std::logic_error);
}

TEST(Describe, HumanReadable) {
  EXPECT_EQ(describe(sram(256 * util::KiB(1), 1.0)), "SRAM 256KB @1V");
  EXPECT_EQ(describe(stt(util::MiB(4), 1.0)), "STT-RAM 4MB @1V");
}

TEST(ToString, TechNames) {
  EXPECT_STREQ(to_string(MemTech::kSram), "SRAM");
  EXPECT_STREQ(to_string(MemTech::kSttRam), "STT-RAM");
}

}  // namespace
}  // namespace respin::nvsim
