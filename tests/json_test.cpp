// Tests for the obs::json document model and parser: strict parsing with
// typed errors, number-lexeme preservation (the property the canonical
// request keys and the results store depend on), escapes, and dump()
// round-trips.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace respin::obs::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_EQ(parse("null").kind(), Value::Kind::kNull);
  EXPECT_TRUE(parse("true").as_bool());
  EXPECT_FALSE(parse("false").as_bool());
  EXPECT_EQ(parse("42").as_double(), 42.0);
  EXPECT_EQ(parse("-1.5e3").as_double(), -1500.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, WhitespaceAndNesting) {
  const Value v = parse(" { \"a\" : [ 1 , { \"b\" : [ ] } ] , \"c\" : {} } ");
  const Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->as_array().size(), 2u);
  EXPECT_EQ(a->as_array()[0].as_double(), 1.0);
  EXPECT_TRUE(a->as_array()[1].find("b")->as_array().empty());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t\r\f\b")").as_string(),
            "a\"b\\c/d\n\t\r\f\b");
  // \u escapes, including a surrogate pair (U+1F600) -> UTF-8.
  EXPECT_EQ(parse(R"("\u0041\u00e9\u20ac")").as_string(),
            "A\xC3\xA9\xE2\x82\xAC");
  EXPECT_EQ(parse(R"("\ud83d\ude00")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("{"), Error);
  EXPECT_THROW(parse("[1,]"), Error);
  EXPECT_THROW(parse("{\"a\":1,}"), Error);
  EXPECT_THROW(parse("{\"a\" 1}"), Error);
  EXPECT_THROW(parse("nul"), Error);
  EXPECT_THROW(parse("01"), Error);      // Leading zero.
  EXPECT_THROW(parse("1. "), Error);     // Truncated fraction.
  EXPECT_THROW(parse("\"abc"), Error);   // Unterminated string.
  EXPECT_THROW(parse("\"\\x\""), Error); // Unknown escape.
  EXPECT_THROW(parse("1 2"), Error);     // Trailing tokens.
  EXPECT_THROW(parse("\"\\ud83d\""), Error);  // Lone high surrogate.
}

TEST(JsonParse, ErrorsCarryOffsets) {
  try {
    parse("{\"a\": !}");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.offset(), 6u);
  }
}

TEST(JsonParse, DepthCapStopsRunawayNesting) {
  std::string deep(kMaxDepth + 1, '[');
  deep += std::string(kMaxDepth + 1, ']');
  EXPECT_THROW(parse(deep), Error);
  std::string ok_depth(kMaxDepth - 1, '[');
  ok_depth += std::string(kMaxDepth - 1, ']');
  EXPECT_NO_THROW(parse(ok_depth));
}

TEST(JsonNumbers, LexemePreservedThroughDump) {
  // The parser keeps the exact number text, so values that do not survive
  // a double round-trip (64-bit seeds) still dump byte-identically.
  const std::string text = "{\"seed\":18446744073709551615,\"x\":0.1}";
  EXPECT_EQ(parse(text).dump(), text);
}

TEST(JsonNumbers, U64Exact) {
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(parse("18446744073709551615").as_u64(), big);
  EXPECT_EQ(Value::number(big).as_u64(), big);
  EXPECT_THROW(parse("1.5").as_u64(), Error);
  EXPECT_THROW(parse("-1").as_u64(), Error);
}

TEST(JsonNumbers, DoubleBitExactRoundTrip) {
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324,
                         std::numeric_limits<double>::max()}) {
    const Value parsed = parse(Value::number(v).dump());
    // Bit-exact, not approximately equal.
    EXPECT_EQ(parsed.as_double(), v);
  }
}

TEST(JsonDump, EscapesAndStructure) {
  Value obj = Value::object();
  obj.set("k\n", Value::str("v\"\\\x01"));
  Array arr;
  arr.push_back(Value::null());
  arr.push_back(Value::boolean(true));
  obj.set("a", Value::array(std::move(arr)));
  const std::string text = obj.dump();
  EXPECT_EQ(text, "{\"k\\n\":\"v\\\"\\\\\\u0001\",\"a\":[null,true]}");
  // And it parses back to the same document.
  EXPECT_EQ(parse(text).dump(), text);
}

TEST(JsonDump, ObjectPreservesInsertionOrder) {
  // Canonical request keys depend on members dumping in insertion order,
  // never sorted.
  Value obj = Value::object();
  obj.set("z", Value::number(std::uint64_t{1}));
  obj.set("a", Value::number(std::uint64_t{2}));
  EXPECT_EQ(obj.dump(), "{\"z\":1,\"a\":2}");
}

TEST(JsonValue, TypedAccessorsThrowOnMismatch) {
  const Value v = parse("{\"a\":1}");
  EXPECT_THROW(v.as_array(), Error);
  EXPECT_THROW(v.as_string(), Error);
  EXPECT_THROW(v.find("a")->as_object(), Error);
  EXPECT_EQ(v.find("missing"), nullptr);
}

}  // namespace
}  // namespace respin::obs::json
