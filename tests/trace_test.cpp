// respin::trace — format round-trips, malformed-input robustness, the
// op-source refactor guard, and the record/replay differential tier.
//
// The headline contract: for every benchmark and every Table IV
// configuration, replaying a recorded trace reproduces the live synthetic
// run's SimResult bit for bit (expect_same_result, the same assertion the
// skip/no-skip and serial/parallel determinism tests use). The robustness
// half feeds the reader truncated/corrupted/alien bytes and requires a
// typed TraceError every time — these are the paths the ASan+UBSan CI job
// watches.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <vector>

#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/oracle.hpp"
#include "obs/golden.hpp"
#include "sim_result_eq.hpp"
#include "trace/capture.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "trace/writer.hpp"
#include "workload/op_source.hpp"
#include "workload/workload.hpp"

namespace respin {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "respin_trace_test_" + name;
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

trace::TraceErrorKind load_error_kind(const std::string& path) {
  try {
    trace::load_trace(path);
  } catch (const trace::TraceError& e) {
    return e.kind();
  }
  ADD_FAILURE() << "expected TraceError from " << path;
  return trace::TraceErrorKind::kIo;
}

/// A small recorded trace shared by the format tests.
std::string record_small(const std::string& name, std::uint32_t threads = 4,
                         double scale = 0.02) {
  const std::string path = temp_path(name);
  trace::record_benchmark(workload::benchmark("radix"), threads, scale, 7,
                          path);
  return path;
}

// ---- Format round trip ---------------------------------------------------

TEST(TraceFormat, RecordedOpsRoundTripExactly) {
  const std::string path = record_small("roundtrip.rspt");
  const trace::TraceData data = trace::load_trace(path);

  EXPECT_EQ(data.header.benchmark, "radix");
  EXPECT_EQ(data.header.thread_count, 4u);
  EXPECT_EQ(data.header.seed, 7u);
  EXPECT_DOUBLE_EQ(data.header.scale, 0.02);

  // The decoded streams must equal a fresh drain of the generator, field
  // by field — delta/varint compression is lossless.
  for (std::uint32_t t = 0; t < 4; ++t) {
    workload::ThreadWorkload work(workload::benchmark("radix"), t, 4, 0.02,
                                  7);
    const trace::ThreadTrace& decoded = data.threads[t];
    std::size_t i = 0;
    for (;;) {
      const workload::Op expected = work.next();
      if (expected.kind == workload::OpKind::kFinished) break;
      ASSERT_LT(i, decoded.ops.size()) << "thread " << t;
      const workload::Op& got = decoded.ops[i++];
      ASSERT_EQ(static_cast<int>(got.kind), static_cast<int>(expected.kind))
          << "thread " << t << " op " << i;
      EXPECT_EQ(got.count, expected.count);
      EXPECT_EQ(got.addr, expected.addr);
      if (expected.kind == workload::OpKind::kCompute) {
        EXPECT_EQ(got.ipc, expected.ipc);  // Bit-exact through f64 bits.
      }
    }
    EXPECT_EQ(i, decoded.ops.size()) << "thread " << t;
    EXPECT_EQ(decoded.instructions, work.instructions_emitted());

    for (const mem::Addr addr : decoded.ifetch) {
      EXPECT_EQ(addr, work.next_ifetch_addr());
    }
  }
  std::remove(path.c_str());
}

TEST(TraceFormat, ChunkIteratorSeesEveryChunkOnce) {
  const std::string path = record_small("iterator.rspt");
  trace::TraceReader reader(path);
  std::uint64_t records = 0;
  std::size_t chunks = 0;
  for (const trace::Chunk& chunk : reader) {
    EXPECT_LT(chunk.thread, reader.header().thread_count);
    EXPECT_FALSE(chunk.payload.empty());
    records += chunk.record_count;
    ++chunks;
  }
  EXPECT_GE(chunks, 8u);  // At least ops + ifetch per thread.
  const trace::TraceData data = trace::load_trace(path);
  // record_count counts kSetIpc metadata records too, so it bounds the
  // decoded op/ifetch totals from above.
  EXPECT_GE(records, data.total_ops() + data.total_ifetches());
  std::remove(path.c_str());
}

TEST(TraceFormat, WriterRejectsOutOfRangeThread) {
  const std::string path = temp_path("badthread.rspt");
  trace::TraceHeader header;
  header.thread_count = 2;
  header.benchmark = "x";
  trace::TraceWriter writer(path, header);
  try {
    writer.add_ifetch(5, 0x1000);
    FAIL() << "expected TraceError";
  } catch (const trace::TraceError& e) {
    EXPECT_EQ(e.kind(), trace::TraceErrorKind::kBadRecord);
  }
  std::remove(path.c_str());
}

// ---- Malformed-input robustness ------------------------------------------

TEST(TraceRobustness, BadMagicIsTyped) {
  const std::string path = record_small("badmagic.rspt");
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes[0] ^= 0xFF;
  write_file(path, bytes);
  EXPECT_EQ(load_error_kind(path), trace::TraceErrorKind::kBadMagic);
  std::remove(path.c_str());
}

TEST(TraceRobustness, WrongVersionIsTyped) {
  const std::string path = record_small("badversion.rspt");
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes[4] = 0x7F;  // version u16 lives at offset 4.
  write_file(path, bytes);
  EXPECT_EQ(load_error_kind(path), trace::TraceErrorKind::kBadVersion);
  std::remove(path.c_str());
}

TEST(TraceRobustness, ZeroThreadHeaderIsTyped) {
  const std::string path = record_small("zerothreads.rspt");
  std::vector<std::uint8_t> bytes = read_file(path);
  for (int i = 8; i < 12; ++i) bytes[i] = 0;  // thread_count u32 at offset 8.
  write_file(path, bytes);
  EXPECT_EQ(load_error_kind(path), trace::TraceErrorKind::kBadHeader);
  std::remove(path.c_str());
}

TEST(TraceRobustness, FlippedHeaderByteFailsCrc) {
  const std::string path = record_small("hdrcrc.rspt");
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes[12] ^= 0x01;  // Inside the seed field: caught only by the CRC.
  write_file(path, bytes);
  EXPECT_EQ(load_error_kind(path), trace::TraceErrorKind::kCrcMismatch);
  std::remove(path.c_str());
}

TEST(TraceRobustness, FlippedPayloadByteFailsChunkCrc) {
  const std::string path = record_small("chunkcrc.rspt");
  std::vector<std::uint8_t> bytes = read_file(path);
  // Header = 30-byte prefix + 5-byte name ("radix") + 4-byte CRC; first
  // chunk header is 13 bytes, then its payload.
  const std::size_t payload_start = 30 + 5 + 4 + 13;
  ASSERT_LT(payload_start + 8, bytes.size());
  bytes[payload_start + 8] ^= 0x20;
  write_file(path, bytes);
  EXPECT_EQ(load_error_kind(path), trace::TraceErrorKind::kCrcMismatch);
  std::remove(path.c_str());
}

TEST(TraceRobustness, TruncationIsTypedEverywhere) {
  const std::string path = record_small("trunc.rspt");
  const std::vector<std::uint8_t> bytes = read_file(path);
  // Cut inside the header, inside a chunk, and just before the end
  // marker: always kTruncated, never UB or silent success.
  for (const std::size_t keep :
       {std::size_t{10}, std::size_t{33}, bytes.size() / 2,
        bytes.size() - 5}) {
    std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    write_file(path, cut);
    EXPECT_EQ(load_error_kind(path), trace::TraceErrorKind::kTruncated)
        << "truncated to " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST(TraceRobustness, TrailingGarbageIsTyped) {
  const std::string path = record_small("trailing.rspt");
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes.push_back(0xAB);
  write_file(path, bytes);
  EXPECT_EQ(load_error_kind(path), trace::TraceErrorKind::kBadRecord);
  std::remove(path.c_str());
}

TEST(TraceRobustness, UnknownRecordTagIsTyped) {
  const std::string path = temp_path("badtag.rspt");
  trace::TraceHeader header;
  header.thread_count = 1;
  header.benchmark = "x";
  std::vector<std::uint8_t> bytes = trace::encode_header(header);
  // Hand-built ops chunk whose single record has tag 9 (undefined) but a
  // correct CRC: must fail in the decoder, not the checksum.
  const std::vector<std::uint8_t> payload = {9};
  trace::put_u32(bytes, 0);  // thread
  trace::put_u8(bytes, 0);   // StreamKind::kOps
  trace::put_u32(bytes, 1);  // record_count
  trace::put_u32(bytes, static_cast<std::uint32_t>(payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  trace::put_u32(bytes, trace::crc32(payload));
  trace::put_u32(bytes, trace::kEndMarker);
  write_file(path, bytes);
  EXPECT_EQ(load_error_kind(path), trace::TraceErrorKind::kBadRecord);
  std::remove(path.c_str());
}

TEST(TraceRobustness, OversizedChunkLengthIsTypedNotAllocated) {
  const std::string path = temp_path("bigchunk.rspt");
  trace::TraceHeader header;
  header.thread_count = 1;
  header.benchmark = "x";
  std::vector<std::uint8_t> bytes = trace::encode_header(header);
  trace::put_u32(bytes, 0);
  trace::put_u8(bytes, 0);
  trace::put_u32(bytes, 1);
  trace::put_u32(bytes, 0xFFFF'FFF0u);  // Absurd payload length.
  write_file(path, bytes);
  EXPECT_EQ(load_error_kind(path), trace::TraceErrorKind::kBadRecord);
  std::remove(path.c_str());
}

TEST(TraceRobustness, MissingFileIsTyped) {
  EXPECT_EQ(load_error_kind(temp_path("does_not_exist.rspt")),
            trace::TraceErrorKind::kIo);
}

// ---- Op-source refactor guard --------------------------------------------

TEST(OpSource, StreamCopyIsDeepAndPositionPreserving) {
  const workload::WorkloadSpec& spec = workload::benchmark("fft");
  workload::OpStream a = workload::synthetic_factory(spec, 0.05, 3)(0, 4);
  for (int i = 0; i < 100; ++i) a.next();
  for (int i = 0; i < 10; ++i) a.next_ifetch_addr();

  workload::OpStream b = a;  // Deep copy at position 100/10.
  for (int i = 0; i < 200; ++i) {
    const workload::Op oa = a.next();
    const workload::Op ob = b.next();
    ASSERT_EQ(static_cast<int>(oa.kind), static_cast<int>(ob.kind)) << i;
    ASSERT_EQ(oa.count, ob.count) << i;
    ASSERT_EQ(oa.addr, ob.addr) << i;
    ASSERT_EQ(a.next_ifetch_addr(), b.next_ifetch_addr()) << i;
  }
}

// The refactor's own regression: driving the goldens grid through the
// explicit op-source factory constructor (no trace files anywhere) must
// reproduce the checked-in goldens-grid counters exactly. Guards the
// ThreadWorkload -> OpStream lifting independently of the trace format.
TEST(OpSource, FactoryConstructorMatchesGoldenCounters) {
  std::ifstream in(RESPIN_GOLDENS_FILE);
  ASSERT_TRUE(in.good()) << "cannot open " << RESPIN_GOLDENS_FILE;
  const std::vector<obs::MetricsRow> golden = obs::read_metrics_csv(in);
  ASSERT_FALSE(golden.empty());

  const core::RunOptions options = core::golden_options();
  std::vector<obs::MetricsRow> live;
  for (const core::ConfigId id : core::all_config_ids()) {
    for (const std::string& name : core::golden_benchmarks()) {
      const workload::WorkloadSpec& spec = workload::benchmark(name);
      const core::ClusterConfig config = core::make_cluster_config(
          id, options.size, options.cluster_cores, options.seed);
      core::SimParams params;
      params.workload_scale = options.workload_scale;
      params.seed = options.seed;
      params.cycle_skip = options.cycle_skip;
      core::ClusterSim sim(
          config, name,
          workload::synthetic_factory(spec, options.workload_scale,
                                      options.seed),
          params);
      core::SimResult result;
      if (config.governor == core::GovernorKind::kOracle) {
        result = core::run_with_oracle(
            sim, core::OracleParams{.stride = options.oracle_stride});
      } else {
        sim.run();
        result = sim.result();
      }
      live.push_back(core::metrics_row(result));
    }
  }

  const obs::GoldenDiff diff = obs::diff_metrics(golden, live);
  EXPECT_TRUE(diff.ok()) << "factory-built sims drifted off the goldens:\n"
                         << diff.report();
}

// ---- Record/replay differential tier -------------------------------------

class TraceReplayEquivalence : public testing::TestWithParam<const char*> {};

// The headline property: recorded-trace replay is bit-identical to the
// live synthetic run for every Table IV configuration.
TEST_P(TraceReplayEquivalence, BitIdenticalAcrossAllConfigs) {
  const std::string benchmark = GetParam();
  const std::string path = temp_path("replay_" + benchmark + ".rspt");
  trace::record_benchmark(workload::benchmark(benchmark), 8, 0.04, 1, path);
  const trace::TraceData data = trace::load_trace(path);

  for (const core::ConfigId id : core::all_config_ids()) {
    SCOPED_TRACE(core::to_string(id));
    trace::ReplayOptions options;
    const core::SimResult live = trace::live_run_for(id, data, options);
    const core::SimResult replay = trace::replay_trace(id, data, options);
    core::expect_same_result(live, replay);
    EXPECT_EQ(trace::diff_results(live, replay), "");
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, TraceReplayEquivalence,
                         testing::Values("radix", "raytrace"));

TEST(TraceReplay, RecordingWrapperIsTransparentToTheSimulation) {
  // A live simulation whose streams are tee'd through RecordingOpSource
  // must behave identically to the unrecorded one — recording is a pure
  // observer.
  const workload::WorkloadSpec& spec = workload::benchmark("fft");
  const core::ClusterConfig config = core::make_cluster_config(
      core::ConfigId::kShSttCc, core::CacheSize::kMedium, 8, 1);
  core::SimParams params;
  params.workload_scale = 0.04;
  params.seed = 1;

  core::ClusterSim plain(config, spec, params);
  plain.run();

  const std::string path = temp_path("teerecord.rspt");
  trace::TraceHeader header;
  header.thread_count = 8;
  header.seed = 1;
  header.scale = 0.04;
  header.benchmark = spec.name;
  {
    trace::TraceWriter writer(path, header);
    core::ClusterSim recorded(
        config, spec.name,
        trace::recording_factory(
            workload::synthetic_factory(spec, 0.04, 1), &writer),
        params);
    recorded.run();
    core::SimResult a = plain.result();
    core::SimResult b = recorded.result();
    core::expect_same_result(a, b);
    writer.finish();
  }
  std::remove(path.c_str());
}

TEST(TraceReplay, TraceSourceReturnsFinishedForever) {
  const std::string path = record_small("finished.rspt", 2, 0.01);
  auto data = std::make_shared<const trace::TraceData>(
      trace::load_trace(path));
  trace::TraceOpSource source(data, 0);
  for (;;) {
    if (source.next().kind == workload::OpKind::kFinished) break;
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(static_cast<int>(source.next().kind),
              static_cast<int>(workload::OpKind::kFinished));
  }
  std::remove(path.c_str());
}

TEST(TraceReplay, ThreadCountMismatchIsTyped) {
  const std::string path = record_small("mismatch.rspt", 4, 0.01);
  const trace::TraceData data = trace::load_trace(path);
  // Any configuration with cluster_cores != 4 must be rejected.
  try {
    const core::ClusterConfig config = core::make_cluster_config(
        core::ConfigId::kShStt, core::CacheSize::kMedium, 8, 1);
    core::SimParams params;
    core::ClusterSim sim(
        config, data.header.benchmark,
        trace::trace_factory(std::make_shared<const trace::TraceData>(data)),
        params);
    FAIL() << "expected TraceError";
  } catch (const trace::TraceError& e) {
    EXPECT_EQ(e.kind(), trace::TraceErrorKind::kMismatch);
  }
  std::remove(path.c_str());
}

TEST(TraceReplay, IfetchExhaustionIsTyped) {
  const std::string path = record_small("ifetchdry.rspt", 4, 0.02);
  trace::TraceData data = trace::load_trace(path);
  // Starve the ifetch streams: replay must fail with a typed error, not
  // read out of bounds.
  for (trace::ThreadTrace& t : data.threads) t.ifetch.resize(1);
  try {
    trace::replay_trace(core::ConfigId::kShStt, data);
    FAIL() << "expected TraceError";
  } catch (const trace::TraceError& e) {
    EXPECT_EQ(e.kind(), trace::TraceErrorKind::kMismatch);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace respin
