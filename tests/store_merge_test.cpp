// Property tests for results-store merge semantics: interleaving two
// JSONL logs — duplicate keys, torn tails, conflicting generations,
// legacy stamp-less lines — must produce a newest-wins result that is
// idempotent (re-merging changes nothing) and order-independent (A then
// B equals B then A). These are the invariants the sharded serving
// tier's replication leans on (docs/serving.md).
#include "serve/store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "core/serde.hpp"
#include "obs/json.hpp"

namespace respin::serve {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "respin_store_merge_test_" + name;
}

/// A distinguishable fabricated result: `cycles` is the payload the
/// assertions compare.
core::SimResult make_result(const std::string& key, std::uint64_t cycles) {
  core::SimResult result;
  result.config_name = "SH-STT";
  result.benchmark = key;
  result.cycles = cycles;
  return result;
}

std::uint64_t stored_cycles(const ResultStore& store, const std::string& key) {
  const auto result = store.get(key);
  return result.has_value() ? result->cycles : 0;
}

/// Every (key, cycles) pair in the store, canonicalized for comparison.
std::vector<std::pair<std::string, std::uint64_t>> snapshot(
    const ResultStore& store) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const ResultStore::Brief& brief : store.list()) {
    out.emplace_back(brief.key, stored_cycles(store, brief.key));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class StoreMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_a_ = temp_path("a.jsonl");
    path_b_ = temp_path("b.jsonl");
    path_c_ = temp_path("c.jsonl");
    path_d_ = temp_path("d.jsonl");
    for (const std::string& p : {path_a_, path_b_, path_c_, path_d_}) {
      std::remove(p.c_str());
    }
  }
  void TearDown() override {
    for (const std::string& p : {path_a_, path_b_, path_c_, path_d_}) {
      std::remove(p.c_str());
    }
  }

  std::string path_a_, path_b_, path_c_, path_d_;
};

TEST_F(StoreMergeTest, MergeIsIdempotent) {
  {
    ResultStore a(path_a_);
    a.put("k1", make_result("k1", 11));
    a.put("k2", make_result("k2", 22));
  }
  ResultStore c(path_c_);
  const StoreMergeStats first = c.merge_from(path_a_);
  EXPECT_EQ(first.scanned, 2u);
  EXPECT_EQ(first.inserted, 2u);
  EXPECT_EQ(first.ignored, 0u);

  // Replaying the same log changes nothing: the appended records kept
  // their original stamps, so every record now compares equal-or-older.
  const auto before = snapshot(c);
  const StoreMergeStats again = c.merge_from(path_a_);
  EXPECT_EQ(again.scanned, 2u);
  EXPECT_EQ(again.inserted, 0u);
  EXPECT_EQ(again.superseded, 0u);
  EXPECT_EQ(again.ignored, 2u);
  EXPECT_EQ(snapshot(c), before);
}

TEST_F(StoreMergeTest, MergeIsOrderIndependent) {
  {
    ResultStore a(path_a_);
    a.put("only_a", make_result("only_a", 1));
    a.put("shared", make_result("shared", 100));
  }
  {
    // Bump b's generation past a's by opening it twice: its `shared`
    // record carries a newer stamp and must win in either merge order.
    { ResultStore bump(path_b_); }
    ResultStore b(path_b_);
    b.put("only_b", make_result("only_b", 2));
    b.put("shared", make_result("shared", 200));
  }
  ResultStore ab(path_c_);
  ab.merge_from(path_a_);
  ab.merge_from(path_b_);
  ResultStore ba(path_d_);
  ba.merge_from(path_b_);
  ba.merge_from(path_a_);

  EXPECT_EQ(snapshot(ab), snapshot(ba));
  EXPECT_EQ(ab.size(), 3u);
  EXPECT_EQ(stored_cycles(ab, "shared"), 200u);  // Newer generation won.
  EXPECT_EQ(stored_cycles(ba, "shared"), 200u);
}

TEST_F(StoreMergeTest, ConflictingGenerationsNewestWins) {
  {
    ResultStore a(path_a_);
    a.put("k", make_result("k", 1));  // gen 1.
  }
  {
    ResultStore a(path_a_);            // Reopen: gen 2.
    a.put("k", make_result("k", 2));  // Supersedes within the same log.
  }
  ResultStore c(path_c_);
  const StoreMergeStats stats = c.merge_from(path_a_);
  // The log holds both spellings of "k" but the scan deduplicates to the
  // newest before our newest-wins compare sees it, or delivers both and
  // the second supersedes — either way gen 2 lands.
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(stored_cycles(c, "k"), 2u);
  EXPECT_GE(stats.inserted, 1u);

  // Merging into a store that already holds a newer generation for the
  // key leaves it untouched.
  ResultStore d(path_d_);
  d.merge_from(path_a_);         // "k" @ gen 2.
  { ResultStore bump1(path_b_); }  // Header only: gen 1.
  { ResultStore bump2(path_b_); }  // Header only: gen 2.
  {
    ResultStore newer(path_b_);  // gen 3 — strictly newer than a's gen 2.
    newer.put("k", make_result("k", 3));
  }
  d.merge_from(path_b_);
  EXPECT_EQ(stored_cycles(d, "k"), 3u);
  const StoreMergeStats replay = d.merge_from(path_a_);  // Older again.
  EXPECT_EQ(replay.superseded, 0u);
  EXPECT_EQ(stored_cycles(d, "k"), 3u);
}

TEST_F(StoreMergeTest, TornTailAndGarbageLinesAreSkipped) {
  {
    ResultStore a(path_a_);
    a.put("good", make_result("good", 7));
  }
  {
    std::ofstream out(path_a_, std::ios::app);
    out << "not json at all\n";
    out << "{\"key\":\"torn";  // Crash mid-append: no newline, no close.
  }
  ResultStore c(path_c_);
  const StoreMergeStats stats = c.merge_from(path_a_);
  EXPECT_EQ(stats.scanned, 1u);
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_EQ(stats.skipped_lines, 2u);
  EXPECT_EQ(stored_cycles(c, "good"), 7u);
}

TEST_F(StoreMergeTest, LegacyStampLessLinesLoadAndLose) {
  // A pre-replication log: no header, no gen/seq stamps. Later lines win
  // on load (line index becomes the sequence)...
  {
    std::ofstream out(path_a_);
    for (const std::uint64_t cycles : {10u, 20u}) {
      obs::json::Value record = obs::json::Value::object();
      record.set("key", obs::json::Value::str("legacy"));
      record.set("hash", obs::json::Value::str(core::key_hash_hex("legacy")));
      record.set("result",
                 core::result_to_json(make_result("legacy", cycles)));
      out << record.dump() << '\n';
    }
  }
  {
    ResultStore legacy(path_a_);
    EXPECT_EQ(legacy.loaded(), 2u);
    EXPECT_EQ(legacy.size(), 1u);
    EXPECT_EQ(stored_cycles(legacy, "legacy"), 20u);
    EXPECT_EQ(legacy.generation(), 1u);  // Stamp-less lines are gen 0.
  }
  // ...and any stamped record supersedes a legacy one.
  {
    ResultStore b(path_b_);
    b.put("legacy", make_result("legacy", 30));
  }
  ResultStore c(path_c_);
  c.merge_from(path_a_);
  EXPECT_EQ(stored_cycles(c, "legacy"), 20u);
  const StoreMergeStats stats = c.merge_from(path_b_);
  EXPECT_EQ(stats.superseded, 1u);
  EXPECT_EQ(stored_cycles(c, "legacy"), 30u);
}

TEST_F(StoreMergeTest, CompactDropsHistoryAndPreservesEntries) {
  {
    ResultStore a(path_a_);
    a.put("k1", make_result("k1", 1));
    a.put("k1", make_result("k1", 2));  // Superseding line.
    a.put("k2", make_result("k2", 3));
    const auto before = snapshot(a);
    EXPECT_EQ(a.compact(), 2u);
    EXPECT_EQ(snapshot(a), before);
    // The compacted store keeps accepting puts (stream reopened).
    a.put("k3", make_result("k3", 4));
  }
  // One header + one line per key survives on disk.
  std::size_t record_lines = 0, header_lines = 0;
  std::ifstream in(path_a_);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("respin_store") != std::string::npos) {
      ++header_lines;
    } else if (line.find("\"key\"") != std::string::npos) {
      ++record_lines;
    }
  }
  EXPECT_EQ(header_lines, 1u);
  EXPECT_EQ(record_lines, 3u);

  // A reload sees exactly the compacted state.
  ResultStore reloaded(path_a_);
  EXPECT_EQ(reloaded.size(), 3u);
  EXPECT_EQ(stored_cycles(reloaded, "k1"), 2u);
  EXPECT_EQ(stored_cycles(reloaded, "k3"), 4u);
}

TEST_F(StoreMergeTest, EntryNewerIsAStrictOrder) {
  StoreEntry old_entry;
  old_entry.gen = 1;
  old_entry.seq = 5;
  old_entry.result = make_result("k", 1);
  StoreEntry new_entry = old_entry;
  new_entry.gen = 2;
  EXPECT_TRUE(entry_newer(new_entry, old_entry));
  EXPECT_FALSE(entry_newer(old_entry, new_entry));

  // Same generation: sequence decides.
  new_entry.gen = 1;
  new_entry.seq = 6;
  EXPECT_TRUE(entry_newer(new_entry, old_entry));

  // Identical stamps and identical results: neither is newer (a replayed
  // record is a no-op, not a flip-flop).
  new_entry.seq = 5;
  EXPECT_FALSE(entry_newer(new_entry, old_entry));
  EXPECT_FALSE(entry_newer(old_entry, new_entry));

  // Identical stamps, different payloads: the text tiebreak picks the
  // same winner regardless of argument order.
  new_entry.result = make_result("k", 2);
  EXPECT_NE(entry_newer(new_entry, old_entry),
            entry_newer(old_entry, new_entry));
}

TEST_F(StoreMergeTest, LoadStoreEntriesReadsWithoutGenerationBump) {
  {
    ResultStore a(path_a_);
    a.put("k1", make_result("k1", 1));
  }
  std::ifstream before(path_a_);
  const std::size_t lines_before = std::count(
      std::istreambuf_iterator<char>(before), std::istreambuf_iterator<char>(),
      '\n');
  std::size_t skipped = 0;
  const std::vector<StoreEntry> entries = load_store_entries(path_a_, &skipped);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "k1");
  EXPECT_EQ(skipped, 0u);
  // Read-only: no header appended, file untouched.
  std::ifstream after(path_a_);
  EXPECT_EQ(static_cast<std::size_t>(std::count(
                std::istreambuf_iterator<char>(after),
                std::istreambuf_iterator<char>(), '\n')),
            lines_before);
}

}  // namespace
}  // namespace respin::serve
