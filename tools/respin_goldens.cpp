// respin_goldens — golden-stats snapshot generator and checker.
//
// Runs the pinned golden grid (every Table IV configuration x the
// golden benchmarks at the reduced golden workload scale — see
// core::golden_options) and either writes the canonical metrics table or
// diffs a live run against a checked-in one.
//
//   respin_goldens --out tests/goldens/metrics.csv     # (re)generate
//   respin_goldens --check tests/goldens/metrics.csv   # exit 1 on drift
//
// Regeneration is scripted by scripts/update_goldens.sh; the tier-1
// goldens_test performs the same check in-process.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/metrics.hpp"
#include "obs/golden.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: respin_goldens --out <file> | --check <file>\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace respin;

  std::string out_path;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      usage();
    }
  }
  if ((out_path.empty()) == (check_path.empty())) usage();

  std::printf("running the golden grid (%zu configs x %zu benchmarks)...\n",
              core::all_config_ids().size(),
              core::golden_benchmarks().size());
  const std::vector<obs::MetricsRow> live = core::golden_snapshot();

  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "respin_goldens: cannot open %s\n",
                   out_path.c_str());
      return 2;
    }
    obs::write_metrics_csv(
        out, live,
        "Golden metric snapshots for the Respin simulator.\n"
        "Grid: all Table IV configurations x {ocean, radix, lu, fft} at\n"
        "the golden workload scale (core::golden_options).\n"
        "Regenerate with scripts/update_goldens.sh after an intentional\n"
        "behaviour change; goldens_test diffs live runs against this file.");
    std::printf("wrote %zu runs to %s\n", live.size(), out_path.c_str());
    return 0;
  }

  std::ifstream in(check_path);
  if (!in) {
    std::fprintf(stderr, "respin_goldens: cannot open %s\n",
                 check_path.c_str());
    return 2;
  }
  const std::vector<obs::MetricsRow> golden = obs::read_metrics_csv(in);
  const obs::GoldenDiff diff = obs::diff_metrics(golden, live);
  if (!diff.ok()) {
    std::fprintf(stderr, "golden drift (%zu counters):\n%s", diff.count(),
                 diff.report().c_str());
    return 1;
  }
  std::printf("goldens clean: %zu runs match %s\n", live.size(),
              check_path.c_str());
  return 0;
}
