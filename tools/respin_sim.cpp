// respin_sim — command-line driver for the Respin simulator.
//
// Runs one (configuration, benchmark) pair — or the whole suite — and
// prints a summary; optionally exports results and consolidation traces
// as CSV for external analysis.
//
//   respin_sim --config SH-STT-CC --benchmark radix
//   respin_sim --config SH-STT --all --csv results.csv
//   respin_sim --config SH-STT-CC --benchmark lu --consolidation trace.csv
//   respin_sim --config SH-STT-CC --benchmark lu --metrics out.csv --trace out.jsonl
//   respin_sim --config SH-STT --benchmark ocean --chip
//   respin_sim --config SH-STT --all --time --threads 8
//
// Options:
//   --config <name>      Table IV configuration (default SH-STT)
//   --benchmark <name>   benchmark (default ocean); --all runs the suite
//   --trace-file <f>     replay a recorded/imported .rspt trace instead of
//                        a catalog benchmark (respin_trace record/import)
//   --profile <f>        synthesize the workload from a fitted profile
//                        JSON (respin_trace fit) instead of the catalog
//   --size <class>       small | medium | large          (default medium)
//   --cluster <n>        cores per cluster: 4/8/16/32    (default 16)
//   --scale <x>          workload length multiplier      (default 1.0)
//   --seed <n>           die + workload seed             (default 1)
//   --chip               simulate all clusters of the 64-core chip
//   --threads <n>        host threads for the fan-out (default: all cores,
//                        or RESPIN_THREADS); results do not depend on it
//   --time               report wall-clock per run and aggregate sims/sec
//   --no-skip            disable the event-driven clock (reference path)
//   --shared-tech <t>    override the cache technology of a shared-L1
//                        configuration (SRAM | STT-RAM | PCM | eDRAM)
//   --private-tech <t>   override the cache technology of a private-L1
//                        configuration
//   --hybrid-ways <s+n>  partition the shared L1D into s SRAM + n NVM ways
//                        (e.g. 4+12); s+0 / 0+n collapse to a pure array
//   --faults             enable fault injection (see docs/faults.md)
//   --fault-seed <n>     fault-stream seed (default: --seed value)
//   --stt-wfail <p>      STT write-failure probability per attempt
//   --stt-retries <n>    write-retry budget before a line is disabled
//   --sram-vccmin <v>    mean SRAM bit-cell Vccmin, volts
//   --sram-sigma <v>     per-cell Vccmin spread (sigma), volts
//   --fault-vdd <v>      evaluate the SRAM model at this rail instead of
//                        the configuration's cache Vdd (voltage sweeps)
//   --csv <file>         write result rows as CSV
//   --metrics <file>     write the full counter registry as CSV
//                        (run,counter,value — see docs/observability.md)
//   --trace <file>       write the structured event trace as JSONL
//                        (epoch/consolidation/run_complete/probe events)
//   --consolidation <f>  write the consolidation trace as CSV
//   --list               list configurations and benchmarks, then exit
//   --list-configs       bare configuration names only (for scripting)
//   --list-workloads     bare benchmark names only (for scripting)
//   --version            print build provenance (git describe, toolchain)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "core/chip.hpp"
#include "core/experiment.hpp"
#include "core/metrics.hpp"
#include "core/report.hpp"
#include "exec/parallel.hpp"
#include "nvsim/tech_backend.hpp"
#include "obs/golden.hpp"
#include "obs/obs.hpp"
#include "trace/fit/fit.hpp"
#include "trace/replay.hpp"
#include "workload/workload.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  respin::cli::usage_error("respin_sim", message, "(try --list)");
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace respin;

  if (cli::handle_version_flag("respin_sim", argc, argv)) return 0;

  std::string config_name = "SH-STT";
  std::string benchmark = "ocean";
  std::string trace_file;
  std::string profile_path;
  bool run_all = false;
  bool chip = false;
  bool report_time = false;
  std::string csv_path;
  std::string metrics_path;
  std::string jsonl_path;
  std::string consolidation_path;
  core::RunOptions options;
  bool fault_seed_set = false;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char*) -> const char* {
      return cli::need_value("respin_sim", argc, argv, i, "(try --list)");
    };
    if (std::strcmp(argv[i], "--config") == 0) {
      config_name = need_value("--config");
    } else if (std::strcmp(argv[i], "--benchmark") == 0) {
      benchmark = need_value("--benchmark");
    } else if (std::strcmp(argv[i], "--trace-file") == 0) {
      trace_file = need_value("--trace-file");
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile_path = need_value("--profile");
    } else if (std::strcmp(argv[i], "--all") == 0) {
      run_all = true;
    } else if (std::strcmp(argv[i], "--size") == 0) {
      options.size = core::parse_cache_size(need_value("--size"));
    } else if (std::strcmp(argv[i], "--cluster") == 0) {
      options.cluster_cores =
          static_cast<std::uint32_t>(std::atoi(need_value("--cluster")));
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      options.workload_scale = std::atof(need_value("--scale"));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      options.seed = static_cast<std::uint64_t>(
          std::strtoull(need_value("--seed"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--chip") == 0) {
      chip = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const int threads = std::atoi(need_value("--threads"));
      if (threads < 1) usage_error("--threads needs a positive count");
      exec::set_thread_count(static_cast<std::size_t>(threads));
    } else if (std::strcmp(argv[i], "--time") == 0) {
      report_time = true;
    } else if (std::strcmp(argv[i], "--no-skip") == 0) {
      options.cycle_skip = false;
    } else if (std::strcmp(argv[i], "--shared-tech") == 0 ||
               std::strcmp(argv[i], "--private-tech") == 0) {
      const bool shared = argv[i][2] == 's';
      const char* flag = shared ? "--shared-tech" : "--private-tech";
      const char* value = need_value(flag);
      const nvsim::TechBackend* backend =
          nvsim::TechnologyRegistry::instance().find(value);
      if (backend == nullptr) {
        std::string names;
        for (const auto* b : nvsim::TechnologyRegistry::instance().all()) {
          names += names.empty() ? b->name() : std::string("/") + b->name();
        }
        usage_error((std::string(flag) + " needs one of " + names).c_str());
      }
      if (shared) {
        options.tech.shared_tech = backend->tech();
      } else {
        options.tech.private_tech = backend->tech();
      }
    } else if (std::strcmp(argv[i], "--hybrid-ways") == 0) {
      const char* spec = need_value("--hybrid-ways");
      unsigned sram = 0, nvm = 0;
      if (std::sscanf(spec, "%u+%u", &sram, &nvm) != 2 || sram + nvm == 0) {
        usage_error("--hybrid-ways needs the form <sram>+<nvm>, e.g. 4+12");
      }
      options.tech.hybrid_sram_ways = sram;
      options.tech.hybrid_nvm_ways = nvm;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      options.faults.enabled = true;
    } else if (std::strcmp(argv[i], "--fault-seed") == 0) {
      options.faults.seed = static_cast<std::uint64_t>(
          std::strtoull(need_value("--fault-seed"), nullptr, 10));
      fault_seed_set = true;
    } else if (std::strcmp(argv[i], "--stt-wfail") == 0) {
      options.faults.stt.write_fail_prob = std::atof(need_value("--stt-wfail"));
    } else if (std::strcmp(argv[i], "--stt-retries") == 0) {
      options.faults.stt.max_write_retries =
          static_cast<std::uint32_t>(std::atoi(need_value("--stt-retries")));
    } else if (std::strcmp(argv[i], "--sram-vccmin") == 0) {
      options.faults.sram.vccmin_mean = std::atof(need_value("--sram-vccmin"));
    } else if (std::strcmp(argv[i], "--sram-sigma") == 0) {
      options.faults.sram.vccmin_sigma = std::atof(need_value("--sram-sigma"));
    } else if (std::strcmp(argv[i], "--fault-vdd") == 0) {
      options.faults.sram.vdd_override = std::atof(need_value("--fault-vdd"));
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      csv_path = need_value("--csv");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_path = need_value("--metrics");
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      jsonl_path = need_value("--trace");
    } else if (std::strcmp(argv[i], "--consolidation") == 0) {
      consolidation_path = need_value("--consolidation");
    } else if (std::strcmp(argv[i], "--list") == 0) {
      std::printf("configurations:\n");
      for (core::ConfigId id : core::all_config_ids()) {
        std::printf("  %s\n", core::to_string(id));
      }
      std::printf("benchmarks:\n");
      for (const std::string& name : workload::benchmark_names()) {
        std::printf("  %s\n", name.c_str());
      }
      return 0;
    } else if (std::strcmp(argv[i], "--list-configs") == 0) {
      // Bare names, one per line — greppable / shell-loop friendly.
      for (core::ConfigId id : core::all_config_ids()) {
        std::printf("%s\n", core::to_string(id));
      }
      return 0;
    } else if (std::strcmp(argv[i], "--list-workloads") == 0) {
      for (const std::string& name : workload::benchmark_names()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else {
      usage_error((std::string("unknown option ") + argv[i]).c_str());
    }
  }

  const core::ConfigId config = core::parse_config_id(config_name);
  // The fault stream follows the die/workload seed unless pinned apart,
  // so "--seed N --faults" varies both together by default.
  if (options.faults.enabled && !fault_seed_set) {
    options.faults.seed = options.seed;
  }

  // Trace/profile workloads are single runs through the cluster path.
  if (!trace_file.empty() && !profile_path.empty()) {
    usage_error("--trace-file and --profile are mutually exclusive");
  }
  if ((!trace_file.empty() || !profile_path.empty()) && (run_all || chip)) {
    usage_error("--trace-file/--profile run one workload; drop --all/--chip");
  }
  if (!trace_file.empty() &&
      (options.faults.enabled || options.tech.shared_tech.has_value() ||
       options.tech.private_tech.has_value() ||
       options.tech.hybrid_sram_ways != 0 ||
       options.tech.hybrid_nvm_ways != 0)) {
    usage_error("--trace-file does not support fault/tech overrides (replay "
                "reuses the recorded configuration; fit the trace and use "
                "--profile instead)");
  }

  // Structured trace: one JSONL sink shared by the simulations (epoch and
  // run records) and the exec pool's timing probes.
  std::ofstream jsonl_os;
  std::optional<obs::JsonlWriter> jsonl_writer;
  if (!jsonl_path.empty()) {
    jsonl_os.open(jsonl_path);
    if (!jsonl_os) usage_error("cannot open --trace output file");
    jsonl_writer.emplace(jsonl_os);
    options.trace = &*jsonl_writer;
    obs::set_global_sink(&*jsonl_writer);
  }

  if (chip) {
    const auto wall_start = std::chrono::steady_clock::now();
    const core::ChipResult result = core::run_chip(config, benchmark, options);
    const double wall = seconds_since(wall_start);
    std::printf("%s/%s on the full 64-core chip (%zu clusters):\n",
                result.config_name.c_str(), benchmark.c_str(),
                result.clusters.size());
    std::printf("  time %.3f ms, energy %.1f mJ, power %.1f W, %llu instr\n",
                result.seconds * 1e3, result.energy.total() * 1e-9,
                result.watts(),
                static_cast<unsigned long long>(result.instructions));
    for (const auto& r : result.clusters) {
      std::printf("  cluster: %s\n", core::summarize(r).c_str());
    }
    if (report_time) {
      std::printf(
          "wall-clock: %.2f s for %zu cluster sims on %zu threads "
          "(%.2f sims/sec)\n",
          wall, result.clusters.size(), exec::thread_count(),
          static_cast<double>(result.clusters.size()) / wall);
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      if (!out) usage_error("cannot open --metrics output file");
      // Chip aggregate first, then one row per cluster.
      std::vector<obs::MetricsRow> rows;
      rows.push_back(obs::MetricsRow{result.config_name + "/" + benchmark +
                                         "/chip",
                                     core::metrics_of(result)});
      for (std::size_t c = 0; c < result.clusters.size(); ++c) {
        obs::MetricsRow row = core::metrics_row(result.clusters[c]);
        row.run += "/cluster" + std::to_string(c);
        rows.push_back(std::move(row));
      }
      obs::write_metrics_csv(out, rows);
      std::printf("wrote %s\n", metrics_path.c_str());
    }
    obs::set_global_sink(nullptr);
    return 0;
  }

  const std::vector<std::string> benches =
      run_all ? workload::benchmark_names()
              : std::vector<std::string>{benchmark};

  // Trace/profile workloads load once, outside the run lambda.
  std::optional<trace::TraceData> trace_data;
  if (!trace_file.empty()) trace_data.emplace(trace::load_trace(trace_file));
  std::shared_ptr<const workload::WorkloadProfile> profile;
  if (!profile_path.empty()) {
    profile = std::make_shared<const workload::WorkloadProfile>(
        trace::fit::load_profile(profile_path));
  }

  // Fan the runs out over the host thread pool; each run times itself so
  // --time can report per-run cost even when they overlap.
  const auto wall_start = std::chrono::steady_clock::now();
  struct TimedRun {
    core::SimResult result;
    double wall_seconds = 0.0;
  };
  const std::vector<TimedRun> runs =
      exec::parallel_map(benches, [&](const std::string& name) {
        const auto start = std::chrono::steady_clock::now();
        TimedRun run;
        if (trace_data.has_value()) {
          trace::ReplayOptions replay;
          replay.size = options.size;
          replay.cycle_skip = options.cycle_skip;
          replay.oracle_stride = options.oracle_stride;
          run.result = trace::replay_trace(config, *trace_data, replay);
        } else if (profile != nullptr) {
          run.result = trace::fit::run_profile(config, profile, options);
        } else {
          run.result = core::run_experiment(config, name, options);
        }
        run.wall_seconds = seconds_since(start);
        return run;
      });
  const double wall = seconds_since(wall_start);

  std::vector<core::SimResult> results;
  results.reserve(runs.size());
  for (const TimedRun& run : runs) {
    if (report_time) {
      std::printf("[%6.2f s] %s\n", run.wall_seconds,
                  core::summarize(run.result).c_str());
    } else {
      std::printf("%s\n", core::summarize(run.result).c_str());
    }
    if (run.result.faults_enabled) {
      const auto& f = run.result.faults;
      const auto u64 = [](std::uint64_t v) {
        return static_cast<unsigned long long>(v);
      };
      std::printf(
          "  faults: sram map %llu lines (%llu correctable, %llu disabled), "
          "ecc corrections %llu\n"
          "          stt write faults %llu (%llu retries, %llu lines "
          "disabled), usable L1 %llu/%llu bytes\n",
          u64(f.sram_lines_mapped), u64(f.sram_lines_correctable),
          u64(f.sram_lines_disabled), u64(f.ecc_corrections),
          u64(f.stt_write_faults), u64(f.stt_write_retries),
          u64(f.stt_lines_disabled), u64(run.result.fault_l1_usable_bytes),
          u64(run.result.fault_l1_total_bytes));
    }
    if (run.result.hybrid_sram_ways > 0) {
      std::printf(
          "  hybrid L1D: %u SRAM + %u NVM ways, sram-class accesses "
          "%llu reads / %llu writes\n",
          run.result.hybrid_sram_ways, run.result.hybrid_nvm_ways,
          static_cast<unsigned long long>(run.result.counts.l1_sram_reads),
          static_cast<unsigned long long>(run.result.counts.l1_sram_writes));
    }
    results.push_back(run.result);
  }
  if (report_time) {
    std::printf("wall-clock: %.2f s for %zu sims on %zu threads "
                "(%.2f sims/sec)\n",
                wall, runs.size(), exec::thread_count(),
                static_cast<double>(runs.size()) / wall);
  }

  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    if (!out) usage_error("cannot open --csv output file");
    core::write_results_csv(out, results);
    std::printf("wrote %s\n", csv_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (!out) usage_error("cannot open --metrics output file");
    core::write_metrics_csv(out, results);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (!consolidation_path.empty()) {
    std::ofstream out(consolidation_path);
    if (!out) usage_error("cannot open --consolidation output file");
    core::write_trace_csv(out, results.front());
    std::printf("wrote %s\n", consolidation_path.c_str());
  }
  obs::set_global_sink(nullptr);
  return 0;
}
