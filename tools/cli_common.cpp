#include "cli_common.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/obs.hpp"
#include "util/env.hpp"

#ifndef RESPIN_GIT_DESCRIBE
#define RESPIN_GIT_DESCRIBE "unknown"
#endif

namespace respin::cli {

void usage_error(const char* tool, const std::string& message,
                 const char* hint) {
  if (hint != nullptr) {
    std::fprintf(stderr, "%s: %s %s\n", tool, message.c_str(), hint);
  } else {
    std::fprintf(stderr, "%s: %s\n", tool, message.c_str());
  }
  std::exit(2);
}

const char* need_value(const char* tool, int argc, char** argv, int& i,
                       const char* hint) {
  if (i + 1 >= argc) {
    usage_error(tool, std::string(argv[i]) + " needs a value", hint);
  }
  return argv[++i];
}

std::string version_line(const char* tool) {
  return std::string(tool) + " " + RESPIN_GIT_DESCRIBE;
}

std::string version_string(const char* tool) {
  std::string out = version_line(tool) + "\n";
  out += "  compiler: ";
#if defined(__clang__)
  out += __VERSION__;  // Clang's banner names itself.
#else
  out += std::string("gcc ") + __VERSION__;
#endif
  out += "\n  cxx_standard: " + std::to_string(static_cast<long>(__cplusplus));
  out += "\n  build: ";
#ifdef NDEBUG
  out += "Release";
#else
  out += "Debug";
#endif
  out += std::string("\n  obs_probes: ") +
         (obs::kCompiledIn ? "true" : "false");
  out += "\n  sim_scale: " + std::to_string(util::sim_scale());
  return out;
}

bool handle_version_flag(const char* tool, int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--version") == 0) {
      std::printf("%s\n", version_string(tool).c_str());
      return true;
    }
  }
  return false;
}

}  // namespace respin::cli
