// respin_trace — capture, inspect, replay and verify binary traces.
//
//   respin_trace record --benchmark radix --out radix.rspt
//   respin_trace record --all --out traces/
//   respin_trace info radix.rspt
//   respin_trace replay radix.rspt --config SH-STT-CC
//   respin_trace verify radix.rspt                  # all 8 configurations
//   respin_trace verify radix.rspt --config SH-STT
//
// Subcommands:
//   record   Drain the synthetic generator for one benchmark (--benchmark,
//            or every catalog benchmark with --all) into compact binary
//            traces. --threads/--scale/--seed select the generator
//            instance (defaults 16/1.0/1).
//   info     Print the header plus per-thread op/ifetch/instruction
//            statistics of a trace file.
//   replay   Run a trace through a Table IV configuration (--config,
//            --size, --no-skip) and print the usual result summary.
//   verify   Replay and ALSO rerun the live synthetic workload, then
//            compare the two SimResults bit for bit. Exits 1 with a
//            field-by-field diff on any mismatch. Without --config,
//            verifies across all eight Table IV configurations.
//   import   Convert a foreign trace (--format, see --list-formats) into
//            the native .rspt format: respin_trace import --format
//            hybridsim mem.txt --out mem.rspt [--name label] [--seed N].
//   fit      Measure a .rspt trace into a workload profile (read/write
//            mix, reuse-distance histogram, sharing, phases); --out
//            writes the canonical profile JSON, --windows sets the phase
//            count (default 8).
//   synth    Generate a .rspt trace from a fitted profile: respin_trace
//            synth --profile p.json --out synth.rspt [--threads N]
//            [--scale S] [--seed N].
//
// Exit codes: 0 success, 1 verification failure or malformed trace /
// foreign input / profile, 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "core/report.hpp"
#include "trace/capture.hpp"
#include "trace/fit/fit.hpp"
#include "trace/import/import.hpp"
#include "trace/replay.hpp"
#include "workload/workload.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  respin::cli::usage_error(
      "respin_trace", message,
      "\nusage: respin_trace record|info|replay|verify|import|fit|synth ... "
      "[--version]");
}

struct Args {
  std::string command;
  std::string file;
  std::string benchmark;
  bool all = false;
  std::string out;
  std::uint32_t threads = 16;
  double scale = 1.0;
  std::uint64_t seed = 1;
  std::string config;
  respin::trace::ReplayOptions replay;
  std::string format;
  std::string name;
  std::string profile;
  std::size_t windows = 8;
  bool list_formats = false;
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage_error("missing subcommand");
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char*) -> const char* {
      return respin::cli::need_value("respin_trace", argc, argv, i);
    };
    if (std::strcmp(argv[i], "--benchmark") == 0) {
      args.benchmark = need_value("--benchmark");
    } else if (std::strcmp(argv[i], "--all") == 0) {
      args.all = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      args.out = need_value("--out");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const int threads = std::atoi(need_value("--threads"));
      if (threads < 1) usage_error("--threads needs a positive count");
      args.threads = static_cast<std::uint32_t>(threads);
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      args.scale = std::atof(need_value("--scale"));
      if (!(args.scale > 0.0)) usage_error("--scale must be positive");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      args.seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--config") == 0) {
      args.config = need_value("--config");
    } else if (std::strcmp(argv[i], "--size") == 0) {
      args.replay.size = respin::core::parse_cache_size(need_value("--size"));
    } else if (std::strcmp(argv[i], "--no-skip") == 0) {
      args.replay.cycle_skip = false;
    } else if (std::strcmp(argv[i], "--format") == 0) {
      args.format = need_value("--format");
    } else if (std::strcmp(argv[i], "--name") == 0) {
      args.name = need_value("--name");
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      args.profile = need_value("--profile");
    } else if (std::strcmp(argv[i], "--windows") == 0) {
      const int windows = std::atoi(need_value("--windows"));
      if (windows < 1) usage_error("--windows needs a positive count");
      args.windows = static_cast<std::size_t>(windows);
    } else if (std::strcmp(argv[i], "--list-formats") == 0) {
      args.list_formats = true;
    } else if (argv[i][0] != '-' && args.file.empty()) {
      args.file = argv[i];
    } else {
      usage_error((std::string("unknown option ") + argv[i]).c_str());
    }
  }
  return args;
}

int cmd_record(const Args& args) {
  using namespace respin;
  if (args.out.empty()) usage_error("record needs --out <file or dir>");
  std::vector<std::string> names;
  if (args.all) {
    names = workload::benchmark_names();
  } else if (!args.benchmark.empty()) {
    names = {args.benchmark};
  } else {
    usage_error("record needs --benchmark <name> or --all");
  }

  for (const std::string& name : names) {
    const workload::WorkloadSpec& spec = workload::benchmark(name);
    const std::string path =
        args.all ? args.out + "/" + name + ".rspt" : args.out;
    const trace::RecordStats stats = trace::record_benchmark(
        spec, args.threads, args.scale, args.seed, path);
    std::printf(
        "%s: %llu ops, %llu ifetches, %llu instructions x %u threads -> %s\n",
        name.c_str(), static_cast<unsigned long long>(stats.ops),
        static_cast<unsigned long long>(stats.ifetches),
        static_cast<unsigned long long>(stats.instructions), args.threads,
        path.c_str());
  }
  return 0;
}

int cmd_info(const Args& args) {
  using namespace respin;
  if (args.file.empty()) usage_error("info needs a trace file");
  const trace::TraceData data = trace::load_trace(args.file);
  std::printf("%s: benchmark %s, %u threads, scale %g, seed %llu\n",
              args.file.c_str(), data.header.benchmark.c_str(),
              data.header.thread_count, data.header.scale,
              static_cast<unsigned long long>(data.header.seed));
  std::printf("  total: %llu ops, %llu ifetches, %llu instructions\n",
              static_cast<unsigned long long>(data.total_ops()),
              static_cast<unsigned long long>(data.total_ifetches()),
              static_cast<unsigned long long>(data.total_instructions()));
  for (std::size_t t = 0; t < data.threads.size(); ++t) {
    const trace::ThreadTrace& thread = data.threads[t];
    std::uint64_t loads = 0, stores = 0, barriers = 0;
    for (const workload::Op& op : thread.ops) {
      if (op.kind == workload::OpKind::kLoad) ++loads;
      if (op.kind == workload::OpKind::kStore) ++stores;
      if (op.kind == workload::OpKind::kBarrier) ++barriers;
    }
    std::printf(
        "  thread %2zu: %8zu ops (%llu loads, %llu stores, %llu barriers), "
        "%8zu ifetches, %9llu instructions\n",
        t, thread.ops.size(), static_cast<unsigned long long>(loads),
        static_cast<unsigned long long>(stores),
        static_cast<unsigned long long>(barriers), thread.ifetch.size(),
        static_cast<unsigned long long>(thread.instructions));
  }
  return 0;
}

int cmd_replay(const Args& args) {
  using namespace respin;
  if (args.file.empty()) usage_error("replay needs a trace file");
  const std::string config = args.config.empty() ? "SH-STT" : args.config;
  const core::ConfigId id = core::parse_config_id(config);
  const trace::TraceData data = trace::load_trace(args.file);
  const core::SimResult result = trace::replay_trace(id, data, args.replay);
  std::printf("%s\n", core::summarize(result).c_str());
  return 0;
}

int cmd_verify(const Args& args) {
  using namespace respin;
  if (args.file.empty()) usage_error("verify needs a trace file");
  const trace::TraceData data = trace::load_trace(args.file);
  const std::vector<core::ConfigId> ids =
      args.config.empty()
          ? core::all_config_ids()
          : std::vector<core::ConfigId>{core::parse_config_id(args.config)};

  int failures = 0;
  for (core::ConfigId id : ids) {
    const core::SimResult live = trace::live_run_for(id, data, args.replay);
    const core::SimResult replay = trace::replay_trace(id, data, args.replay);
    const std::string diff = trace::diff_results(live, replay);
    if (diff.empty()) {
      std::printf("OK   %-16s %s: replay is bit-identical to live\n",
                  core::to_string(id), data.header.benchmark.c_str());
    } else {
      ++failures;
      std::printf("FAIL %-16s %s:\n%s", core::to_string(id),
                  data.header.benchmark.c_str(), diff.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

int cmd_import(const Args& args) {
  using namespace respin;
  if (args.list_formats) {
    for (const trace::TraceImporter* importer : trace::importer_registry()) {
      std::printf("%-12s %s\n", importer->format_name(),
                  importer->description());
    }
    return 0;
  }
  if (args.format.empty()) {
    usage_error("import needs --format <name> (see --list-formats)");
  }
  if (args.file.empty()) usage_error("import needs a foreign trace file");
  if (args.out.empty()) usage_error("import needs --out <file.rspt>");
  trace::ImportOptions options;
  options.name = args.name;
  options.seed = args.seed;
  const trace::ImportStats stats =
      trace::import_trace(args.format, args.file, args.out, options);
  std::printf(
      "%s: %llu lines -> %llu mem ops, %llu instructions, %llu ifetches "
      "across %u cores (padded to %u threads) -> %s\n",
      args.file.c_str(), static_cast<unsigned long long>(stats.lines),
      static_cast<unsigned long long>(stats.mem_ops),
      static_cast<unsigned long long>(stats.instructions),
      static_cast<unsigned long long>(stats.ifetches), stats.cores_seen,
      stats.thread_count, args.out.c_str());
  return 0;
}

int cmd_fit(const Args& args) {
  using namespace respin;
  if (args.file.empty()) usage_error("fit needs a trace file");
  const trace::TraceData data = trace::load_trace(args.file);
  trace::fit::FitOptions options;
  options.windows = args.windows;
  const workload::WorkloadProfile profile = trace::fit::fit_trace(data, options);
  std::printf("%s: %u threads, %llu instructions/thread, %llu mem ops\n",
              profile.name.c_str(), profile.thread_count,
              static_cast<unsigned long long>(profile.instructions),
              static_cast<unsigned long long>(profile.mem_ops));
  std::printf(
      "  mix: mem %.4f, store %.4f, shared %.4f, avg ipc %.3f, "
      "%zu phases, %llu shared lines\n",
      profile.mem_fraction, profile.store_fraction, profile.shared_fraction,
      profile.avg_ipc, profile.phases.size(),
      static_cast<unsigned long long>(profile.shared_pool_lines));
  std::printf("  reuse histogram (bucket: count):");
  for (std::size_t b = 0; b < profile.reuse_hist.size(); ++b) {
    if (profile.reuse_hist[b] != 0) {
      std::printf(" %zu:%llu", b,
                  static_cast<unsigned long long>(profile.reuse_hist[b]));
    }
  }
  std::printf("\n");
  if (!args.out.empty()) {
    trace::fit::save_profile(profile, args.out);
    std::printf("  profile -> %s\n", args.out.c_str());
  }
  return 0;
}

int cmd_synth(const Args& args) {
  using namespace respin;
  if (args.profile.empty()) usage_error("synth needs --profile <file.json>");
  if (args.out.empty()) usage_error("synth needs --out <file.rspt>");
  const workload::WorkloadProfile profile =
      trace::fit::load_profile(args.profile);
  const std::uint32_t threads =
      args.threads != 16 || profile.thread_count == 0 ? args.threads
                                                      : profile.thread_count;
  const trace::fit::SynthStats stats = trace::fit::synthesize_trace(
      profile, threads, args.scale, args.seed, args.out);
  std::printf(
      "%s: %llu ops, %llu ifetches, %llu instructions x %u threads -> %s\n",
      profile.name.c_str(), static_cast<unsigned long long>(stats.ops),
      static_cast<unsigned long long>(stats.ifetches),
      static_cast<unsigned long long>(stats.instructions), threads,
      args.out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (respin::cli::handle_version_flag("respin_trace", argc, argv)) return 0;
  const Args args = parse(argc, argv);
  try {
    if (args.command == "record") return cmd_record(args);
    if (args.command == "info") return cmd_info(args);
    if (args.command == "replay") return cmd_replay(args);
    if (args.command == "verify") return cmd_verify(args);
    if (args.command == "import") return cmd_import(args);
    if (args.command == "fit") return cmd_fit(args);
    if (args.command == "synth") return cmd_synth(args);
  } catch (const respin::trace::ImportError& e) {
    std::fprintf(stderr, "respin_trace: %s\n", e.what());
    return 1;
  } catch (const respin::trace::TraceError& e) {
    std::fprintf(stderr, "respin_trace: %s\n", e.what());
    return 1;
  } catch (const respin::obs::json::Error& e) {
    std::fprintf(stderr, "respin_trace: malformed profile: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "respin_trace: %s\n", e.what());
    return 2;
  }
  usage_error((std::string("unknown subcommand ") + args.command).c_str());
}
