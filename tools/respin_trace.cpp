// respin_trace — capture, inspect, replay and verify binary traces.
//
//   respin_trace record --benchmark radix --out radix.rspt
//   respin_trace record --all --out traces/
//   respin_trace info radix.rspt
//   respin_trace replay radix.rspt --config SH-STT-CC
//   respin_trace verify radix.rspt                  # all 8 configurations
//   respin_trace verify radix.rspt --config SH-STT
//
// Subcommands:
//   record   Drain the synthetic generator for one benchmark (--benchmark,
//            or every catalog benchmark with --all) into compact binary
//            traces. --threads/--scale/--seed select the generator
//            instance (defaults 16/1.0/1).
//   info     Print the header plus per-thread op/ifetch/instruction
//            statistics of a trace file.
//   replay   Run a trace through a Table IV configuration (--config,
//            --size, --no-skip) and print the usual result summary.
//   verify   Replay and ALSO rerun the live synthetic workload, then
//            compare the two SimResults bit for bit. Exits 1 with a
//            field-by-field diff on any mismatch. Without --config,
//            verifies across all eight Table IV configurations.
//
// Exit codes: 0 success, 1 verification failure or malformed trace,
// 2 usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "core/report.hpp"
#include "trace/capture.hpp"
#include "trace/replay.hpp"
#include "workload/workload.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  respin::cli::usage_error(
      "respin_trace", message,
      "\nusage: respin_trace record|info|replay|verify ... [--version]");
}

struct Args {
  std::string command;
  std::string file;
  std::string benchmark;
  bool all = false;
  std::string out;
  std::uint32_t threads = 16;
  double scale = 1.0;
  std::uint64_t seed = 1;
  std::string config;
  respin::trace::ReplayOptions replay;
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage_error("missing subcommand");
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char*) -> const char* {
      return respin::cli::need_value("respin_trace", argc, argv, i);
    };
    if (std::strcmp(argv[i], "--benchmark") == 0) {
      args.benchmark = need_value("--benchmark");
    } else if (std::strcmp(argv[i], "--all") == 0) {
      args.all = true;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      args.out = need_value("--out");
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const int threads = std::atoi(need_value("--threads"));
      if (threads < 1) usage_error("--threads needs a positive count");
      args.threads = static_cast<std::uint32_t>(threads);
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      args.scale = std::atof(need_value("--scale"));
      if (!(args.scale > 0.0)) usage_error("--scale must be positive");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      args.seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--config") == 0) {
      args.config = need_value("--config");
    } else if (std::strcmp(argv[i], "--size") == 0) {
      args.replay.size = respin::core::parse_cache_size(need_value("--size"));
    } else if (std::strcmp(argv[i], "--no-skip") == 0) {
      args.replay.cycle_skip = false;
    } else if (argv[i][0] != '-' && args.file.empty()) {
      args.file = argv[i];
    } else {
      usage_error((std::string("unknown option ") + argv[i]).c_str());
    }
  }
  return args;
}

int cmd_record(const Args& args) {
  using namespace respin;
  if (args.out.empty()) usage_error("record needs --out <file or dir>");
  std::vector<std::string> names;
  if (args.all) {
    names = workload::benchmark_names();
  } else if (!args.benchmark.empty()) {
    names = {args.benchmark};
  } else {
    usage_error("record needs --benchmark <name> or --all");
  }

  for (const std::string& name : names) {
    const workload::WorkloadSpec& spec = workload::benchmark(name);
    const std::string path =
        args.all ? args.out + "/" + name + ".rspt" : args.out;
    const trace::RecordStats stats = trace::record_benchmark(
        spec, args.threads, args.scale, args.seed, path);
    std::printf(
        "%s: %llu ops, %llu ifetches, %llu instructions x %u threads -> %s\n",
        name.c_str(), static_cast<unsigned long long>(stats.ops),
        static_cast<unsigned long long>(stats.ifetches),
        static_cast<unsigned long long>(stats.instructions), args.threads,
        path.c_str());
  }
  return 0;
}

int cmd_info(const Args& args) {
  using namespace respin;
  if (args.file.empty()) usage_error("info needs a trace file");
  const trace::TraceData data = trace::load_trace(args.file);
  std::printf("%s: benchmark %s, %u threads, scale %g, seed %llu\n",
              args.file.c_str(), data.header.benchmark.c_str(),
              data.header.thread_count, data.header.scale,
              static_cast<unsigned long long>(data.header.seed));
  std::printf("  total: %llu ops, %llu ifetches, %llu instructions\n",
              static_cast<unsigned long long>(data.total_ops()),
              static_cast<unsigned long long>(data.total_ifetches()),
              static_cast<unsigned long long>(data.total_instructions()));
  for (std::size_t t = 0; t < data.threads.size(); ++t) {
    const trace::ThreadTrace& thread = data.threads[t];
    std::uint64_t loads = 0, stores = 0, barriers = 0;
    for (const workload::Op& op : thread.ops) {
      if (op.kind == workload::OpKind::kLoad) ++loads;
      if (op.kind == workload::OpKind::kStore) ++stores;
      if (op.kind == workload::OpKind::kBarrier) ++barriers;
    }
    std::printf(
        "  thread %2zu: %8zu ops (%llu loads, %llu stores, %llu barriers), "
        "%8zu ifetches, %9llu instructions\n",
        t, thread.ops.size(), static_cast<unsigned long long>(loads),
        static_cast<unsigned long long>(stores),
        static_cast<unsigned long long>(barriers), thread.ifetch.size(),
        static_cast<unsigned long long>(thread.instructions));
  }
  return 0;
}

int cmd_replay(const Args& args) {
  using namespace respin;
  if (args.file.empty()) usage_error("replay needs a trace file");
  const std::string config = args.config.empty() ? "SH-STT" : args.config;
  const core::ConfigId id = core::parse_config_id(config);
  const trace::TraceData data = trace::load_trace(args.file);
  const core::SimResult result = trace::replay_trace(id, data, args.replay);
  std::printf("%s\n", core::summarize(result).c_str());
  return 0;
}

int cmd_verify(const Args& args) {
  using namespace respin;
  if (args.file.empty()) usage_error("verify needs a trace file");
  const trace::TraceData data = trace::load_trace(args.file);
  const std::vector<core::ConfigId> ids =
      args.config.empty()
          ? core::all_config_ids()
          : std::vector<core::ConfigId>{core::parse_config_id(args.config)};

  int failures = 0;
  for (core::ConfigId id : ids) {
    const core::SimResult live = trace::live_run_for(id, data, args.replay);
    const core::SimResult replay = trace::replay_trace(id, data, args.replay);
    const std::string diff = trace::diff_results(live, replay);
    if (diff.empty()) {
      std::printf("OK   %-16s %s: replay is bit-identical to live\n",
                  core::to_string(id), data.header.benchmark.c_str());
    } else {
      ++failures;
      std::printf("FAIL %-16s %s:\n%s", core::to_string(id),
                  data.header.benchmark.c_str(), diff.c_str());
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (respin::cli::handle_version_flag("respin_trace", argc, argv)) return 0;
  const Args args = parse(argc, argv);
  try {
    if (args.command == "record") return cmd_record(args);
    if (args.command == "info") return cmd_info(args);
    if (args.command == "replay") return cmd_replay(args);
    if (args.command == "verify") return cmd_verify(args);
  } catch (const respin::trace::TraceError& e) {
    std::fprintf(stderr, "respin_trace: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "respin_trace: %s\n", e.what());
    return 2;
  }
  usage_error((std::string("unknown subcommand ") + args.command).c_str());
}
