// respin_router — sharding front end for a fleet of respin_serve workers.
//
// Speaks the same line-delimited JSON protocol as respin_serve
// (docs/serving.md): clients do not change when a deployment grows from
// one daemon to a sharded tier. Each request's canonical key picks its
// owning worker (key_hash % N), so worker caches stay hot for disjoint
// key-slices; sweep matrices fan out cell-by-cell with
// longest-expected-first dispatch and stream per-cell progress events.
//
//   respin_router --worker 7101 --worker 7102 --port 7100
//   respin_router --worker 127.0.0.1:7101 --worker 7102 --stdio
//
// Options:
//   --worker <[host:]port>  one worker endpoint (repeat per worker;
//                           host defaults to 127.0.0.1). At least one.
//   --port <n>       TCP port to listen on (default 0 = kernel-assigned;
//                    the bound port is printed on startup)
//   --stdio          serve stdin -> stdout instead of TCP, exit at EOF
//   --backlog <n>    sweep dispatch lanes per worker (default 2)
//   --cost-seed <f>  JSONL store log that seeds the sweep cost model
//   --no-forward-shutdown   keep workers running when the router is told
//                    to shut down (default: shutdown fans out)
//   --version        print build provenance and exit
//
// The router holds no store: killing and restarting it loses nothing, and
// `{"op":"merge","path":...}` / `{"op":"compact"}` fan out to workers to
// reconcile stores after failover or topology changes.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "serve/net.hpp"
#include "serve/router.hpp"

namespace {

constexpr const char* kTool = "respin_router";
constexpr const char* kHint = "(see docs/serving.md)";

}  // namespace

int main(int argc, char** argv) {
  using namespace respin;

  if (cli::handle_version_flag(kTool, argc, argv)) return 0;

  serve::RouterConfig config;
  config.version = cli::version_line(kTool);
  bool stdio = false;
  long port = 0;
  std::vector<std::unique_ptr<serve::WorkerBackend>> workers;

  for (int i = 1; i < argc; ++i) {
    auto value = [&] { return cli::need_value(kTool, argc, argv, i, kHint); };
    if (std::strcmp(argv[i], "--worker") == 0) {
      const std::string endpoint = value();
      std::string host = "127.0.0.1";
      std::string port_text = endpoint;
      if (const std::size_t colon = endpoint.rfind(':');
          colon != std::string::npos) {
        host = endpoint.substr(0, colon);
        port_text = endpoint.substr(colon + 1);
      }
      const long worker_port = std::atol(port_text.c_str());
      if (worker_port < 1 || worker_port > 65535) {
        cli::usage_error(kTool, "--worker needs [host:]port with port 1..65535",
                         kHint);
      }
      workers.push_back(std::make_unique<serve::TcpWorker>(
          host, static_cast<std::uint16_t>(worker_port)));
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atol(value());
      if (port < 0 || port > 65535) {
        cli::usage_error(kTool, "--port needs 0..65535", kHint);
      }
    } else if (std::strcmp(argv[i], "--stdio") == 0) {
      stdio = true;
    } else if (std::strcmp(argv[i], "--backlog") == 0) {
      const long backlog = std::atol(value());
      if (backlog < 1) cli::usage_error(kTool, "--backlog needs >= 1", kHint);
      config.backlog = static_cast<std::size_t>(backlog);
    } else if (std::strcmp(argv[i], "--cost-seed") == 0) {
      config.cost_seed_path = value();
    } else if (std::strcmp(argv[i], "--no-forward-shutdown") == 0) {
      config.forward_shutdown = false;
    } else {
      cli::usage_error(kTool, std::string("unknown option ") + argv[i], kHint);
    }
  }
  if (workers.empty()) {
    cli::usage_error(kTool, "needs at least one --worker endpoint", kHint);
  }

  const std::size_t worker_count = workers.size();
  serve::Router router(config, std::move(workers));
  std::cerr << kTool << ": routing across " << worker_count << " worker"
            << (worker_count == 1 ? "" : "s");
  if (!config.cost_seed_path.empty()) {
    std::cerr << ", cost model seeded with "
              << router.cost_model().observations() << " results";
  }
  std::cerr << '\n';

  int status = 0;
  if (stdio) {
    serve::serve_stdio(router, std::cin, std::cout);
  } else {
    status = serve::serve_tcp(router, static_cast<std::uint16_t>(port),
                              std::cerr, kTool);
  }
  return status;
}
