// Shared command-line plumbing for the respin_* tools.
//
// Every tool gets the same three things from here instead of hand-rolling
// them: a usage_error() that prints "<tool>: <message> <hint>" and exits 2,
// a need_value() flag-argument helper, and a --version implementation that
// reports build provenance — git describe (baked in at configure time via
// RESPIN_GIT_DESCRIBE), compiler banner, C++ standard, build type, whether
// the observability probes are compiled in, and the ambient sim scale.
// These are the same fields bench_common embeds in its JSON exports, so a
// bench artifact and the binary that produced it can be matched.
#pragma once

#include <string>

namespace respin::cli {

/// Prints "<tool>: <message>" (plus " <hint>" when non-null) to stderr and
/// exits with the conventional usage-error status 2.
[[noreturn]] void usage_error(const char* tool, const std::string& message,
                              const char* hint = nullptr);

/// Returns the value argument of the flag at argv[i], advancing i.
/// Usage-errors (exit 2) when the value is missing.
const char* need_value(const char* tool, int argc, char** argv, int& i,
                       const char* hint = nullptr);

/// Multi-line provenance description: tool name + git describe, compiler,
/// C++ standard, build type, obs probes, sim scale.
std::string version_string(const char* tool);

/// One-line form: "<tool> <git-describe>" — what a daemon reports over the
/// wire (respin_serve's `version` op).
std::string version_line(const char* tool);

/// Scans argv for --version; when present prints version_string(tool) and
/// returns true (caller returns 0). Call before normal flag parsing.
bool handle_version_flag(const char* tool, int argc, char** argv);

}  // namespace respin::cli
