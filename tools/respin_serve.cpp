// respin_serve — simulation-as-a-service daemon.
//
// Accepts line-delimited JSON requests (docs/serving.md) over a loopback
// TCP socket, or over stdin/stdout with --stdio (the mode tests and CI
// scripts use). Results are answered from an LRU cache and a durable JSONL
// results store when possible; misses run on the process-wide thread pool
// with request batching and single-flight dedupe.
//
//   respin_serve --port 7171 --store results.jsonl
//   respin_serve --stdio --store results.jsonl
//   echo '{"op":"ping"}' | respin_serve --stdio
//
// Options:
//   --port <n>       TCP port to listen on (default 0 = kernel-assigned;
//                    the bound port is printed on startup)
//   --stdio          serve stdin -> stdout instead of TCP, exit at EOF
//   --store <file>   JSONL results store (created if missing; omit for an
//                    ephemeral in-memory store without checkpoint/resume)
//   --cache <n>      LRU result-cache capacity in entries (default 1024)
//   --queue <n>      admission queue depth (default 256); submissions
//                    beyond it get a typed `overloaded` reject
//   --deadline <ms>  default per-request wait deadline (default 0 = none)
//   --threads <n>    host threads for the simulation fan-out
//   --trace <file>   structured JSONL event trace (serve.* probe events)
//   --version        print build provenance and exit
//
// Shutdown: SIGTERM/SIGINT or a `{"op":"shutdown"}` request both drain
// gracefully — queued and in-flight simulations finish (and checkpoint to
// the store) before exit.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "cli_common.hpp"
#include "exec/parallel.hpp"
#include "obs/obs.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"

namespace {

constexpr const char* kTool = "respin_serve";
constexpr const char* kHint = "(see docs/serving.md)";

}  // namespace

int main(int argc, char** argv) {
  using namespace respin;

  if (cli::handle_version_flag(kTool, argc, argv)) return 0;

  serve::ServerConfig config;
  config.version = cli::version_line(kTool);
  bool stdio = false;
  long port = 0;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    auto value = [&] { return cli::need_value(kTool, argc, argv, i, kHint); };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atol(value());
      if (port < 0 || port > 65535) {
        cli::usage_error(kTool, "--port needs 0..65535", kHint);
      }
    } else if (std::strcmp(argv[i], "--stdio") == 0) {
      stdio = true;
    } else if (std::strcmp(argv[i], "--store") == 0) {
      config.store_path = value();
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      config.cache_capacity = static_cast<std::size_t>(std::atol(value()));
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      const long depth = std::atol(value());
      if (depth < 1) cli::usage_error(kTool, "--queue needs >= 1", kHint);
      config.queue_depth = static_cast<std::size_t>(depth);
    } else if (std::strcmp(argv[i], "--deadline") == 0) {
      config.default_deadline_ms = std::atol(value());
      if (config.default_deadline_ms < 0) {
        cli::usage_error(kTool, "--deadline needs >= 0 ms", kHint);
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const int threads = std::atoi(value());
      if (threads < 1) {
        cli::usage_error(kTool, "--threads needs a positive count", kHint);
      }
      exec::set_thread_count(static_cast<std::size_t>(threads));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = value();
    } else {
      cli::usage_error(kTool, std::string("unknown option ") + argv[i], kHint);
    }
  }

  std::ofstream trace_os;
  std::optional<obs::JsonlWriter> trace_writer;
  if (!trace_path.empty()) {
    trace_os.open(trace_path);
    if (!trace_os) {
      cli::usage_error(kTool, "cannot open --trace output file", kHint);
    }
    trace_writer.emplace(trace_os);
    obs::set_global_sink(&*trace_writer);
  }

  int status = 0;
  {
    serve::Server server(config);
    if (!config.store_path.empty() && server.store().loaded() > 0) {
      std::cerr << kTool << ": loaded " << server.store().loaded()
                << " results from " << config.store_path;
      if (server.store().skipped_lines() > 0) {
        std::cerr << " (" << server.store().skipped_lines()
                  << " malformed lines skipped)";
      }
      std::cerr << '\n';
    }
    if (stdio) {
      serve::serve_stdio(server, std::cin, std::cout);
    } else {
      status = serve::serve_tcp(server, static_cast<std::uint16_t>(port),
                                std::cerr);
    }
  }
  obs::set_global_sink(nullptr);
  return status;
}
