// Section V.D: optimal cluster size sweep — SH-STT performance gain over
// PR-SRAM-NT for clusters of 4, 8, 16 and 32 cores (shared L1 scales with
// the cluster: 16KB per core).
//
// Paper claims: the gain grows from ~5% at 4 cores to ~11% at 16 cores,
// then collapses to ~2.5% at 32 cores (bigger/slower shared L1, double the
// requesters on the same ports). 16 cores is optimal.
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions base_options = bench::default_options();
  bench::print_banner("Section V.D — optimal cluster size",
                      "SH-STT gain peaks at 16 cores/cluster (~11%)",
                      base_options);

  util::TextTable table("SH-STT vs PR-SRAM-NT by cluster size (suite geo-mean)");
  table.set_header({"cluster size", "shared L1", "time ratio", "perf gain",
                    "half-miss rate"});

  for (std::uint32_t cores : {4u, 8u, 16u, 32u}) {
    core::RunOptions options = base_options;
    options.cluster_cores = cores;
    std::vector<double> ratios;
    std::uint64_t half_misses = 0;
    std::uint64_t reads = 0;
    for (const std::string& bench : workload::benchmark_names()) {
      const auto baseline =
          core::run_experiment(core::ConfigId::kPrSramNt, bench, options);
      const auto stt =
          core::run_experiment(core::ConfigId::kShStt, bench, options);
      ratios.push_back(stt.seconds / baseline.seconds);
      half_misses += stt.dl1_half_misses;
      reads += stt.dl1_read_hits + stt.dl1_read_misses;
    }
    const double ratio = util::geometric_mean(ratios);
    table.add_row(
        {std::to_string(cores) + " cores",
         std::to_string(16 * cores) + "KB", bench::norm(ratio),
         util::percent(1.0 - ratio),
         util::fixed(100.0 * static_cast<double>(half_misses) /
                         static_cast<double>(reads ? reads : 1), 2) + "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference: +5%% (4) .. +11%% (16) .. +2.5%% (32). The larger\n"
      "cluster loses because the 512KB shared L1 is slower and 32 cores\n"
      "outrun the port bandwidth (watch the half-miss rate climb).\n");
  return 0;
}
