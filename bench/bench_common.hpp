// Shared plumbing for the experiment harness binaries: run-option setup
// from RESPIN_SIM_SCALE, result caching across related binaries within one
// process, and formatting helpers.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace respin::bench {

/// Default run options for the experiment binaries; workload scale comes
/// from RESPIN_SIM_SCALE (default 1).
core::RunOptions default_options();

/// Prints a standard experiment banner: which paper artifact this binary
/// regenerates and the knobs in effect (including the host fan-out width).
void print_banner(const std::string& artifact, const std::string& paper_claim,
                  const core::RunOptions& options);

/// Runs the full benchmark suite for every configuration in `configs` as
/// one parallel (config x benchmark) fan-out. Row i holds `configs[i]`'s
/// results in workload::benchmark_names() order; each cell is identical
/// to the serial core::run_experiment call it replaces.
std::vector<std::vector<core::SimResult>> run_suite_matrix(
    const std::vector<core::ConfigId>& configs,
    const core::RunOptions& options);

/// Formats "x.xx" normalized values.
std::string norm(double value);

}  // namespace respin::bench
