// Shared plumbing for the experiment harness binaries: run-option setup
// from RESPIN_SIM_SCALE, observability exports, result caching across
// related binaries within one process, and formatting helpers.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace respin::bench {

/// Configures the observability exports for a bench binary from
/// `--trace <file>` / `--metrics <file>` argv flags, falling back to the
/// RESPIN_TRACE / RESPIN_METRICS environment variables. The trace sink is
/// installed as the process-wide obs sink and returned by
/// default_options() (so every simulation the bench runs emits into it);
/// metric rows queued via export_metrics() are written at process exit.
/// Benches that never call this still honour the environment variables —
/// default_options() initializes from them lazily.
void init_obs(int argc, char** argv);

/// Queues every result's counter registry for the metrics export; no-op
/// when no metrics destination is configured. run_suite_matrix() calls
/// this automatically.
void export_metrics(const std::vector<core::SimResult>& results);

/// Single-result convenience for benches that run experiments one by one.
void export_metrics(const core::SimResult& result);

/// Default run options for the experiment binaries; workload scale comes
/// from RESPIN_SIM_SCALE (default 1) and the trace sink from init_obs /
/// RESPIN_TRACE.
core::RunOptions default_options();

/// One machine-readable performance metric destined for a BENCH_*.json
/// snapshot (the committed perf trajectory, compared by
/// scripts/bench_compare.py).
struct JsonMetric {
  std::string name;   ///< Stable key, e.g. "serial_skip_sims_per_sec".
  double value = 0.0;
  std::string unit;   ///< Human label: "sims/s", "s", "ratio", ...
  /// "higher" or "lower": which direction is an improvement. Empty means
  /// purely informational (never compared).
  std::string better;
  /// Gated metrics fail scripts/bench_compare.py when they regress beyond
  /// the noise band. Keep hardware-dependent absolutes ungated — CI
  /// hardware differs from whoever committed the baseline — and gate
  /// ratios (speedups, overheads), which track simulator behaviour.
  bool gate = false;
};

/// Writes `metrics` plus toolchain provenance as JSON to the path given by
/// `--json <path>` (or the RESPIN_BENCH_JSON environment variable); no-op
/// when neither is set. `bench` names the producing binary.
void export_bench_json(const std::string& bench,
                       const std::vector<JsonMetric>& metrics);

/// True when a --json / RESPIN_BENCH_JSON destination is configured.
bool bench_json_enabled();

/// Prints a standard experiment banner: which paper artifact this binary
/// regenerates and the knobs in effect (including the host fan-out width).
void print_banner(const std::string& artifact, const std::string& paper_claim,
                  const core::RunOptions& options);

/// Runs the full benchmark suite for every configuration in `configs` as
/// one parallel (config x benchmark) fan-out. Row i holds `configs[i]`'s
/// results in workload::benchmark_names() order; each cell is identical
/// to the serial core::run_experiment call it replaces.
std::vector<std::vector<core::SimResult>> run_suite_matrix(
    const std::vector<core::ConfigId>& configs,
    const core::RunOptions& options);

/// Nearest-rank percentile of `samples` (p in [0, 100]); 0 for an empty
/// set. Sorts a copy — callers keep their sample order. The latency
/// reporting helper for the multi-client serving benches (p50/p99).
double percentile(std::vector<double> samples, double p);

/// Formats "x.xx" normalized values.
std::string norm(double value);

}  // namespace respin::bench
