// Shared plumbing for the experiment harness binaries: run-option setup
// from RESPIN_SIM_SCALE, observability exports, result caching across
// related binaries within one process, and formatting helpers.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace respin::bench {

/// Configures the observability exports for a bench binary from
/// `--trace <file>` / `--metrics <file>` argv flags, falling back to the
/// RESPIN_TRACE / RESPIN_METRICS environment variables. The trace sink is
/// installed as the process-wide obs sink and returned by
/// default_options() (so every simulation the bench runs emits into it);
/// metric rows queued via export_metrics() are written at process exit.
/// Benches that never call this still honour the environment variables —
/// default_options() initializes from them lazily.
void init_obs(int argc, char** argv);

/// Queues every result's counter registry for the metrics export; no-op
/// when no metrics destination is configured. run_suite_matrix() calls
/// this automatically.
void export_metrics(const std::vector<core::SimResult>& results);

/// Single-result convenience for benches that run experiments one by one.
void export_metrics(const core::SimResult& result);

/// Default run options for the experiment binaries; workload scale comes
/// from RESPIN_SIM_SCALE (default 1) and the trace sink from init_obs /
/// RESPIN_TRACE.
core::RunOptions default_options();

/// Prints a standard experiment banner: which paper artifact this binary
/// regenerates and the knobs in effect (including the host fan-out width).
void print_banner(const std::string& artifact, const std::string& paper_claim,
                  const core::RunOptions& options);

/// Runs the full benchmark suite for every configuration in `configs` as
/// one parallel (config x benchmark) fan-out. Row i holds `configs[i]`'s
/// results in workload::benchmark_names() order; each cell is identical
/// to the serial core::run_experiment call it replaces.
std::vector<std::vector<core::SimResult>> run_suite_matrix(
    const std::vector<core::ConfigId>& configs,
    const core::RunOptions& options);

/// Formats "x.xx" normalized values.
std::string norm(double value);

}  // namespace respin::bench
