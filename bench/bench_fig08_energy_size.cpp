// Figure 8: total energy vs cache size class for SH-STT and SH-SRAM-Nom,
// normalized to PR-SRAM-NT.
//
// Paper claims: SH-STT uses 13-31% less energy than the baseline (savings
// grow with cache size); SH-SRAM-Nom uses 8-16% MORE energy.
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions base_options = bench::default_options();
  bench::print_banner("Figure 8 — energy vs cache size class",
                      "SH-STT: -13% (small) to -31% (large) vs PR-SRAM-NT",
                      base_options);

  util::TextTable table("Suite energy normalized to PR-SRAM-NT");
  table.set_header({"cache size", "SH-STT", "SH-SRAM-Nom"});

  for (core::CacheSize size :
       {core::CacheSize::kSmall, core::CacheSize::kMedium,
        core::CacheSize::kLarge}) {
    core::RunOptions options = base_options;
    options.size = size;
    const std::vector<std::vector<core::SimResult>> matrix =
        bench::run_suite_matrix({core::ConfigId::kPrSramNt,
                                 core::ConfigId::kShStt,
                                 core::ConfigId::kShSramNom},
                                options);
    double base = 0.0;
    double stt = 0.0;
    double nom = 0.0;
    for (std::size_t b = 0; b < matrix.front().size(); ++b) {
      base += matrix[0][b].energy.total();
      stt += matrix[1][b].energy.total();
      nom += matrix[2][b].energy.total();
    }
    table.add_row({core::to_string(size), bench::norm(stt / base),
                   bench::norm(nom / base)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference: SH-STT 0.87/0.77/0.69 (small/medium/large);\n"
      "SH-SRAM-Nom 1.08-1.16. This reproduction's SH-SRAM-Nom lands below\n"
      "1.0 (see EXPERIMENTS.md for the documented residual): the shared-\n"
      "cache performance gain outweighs nominal-SRAM leakage here.\n");
  return 0;
}
