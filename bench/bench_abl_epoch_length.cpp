// Ablation: consolidation interval sweep (paper §III.D).
//
// The paper reports that remapping every 160K instructions "carries only a
// small performance penalty and returns optimal energy savings" against
// their full-length runs. Our workloads are ~1000x shorter, so the sweet
// spot scales down correspondingly; this sweep shows the same U-shape:
// too-short epochs thrash (migration + noise), too-long epochs cannot
// track program phases.
#include <cstdio>

#include "bench_common.hpp"
#include "core/cluster_sim.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Ablation — consolidation epoch length",
      "epoch must resolve program phases without thrashing (paper: 160K)",
      options);

  util::TextTable table(
      "SH-STT-CC energy vs PR-SRAM-NT by epoch length (radix + bodytrack)");
  table.set_header({"epoch (cluster instr)", "radix", "bodytrack"});

  core::RunOptions base = options;
  const double radix_base =
      core::run_experiment(core::ConfigId::kPrSramNt, "radix", base)
          .energy.total();
  const double bodytrack_base =
      core::run_experiment(core::ConfigId::kPrSramNt, "bodytrack", base)
          .energy.total();

  for (std::uint64_t epoch : {5'000ull, 10'000ull, 20'000ull, 40'000ull,
                              80'000ull, 160'000ull}) {
    std::vector<std::string> row = {std::to_string(epoch)};
    for (const char* bench : {"radix", "bodytrack"}) {
      core::ClusterConfig config = core::make_cluster_config(
          core::ConfigId::kShSttCc, options.size, options.cluster_cores,
          options.seed);
      config.governor_params.epoch_instructions = epoch;
      core::SimParams params;
      params.workload_scale = options.workload_scale;
      params.seed = options.seed;
      core::ClusterSim sim(config, workload::benchmark(bench), params);
      sim.run();
      const double base_energy =
          std::string(bench) == "radix" ? radix_base : bodytrack_base;
      row.push_back(bench::norm(sim.result().energy.total() / base_energy));
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The default epoch (40K cluster instructions) sits in the flat part\n"
      "of the U; it corresponds to the paper's 160K once the ~1000x\n"
      "workload-length compression is accounted for (DESIGN.md §5).\n");
  return 0;
}
