// Table II: baseline architecture configuration parameters, regenerated
// from the configuration layer.
#include <cstdio>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner("Table II — architecture configuration",
                      "64-core CMP, 16-core clusters, dual-issue NT cores",
                      options);

  const auto cfg =
      core::make_cluster_config(core::ConfigId::kShStt, core::CacheSize::kMedium);

  util::TextTable table("Baseline architecture parameters");
  table.set_header({"parameter", "value"});
  table.add_row({"chip cores", "64"});
  table.add_row({"cluster size",
                 std::to_string(cfg.cluster_cores) + " cores (" +
                     std::to_string(cfg.clusters_per_chip) + " clusters)"});
  table.add_row({"core issue width",
                 std::to_string(cfg.core_timing.issue_width)});
  table.add_row({"core Vdd (NT rail)", util::fixed(cfg.core_vdd, 2) + " V"});
  table.add_row({"cache Vdd (high rail)",
                 util::fixed(cfg.cache_vdd, 2) + " V"});
  table.add_row({"shared cache clock",
                 util::fixed(util::frequency_hz(cfg.clocking.cache_period) /
                                 1e9, 2) + " GHz (" +
                     util::fixed(util::to_ns(cfg.clocking.cache_period), 1) +
                     " ns)"});
  table.add_row(
      {"core periods",
       util::fixed(util::to_ns(cfg.clocking.core_period(
                       cfg.clocking.min_core_multiplier)), 1) +
           " - " +
           util::fixed(util::to_ns(cfg.clocking.core_period(
                           cfg.clocking.max_core_multiplier)), 1) +
           " ns (multipliers " +
           std::to_string(cfg.clocking.min_core_multiplier) + "-" +
           std::to_string(cfg.clocking.max_core_multiplier) + ")"});
  table.add_row({"L2 hit latency",
                 std::to_string(cfg.backside.l2_hit_cycles) + " cache cycles"});
  table.add_row({"L3 hit latency",
                 std::to_string(cfg.backside.l3_hit_cycles) + " cache cycles"});
  table.add_row({"memory latency",
                 std::to_string(cfg.backside.memory_cycles) +
                     " cache cycles (~" +
                     util::fixed(cfg.backside.memory_cycles * 0.4, 0) +
                     " ns)"});
  table.add_row({"level shifter up-delay", "0.75 ns (2 cache cycles w/ wire)"});
  table.add_row({"consolidation epoch",
                 std::to_string(cfg.governor_params.epoch_instructions) +
                     " instructions (scaled; paper: 160K)"});
  table.add_row({"HW context-switch quantum",
                 std::to_string(cfg.core_timing.hw_quantum_instructions) +
                     " instructions"});
  std::printf("%s\n", table.render().c_str());

  util::TextTable mults("Per-core clock multipliers (die seed 1, cluster 0)");
  mults.set_header({"core", "multiplier", "period (ns)", "frequency (MHz)"});
  for (std::uint32_t c = 0; c < cfg.cluster_cores; ++c) {
    const auto period = cfg.clocking.core_period(cfg.multipliers[c]);
    mults.add_row({std::to_string(c), std::to_string(cfg.multipliers[c]),
                   util::fixed(util::to_ns(period), 1),
                   util::fixed(util::frequency_hz(period) / 1e6, 0)});
  }
  std::printf("%s\n", mults.render().c_str());
  return 0;
}
