// Table III: L1 data cache technology parameters from the nvsim array
// model, side by side with the paper's published values.
#include <cstdio>

#include "bench_common.hpp"
#include "nvsim/array_model.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  bench::print_banner("Table III — L1D technology parameters (NVSim+CACTI)",
                      "STT-RAM: ~3.7x denser, ~7.7x lower leakage than SRAM",
                      core::RunOptions{});

  struct Row {
    const char* label;
    nvsim::ArrayConfig config;
    const char* paper;  // "area / rd ps / wr ps / rd pJ / leak mW".
  };
  const std::uint64_t k256 = 256 * 1024;
  const Row rows[] = {
      {"SRAM 16KBx16 @0.65V",
       {nvsim::MemTech::kSram, k256, 32, 4, 0.65, 16},
       "0.9176 / 1337 / 1337 / 2.578 / 573"},
      {"SRAM 16KBx16 @1.0V",
       {nvsim::MemTech::kSram, k256, 32, 4, 1.00, 16},
       "0.9176 / 211.9 / 211.9 / 6.102 / 881"},
      {"SRAM 256KB @1.0V",
       {nvsim::MemTech::kSram, k256, 32, 4, 1.00, 1},
       "0.9176 / 533.6 / 533.6 / 42.41 / 881"},
      {"STT-RAM 256KB @1.0V",
       {nvsim::MemTech::kSttRam, k256, 32, 4, 1.00, 1},
       "0.2451 / 588.2 / 5208 / 29.32 / 114"},
  };

  util::TextTable table("Model vs paper (area mm2 / rd ps / wr ps / rd pJ / leak mW)");
  table.set_header({"array", "model", "paper"});
  for (const Row& row : rows) {
    nvsim::ArrayConfig cfg = row.config;
    // Table III used the 4-way L1D organization but quotes raw-array
    // energies; evaluate with the anchor associativity of 2.
    cfg.associativity = 2;
    const nvsim::ArrayFigures f = nvsim::evaluate(cfg);
    const std::string model =
        util::fixed(f.area_mm2, 4) + " / " +
        util::fixed(static_cast<double>(f.read_latency), 1) + " / " +
        util::fixed(static_cast<double>(f.write_latency), 1) + " / " +
        util::fixed(f.read_energy, 3) + " / " +
        util::fixed(f.leakage_power * 1e3, 0);
    table.add_row({row.label, model, row.paper});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "The model is calibrated on these anchors and extrapolates by\n"
      "capacity^(1/3) latency, capacity^0.7 x Vdd^2 energy, and linear-in-\n"
      "Vdd leakage (see src/nvsim/array_model.hpp).\n");
  return 0;
}
