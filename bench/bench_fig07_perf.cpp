// Figure 7: per-benchmark execution time normalized to PR-SRAM-NT for
// SH-STT, SH-SRAM-Nom and HP-SRAM-CMP (medium caches).
//
// Paper claims: SH-STT reduces execution time by 11% on average (raytrace
// and ocean benefit most); SH-STT is ~1.2% faster than SH-SRAM-Nom;
// HP-SRAM-CMP is fastest at much higher energy.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Figure 7 — normalized execution time (medium caches)",
      "SH-STT: -11% average vs PR-SRAM-NT; HP-SRAM-CMP fastest",
      options);

  const core::ConfigId configs[] = {core::ConfigId::kShStt,
                                    core::ConfigId::kShSramNom,
                                    core::ConfigId::kHpSramCmp};

  std::map<std::string, double> baseline_seconds;
  for (const std::string& bench : workload::benchmark_names()) {
    baseline_seconds[bench] =
        core::run_experiment(core::ConfigId::kPrSramNt, bench, options)
            .seconds;
  }

  util::TextTable table(
      "Execution time normalized to PR-SRAM-NT (lower is better)");
  table.set_header(
      {"benchmark", "SH-STT", "SH-SRAM-Nom", "HP-SRAM-CMP"});

  std::map<core::ConfigId, std::vector<double>> ratios;
  for (const std::string& bench : workload::benchmark_names()) {
    std::vector<std::string> row = {bench};
    for (core::ConfigId id : configs) {
      const core::SimResult r = core::run_experiment(id, bench, options);
      const double ratio = r.seconds / baseline_seconds[bench];
      ratios[id].push_back(ratio);
      row.push_back(bench::norm(ratio));
    }
    table.add_row(row);
  }
  std::vector<std::string> mean_row = {"geo-mean"};
  for (core::ConfigId id : configs) {
    mean_row.push_back(bench::norm(util::geometric_mean(ratios[id])));
  }
  table.add_row(mean_row);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference: SH-STT mean 0.89 (-11%%); SH-SRAM-Nom ~1.2%% slower\n"
      "than SH-STT; raytrace (shared-scene reuse) and ocean (hundreds of\n"
      "barriers) benefit the most from coherence-free shared caches.\n");
  return 0;
}
