// Figure 7: per-benchmark execution time normalized to PR-SRAM-NT for
// SH-STT, SH-SRAM-Nom and HP-SRAM-CMP (medium caches).
//
// Paper claims: SH-STT reduces execution time by 11% on average (raytrace
// and ocean benefit most); SH-STT is ~1.2% faster than SH-SRAM-Nom;
// HP-SRAM-CMP is fastest at much higher energy.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Figure 7 — normalized execution time (medium caches)",
      "SH-STT: -11% average vs PR-SRAM-NT; HP-SRAM-CMP fastest",
      options);

  const std::vector<core::ConfigId> configs = {core::ConfigId::kShStt,
                                               core::ConfigId::kShSramNom,
                                               core::ConfigId::kHpSramCmp};

  // One fan-out covers the baseline row and all three comparison rows.
  std::vector<core::ConfigId> grid = {core::ConfigId::kPrSramNt};
  grid.insert(grid.end(), configs.begin(), configs.end());
  const std::vector<std::vector<core::SimResult>> matrix =
      bench::run_suite_matrix(grid, options);
  const std::vector<core::SimResult>& baseline = matrix.front();

  util::TextTable table(
      "Execution time normalized to PR-SRAM-NT (lower is better)");
  table.set_header(
      {"benchmark", "SH-STT", "SH-SRAM-Nom", "HP-SRAM-CMP"});

  const std::vector<std::string> names = workload::benchmark_names();
  std::map<core::ConfigId, std::vector<double>> ratios;
  for (std::size_t b = 0; b < names.size(); ++b) {
    std::vector<std::string> row = {names[b]};
    for (std::size_t c = 0; c < configs.size(); ++c) {
      const double ratio =
          matrix[c + 1][b].seconds / baseline[b].seconds;
      ratios[configs[c]].push_back(ratio);
      row.push_back(bench::norm(ratio));
    }
    table.add_row(row);
  }
  std::vector<std::string> mean_row = {"geo-mean"};
  for (core::ConfigId id : configs) {
    mean_row.push_back(bench::norm(util::geometric_mean(ratios[id])));
  }
  table.add_row(mean_row);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference: SH-STT mean 0.89 (-11%%); SH-SRAM-Nom ~1.2%% slower\n"
      "than SH-STT; raytrace (shared-scene reuse) and ocean (hundreds of\n"
      "barriers) benefit the most from coherence-free shared caches.\n");
  return 0;
}
