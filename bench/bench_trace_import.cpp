// Trace-ingestion microbench (not a paper artifact): foreign-format
// import throughput and trace-fitting throughput, anchored against the
// binary decode rate measured in the same process.
//
// Three measurements over one synthetic HybridSim-style text trace
// (generated in-process, deterministically):
//   import   text lines -> native .rspt via the hybridsim importer
//   decode   load_trace on the imported file (same stage the replay
//            bench measures, re-measured here as the in-process anchor)
//   fit      fit_trace on the decoded trace (reuse-distance Fenwick pass,
//            sharing classification, phase windows)
// Absolute rates are hardware-dependent (ungated); the committed baseline
// gates the import/decode and fit/decode ratios, which track parser and
// analyzer behaviour rather than the host (docs/traces.md).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "trace/fit/fit.hpp"
#include "trace/import/import.hpp"
#include "trace/reader.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/synth.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double file_size_mb(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  return static_cast<double>(is.tellg()) / (1024.0 * 1024.0);
}

/// Writes a deterministic multi-core text trace: per-core monotonic
/// timestamps, a hot set plus a long-tail address mix (so the fit stage
/// sees a non-trivial reuse histogram), ~10% shared lines.
std::uint64_t write_foreign_trace(const std::string& path,
                                  std::uint32_t cores, std::uint64_t lines) {
  respin::util::Rng rng("bench.import", 1);
  std::vector<std::uint64_t> clock(cores, 0);
  std::ofstream os(path, std::ios::trunc);
  RESPIN_REQUIRE(os.is_open(), "cannot write " + path);
  for (std::uint64_t i = 0; i < lines; ++i) {
    const auto core = static_cast<std::uint32_t>(rng.uniform_u64(cores));
    clock[core] += rng.uniform_u64(50);
    std::uint64_t addr;
    if (rng.bernoulli(0.10)) {
      addr = 0x7000'0000 + 64 * rng.uniform_u64(512);  // Shared hot set.
    } else if (rng.bernoulli(0.6)) {
      addr = 0x1000'0000 * (core + 1) + 64 * rng.uniform_u64(256);  // Hot.
    } else {
      addr = 0x1000'0000 * (core + 1) + 64 * rng.uniform_u64(1 << 18);
    }
    const bool store = rng.bernoulli(0.3);
    char line[96];
    const int n =
        std::snprintf(line, sizeof line, "%u %llu 0x%llx %c\n", core,
                      static_cast<unsigned long long>(clock[core]),
                      static_cast<unsigned long long>(addr),
                      store ? 'W' : 'R');
    os.write(line, n);
  }
  RESPIN_REQUIRE(os.good(), "write failure on " + path);
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Foreign-trace import + fit throughput (not a paper artifact)",
      "external traces ingest and fit at a fixed fraction of decode speed",
      options);

  const std::uint32_t cores = 8;
  const auto lines = static_cast<std::uint64_t>(
      1'500'000 * std::max(0.01, options.workload_scale));
  const std::string text_path = "bench_trace_import.hst";
  const std::string rspt_path = "bench_trace_import.rspt";

  write_foreign_trace(text_path, cores, lines);
  const double text_mb = file_size_mb(text_path);

  // Import: foreign text -> native binary trace.
  auto start = std::chrono::steady_clock::now();
  const trace::ImportStats stats =
      trace::import_trace("hybridsim", text_path, rspt_path);
  const double import_wall = seconds_since(start);
  RESPIN_REQUIRE(stats.mem_ops == lines, "every line becomes one mem op");

  // Decode: the in-process anchor rate (same stage bench_trace_replay
  // measures on a recorded trace).
  start = std::chrono::steady_clock::now();
  const trace::TraceData data = trace::load_trace(rspt_path);
  const double decode_wall = seconds_since(start);
  const double decode_records =
      static_cast<double>(data.total_ops() + data.total_ifetches());

  // Fit: decoded trace -> workload profile.
  start = std::chrono::steady_clock::now();
  const workload::WorkloadProfile profile = trace::fit::fit_trace(data);
  const double fit_wall = seconds_since(start);
  RESPIN_REQUIRE(profile.mem_ops == lines, "fit must see every access");

  const double import_rate = static_cast<double>(lines) / import_wall;
  const double decode_rate = decode_records / decode_wall;
  const double fit_rate = static_cast<double>(lines) / fit_wall;

  util::TextTable table("Trace ingestion throughput");
  table.set_header({"stage", "wall (s)", "Mrecords/sec", "MB/s"});
  table.add_row({"import", util::fixed(import_wall, 3),
                 util::fixed(import_rate * 1e-6, 2),
                 util::fixed(text_mb / import_wall, 1)});
  table.add_row({"decode", util::fixed(decode_wall, 3),
                 util::fixed(decode_rate * 1e-6, 2),
                 util::fixed(file_size_mb(rspt_path) / decode_wall, 1)});
  table.add_row({"fit", util::fixed(fit_wall, 3),
                 util::fixed(fit_rate * 1e-6, 2), "-"});
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "%llu text lines (%.1f MB) across %u cores -> %llu ops; "
      "fitted %zu phases, mem %.3f, store %.3f, shared %.3f.\n"
      "import/decode ratio %.3f, fit/decode ratio %.3f.\n",
      static_cast<unsigned long long>(lines), text_mb, cores,
      static_cast<unsigned long long>(data.total_ops()),
      profile.phases.size(), profile.mem_fraction, profile.store_fraction,
      profile.shared_fraction, import_rate / decode_rate,
      fit_rate / decode_rate);

  std::remove(text_path.c_str());
  std::remove(rspt_path.c_str());

  // Absolute rates are hardware-dependent (ungated); the two ratios pit
  // parser/analyzer passes against the decode pass on the same host in
  // the same process, so they are stable across machines and gated.
  bench::export_bench_json(
      "bench_trace_import",
      {{"import_mlines_per_sec", import_rate * 1e-6, "Mlines/s", "higher",
        false},
       {"import_text_mb_per_sec", text_mb / import_wall, "MB/s", "higher",
        false},
       {"decode_mrecords_per_sec", decode_rate * 1e-6, "Mrecords/s",
        "higher", false},
       {"fit_mrecords_per_sec", fit_rate * 1e-6, "Mrecords/s", "higher",
        false},
       {"import_vs_decode_ratio", import_rate / decode_rate, "ratio",
        "higher", true},
       {"fit_vs_decode_ratio", fit_rate / decode_rate, "ratio", "higher",
        true}});
  return 0;
}
