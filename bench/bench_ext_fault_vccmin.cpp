// Extension study: SRAM voltage scaling vs reliability (fault injection).
//
// The paper's Table IV keeps SRAM L1s at a 0.65 V "safe" rail precisely
// because SRAM bit cells stop working as Vdd approaches their Vccmin,
// while STT-RAM cells do not care. This extension makes that cliff
// quantitative with the respin::fault models: the PR-SRAM-NT baseline's
// L1s are evaluated at a sweep of rails (via the fault model's Vdd
// override), reporting the analytic bit-failure probability, the
// effective (post-disable) L1 capacity, the SECDED correction traffic,
// and the run outcome — next to an STT-RAM run at the same rail, whose
// arrays are immune by construction. See docs/faults.md for the models.
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions base = bench::default_options();
  bench::print_banner(
      "Extension — SRAM Vccmin cliff vs STT-RAM (fault injection)",
      "SRAM caches cannot follow Vdd down; STT-RAM keeps full capacity",
      base);

  util::TextTable table("PR-SRAM-NT L1s under a lowered rail (fft)");
  table.set_header({"rail (V)", "p(bit fail)", "usable L1", "correctable",
                    "ecc fixes", "time (ms)"});

  const fault::SramFaultParams sram_defaults;
  for (const double vdd : {0.65, 0.55, 0.50, 0.47, 0.45, 0.43, 0.41}) {
    core::RunOptions options = base;
    options.faults.enabled = true;
    options.faults.sram.vdd_override = vdd;
    const double p_bit =
        fault::sram_bit_fail_probability(sram_defaults, vdd, 0.30, 0.30);
    const core::SimResult r =
        core::run_experiment(core::ConfigId::kPrSramNt, "fft", options);
    bench::export_metrics(r);
    const double usable =
        r.fault_l1_total_bytes > 0
            ? static_cast<double>(r.fault_l1_usable_bytes) /
                  static_cast<double>(r.fault_l1_total_bytes)
            : 1.0;
    table.add_row({util::fixed(vdd, 2), util::scientific(p_bit, 1),
                   util::percent(usable),
                   std::to_string(r.fault_l1_correctable_ways) + " ways",
                   std::to_string(r.faults.ecc_corrections),
                   util::fixed(r.seconds * 1e3, 3)});
  }
  std::printf("%s\n", table.render().c_str());

  // The same sweep is meaningless for STT-RAM: the cell map is voltage
  // independent, so show one run with the stochastic write model instead.
  core::RunOptions stt = base;
  stt.faults.enabled = true;
  stt.faults.stt.write_fail_prob = 1e-3;
  const core::SimResult r =
      core::run_experiment(core::ConfigId::kShStt, "fft", stt);
  bench::export_metrics(r);
  std::printf(
      "SH-STT at any rail: full L1 capacity; with p(write fail)=1e-3 the\n"
      "retry machinery absorbed %llu faulty writes (%llu retries, %llu\n"
      "lines retired) for %.3f ms runtime.\n",
      static_cast<unsigned long long>(r.faults.stt_write_faults),
      static_cast<unsigned long long>(r.faults.stt_write_retries),
      static_cast<unsigned long long>(r.faults.stt_lines_disabled),
      r.seconds * 1e3);
  std::printf(
      "Below ~0.45 V the SRAM arrays lose whole ways faster than SECDED\n"
      "can paper over — the effective-capacity cliff that pins the paper's\n"
      "SRAM rail at 0.65 V while the cores scale to 0.4 V.\n");
  return 0;
}
