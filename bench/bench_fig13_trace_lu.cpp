// Figure 13: consolidation trace of lu — the greedy search's worst case.
//
// Paper claims: lu's parallelism drains stage by stage; the greedy search
// lags the oracle while it walks toward each new optimum, saving 29%
// versus the oracle's 38%.
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

namespace {

void print_trace(const char* label, const respin::core::SimResult& r) {
  std::printf("%s (avg %.1f active cores, range %u..%u):\n", label,
              r.avg_active_cores, r.min_active_cores, r.max_active_cores);
  const std::size_t stride = std::max<std::size_t>(1, r.trace.size() / 60);
  for (std::size_t i = 0; i < r.trace.size(); i += stride) {
    const auto& s = r.trace[i];
    std::printf("  %7.2f us |%-16s| %2u\n",
                static_cast<double>(s.cycle) * 0.4e-3,
                respin::util::ascii_bar(s.active_cores, 16, 16).c_str(),
                s.active_cores);
  }
}

}  // namespace

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner("Figure 13 — consolidation trace of lu",
                      "greedy lags the oracle as parallelism drains: 29% vs 38%",
                      options);

  const core::SimResult baseline =
      core::run_experiment(core::ConfigId::kPrSramNt, "lu", options);
  const core::SimResult greedy =
      core::run_experiment(core::ConfigId::kShSttCc, "lu", options);
  const core::SimResult oracle =
      core::run_experiment(core::ConfigId::kShSttCcOracle, "lu", options);

  print_trace("SH-STT-CC (greedy)", greedy);
  std::printf("\n");
  print_trace("SH-STT-CC-Oracle", oracle);

  std::printf(
      "\nEnergy vs PR-SRAM-NT: greedy %s, oracle %s "
      "(paper: -29%% and -38%% — the greedy search's sub-optimality on lu\n"
      "is the paper's own caveat, Fig. 13).\n",
      util::percent(greedy.energy.total() / baseline.energy.total() - 1.0)
          .c_str(),
      util::percent(oracle.energy.total() / baseline.energy.total() - 1.0)
          .c_str());
  return 0;
}
