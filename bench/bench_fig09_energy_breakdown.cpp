// Figure 9: per-benchmark energy for all eight Table IV configurations,
// normalized to PR-SRAM-NT (medium caches).
//
// Paper claims (averages): SH-STT -23%; SH-STT-CC -33%; SH-STT-CC-Oracle
// -36%; PR-STT-CC -24%; SH-SRAM-Nom +12%; HP-SRAM-CMP +40%; SH-STT-CC-OS
// +27% relative to SH-STT.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Figure 9 — energy by benchmark, all configurations (medium caches)",
      "SH-STT -23%, SH-STT-CC -33%, Oracle -36%, HP +40% vs PR-SRAM-NT",
      options);

  const core::ConfigId configs[] = {
      core::ConfigId::kHpSramCmp,  core::ConfigId::kShSramNom,
      core::ConfigId::kShStt,      core::ConfigId::kShSttCc,
      core::ConfigId::kShSttCcOracle, core::ConfigId::kPrSttCc,
      core::ConfigId::kShSttCcOs};

  std::map<std::string, double> baseline;
  for (const std::string& bench : workload::benchmark_names()) {
    baseline[bench] =
        core::run_experiment(core::ConfigId::kPrSramNt, bench, options)
            .energy.total();
  }

  util::TextTable table("Energy normalized to PR-SRAM-NT (lower is better)");
  std::vector<std::string> header = {"benchmark"};
  for (core::ConfigId id : configs) header.push_back(core::to_string(id));
  table.set_header(header);

  std::map<core::ConfigId, std::vector<double>> ratios;
  for (const std::string& bench : workload::benchmark_names()) {
    std::vector<std::string> row = {bench};
    for (core::ConfigId id : configs) {
      const core::SimResult r = core::run_experiment(id, bench, options);
      bench::export_metrics(r);
      const double ratio = r.energy.total() / baseline[bench];
      ratios[id].push_back(ratio);
      row.push_back(bench::norm(ratio));
    }
    table.add_row(row);
  }
  std::vector<std::string> mean_row = {"geo-mean"};
  for (core::ConfigId id : configs) {
    mean_row.push_back(bench::norm(util::geometric_mean(ratios[id])));
  }
  table.add_row(mean_row);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference (means): HP 1.40, SH-SRAM-Nom 1.12, SH-STT 0.77,\n"
      "SH-STT-CC 0.67, Oracle 0.64, PR-STT-CC 0.76, SH-STT-CC-OS ~0.98\n"
      "(+27%% over SH-STT). See EXPERIMENTS.md for measured-vs-paper notes.\n");
  return 0;
}
