// Scale-out serving benchmark: what sharding buys.
//
// Spawns real respin_serve worker processes (loopback TCP, one sim
// thread each), routes uncached run requests through an in-process
// serve::Router, and reports aggregate simulations/sec with 1 worker vs
// N workers plus the makespan of a sharded sweep. The gated metric is
// the machine-independent scaling ratio
//
//   scaling_ratio_capped = min(N-worker sims/sec / 1-worker sims/sec,
//                              10/3)
//
// capped so the committed baseline (10/3) with bench_compare.py's 10%
// band enforces exactly the >= 3.0x acceptance threshold for 4 workers,
// independent of how far past it a big host scales. The measurement only
// means anything with >= N cores (each worker needs its own); the CI job
// and scripts/update_bench_baseline.sh guard on nproc.
//
// Flags:
//   --workers <n>    worker-process count for the scaled phase (default 4)
//   --requests <n>   uncached requests per phase (default 24)
//   --serve-bin <p>  respin_serve binary (default: next to this binary,
//                    ../tools/respin_serve)
//   --smoke          tiny counts + invariant checks; the ctest mode
//                    (filter: BenchServeScaleSmoke). Exits non-zero when
//                    routing breaks (lost cells, cache-affinity miss).
//   --json <p>       BENCH_serve_scale.json snapshot (bench_common)
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/json.hpp"
#include "serve/router.hpp"

namespace {

using namespace respin;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One spawned respin_serve process and its kernel-assigned port.
struct WorkerProc {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// Forks a respin_serve worker on a kernel-assigned port, parsing the
/// "listening on port N" banner from its stderr. Returns pid -1 on
/// failure.
WorkerProc spawn_worker(const std::string& serve_bin) {
  WorkerProc worker;
  int err_pipe[2] = {-1, -1};
  if (::pipe(err_pipe) != 0) return worker;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    return worker;
  }
  if (pid == 0) {
    ::close(err_pipe[0]);
    ::dup2(err_pipe[1], 2);
    ::close(err_pipe[1]);
    // One sim thread per worker: aggregate scaling then measures added
    // processes, not one process's internal pool.
    ::execl(serve_bin.c_str(), serve_bin.c_str(), "--port", "0", "--threads",
            "1", static_cast<char*>(nullptr));
    std::perror("execl respin_serve");
    ::_exit(127);
  }
  ::close(err_pipe[1]);
  std::string banner;
  char byte = 0;
  // Read stderr bytewise until the banner line completes (workers print
  // it immediately; this is startup-only, not a hot path).
  while (banner.find("listening on port ") == std::string::npos ||
         banner.back() != '\n') {
    const ssize_t n = ::read(err_pipe[0], &byte, 1);
    if (n <= 0) break;
    banner.push_back(byte);
  }
  ::close(err_pipe[0]);
  const std::size_t at = banner.find("listening on port ");
  if (at != std::string::npos) {
    worker.port = static_cast<std::uint16_t>(
        std::atoi(banner.c_str() + at + std::strlen("listening on port ")));
    worker.pid = pid;
  } else {
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
  }
  return worker;
}

/// A router over freshly spawned worker processes; shuts the tier down
/// (router `shutdown` fans out) and reaps the children on destruction.
struct Tier {
  Tier(const std::string& serve_bin, std::size_t n, std::size_t backlog) {
    std::vector<std::unique_ptr<serve::WorkerBackend>> backends;
    for (std::size_t i = 0; i < n; ++i) {
      WorkerProc worker = spawn_worker(serve_bin);
      if (worker.pid < 0) continue;
      procs.push_back(worker);
      backends.push_back(std::make_unique<serve::TcpWorker>("127.0.0.1",
                                                            worker.port));
    }
    if (procs.size() == n) {
      serve::RouterConfig config;
      config.backlog = backlog;
      router = std::make_unique<serve::Router>(config, std::move(backends));
    }
  }
  ~Tier() {
    if (router != nullptr) router->handle_line("{\"op\":\"shutdown\"}");
    for (const WorkerProc& worker : procs) {
      ::waitpid(worker.pid, nullptr, 0);
    }
  }
  bool ok() const { return router != nullptr; }

  std::vector<WorkerProc> procs;
  std::unique_ptr<serve::Router> router;
};

std::string run_line(std::uint64_t seed, double scale) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"op\":\"run\",\"config\":\"SH-STT\",\"benchmark\":"
                "\"ocean\",\"scale\":%g,\"seed\":%llu}",
                scale, static_cast<unsigned long long>(seed));
  return buf;
}

/// Drives `requests` uncached runs (distinct seeds from `seed_base`)
/// through the router from 2x-workers client threads; returns the wall
/// seconds, or a negative value when any request failed.
double drive(serve::Router& router, std::size_t requests,
             std::uint64_t seed_base, double scale, std::size_t clients) {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failures{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= requests) return;
        const std::string response =
            router.handle_line(run_line(seed_base + i, scale));
        const obs::json::Value v = obs::json::parse(response);
        const obs::json::Value* ok = v.find("ok");
        if (ok == nullptr || !ok->as_bool()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall = seconds_since(start);
  return failures.load() == 0 ? wall : -1.0;
}

constexpr double kRatioCap = 10.0 / 3.0;

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers = 4;
  std::size_t requests = 24;
  bool smoke = false;
  std::string serve_bin;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::atol(argv[++i]));
      if (workers == 0) workers = 1;
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = static_cast<std::size_t>(std::atol(argv[++i]));
      if (requests == 0) requests = 1;
    } else if (std::strcmp(argv[i], "--serve-bin") == 0 && i + 1 < argc) {
      serve_bin = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::init_obs(static_cast<int>(passthrough.size()), passthrough.data());

  if (serve_bin.empty()) {
    // Default: the sibling tools directory of this bench binary.
    std::string self = argv[0];
    const std::size_t slash = self.rfind('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : self.substr(0, slash);
    serve_bin = dir + "/../tools/respin_serve";
  }
  if (smoke) {
    workers = 2;
    requests = 6;
  }
  const double scale = smoke ? 0.02 : 0.05;

  std::printf("serve_scale: %zu workers (%s), %zu uncached requests/phase, "
              "host cores %u\n",
              workers, serve_bin.c_str(), requests,
              std::thread::hardware_concurrency());

  // Phase 1: single worker.
  double one_wall = -1.0;
  {
    Tier tier(serve_bin, 1, /*backlog=*/2);
    if (!tier.ok()) {
      std::fprintf(stderr, "serve_scale: cannot spawn worker (%s)\n",
                   serve_bin.c_str());
      return 1;
    }
    one_wall = drive(*tier.router, requests, /*seed_base=*/1000, scale,
                     /*clients=*/2 * workers);
  }

  // Phase 2: N workers, fresh keys (different seed range) so every
  // request is again a real simulation.
  double n_wall = -1.0;
  double sweep_wall = -1.0;
  double affinity_failures = 0;
  {
    Tier tier(serve_bin, workers, /*backlog=*/2);
    if (!tier.ok()) {
      std::fprintf(stderr, "serve_scale: cannot spawn %zu workers\n",
                   workers);
      return 1;
    }
    n_wall = drive(*tier.router, requests, /*seed_base=*/2000, scale,
                   /*clients=*/2 * workers);

    // Shard-affinity check: repeating one of the phase's requests must be
    // a cached answer from its owner shard.
    for (std::uint64_t seed = 2000; seed < 2000 + std::min<std::size_t>(
                                               requests, 4);
         ++seed) {
      const obs::json::Value repeat = obs::json::parse(
          tier.router->handle_line(run_line(seed, scale)));
      const obs::json::Value* cached = repeat.find("cached");
      if (cached == nullptr || !cached->as_bool()) affinity_failures += 1;
      const obs::json::Value* shard = repeat.find("shard");
      const obs::json::Value* key = repeat.find("key");
      if (shard == nullptr || key == nullptr ||
          shard->as_u64() != tier.router->shard_of(key->as_string())) {
        affinity_failures += 1;
      }
    }

    // Sweep makespan through the sharded tier (fresh seed so cells run).
    const auto sweep_start = std::chrono::steady_clock::now();
    const obs::json::Value sweep = obs::json::parse(tier.router->handle_line(
        "{\"op\":\"sweep\",\"configs\":[\"SH-STT\",\"PR-SRAM-NT\"],"
        "\"benchmarks\":[\"ocean\",\"radix\",\"fft\",\"lu\"],\"scale\":" +
        std::to_string(scale) + ",\"seed\":3000}"));
    sweep_wall = seconds_since(sweep_start);
    const obs::json::Value* failed = sweep.find("failed");
    if (failed == nullptr || failed->as_u64() != 0) {
      std::fprintf(stderr, "serve_scale: sweep reported failed cells\n");
      return 1;
    }
  }

  if (one_wall < 0 || n_wall < 0) {
    std::fprintf(stderr, "serve_scale: requests failed\n");
    return 1;
  }
  if (affinity_failures > 0) {
    std::fprintf(stderr,
                 "serve_scale: %d shard-affinity violations (repeat "
                 "requests not cached on their owner)\n",
                 static_cast<int>(affinity_failures));
    return 1;
  }

  const double one_rate = static_cast<double>(requests) / one_wall;
  const double n_rate = static_cast<double>(requests) / n_wall;
  const double ratio = n_rate / one_rate;
  const double capped = std::min(ratio, kRatioCap);

  std::printf("1 worker:   %7.2f sims/sec (%.2f s)\n", one_rate, one_wall);
  std::printf("%zu workers:  %7.2f sims/sec (%.2f s)\n", workers, n_rate,
              n_wall);
  std::printf("scaling:    %7.2fx raw, %.4fx capped (cap %.4f)\n", ratio,
              capped, kRatioCap);
  std::printf("sweep makespan (%zu workers, 8 cells): %.2f s\n", workers,
              sweep_wall);

  if (bench::bench_json_enabled()) {
    bench::export_bench_json(
        "bench_serve_scale",
        {{"aggregate_1w_sims_per_sec", one_rate, "sims/s", "higher", false},
         {"aggregate_nw_sims_per_sec", n_rate, "sims/s", "higher", false},
         {"scaling_ratio_raw", ratio, "ratio", "higher", false},
         // The acceptance gate: >= 3.0x for 4 workers after the 10% band
         // below the committed 10/3 baseline.
         {"scaling_ratio_capped", capped, "ratio", "higher", true},
         {"sweep_makespan_seconds", sweep_wall, "s", "lower", false}});
  }
  if (smoke) std::printf("serve_scale: smoke OK\n");
  return 0;
}
