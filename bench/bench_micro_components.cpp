// Component micro-benchmarks (google-benchmark): throughput of the
// building blocks the simulator leans on — the priority-register arbiter,
// cache-array accesses, the MESI directory path, the workload generator,
// and the RNG.
#include <benchmark/benchmark.h>

#include "core/priority_register.hpp"
#include "core/shared_cache_controller.hpp"
#include "mem/backside.hpp"
#include "mem/cache_array.hpp"
#include "mem/private_l1.hpp"
#include "util/rng.hpp"
#include "workload/workload.hpp"

namespace {

using namespace respin;

void BM_Xoshiro(benchmark::State& state) {
  util::Rng rng("bench", 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_PriorityRegisterShift(benchmark::State& state) {
  core::PriorityRegister reg;
  reg.preload(4);
  for (auto _ : state) {
    reg.shift();
    if (reg.expired()) reg.preload(4);
    benchmark::DoNotOptimize(reg.slack());
  }
}
BENCHMARK(BM_PriorityRegisterShift);

void BM_CacheArrayAccess(benchmark::State& state) {
  mem::CacheArray cache(256 * 1024, 32, 4);
  util::Rng rng("bench.cache", 1);
  for (auto _ : state) {
    const mem::LineAddr line = rng.uniform_u64(16384);
    if (!cache.access(line).has_value()) {
      cache.insert(line, mem::Mesi::kExclusive);
    }
  }
}
BENCHMARK(BM_CacheArrayAccess);

void BM_ControllerStepIdle(benchmark::State& state) {
  core::ControllerParams params;
  core::SharedCacheController ctrl(params, 1);
  std::vector<core::ServicedRead> out;
  std::int64_t t = 0;
  for (auto _ : state) {
    ctrl.step(t++, out);
    out.clear();
  }
}
BENCHMARK(BM_ControllerStepIdle);

void BM_ControllerStepLoaded(benchmark::State& state) {
  core::ControllerParams params;
  core::SharedCacheController ctrl(params, 1);
  std::vector<core::ServicedRead> out;
  std::vector<bool> outstanding(16, false);
  std::int64_t t = 0;
  for (auto _ : state) {
    out.clear();
    ctrl.step(t, out);
    for (const auto& s : out) outstanding[s.core] = false;
    if (t % 5 == 0) {
      for (std::uint32_t c = 0; c < 16; ++c) {
        if (!outstanding[c]) {
          ctrl.submit_read(c, 5, t);
          outstanding[c] = true;
        }
      }
    }
    ++t;
  }
}
BENCHMARK(BM_ControllerStepLoaded);

void BM_MesiDirectoryAccess(benchmark::State& state) {
  mem::PrivateL1Params params;
  params.core_count = 16;
  mem::Backside backside{mem::BacksideParams{}};
  mem::PrivateL1System system(params);
  util::Rng rng("bench.mesi", 1);
  for (auto _ : state) {
    const auto core = static_cast<std::uint32_t>(rng.uniform_u64(16));
    const mem::Addr addr = 32 * rng.uniform_u64(4096);
    const auto type =
        rng.bernoulli(0.3) ? mem::AccessType::kStore : mem::AccessType::kLoad;
    benchmark::DoNotOptimize(system.access(core, addr, type, backside));
  }
}
BENCHMARK(BM_MesiDirectoryAccess);

void BM_WorkloadNextOp(benchmark::State& state) {
  const auto& spec = workload::benchmark("ocean");
  workload::ThreadWorkload thread(spec, 0, 16, 1000.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(thread.next());
  }
}
BENCHMARK(BM_WorkloadNextOp);

}  // namespace

BENCHMARK_MAIN();
