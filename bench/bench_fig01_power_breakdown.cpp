// Figure 1: power breakdown of the 64-core CMP at nominal voltage versus
// near-threshold (core/cache x leakage/dynamic).
//
// The paper's figure is a *static* full-activity breakdown (every core
// retiring at full rate), not a workload measurement, so this harness
// computes it analytically from the calibrated power model: core dynamic
// at one instruction per cycle, cache dynamic at the suite-average access
// rate, leakage from the structure models.
//
// Paper claims: at nominal Vdd dynamic dominates (~60% of chip power);
// at NT (0.4 V cores / 0.65 V SRAM caches) leakage dominates (~75%) with
// caches close to half of it.
#include <cstdio>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  bench::print_banner(
      "Figure 1 — CMP power breakdown, nominal vs near-threshold",
      "nominal: dynamic ~60%; NT: leakage dominates (paper: ~75%)",
      core::RunOptions{});

  struct Point {
    const char* label;
    core::ConfigId config;
  };
  const Point points[] = {
      {"Nominal (1.0V chip)", core::ConfigId::kHpSramCmp},
      {"Near-threshold (0.4V cores, 0.65V SRAM)", core::ConfigId::kPrSramNt},
  };

  util::TextTable table("Full-activity chip power shares");
  table.set_header({"operating point", "core dyn", "core leak", "cache dyn",
                    "cache leak", "total dynamic", "total leakage"});

  for (const Point& point : points) {
    const auto cfg = core::make_cluster_config(point.config,
                                               core::CacheSize::kMedium);
    // Average core frequency across the cluster's multipliers.
    double freq = 0.0;
    for (int m : cfg.multipliers) {
      freq += util::frequency_hz(cfg.clocking.core_period(m));
    }
    freq /= static_cast<double>(cfg.multipliers.size());

    const double n = cfg.cluster_cores;
    // One instruction per core cycle; data access every ~3 instructions
    // plus one fetch group every 8 (the suite-average access mix).
    const double instr_rate = n * freq;
    const double core_dyn = instr_rate * cfg.power.core_instruction_pj * 1e-12;
    const double core_leak = n * cfg.power.core_leakage_w;
    const double access_rate = instr_rate * (1.0 / 3.0 + 1.0 / 8.0);
    const double cache_dyn =
        access_rate * cfg.power.l1_read_pj * 1e-12 +
        0.05 * access_rate * cfg.power.l2_read_pj * 1e-12;
    const double cache_leak = cfg.power.l1_leakage_w +
                              cfg.power.l2_leakage_w + cfg.power.l3_leakage_w;
    const double total = core_dyn + core_leak + cache_dyn + cache_leak;
    auto share = [&](double part) {
      return util::fixed(100.0 * part / total, 1) + "%";
    };
    table.add_row({point.label, share(core_dyn), share(core_leak),
                   share(cache_dyn), share(cache_leak),
                   share(core_dyn + cache_dyn),
                   share(core_leak + cache_leak)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference: nominal ~60%% dynamic (caches ~28%% of the chip);\n"
      "NT ~75%% leakage with caches close to half of it. This model\n"
      "reproduces the dynamic->leakage inversion; the cache *share* is\n"
      "smaller than the paper's because the Fig. 9 energy-ratio\n"
      "calibration pins the core/cache balance (see EXPERIMENTS.md).\n");
  return 0;
}
