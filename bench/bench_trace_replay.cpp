// Trace-frontend microbench (not a paper artifact): decode throughput of
// the binary trace format and end-to-end replay overhead vs the live
// synthetic generator.
//
// Three measurements over one recorded benchmark:
//   record      drain the generator into the trace file (ops/sec, MB/s)
//   decode      load_trace: file -> in-memory op streams (ops/sec, MB/s)
//   replay      full simulation from the trace, compared to the live run
// The replay row asserts bit-identical results and reports the overhead
// ratio; the trace frontend is required to stay within ~10% of live
// (docs/traces.md), which this binary makes measurable in BENCH history.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "trace/capture.hpp"
#include "trace/reader.hpp"
#include "trace/replay.hpp"
#include "util/require.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double file_size_mb(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  return static_cast<double>(is.tellg()) / (1024.0 * 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Trace capture/replay throughput (not a paper artifact)",
      "trace-driven frontend reproduces live runs with <=10% overhead",
      options);

  const std::string benchmark = "radix";
  const std::uint32_t threads = options.cluster_cores;
  const std::string path = "bench_trace_replay.rspt";

  // Record: generator -> file.
  auto start = std::chrono::steady_clock::now();
  const trace::RecordStats stats = trace::record_benchmark(
      workload::benchmark(benchmark), threads, options.workload_scale,
      options.seed, path);
  const double record_wall = seconds_since(start);
  const double total_records =
      static_cast<double>(stats.ops + stats.ifetches);
  const double mb = file_size_mb(path);

  // Decode: file -> in-memory streams.
  start = std::chrono::steady_clock::now();
  const trace::TraceData data = trace::load_trace(path);
  const double decode_wall = seconds_since(start);
  RESPIN_REQUIRE(data.total_ops() == stats.ops,
                 "decode must see every recorded op");

  // Replay vs live, averaged over a few repetitions to steady the ratio.
  constexpr int kReps = 3;
  trace::ReplayOptions replay_options;
  replay_options.size = options.size;
  replay_options.cycle_skip = options.cycle_skip;
  const core::ConfigId config = core::ConfigId::kShSttCc;

  double live_wall = 0.0, replay_wall = 0.0;
  core::SimResult live, replay;
  for (int rep = 0; rep < kReps; ++rep) {
    start = std::chrono::steady_clock::now();
    live = trace::live_run_for(config, data, replay_options);
    live_wall += seconds_since(start);

    start = std::chrono::steady_clock::now();
    replay = trace::replay_trace(config, data, replay_options);
    replay_wall += seconds_since(start);
  }
  const std::string diff = trace::diff_results(live, replay);
  RESPIN_REQUIRE(diff.empty(), "replay must be bit-identical to live");

  util::TextTable table("Trace frontend throughput");
  table.set_header({"stage", "wall (s)", "Mrecords/sec", "MB/s"});
  table.add_row({"record", util::fixed(record_wall, 3),
                 util::fixed(total_records / record_wall * 1e-6, 2),
                 util::fixed(mb / record_wall, 1)});
  table.add_row({"decode", util::fixed(decode_wall, 3),
                 util::fixed(total_records / decode_wall * 1e-6, 2),
                 util::fixed(mb / decode_wall, 1)});
  std::printf("%s\n", table.render().c_str());

  const double overhead = replay_wall / live_wall - 1.0;
  std::printf(
      "%s x%u threads, scale %g: %.2f MB trace, %llu ops + %llu ifetches.\n"
      "Replay %.3f s vs live %.3f s over %d reps on %s: %+.1f%% overhead "
      "(budget +10%%).\nReplay is bit-identical to the live run.\n",
      benchmark.c_str(), threads, options.workload_scale, mb,
      static_cast<unsigned long long>(stats.ops),
      static_cast<unsigned long long>(stats.ifetches), replay_wall / kReps,
      live_wall / kReps, kReps, core::to_string(config), overhead * 100.0);

  std::remove(path.c_str());

  // Record/decode rates are hardware-dependent (ungated); the replay
  // overhead ratio is measured against a live run in the same process, so
  // it is stable across machines and gated. The +10% budget lives in the
  // committed baseline: baseline * 1.10 is the failure threshold.
  bench::export_bench_json(
      "bench_trace_replay",
      {{"record_mrecords_per_sec", total_records / record_wall * 1e-6,
        "Mrecords/s", "higher", false},
       {"decode_mrecords_per_sec", total_records / decode_wall * 1e-6,
        "Mrecords/s", "higher", false},
       {"trace_mb", mb, "MB", "", false},
       {"replay_overhead_ratio", replay_wall / live_wall, "ratio", "lower",
        true}});
  return 0;
}
