// Figure 12: dynamic core consolidation trace of radix — active cores over
// time for the greedy hardware governor (SH-STT-CC) and the oracle.
//
// Paper claims: the greedy trace tracks the oracle closely; radix saves
// 48% (CC) vs 50% (oracle) relative to the PR-SRAM-NT baseline.
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

namespace {

void print_trace(const char* label, const respin::core::SimResult& r) {
  std::printf("%s (avg %.1f active cores, range %u..%u):\n", label,
              r.avg_active_cores, r.min_active_cores, r.max_active_cores);
  // Downsample the trace to at most 60 rows.
  const std::size_t stride = std::max<std::size_t>(1, r.trace.size() / 60);
  for (std::size_t i = 0; i < r.trace.size(); i += stride) {
    const auto& s = r.trace[i];
    std::printf("  %7.2f us |%-16s| %2u\n",
                static_cast<double>(s.cycle) * 0.4e-3,
                respin::util::ascii_bar(s.active_cores, 16, 16).c_str(),
                s.active_cores);
  }
}

}  // namespace

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner("Figure 12 — consolidation trace of radix",
                      "greedy tracks the oracle; ~48% vs ~50% energy saving",
                      options);

  const core::SimResult baseline =
      core::run_experiment(core::ConfigId::kPrSramNt, "radix", options);
  const core::SimResult greedy =
      core::run_experiment(core::ConfigId::kShSttCc, "radix", options);
  const core::SimResult oracle =
      core::run_experiment(core::ConfigId::kShSttCcOracle, "radix", options);

  print_trace("SH-STT-CC (greedy)", greedy);
  std::printf("\n");
  print_trace("SH-STT-CC-Oracle", oracle);

  std::printf(
      "\nEnergy vs PR-SRAM-NT: greedy %s, oracle %s "
      "(paper: -48%% and -50%%).\n",
      util::percent(greedy.energy.total() / baseline.energy.total() - 1.0)
          .c_str(),
      util::percent(oracle.energy.total() / baseline.energy.total() - 1.0)
          .c_str());
  return 0;
}
