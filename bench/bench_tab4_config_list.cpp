// Table IV: the architecture configurations used in the evaluation,
// regenerated from the configuration registry.
#include <cstdio>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  bench::print_banner("Table IV — architecture configurations",
                      "eight named configurations from baseline to SH-STT-CC",
                      core::RunOptions{});

  util::TextTable table("Configuration registry");
  table.set_header({"name", "L1 org", "cache tech", "cache Vdd", "core Vdd",
                    "consolidation"});
  for (core::ConfigId id : core::all_config_ids()) {
    const auto cfg = core::make_cluster_config(id, core::CacheSize::kMedium);
    const char* governor = "-";
    switch (cfg.governor) {
      case core::GovernorKind::kNone:
        governor = "-";
        break;
      case core::GovernorKind::kGreedy:
        governor = "greedy (HW)";
        break;
      case core::GovernorKind::kOracle:
        governor = "oracle";
        break;
      case core::GovernorKind::kOs:
        governor = "OS, coarse epochs";
        break;
    }
    table.add_row({cfg.name, cfg.shared_l1 ? "shared" : "private",
                   nvsim::to_string(cfg.cache_tech),
                   util::fixed(cfg.cache_vdd, 2) + "V",
                   util::fixed(cfg.core_vdd, 2) + "V", governor});
  }
  std::printf("%s\n", table.render().c_str());
  return 0;
}
