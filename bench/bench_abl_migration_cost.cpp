// Ablation: virtual-core migration cost sensitivity (paper §III.D).
//
// The paper enumerates the consolidation overheads — register-file
// transfer, architectural-state rebuild, voltage-stabilization stalls —
// and claims they are small at the chosen consolidation interval. This
// sweep scales the per-migration cost from free to 16x the default and
// reports the effect on SH-STT-CC energy.
#include <cstdio>

#include "bench_common.hpp"
#include "core/cluster_sim.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Ablation — virtual-core migration cost",
      "consolidation overheads stay small at the paper's interval (§III.D)",
      options);

  const double base_energy =
      core::run_experiment(core::ConfigId::kPrSramNt, "radix", options)
          .energy.total();

  util::TextTable table("radix under SH-STT-CC vs migration cost");
  table.set_header({"migration (core cycles)", "power-on stall", "avg cores",
                    "energy vs baseline"});

  for (std::uint32_t scale : {0u, 1u, 4u, 16u}) {
    core::ClusterConfig config = core::make_cluster_config(
        core::ConfigId::kShSttCc, options.size, options.cluster_cores,
        options.seed);
    config.core_timing.migration_cycles = 50 * scale;
    config.core_timing.power_on_stall_cycles = 10 * std::max(1u, scale);
    core::SimParams params;
    params.workload_scale = options.workload_scale;
    params.seed = options.seed;
    core::ClusterSim sim(config, workload::benchmark("radix"), params);
    sim.run();
    const core::SimResult r = sim.result();
    bench::export_metrics(r);
    table.add_row({std::to_string(config.core_timing.migration_cycles),
                   std::to_string(config.core_timing.power_on_stall_cycles),
                   util::fixed(r.avg_active_cores, 1),
                   util::percent(r.energy.total() / base_energy - 1.0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Because the cluster-shared L1 keeps every thread's working set warm\n"
      "across migrations, even a 16x migration cost only mildly erodes the\n"
      "consolidation savings — the paper's key enabling observation.\n");
  return 0;
}
