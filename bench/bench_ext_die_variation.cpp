// Extension study: die-to-die process variation.
//
// The paper models within-die variation (VARIUS) and argues for per-core
// clock multipliers over chip-wide worst-case clocking. This extension
// quantifies how much the *die lottery* moves Respin's results: the same
// SH-STT design is instantiated on several sampled dies and the spread of
// performance and energy is reported, along with each die's multiplier
// mix.
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions base = bench::default_options();
  bench::print_banner(
      "Extension — die-to-die variation sensitivity",
      "per-core multipliers absorb most of the frequency lottery",
      base);

  util::TextTable table("SH-STT across sampled dies (ocean + raytrace)");
  table.set_header({"die seed", "multiplier mix (1.6/2.0/2.4 ns)",
                    "time (ms)", "energy (mJ)"});

  util::RunningStat time_stat;
  util::RunningStat energy_stat;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    core::RunOptions options = base;
    options.seed = seed;
    const auto cfg = core::make_cluster_config(
        core::ConfigId::kShStt, options.size, options.cluster_cores, seed);
    int mix[7] = {};
    for (int m : cfg.multipliers) ++mix[m];

    double seconds = 0.0;
    double energy = 0.0;
    for (const char* bench : {"ocean", "raytrace"}) {
      const core::SimResult r =
          core::run_experiment(core::ConfigId::kShStt, bench, options);
      bench::export_metrics(r);
      seconds += r.seconds;
      energy += r.energy.total();
    }
    time_stat.add(seconds);
    energy_stat.add(energy);
    table.add_row({std::to_string(seed),
                   std::to_string(mix[4]) + " / " + std::to_string(mix[5]) +
                       " / " + std::to_string(mix[6]),
                   util::fixed(seconds * 1e3, 3),
                   util::fixed(energy * 1e-9, 1)});
  }
  table.add_row({"spread", "-",
                 util::percent(time_stat.max() / time_stat.min() - 1.0),
                 util::percent(energy_stat.max() / energy_stat.min() - 1.0)});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Even though per-core maximum frequencies spread by ~2x within a\n"
      "die, quantized per-core multipliers keep die-to-die runtime and\n"
      "energy within a few percent — the cluster's shared cache is clocked\n"
      "by the (stable) array, not by the (variable) logic.\n");
  return 0;
}
