// Serving-layer micro-benchmark (not a paper artifact): what the daemon
// adds on top of a raw simulation. Three costs bound the serving hot
// path, and each gets a scenario:
//
//   cache hit    handle_line() on an already-cached key — parse request,
//                canonical key, LRU lookup, serialize result. This is the
//                steady-state cost of a duplicate-heavy client, and the
//                reason the cache exists: it must be orders of magnitude
//                cheaper than simulating.
//   serde        result_to_json -> dump -> parse -> result_from_json
//                round-trips of a real SimResult (store appends and loads
//                pay this per record).
//   coalesced    N concurrent identical requests resolved by one
//                simulation (single-flight) — the dedupe win.
//
// `--smoke` shrinks the iteration counts so the sanitizer CI jobs can run
// the whole binary as a ctest; other flags go to bench_common (--json
// writes BENCH_serve.json for the perf gate).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/serde.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"

namespace {

using namespace respin;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::init_obs(static_cast<int>(passthrough.size()), passthrough.data());

  const core::RunOptions options = bench::default_options();
  bench::print_banner("serve: daemon overhead microbenchmark",
                      "serving adds cache/serde overhead on top of the "
                      "simulator; duplicates must be near-free",
                      options);

  const int hit_iters = smoke ? 200 : 20000;
  const int serde_iters = smoke ? 50 : 2000;
  const int waiters = 8;

  serve::ServerConfig config;
  serve::Server server(config);
  const std::string line =
      "{\"op\":\"run\",\"config\":\"SH-STT\",\"benchmark\":\"ocean\","
      "\"scale\":0.05}";

  // Cold request: one real simulation, which also warms the cache.
  auto start = std::chrono::steady_clock::now();
  server.handle_line(line);
  const double sim_seconds = seconds_since(start);

  // Steady state: every request is a cache hit.
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < hit_iters; ++i) server.handle_line(line);
  const double hit_seconds = seconds_since(start);
  const double hits_per_sec = hit_iters / hit_seconds;

  // Serde round-trip of the simulated result.
  const core::SimResult result = core::result_from_json(
      *obs::json::parse(server.handle_line(line)).find("result"));
  start = std::chrono::steady_clock::now();
  std::uint64_t guard = 0;
  for (int i = 0; i < serde_iters; ++i) {
    const std::string text = core::result_to_json(result).dump();
    guard += core::result_from_json(obs::json::parse(text)).cycles;
  }
  const double serde_seconds = seconds_since(start);
  const double serde_per_sec = serde_iters / serde_seconds;

  // Single-flight: N threads ask for one uncached key; one simulation.
  const std::string cold_line =
      "{\"op\":\"run\",\"config\":\"SH-STT\",\"benchmark\":\"radix\","
      "\"scale\":0.05}";
  start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int i = 0; i < waiters; ++i) {
    clients.emplace_back([&] { server.handle_line(cold_line); });
  }
  for (std::thread& t : clients) t.join();
  const double coalesced_seconds = seconds_since(start);

  std::printf("cold simulation:     %10.3f ms\n", sim_seconds * 1e3);
  std::printf("cache hit:           %10.3f us  (%.0f hits/sec, %.0fx "
              "cheaper than simulating)\n",
              hit_seconds / hit_iters * 1e6, hits_per_sec,
              sim_seconds / (hit_seconds / hit_iters));
  std::printf("result serde trip:   %10.3f us  (%.0f round-trips/sec)\n",
              serde_seconds / serde_iters * 1e6, serde_per_sec);
  std::printf("coalesced %d-of-1:    %10.3f ms  (%d waiters, 1 simulation, "
              "guard %llu)\n",
              waiters, coalesced_seconds * 1e3, waiters,
              static_cast<unsigned long long>(guard % 1000));

  const obs::CounterSet counters = server.counters();
  const double* sims = counters.find("serve.sims_run");
  const double* coalesced = counters.find("serve.coalesced");
  std::printf("counters: sims_run %.0f, cache_hits %.0f, coalesced %.0f\n",
              sims != nullptr ? *sims : -1.0,
              *counters.find("serve.cache_hits"),
              coalesced != nullptr ? *coalesced : -1.0);

  if (bench::bench_json_enabled()) {
    bench::export_bench_json(
        "serve",
        {{"cache_hits_per_sec", hits_per_sec, "hits/sec", "higher", false},
         {"serde_round_trips_per_sec", serde_per_sec, "trips/sec", "higher",
          false},
         {"cache_speedup_vs_sim",
          sim_seconds / (hit_seconds / hit_iters), "x", "higher", false}});
  }
  return 0;
}
