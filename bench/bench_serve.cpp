// Serving-layer micro-benchmark (not a paper artifact): what the daemon
// adds on top of a raw simulation. Three costs bound the serving hot
// path, and each gets a scenario:
//
//   cache hit    handle_line() on an already-cached key — parse request,
//                canonical key, LRU lookup, serialize result. This is the
//                steady-state cost of a duplicate-heavy client, and the
//                reason the cache exists: it must be orders of magnitude
//                cheaper than simulating.
//   serde        result_to_json -> dump -> parse -> result_from_json
//                round-trips of a real SimResult (store appends and loads
//                pay this per record).
//   coalesced    N concurrent identical requests resolved by one
//                simulation (single-flight) — the dedupe win.
//   multi-client K concurrent connections hammering cached keys:
//                per-request latency p50/p99 and aggregate throughput —
//                the contention cost of the handle_line() lock paths.
//
// `--clients <n>` sets the concurrent-connection count (default 4);
// `--smoke` shrinks the iteration counts so the sanitizer CI jobs can run
// the whole binary as a ctest; other flags go to bench_common (--json
// writes BENCH_serve.json for the perf gate).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/serde.hpp"
#include "obs/json.hpp"
#include "serve/server.hpp"

namespace {

using namespace respin;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int client_count = 4;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      client_count = std::atoi(argv[++i]);
      if (client_count < 1) client_count = 1;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::init_obs(static_cast<int>(passthrough.size()), passthrough.data());

  const core::RunOptions options = bench::default_options();
  bench::print_banner("serve: daemon overhead microbenchmark",
                      "serving adds cache/serde overhead on top of the "
                      "simulator; duplicates must be near-free",
                      options);

  const int hit_iters = smoke ? 200 : 20000;
  const int serde_iters = smoke ? 50 : 2000;
  const int waiters = 8;

  serve::ServerConfig config;
  serve::Server server(config);
  const std::string line =
      "{\"op\":\"run\",\"config\":\"SH-STT\",\"benchmark\":\"ocean\","
      "\"scale\":0.05}";

  // Cold request: one real simulation, which also warms the cache.
  auto start = std::chrono::steady_clock::now();
  server.handle_line(line);
  const double sim_seconds = seconds_since(start);

  // Steady state: every request is a cache hit.
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < hit_iters; ++i) server.handle_line(line);
  const double hit_seconds = seconds_since(start);
  const double hits_per_sec = hit_iters / hit_seconds;

  // Serde round-trip of the simulated result.
  const core::SimResult result = core::result_from_json(
      *obs::json::parse(server.handle_line(line)).find("result"));
  start = std::chrono::steady_clock::now();
  std::uint64_t guard = 0;
  for (int i = 0; i < serde_iters; ++i) {
    const std::string text = core::result_to_json(result).dump();
    guard += core::result_from_json(obs::json::parse(text)).cycles;
  }
  const double serde_seconds = seconds_since(start);
  const double serde_per_sec = serde_iters / serde_seconds;

  // Single-flight: N threads ask for one uncached key; one simulation.
  const std::string cold_line =
      "{\"op\":\"run\",\"config\":\"SH-STT\",\"benchmark\":\"radix\","
      "\"scale\":0.05}";
  start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int i = 0; i < waiters; ++i) {
    clients.emplace_back([&] { server.handle_line(cold_line); });
  }
  for (std::thread& t : clients) t.join();
  const double coalesced_seconds = seconds_since(start);

  // Multi-client: K connections issuing cached requests concurrently,
  // per-request latency sampled client-side. The worker rotates over a
  // few warmed keys so the scenario measures lock contention on the
  // cache path, not simulation.
  const int per_client = smoke ? 50 : 2000;
  const std::vector<std::string> warm_lines = {
      line,
      "{\"op\":\"run\",\"config\":\"PR-SRAM-NT\",\"benchmark\":\"ocean\","
      "\"scale\":0.05}",
      "{\"op\":\"run\",\"config\":\"SH-HYBRID-4+12\",\"benchmark\":\"ocean\","
      "\"scale\":0.05}"};
  for (const std::string& warm : warm_lines) server.handle_line(warm);
  std::vector<std::vector<double>> latencies_us(
      static_cast<std::size_t>(client_count));
  start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> multi;
    for (int c = 0; c < client_count; ++c) {
      multi.emplace_back([&, c] {
        std::vector<double>& mine = latencies_us[static_cast<std::size_t>(c)];
        mine.reserve(static_cast<std::size_t>(per_client));
        for (int i = 0; i < per_client; ++i) {
          const auto t0 = std::chrono::steady_clock::now();
          server.handle_line(
              warm_lines[static_cast<std::size_t>(i + c) % warm_lines.size()]);
          mine.push_back(seconds_since(t0) * 1e6);
        }
      });
    }
    for (std::thread& t : multi) t.join();
  }
  const double multi_seconds = seconds_since(start);
  std::vector<double> all_latencies;
  for (const std::vector<double>& mine : latencies_us) {
    all_latencies.insert(all_latencies.end(), mine.begin(), mine.end());
  }
  const double multi_requests =
      static_cast<double>(client_count) * per_client;
  const double multi_rps = multi_requests / multi_seconds;
  const double p50_us = bench::percentile(all_latencies, 50.0);
  const double p99_us = bench::percentile(all_latencies, 99.0);

  std::printf("cold simulation:     %10.3f ms\n", sim_seconds * 1e3);
  std::printf("cache hit:           %10.3f us  (%.0f hits/sec, %.0fx "
              "cheaper than simulating)\n",
              hit_seconds / hit_iters * 1e6, hits_per_sec,
              sim_seconds / (hit_seconds / hit_iters));
  std::printf("result serde trip:   %10.3f us  (%.0f round-trips/sec)\n",
              serde_seconds / serde_iters * 1e6, serde_per_sec);
  std::printf("coalesced %d-of-1:    %10.3f ms  (%d waiters, 1 simulation, "
              "guard %llu)\n",
              waiters, coalesced_seconds * 1e3, waiters,
              static_cast<unsigned long long>(guard % 1000));
  std::printf("multi-client x%d:     %10.0f req/sec  (p50 %.1f us, p99 %.1f "
              "us over %.0f requests)\n",
              client_count, multi_rps, p50_us, p99_us, multi_requests);

  const obs::CounterSet counters = server.counters();
  const double* sims = counters.find("serve.sims_run");
  const double* coalesced = counters.find("serve.coalesced");
  std::printf("counters: sims_run %.0f, cache_hits %.0f, coalesced %.0f\n",
              sims != nullptr ? *sims : -1.0,
              *counters.find("serve.cache_hits"),
              coalesced != nullptr ? *coalesced : -1.0);

  if (bench::bench_json_enabled()) {
    bench::export_bench_json(
        "serve",
        {{"cache_hits_per_sec", hits_per_sec, "hits/sec", "higher", false},
         {"serde_round_trips_per_sec", serde_per_sec, "trips/sec", "higher",
          false},
         {"cache_speedup_vs_sim",
          sim_seconds / (hit_seconds / hit_iters), "x", "higher", false},
         {"multi_client_requests_per_sec", multi_rps, "req/s", "higher",
          false},
         {"multi_client_p50_us", p50_us, "us", "lower", false},
         {"multi_client_p99_us", p99_us, "us", "lower", false}});
  }
  return 0;
}
