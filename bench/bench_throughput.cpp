// Host-throughput microbench for the simulator itself (not a paper
// artifact): measures simulations per second of host wall-clock so
// changes to simulator speed show up in BENCH_*.json history.
//
// Three modes over the same (config x benchmark) grid:
//   serial/no-skip   one thread, cycle-by-cycle clock (the reference path)
//   serial/skip      one thread, event-driven clock
//   parallel/skip    all host threads, event-driven clock
// All three produce bit-identical results (asserted here on total cycles);
// only the wall-clock differs.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "exec/parallel.hpp"
#include "util/require.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

namespace {

struct Mode {
  const char* name;
  std::size_t threads;  // 0 = all host threads
  bool cycle_skip;
};

}  // namespace

int main() {
  using namespace respin;
  core::RunOptions options = bench::default_options();
  // A quarter of the usual workload keeps the three-mode sweep quick while
  // still exercising every benchmark's phase structure.
  options.workload_scale *= 0.25;
  bench::print_banner(
      "Simulator throughput (host sims/sec; not a paper artifact)",
      "tracks simulator speed: parallel fan-out + event-driven clock",
      options);

  const std::vector<core::ConfigId> configs = {core::ConfigId::kPrSramNt,
                                               core::ConfigId::kShStt};
  const std::vector<std::string> benches = workload::benchmark_names();
  const std::size_t sims = configs.size() * benches.size();

  const Mode modes[] = {
      {"serial/no-skip", 1, false},
      {"serial/skip", 1, true},
      {"parallel/skip", 0, true},
  };

  util::TextTable table("Host throughput (higher is better)");
  table.set_header({"mode", "threads", "wall (s)", "sims/sec", "speedup"});

  double reference_wall = 0.0;
  std::int64_t reference_cycles = -1;
  for (const Mode& mode : modes) {
    exec::set_thread_count(mode.threads);
    options.cycle_skip = mode.cycle_skip;
    const auto start = std::chrono::steady_clock::now();
    const auto matrix = core::run_matrix(configs, benches, options);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::int64_t total_cycles = 0;
    for (const auto& row : matrix) {
      for (const core::SimResult& r : row) total_cycles += r.cycles;
    }
    if (reference_cycles < 0) {
      reference_cycles = total_cycles;
      reference_wall = wall;
    }
    RESPIN_REQUIRE(total_cycles == reference_cycles,
                   "throughput modes must simulate identical work");
    table.add_row({mode.name, std::to_string(exec::thread_count()),
                   util::fixed(wall, 2),
                   util::fixed(static_cast<double>(sims) / wall, 2),
                   util::fixed(reference_wall / wall, 2)});
  }
  exec::set_thread_count(0);

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Grid: %zu configs x %zu benchmarks = %zu cluster sims, %.2g simulated\n"
      "Gcycles total. speedup is vs serial/no-skip (the seed's path).\n",
      configs.size(), benches.size(), sims,
      static_cast<double>(reference_cycles) * 1e-9);
  return 0;
}
