// Host-throughput microbench for the simulator itself (not a paper
// artifact): measures simulations per second of host wall-clock so
// changes to simulator speed show up in BENCH_*.json history.
//
// Four modes over the same (config x benchmark) grid:
//   serial/no-skip   one thread, cycle-by-cycle clock (the reference path)
//   serial/skip      one thread, event-driven clock
//   parallel/skip    all host threads, event-driven clock
//   parallel/trace   parallel/skip with a live trace sink attached
// All four produce bit-identical results (asserted here on total cycles);
// only the wall-clock differs. The trace mode doubles as the
// observability-overhead guard: with no sink attached the probes must be
// free, and with a sink attached the simulated work must be unchanged.
#include <cctype>
#include <chrono>
#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "exec/parallel.hpp"
#include "obs/obs.hpp"
#include "util/require.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

// Compile-time half of the zero-overhead guarantee: with the probes
// compiled out (RESPIN_OBS=OFF), ScopedProbe must be an empty literal type
// the optimizer can erase entirely.
static_assert(std::is_empty_v<respin::obs::BasicScopedProbe<false>>,
              "disabled scoped probes must compile to nothing");
static_assert(
    std::is_trivially_destructible_v<respin::obs::BasicScopedProbe<false>>,
    "disabled scoped probes must compile to nothing");

namespace {

struct Mode {
  const char* name;
  const char* key;  // JSON-safe metric prefix
  std::size_t threads;  // 0 = all host threads
  bool cycle_skip;
  bool traced;
};

}  // namespace

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  core::RunOptions options = bench::default_options();
  // A quarter of the usual workload keeps the three-mode sweep quick while
  // still exercising every benchmark's phase structure.
  options.workload_scale *= 0.25;
  bench::print_banner(
      "Simulator throughput (host sims/sec; not a paper artifact)",
      "tracks simulator speed: parallel fan-out + event-driven clock",
      options);

  // One private-L1 config, one shared-L1 config, and the hybrid L1D (its
  // per-way class bookkeeping rides the hottest access path, so its cost
  // must show up in the throughput trajectory).
  const std::vector<core::ConfigId> configs = {core::ConfigId::kPrSramNt,
                                               core::ConfigId::kShStt,
                                               core::ConfigId::kShHybrid};
  const std::vector<std::string> benches = workload::benchmark_names();
  const std::size_t sims = configs.size() * benches.size();

  const Mode modes[] = {
      {"serial/no-skip", "serial_noskip", 1, false, false},
      {"serial/skip", "serial_skip", 1, true, false},
      {"parallel/skip", "parallel_skip", 0, true, false},
      {"parallel/trace", "parallel_trace", 0, true, true},
  };

  util::TextTable table("Host throughput (higher is better)");
  table.set_header({"mode", "threads", "wall (s)", "sims/sec", "speedup"});

  // The traced mode attaches a counting sink to every simulation and to
  // the exec pool's probes; the untraced modes run with options.trace as
  // configured (null unless --trace was given).
  obs::CountingSink trace_counter;
  obs::TraceSink* const untraced_sink = options.trace;

  double reference_wall = 0.0;
  std::int64_t reference_cycles = -1;
  std::vector<bench::JsonMetric> json;
  for (const Mode& mode : modes) {
    exec::set_thread_count(mode.threads);
    options.cycle_skip = mode.cycle_skip;
    options.trace = mode.traced ? &trace_counter : untraced_sink;
    if (mode.traced) obs::set_global_sink(&trace_counter);
    const auto start = std::chrono::steady_clock::now();
    const auto matrix = core::run_matrix(configs, benches, options);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::int64_t total_cycles = 0;
    for (const auto& row : matrix) {
      for (const core::SimResult& r : row) total_cycles += r.cycles;
    }
    if (reference_cycles < 0) {
      reference_cycles = total_cycles;
      reference_wall = wall;
    }
    RESPIN_REQUIRE(total_cycles == reference_cycles,
                   "throughput modes (including tracing) must simulate "
                   "identical work");
    table.add_row({mode.name, std::to_string(exec::thread_count()),
                   util::fixed(wall, 2),
                   util::fixed(static_cast<double>(sims) / wall, 2),
                   util::fixed(reference_wall / wall, 2)});
    const std::string key = mode.key;
    // Absolute rates are hardware-dependent (informational in CI, gated
    // only by a local baseline run on the same machine); the speedup
    // ratios below track simulator behaviour and are gated everywhere.
    json.push_back({key + "_wall_seconds", wall, "s", "lower", false});
    json.push_back({key + "_sims_per_sec", static_cast<double>(sims) / wall,
                    "sims/s", "higher", false});
    json.push_back({key + "_mcycles_per_sec",
                    static_cast<double>(reference_cycles) / wall * 1e-6,
                    "Mcycles/s", "higher", false});
    // Parallel speedups scale with the host core count, so only the
    // serial skip/no-skip ratio is comparable across machines.
    json.push_back({key + "_speedup_vs_noskip", reference_wall / wall,
                    "ratio", "higher",
                    mode.cycle_skip && mode.threads == 1});
    if (mode.traced) obs::set_global_sink(untraced_sink);
  }
  exec::set_thread_count(0);
  RESPIN_REQUIRE(trace_counter.count() > 0,
                 "the traced mode must have emitted events");

  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Grid: %zu configs x %zu benchmarks = %zu cluster sims, %.2g simulated\n"
      "Gcycles total. speedup is vs serial/no-skip (the seed's path).\n"
      "Tracing guard: probes %s; traced mode emitted %llu events and\n"
      "reproduced the reference cycle count exactly.\n",
      configs.size(), benches.size(), sims,
      static_cast<double>(reference_cycles) * 1e-9,
      respin::obs::kCompiledIn ? "compiled in" : "compiled out",
      static_cast<unsigned long long>(trace_counter.count()));
  json.push_back({"total_gcycles",
                  static_cast<double>(reference_cycles) * 1e-9, "Gcycles",
                  "", false});

  // Per-config breakdown on the default path (serial/skip): Table IV rows
  // stress different subsystems (NT SRAM vs shared STT), so the trajectory
  // records each config's simulated-cycles-per-host-second separately.
  if (bench::bench_json_enabled()) {
    exec::set_thread_count(1);
    options.cycle_skip = true;
    options.trace = untraced_sink;
    for (const core::ConfigId config : configs) {
      const auto start = std::chrono::steady_clock::now();
      const auto row = core::run_matrix({config}, benches, options);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      std::int64_t cycles = 0;
      for (const core::SimResult& r : row.front()) cycles += r.cycles;
      std::string key = core::to_string(config);
      for (char& c : key) {
        // Config names carry '-' and '+' ("SH-HYBRID-4+12"); JSON metric
        // keys stay [a-z0-9_].
        c = std::isalnum(static_cast<unsigned char>(c))
                ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                : '_';
      }
      json.push_back({"config_" + key + "_wall_seconds", wall, "s", "lower",
                      false});
      json.push_back({"config_" + key + "_mcycles_per_sec",
                      static_cast<double>(cycles) / wall * 1e-6, "Mcycles/s",
                      "higher", false});
    }
    exec::set_thread_count(0);
  }
  bench::export_bench_json("bench_throughput", json);
  return 0;
}
