// Table I: summary of cache configurations, regenerated from the config
// layer (sizes, block sizes, associativities, ports).
#include <cstdio>

#include "bench_common.hpp"
#include "core/config.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner("Table I — cache configuration summary",
                      "L1 16KB private / 256KB shared, L2 8-32MB, L3 24-96MB",
                      options);

  util::TextTable table("Cache hierarchy (per paper Table I)");
  table.set_header(
      {"level", "size (small/medium/large)", "block", "assoc", "rd/wr ports"});

  const auto shared =
      core::make_cluster_config(core::ConfigId::kShStt, core::CacheSize::kMedium);
  const auto priv =
      core::make_cluster_config(core::ConfigId::kPrSramNt, core::CacheSize::kMedium);

  auto kb = [](std::uint64_t bytes) {
    return std::to_string(bytes / 1024) + "KB";
  };
  auto mb = [](std::uint64_t bytes) {
    return std::to_string(bytes >> 20) + "MB";
  };

  table.add_row({"L1I (private / shared w/i cluster)",
                 kb(priv.private_l1.l1i_capacity_bytes) + " / " +
                     kb(shared.l1_shared_capacity),
                 std::to_string(shared.l1_line_bytes) + "B",
                 std::to_string(shared.l1i_ways) + "-way", "1/1"});
  table.add_row({"L1D (private / shared w/i cluster)",
                 kb(priv.private_l1.l1d_capacity_bytes) + " / " +
                     kb(shared.l1_shared_capacity),
                 std::to_string(shared.l1_line_bytes) + "B",
                 std::to_string(shared.l1d_ways) + "-way", "1/1"});
  table.add_row({"L2 (shared w/i cluster, chip total)",
                 mb(core::chip_l2_bytes(core::CacheSize::kSmall)) + " / " +
                     mb(core::chip_l2_bytes(core::CacheSize::kMedium)) +
                     " / " + mb(core::chip_l2_bytes(core::CacheSize::kLarge)),
                 std::to_string(shared.backside.l2_line_bytes) + "B",
                 std::to_string(shared.backside.l2_ways) + "-way", "1/1"});
  table.add_row({"L3 (shared w/i chip)",
                 mb(core::chip_l3_bytes(core::CacheSize::kSmall)) + " / " +
                     mb(core::chip_l3_bytes(core::CacheSize::kMedium)) +
                     " / " + mb(core::chip_l3_bytes(core::CacheSize::kLarge)),
                 std::to_string(shared.backside.l3_line_bytes) + "B",
                 std::to_string(shared.backside.l3_ways) + "-way", "1/1"});
  std::printf("%s\n", table.render().c_str());
  return 0;
}
