// Figure 14: average number of active cores per cluster (with min/max
// whiskers) under SH-STT-CC for every benchmark.
//
// Paper claims: on average only ~10 of 16 cores stay active; most
// benchmarks exercise the full 16..4 dynamic range; radix never activates
// more than 11; blackscholes never drops below 6.
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Figure 14 — active cores per cluster under SH-STT-CC",
      "average ~10 of 16 cores active; wide per-benchmark dynamic range",
      options);

  util::TextTable table("Active physical cores (greedy consolidation)");
  table.set_header({"benchmark", "avg", "min", "max", "profile"});

  util::RunningStat avg_stat;
  for (const std::string& bench : workload::benchmark_names()) {
    const core::SimResult r =
        core::run_experiment(core::ConfigId::kShSttCc, bench, options);
    avg_stat.add(r.avg_active_cores);
    table.add_row({bench, util::fixed(r.avg_active_cores, 1),
                   std::to_string(r.min_active_cores),
                   std::to_string(r.max_active_cores),
                   util::ascii_bar(r.avg_active_cores, 16, 16)});
  }
  table.add_row({"suite mean", util::fixed(avg_stat.mean(), 1), "-", "-",
                 util::ascii_bar(avg_stat.mean(), 16, 16)});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference: suite average ~10/16 active; compute-bound codes\n"
      "(blackscholes, swaptions) consolidate least, memory-bound and\n"
      "imbalanced codes (radix, bodytrack, lu tails) consolidate deepest.\n");
  return 0;
}
