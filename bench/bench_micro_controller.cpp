// Controller micro-benchmark (not a paper artifact): priority aging and
// read-port arbitration in isolation, without the cluster around them.
// The shared-cache controller is the per-cache-cycle inner loop of every
// simulation, so its step/arbitrate/age throughput bounds simulator
// speed; this binary makes that cost visible in BENCH history and in the
// CI perf gate (scripts/bench_compare.py).
//
// Scenarios:
//   idle        step() with nothing pending (the skip-path floor)
//   loaded      16 cores re-submitting reads as fast as they are serviced
//   contended   4-cycle read occupancy: requests queue, priority registers
//               age and half-miss before service
//   round-robin the `contended` scenario under the ablation arbiter
//   store drain fills + stores saturating the 13-cycle STT write port
//   activity    next_activity_cycle() on a loaded controller (the owner's
//               event-driven clock calls this between every event)
//
// `--smoke` shrinks the iteration counts ~100x so the sanitizer CI jobs
// can run the full binary as a ctest; other flags go to bench_common
// (--json writes BENCH_micro_controller.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/shared_cache_controller.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace {

using namespace respin;

double timed(const std::function<void()>& body) {
  const auto start = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Steps `ctrl` for `steps` cache cycles with every core re-submitting a
// read as soon as its previous one is serviced. Returns serviced count.
std::uint64_t run_read_loop(core::SharedCacheController& ctrl,
                            std::int64_t steps, std::uint32_t cores,
                            std::uint32_t multiplier) {
  std::vector<core::ServicedRead> out;
  std::vector<bool> outstanding(cores, false);
  std::uint64_t serviced = 0;
  for (std::int64_t t = 0; t < steps; ++t) {
    out.clear();
    ctrl.step(t, out);
    serviced += out.size();
    for (const core::ServicedRead& s : out) outstanding[s.core] = false;
    if (t % multiplier == 0) {
      for (std::uint32_t c = 0; c < cores; ++c) {
        if (!outstanding[c]) {
          ctrl.submit_read(c, multiplier, t);
          outstanding[c] = true;
        }
      }
    }
  }
  return serviced;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::init_obs(static_cast<int>(passthrough.size()), passthrough.data());

  const std::int64_t kSteps = smoke ? 20'000 : 2'000'000;
  constexpr std::uint32_t kCores = 16;
  constexpr std::uint32_t kMultiplier = 4;  // NT cores at quarter speed.

  std::printf(
      "=== Respin micro-benchmark: shared-cache controller ===\n"
      "Priority aging + read-port arbitration in isolation (%lld steps%s).\n\n",
      static_cast<long long>(kSteps), smoke ? ", smoke" : "");

  util::TextTable table("Controller throughput (higher is better)");
  table.set_header({"scenario", "wall (s)", "Msteps/sec", "serviced"});
  std::vector<bench::JsonMetric> json;
  auto report = [&](const char* name, const char* key, double wall,
                    std::int64_t steps, std::uint64_t serviced) {
    const double msteps = static_cast<double>(steps) / wall * 1e-6;
    table.add_row({name, util::fixed(wall, 3), util::fixed(msteps, 1),
                   std::to_string(serviced)});
    json.push_back({std::string(key) + "_msteps_per_sec", msteps,
                    "Msteps/s", "higher", false});
    return msteps;
  };

  // Idle floor: nothing pending, step() must be near-free.
  {
    core::SharedCacheController ctrl(core::ControllerParams{}, 1);
    std::vector<core::ServicedRead> out;
    const double wall = timed([&] {
      for (std::int64_t t = 0; t < kSteps; ++t) ctrl.step(t, out);
    });
    RESPIN_REQUIRE(out.empty(), "idle controller must service nothing");
    report("idle", "idle", wall, kSteps, 0);
  }

  // Loaded: single-cycle read occupancy, all cores busy, port keeps up.
  {
    core::SharedCacheController ctrl(core::ControllerParams{}, 1);
    std::uint64_t serviced = 0;
    const double wall = timed(
        [&] { serviced = run_read_loop(ctrl, kSteps, kCores, kMultiplier); });
    RESPIN_REQUIRE(serviced > 0, "loaded run must service reads");
    report("loaded", "loaded", wall, kSteps, serviced);
  }

  // Contended: 4-cycle occupancy makes the port the bottleneck, so
  // requests wait across core windows — the priority-aging and half-miss
  // paths run every cycle.
  double contended_msteps = 0.0;
  {
    core::ControllerParams params;
    params.read_occupancy = 4;
    core::SharedCacheController ctrl(params, 1);
    std::uint64_t serviced = 0;
    const double wall = timed(
        [&] { serviced = run_read_loop(ctrl, kSteps, kCores, kMultiplier); });
    RESPIN_REQUIRE(ctrl.stats().half_misses > 0,
                   "contended run must age requests past their windows");
    contended_msteps = report("contended", "contended", wall, kSteps,
                              serviced);
  }

  // Same contention under the round-robin ablation arbiter: the ratio
  // below tracks what the priority machinery itself costs.
  double rr_msteps = 0.0;
  {
    core::ControllerParams params;
    params.read_occupancy = 4;
    params.arbitration = core::ArbitrationPolicy::kRoundRobin;
    core::SharedCacheController ctrl(params, 1);
    std::uint64_t serviced = 0;
    const double wall = timed(
        [&] { serviced = run_read_loop(ctrl, kSteps, kCores, kMultiplier); });
    rr_msteps = report("round-robin", "round_robin", wall, kSteps, serviced);
  }

  // Store drain: fills outrank stores for the 13-cycle STT write port.
  {
    core::SharedCacheController ctrl(core::ControllerParams{}, 1);
    std::vector<core::ServicedRead> out;
    std::uint64_t accepted = 0;
    const double wall = timed([&] {
      for (std::int64_t t = 0; t < kSteps; ++t) {
        if (ctrl.submit_store(t)) ++accepted;
        if (t % 64 == 0) ctrl.submit_fill(t);
        ctrl.step(t, out);
      }
    });
    RESPIN_REQUIRE(accepted > 0, "store drain must accept stores");
    report("store drain", "store_drain", wall, kSteps, accepted);
  }

  // next_activity_cycle() on a controller with a visible read, a queued
  // store and an in-flight arrival — the owner's clock calls this between
  // every event, so it must stay O(1).
  {
    core::SharedCacheController ctrl(core::ControllerParams{}, 1);
    std::vector<core::ServicedRead> out;
    ctrl.submit_read(0, kMultiplier, 0);
    ctrl.submit_store(0);
    ctrl.step(0, out);
    ctrl.submit_read(1, kMultiplier, 1);
    // volatile keeps the call from being hoisted out of the loop.
    volatile std::int64_t sink = 0;
    const double wall = timed([&] {
      for (std::int64_t t = 0; t < kSteps; ++t) {
        sink = sink ^ ctrl.next_activity_cycle(2);
      }
    });
    report("next_activity", "next_activity", wall, kSteps, 0);
  }

  std::printf("%s\n", table.render().c_str());
  const double priority_cost = rr_msteps / contended_msteps;
  std::printf(
      "Priority arbitration costs %.2fx round-robin under contention\n"
      "(gated: a regression here means the aging loop got slower).\n",
      priority_cost);
  json.push_back({"priority_over_rr_cost_ratio", priority_cost, "ratio",
                  "lower", !smoke});
  bench::export_bench_json("bench_micro_controller", json);
  return 0;
}
