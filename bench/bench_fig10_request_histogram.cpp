// Figure 10: distribution of the number of requests arriving at the
// shared DL1 per cache cycle (reads, writes, line fills).
//
// Paper claims (suite average): ~49% of cycles see no request, 21% one,
// 15% two, 9% three, 6% four or more.
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Figure 10 — requests arriving at the shared DL1 per cache cycle",
      "~49% idle cycles, ~21% one request, tail beyond four ~6%",
      options);

  const char* highlight[] = {"fft", "ocean", "radix", "raytrace",
                             "streamcluster"};

  util::TextTable table("Fraction of cache cycles by arrival count (SH-STT)");
  table.set_header({"benchmark", "0", "1", "2", "3", ">=4"});

  util::Histogram total(9);
  for (const std::string& bench : workload::benchmark_names()) {
    const core::SimResult r =
        core::run_experiment(core::ConfigId::kShStt, bench, options);
    bench::export_metrics(r);
    total.merge(r.dl1_arrivals);
    bool shown = false;
    for (const char* h : highlight) {
      if (bench == h) shown = true;
    }
    if (!shown) continue;
    const auto& hist = r.dl1_arrivals;
    double tail = 0.0;
    for (std::size_t b = 4; b < hist.bucket_count(); ++b) {
      tail += hist.fraction(b);
    }
    table.add_row({bench, util::fixed(100 * hist.fraction(0), 1) + "%",
                   util::fixed(100 * hist.fraction(1), 1) + "%",
                   util::fixed(100 * hist.fraction(2), 1) + "%",
                   util::fixed(100 * hist.fraction(3), 1) + "%",
                   util::fixed(100 * tail, 1) + "%"});
  }
  double tail = 0.0;
  for (std::size_t b = 4; b < total.bucket_count(); ++b) {
    tail += total.fraction(b);
  }
  table.add_row({"suite mean", util::fixed(100 * total.fraction(0), 1) + "%",
                 util::fixed(100 * total.fraction(1), 1) + "%",
                 util::fixed(100 * total.fraction(2), 1) + "%",
                 util::fixed(100 * total.fraction(3), 1) + "%",
                 util::fixed(100 * tail, 1) + "%"});
  std::printf("%s\n", table.render().c_str());

  std::printf("Suite-mean histogram:\n");
  for (std::size_t b = 0; b < 5; ++b) {
    const double f = b < 4 ? total.fraction(b) : tail;
    std::printf("  %s%zu | %-40s %5.1f%%\n", b < 4 ? " " : ">=", b,
                util::ascii_bar(f, 0.6).c_str(), 100 * f);
  }
  std::printf(
      "\nPaper reference: 49%% / 21%% / 15%% / 9%% / 6%%. Requests exceed\n"
      "the single read/write port in a minority of (fast) cache cycles,\n"
      "which the per-core slack absorbs.\n");
  return 0;
}
