#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "core/metrics.hpp"
#include "exec/thread_pool.hpp"
#include "obs/golden.hpp"
#include "obs/obs.hpp"
#include "util/env.hpp"
#include "workload/workload.hpp"

namespace respin::bench {
namespace {

// Observability destinations for this bench process. Configured once by
// init_obs (or lazily from RESPIN_TRACE / RESPIN_METRICS on the first
// default_options call); the trace writer must outlive every simulation,
// so both live for the whole process and flush at exit.
struct ObsState {
  std::ofstream trace_os;
  std::unique_ptr<obs::JsonlWriter> trace;
  std::string metrics_path;
  std::string json_path;
  std::vector<obs::MetricsRow> metric_rows;
  std::mutex mu;

  ~ObsState() {
    obs::set_global_sink(nullptr);
    flush_metrics();
  }

  void open_trace(const std::string& path) {
    trace_os.open(path);
    if (!trace_os) {
      std::fprintf(stderr, "bench: cannot open trace file %s\n", path.c_str());
      std::exit(2);
    }
    trace = std::make_unique<obs::JsonlWriter>(trace_os);
    obs::set_global_sink(trace.get());
  }

  void flush_metrics() {
    if (metrics_path.empty() || metric_rows.empty()) return;
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot open metrics file %s\n",
                   metrics_path.c_str());
      return;
    }
    obs::write_metrics_csv(out, metric_rows);
    std::fprintf(stderr, "bench: wrote %zu metric rows to %s\n",
                 metric_rows.size(), metrics_path.c_str());
    metric_rows.clear();
  }
};

ObsState& obs_state() {
  static ObsState state;
  return state;
}

// Lazily applies the RESPIN_TRACE / RESPIN_METRICS environment defaults so
// benches that predate init_obs still export when asked to.
ObsState& configured_obs_state() {
  static std::once_flag once;
  std::call_once(once, [] {
    ObsState& state = obs_state();
    if (!state.trace) {
      if (const char* path = std::getenv("RESPIN_TRACE");
          path != nullptr && *path != '\0') {
        state.open_trace(path);
      }
    }
    if (state.metrics_path.empty()) {
      if (const char* path = std::getenv("RESPIN_METRICS");
          path != nullptr && *path != '\0') {
        state.metrics_path = path;
      }
    }
    if (state.json_path.empty()) {
      if (const char* path = std::getenv("RESPIN_BENCH_JSON");
          path != nullptr && *path != '\0') {
        state.json_path = path;
      }
    }
  });
  return obs_state();
}

// JSON string escaping for the few provenance strings we embed (compiler
// version banners can contain quotes or backslashes on exotic toolchains).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

void init_obs(int argc, char** argv) {
  ObsState& state = obs_state();
  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--trace") == 0) {
      state.open_trace(need_value("--trace"));
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      state.metrics_path = need_value("--metrics");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      state.json_path = need_value("--json");
    } else {
      std::fprintf(stderr,
                   "bench: unknown option %s (supported: --trace <file>, "
                   "--metrics <file>, --json <file>)\n",
                   argv[i]);
      std::exit(2);
    }
  }
  configured_obs_state();
}

bool bench_json_enabled() { return !configured_obs_state().json_path.empty(); }

void export_bench_json(const std::string& bench,
                       const std::vector<JsonMetric>& metrics) {
  ObsState& state = configured_obs_state();
  if (state.json_path.empty()) return;
  std::ofstream out(state.json_path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot open json file %s\n",
                 state.json_path.c_str());
    std::exit(2);
  }
  char buf[64];
  out << "{\n  \"schema\": 1,\n  \"bench\": \"" << json_escape(bench)
      << "\",\n  \"toolchain\": {\n    \"compiler\": \""
#if defined(__clang__)
      << json_escape(__VERSION__)  // Clang's banner names itself.
#else
      << json_escape(std::string("gcc ") + __VERSION__)
#endif
      << "\",\n    \"cxx_standard\": "
      << static_cast<long>(__cplusplus) << ",\n    \"build\": \""
#ifdef NDEBUG
      << "Release"
#else
      << "Debug"
#endif
      << "\",\n    \"obs_probes\": "
      << (obs::kCompiledIn ? "true" : "false") << ",\n    \"sim_scale\": "
      << util::sim_scale() << "\n  },\n  \"metrics\": {\n";
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const JsonMetric& m = metrics[i];
    std::snprintf(buf, sizeof(buf), "%.10g", m.value);
    out << "    \"" << json_escape(m.name) << "\": {\"value\": " << buf
        << ", \"unit\": \"" << json_escape(m.unit) << "\", \"better\": \""
        << json_escape(m.better) << "\", \"gate\": "
        << (m.gate ? "true" : "false") << "}"
        << (i + 1 < metrics.size() ? ",\n" : "\n");
  }
  out << "  }\n}\n";
  std::fprintf(stderr, "bench: wrote %zu metrics to %s\n", metrics.size(),
               state.json_path.c_str());
}

void export_metrics(const std::vector<core::SimResult>& results) {
  ObsState& state = configured_obs_state();
  if (state.metrics_path.empty()) return;
  std::lock_guard<std::mutex> lock(state.mu);
  for (const core::SimResult& result : results) {
    state.metric_rows.push_back(core::metrics_row(result));
  }
}

void export_metrics(const core::SimResult& result) {
  export_metrics(std::vector<core::SimResult>{result});
}

core::RunOptions default_options() {
  ObsState& state = configured_obs_state();
  core::RunOptions options;
  options.workload_scale = static_cast<double>(util::sim_scale());
  options.trace = state.trace.get();
  return options;
}

void print_banner(const std::string& artifact, const std::string& paper_claim,
                  const core::RunOptions& options) {
  std::printf("=== Respin reproduction: %s ===\n", artifact.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf(
      "Setup: %u-core cluster, %s caches, workload scale %.1f "
      "(RESPIN_SIM_SCALE), %zu host threads (RESPIN_THREADS)\n\n",
      options.cluster_cores, core::to_string(options.size),
      options.workload_scale, exec::thread_count());
}

std::vector<std::vector<core::SimResult>> run_suite_matrix(
    const std::vector<core::ConfigId>& configs,
    const core::RunOptions& options) {
  std::vector<std::vector<core::SimResult>> rows =
      core::run_matrix(configs, workload::benchmark_names(), options);
  for (const std::vector<core::SimResult>& row : rows) export_metrics(row);
  return rows;
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double clamped = std::min(100.0, std::max(0.0, p));
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

std::string norm(double value) { return util::fixed(value, 3); }

}  // namespace respin::bench
