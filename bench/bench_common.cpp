#include "bench_common.hpp"

#include <cstdio>

#include "util/env.hpp"

namespace respin::bench {

core::RunOptions default_options() {
  core::RunOptions options;
  options.workload_scale = static_cast<double>(util::sim_scale());
  return options;
}

void print_banner(const std::string& artifact, const std::string& paper_claim,
                  const core::RunOptions& options) {
  std::printf("=== Respin reproduction: %s ===\n", artifact.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf(
      "Setup: %u-core cluster, %s caches, workload scale %.1f "
      "(RESPIN_SIM_SCALE)\n\n",
      options.cluster_cores, core::to_string(options.size),
      options.workload_scale);
}

std::string norm(double value) { return util::fixed(value, 3); }

}  // namespace respin::bench
