#include "bench_common.hpp"

#include <cstdio>

#include "exec/thread_pool.hpp"
#include "util/env.hpp"
#include "workload/workload.hpp"

namespace respin::bench {

core::RunOptions default_options() {
  core::RunOptions options;
  options.workload_scale = static_cast<double>(util::sim_scale());
  return options;
}

void print_banner(const std::string& artifact, const std::string& paper_claim,
                  const core::RunOptions& options) {
  std::printf("=== Respin reproduction: %s ===\n", artifact.c_str());
  std::printf("Paper: %s\n", paper_claim.c_str());
  std::printf(
      "Setup: %u-core cluster, %s caches, workload scale %.1f "
      "(RESPIN_SIM_SCALE), %zu host threads (RESPIN_THREADS)\n\n",
      options.cluster_cores, core::to_string(options.size),
      options.workload_scale, exec::thread_count());
}

std::vector<std::vector<core::SimResult>> run_suite_matrix(
    const std::vector<core::ConfigId>& configs,
    const core::RunOptions& options) {
  return core::run_matrix(configs, workload::benchmark_names(), options);
}

std::string norm(double value) { return util::fixed(value, 3); }

}  // namespace respin::bench
