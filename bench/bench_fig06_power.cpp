// Figure 6: total chip power of SH-STT vs PR-SRAM-NT and SH-SRAM-Nom for
// the small/medium/large cache configurations, with leakage/dynamic split.
//
// Paper claims: SH-STT reduces power by ~2.1% (small), ~12.9% (medium) and
// ~22.1% (large); SH-SRAM-Nom uses 22-65% more power than SH-STT.
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions base_options = bench::default_options();
  bench::print_banner(
      "Figure 6 — chip power by cache size class",
      "SH-STT saves ~2.1% / 12.9% / 22.1% vs PR-SRAM-NT (small/med/large)",
      base_options);

  util::TextTable table("Average chip power (suite mean, one cluster x4)");
  table.set_header({"cache size", "config", "power (W)", "leakage (W)",
                    "dynamic (W)", "vs PR-SRAM-NT"});

  const core::CacheSize sizes[] = {core::CacheSize::kSmall,
                                   core::CacheSize::kMedium,
                                   core::CacheSize::kLarge};
  const core::ConfigId configs[] = {core::ConfigId::kPrSramNt,
                                    core::ConfigId::kShStt,
                                    core::ConfigId::kShSramNom};

  for (core::CacheSize size : sizes) {
    double baseline_power = 0.0;
    for (core::ConfigId id : configs) {
      core::RunOptions options = base_options;
      options.size = size;
      double energy = 0.0;
      double leak = 0.0;
      double seconds = 0.0;
      for (const std::string& bench : workload::benchmark_names()) {
        const core::SimResult r = core::run_experiment(id, bench, options);
        bench::export_metrics(r);
        energy += r.energy.total();
        leak += r.energy.leakage();
        seconds += r.seconds;
      }
      const auto cfg = core::make_cluster_config(id, size);
      const double chip_factor = cfg.clusters_per_chip;
      const double watts = energy * 1e-12 / seconds * chip_factor;
      const double leak_watts = leak * 1e-12 / seconds * chip_factor;
      if (id == core::ConfigId::kPrSramNt) baseline_power = watts;
      table.add_row({core::to_string(size), core::to_string(id),
                     util::fixed(watts, 1), util::fixed(leak_watts, 1),
                     util::fixed(watts - leak_watts, 1),
                     util::percent(watts / baseline_power - 1.0)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference: SH-STT power -2.1%% (small), -12.9%% (medium),\n"
      "-22.1%% (large); savings grow with cache size because they come\n"
      "from leakage.\n");
  return 0;
}
