// Ablation: deadline-aware arbitration (the paper's priority shift
// registers, §II.A) versus plain round-robin at the shared DL1 read port.
//
// The priority registers exist to service the soonest-expiring request
// first; replacing them with round-robin should increase half-misses and
// multi-cycle hits, especially for the fast (multiplier-4) cores whose
// windows are tightest.
#include <cstdio>

#include "bench_common.hpp"
#include "core/cluster_sim.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Ablation — priority-register arbitration vs round-robin",
      "the paper's deadline-aware arbiter minimizes half-misses",
      options);

  util::TextTable table("Shared DL1 service quality by arbitration policy");
  table.set_header({"benchmark", "policy", "1-cycle hits", "half-misses",
                    "time (ms)"});

  for (const char* bench : {"ocean", "raytrace", "streamcluster"}) {
    for (core::ArbitrationPolicy policy :
         {core::ArbitrationPolicy::kPriority,
          core::ArbitrationPolicy::kRoundRobin}) {
      core::ClusterConfig config = core::make_cluster_config(
          core::ConfigId::kShStt, options.size, options.cluster_cores,
          options.seed);
      config.controller.arbitration = policy;
      core::SimParams params;
      params.workload_scale = options.workload_scale;
      params.seed = options.seed;
      core::ClusterSim sim(config, workload::benchmark(bench), params);
      sim.run();
      const core::SimResult r = sim.result();
      bench::export_metrics(r);
      const std::uint64_t reads = r.dl1_read_hits + r.dl1_read_misses;
      table.add_row(
          {bench,
           policy == core::ArbitrationPolicy::kPriority ? "priority"
                                                        : "round-robin",
           util::fixed(100.0 * r.read_hit_latency.fraction(1), 2) + "%",
           util::fixed(100.0 * r.dl1_half_misses /
                           std::max<std::uint64_t>(1, reads), 2) + "%",
           util::fixed(r.seconds * 1e3, 3)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Expectation: round-robin ignores deadlines, so requests from fast\n"
      "cores expire more often (more half-misses / 2-cycle hits) for the\n"
      "same total service bandwidth.\n");
  return 0;
}
