// Figure 11: fraction of shared-DL1 read hits serviced in 1, 2, or more
// core cycles.
//
// Paper claims: 95.8% of read hits complete in a single core cycle; about
// 4% of requests half-miss and >99% of those are handled in 2 cycles.
#include <cstdio>

#include "bench_common.hpp"
#include "core/experiment.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Figure 11 — shared DL1 read-hit service latency (core cycles)",
      "95.8% of read hits in 1 cycle; >99% of half-misses done in 2",
      options);

  util::TextTable table("Read-hit latency distribution (SH-STT)");
  table.set_header({"benchmark", "1 cycle", "2 cycles", ">2 cycles",
                    "half-miss rate"});

  util::Histogram total(8);
  std::uint64_t half_misses = 0;
  std::uint64_t reads = 0;
  for (const std::string& bench : workload::benchmark_names()) {
    const core::SimResult r =
        core::run_experiment(core::ConfigId::kShStt, bench, options);
    bench::export_metrics(r);
    total.merge(r.read_hit_latency);
    half_misses += r.dl1_half_misses;
    reads += r.dl1_read_hits + r.dl1_read_misses;
    const auto& h = r.read_hit_latency;
    double beyond = 0.0;
    for (std::size_t b = 3; b < h.bucket_count(); ++b) beyond += h.fraction(b);
    table.add_row(
        {bench, util::fixed(100 * h.fraction(1), 1) + "%",
         util::fixed(100 * h.fraction(2), 1) + "%",
         util::fixed(100 * beyond, 2) + "%",
         util::fixed(100.0 * r.dl1_half_misses /
                         std::max<std::uint64_t>(
                             1, r.dl1_read_hits + r.dl1_read_misses), 2) +
             "%"});
  }
  double beyond = 0.0;
  for (std::size_t b = 3; b < total.bucket_count(); ++b) {
    beyond += total.fraction(b);
  }
  table.add_row({"suite mean", util::fixed(100 * total.fraction(1), 1) + "%",
                 util::fixed(100 * total.fraction(2), 1) + "%",
                 util::fixed(100 * beyond, 2) + "%",
                 util::fixed(100.0 * half_misses /
                                 std::max<std::uint64_t>(1, reads), 2) + "%"});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Paper reference: 95.8%% single-cycle hits, ~4%% half-misses, >99%% of\n"
      "half-missed requests serviced within 2 core cycles.\n");
  return 0;
}
