// Ablation: shared-L1 store queue depth.
//
// The paper argues STT-RAM's slow writes are tolerable at NT core speeds
// without "large SRAM buffers" (§I). This sweep measures how small the
// shared controller's store queue can get before write bursts stall the
// cores, using fft (store-heavy transpose phases).
#include <cstdio>

#include "bench_common.hpp"
#include "core/cluster_sim.hpp"
#include "core/experiment.hpp"
#include "util/table.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  respin::bench::init_obs(argc, argv);
  using namespace respin;
  const core::RunOptions options = bench::default_options();
  bench::print_banner(
      "Ablation — shared-L1 store queue depth",
      "slow NT cores need only a small store queue (paper §I/§II)",
      options);

  util::TextTable table("fft (store-heavy transposes) vs store queue depth");
  table.set_header(
      {"depth", "time (ms)", "store rejections", "vs depth-16 time"});

  // Reference run at the default depth first.
  double reference_ms = 0.0;
  {
    core::ClusterConfig config = core::make_cluster_config(
        core::ConfigId::kShStt, options.size, options.cluster_cores,
        options.seed);
    core::SimParams params;
    params.workload_scale = options.workload_scale;
    params.seed = options.seed;
    core::ClusterSim sim(config, workload::benchmark("fft"), params);
    sim.run();
    reference_ms = sim.result().seconds * 1e3;
  }

  for (std::uint32_t depth : {1u, 2u, 4u, 8u, 16u, 32u}) {
    core::ClusterConfig config = core::make_cluster_config(
        core::ConfigId::kShStt, options.size, options.cluster_cores,
        options.seed);
    config.controller.store_queue_depth = depth;
    core::SimParams params;
    params.workload_scale = options.workload_scale;
    params.seed = options.seed;
    core::ClusterSim sim(config, workload::benchmark("fft"), params);
    sim.run();
    const core::SimResult r = sim.result();
    bench::export_metrics(r);
    table.add_row({std::to_string(depth), util::fixed(r.seconds * 1e3, 3),
                   std::to_string(r.dl1_store_rejections),
                   util::percent(r.seconds * 1e3 / reference_ms - 1.0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "A handful of entries suffices: beyond ~8, rejections vanish and\n"
      "runtime is flat — consistent with the paper's claim that NT clock\n"
      "speeds hide STT-RAM write latency without large SRAM buffering.\n");
  return 0;
}
