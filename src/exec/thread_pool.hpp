// Deterministic host-level execution engine for experiment fan-out.
//
// ThreadPool runs an indexed batch of independent tasks over a fixed set
// of worker threads (plus the calling thread). Tasks are claimed from a
// monotonically increasing index counter, so every index runs exactly
// once and writes its own result slot: the *outputs* are bit-identical to
// a serial loop regardless of thread count or scheduling, which is the
// contract the simulator's determinism tests pin down. There is no work
// stealing and no task ordering guarantee beyond index-claiming order.
//
// Nested use is safe: a task that re-enters run() (directly or through
// parallel_map) executes the inner batch inline on its own thread, so the
// pool can never deadlock on itself. Exceptions thrown by tasks are
// captured and the one from the lowest-numbered index is rethrown to the
// caller after the batch drains (later indices may be skipped once an
// exception is seen).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace respin::exec {

/// Thread count the engine uses when not explicitly configured: the
/// RESPIN_THREADS environment variable when set, otherwise
/// std::thread::hardware_concurrency() (never less than 1).
std::size_t default_thread_count();

class ThreadPool {
 public:
  /// `threads` counts the calling thread: a pool of size N uses N-1
  /// workers plus the caller. 0 means default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width, including the calling thread.
  std::size_t size() const { return workers_.size() + 1; }

  /// Runs fn(0) .. fn(n-1) across the pool and blocks until every claimed
  /// index has finished. Distinct top-level callers are serialized; calls
  /// from inside a running task execute inline (nested-use safety).
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// True when the current thread is executing a pool task (top-level
  /// calls from such a thread run inline instead of re-entering the pool).
  static bool in_task();

 private:
  struct Batch;

  void worker_main();
  void work(Batch& batch);

  std::mutex run_mu_;  ///< Serializes top-level run() calls.

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  Batch* batch_ = nullptr;       ///< Current batch; guarded by mu_.
  std::uint64_t generation_ = 0; ///< Bumped per batch; guarded by mu_.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Process-wide pool shared by run_chip / run_suite / run_matrix.
/// Constructed lazily with the configured thread count.
ThreadPool& global_pool();

/// Reconfigures the width of the global pool (0 = auto). Call this from
/// tool startup before any parallel work; reconfiguring while another
/// thread is using the global pool is not supported.
void set_thread_count(std::size_t threads);

/// Width the global pool currently has (constructing it if needed).
std::size_t thread_count();

}  // namespace respin::exec
