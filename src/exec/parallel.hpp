// Order-preserving parallel map over a ThreadPool.
//
// parallel_map_n(pool, n, fn) evaluates fn(0) .. fn(n-1) concurrently and
// returns {fn(0), ..., fn(n-1)} — results land in index order no matter
// which thread computed them, so replacing a serial loop with parallel_map
// changes wall-clock time and nothing else (the simulator's determinism
// contract). Exceptions follow ThreadPool::run: the lowest failing index's
// exception is rethrown.
#pragma once

#include <cstddef>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"

namespace respin::exec {

/// Maps fn over [0, n) on `pool`; returns results in index order.
template <typename F>
auto parallel_map_n(ThreadPool& pool, std::size_t n, F&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<F&, std::size_t>>> {
  using R = std::decay_t<std::invoke_result_t<F&, std::size_t>>;
  std::vector<std::optional<R>> slots(n);
  pool.run(n, [&](std::size_t i) { slots[i].emplace(fn(i)); });
  std::vector<R> out;
  out.reserve(n);
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

/// Maps fn over [0, n) on the global pool.
template <typename F>
auto parallel_map_n(std::size_t n, F&& fn) {
  return parallel_map_n(global_pool(), n, std::forward<F>(fn));
}

/// Maps fn over `items` on `pool`; returns {fn(items[0]), ...} in order.
template <typename T, typename F>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, F&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<F&, const T&>>> {
  return parallel_map_n(pool, items.size(),
                        [&](std::size_t i) { return fn(items[i]); });
}

/// Maps fn over `items` on the global pool.
template <typename T, typename F>
auto parallel_map(const std::vector<T>& items, F&& fn) {
  return parallel_map(global_pool(), items, std::forward<F>(fn));
}

}  // namespace respin::exec
