#include "exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <utility>

#include "obs/obs.hpp"
#include "util/env.hpp"

namespace respin::exec {

namespace {

/// Depth of pool tasks running on this thread; >0 forces inline execution
/// for nested run() calls.
thread_local int t_task_depth = 0;

struct TaskScope {
  TaskScope() { ++t_task_depth; }
  ~TaskScope() { --t_task_depth; }
};

}  // namespace

struct ThreadPool::Batch {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancel{false};
  std::size_t active = 0;  ///< Workers inside work(); guarded by pool mu_.
  /// (index, exception) per failed task; guarded by pool mu_.
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
};

std::size_t default_thread_count() {
  const long configured = util::env_long("RESPIN_THREADS", 0);
  if (configured > 0) return static_cast<std::size_t>(configured);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

bool ThreadPool::in_task() { return t_task_depth > 0; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::run(std::size_t n,
                     const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || in_task()) {
    // Inline path: no workers, a trivial batch, or a nested call from a
    // task already running on this pool. Runs indices in order, so the
    // first exception is from the lowest failing index here too.
    TaskScope scope;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::lock_guard<std::mutex> serialize(run_mu_);
  // Batch-granularity timing probe: emits one "probe" event per top-level
  // fan-out to the global obs sink (a no-op branch when none installed).
  obs::ScopedProbe probe("exec.batch");
  probe.add("tasks", static_cast<std::int64_t>(n));
  probe.add("threads", static_cast<std::int64_t>(size()));
  Batch batch;
  batch.fn = &fn;
  batch.n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = &batch;
    ++generation_;
  }
  work_cv_.notify_all();

  work(batch);  // The caller is one of the execution lanes.

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch.active == 0; });
    batch_ = nullptr;
  }

  if (!batch.errors.empty()) {
    const auto lowest = std::min_element(
        batch.errors.begin(), batch.errors.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::rethrow_exception(lowest->second);
  }
}

void ThreadPool::work(Batch& batch) {
  TaskScope scope;
  for (;;) {
    if (batch.cancel.load(std::memory_order_relaxed)) return;
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    try {
      (*batch.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      batch.errors.emplace_back(i, std::current_exception());
      batch.cancel.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_main() {
  std::uint64_t seen = 0;
  for (;;) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (batch_ != nullptr) {
        batch = batch_;
        ++batch->active;  // Pins the batch alive until we drop to 0.
      }
    }
    if (batch == nullptr) continue;  // Batch finished before we woke.
    work(*batch);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--batch->active == 0) done_cv_.notify_all();
    }
  }
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_requested_threads = 0;  ///< 0 = auto.

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(g_requested_threads);
  return *g_pool;
}

void set_thread_count(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_requested_threads = threads;
  const std::size_t want =
      threads == 0 ? default_thread_count() : threads;
  if (g_pool && g_pool->size() != want) g_pool.reset();
}

std::size_t thread_count() { return global_pool().size(); }

}  // namespace respin::exec
