// Structured tracing for the simulator: typed events, pluggable sinks, a
// JSONL serializer and RAII wall-clock probes.
//
// Design rule: observability must never perturb a simulation. Emitters
// only *read* simulator state, and every emission site is guarded by a
// sink pointer that defaults to null, so the disabled path is one
// predictable branch. For the truly paranoid, configuring with
// -DRESPIN_OBS=OFF compiles the probes out entirely (ScopedProbe becomes
// an empty type — see kCompiledIn and the static checks in obs_test).
//
// The JSONL schema is documented in docs/observability.md; every line is
// one self-contained JSON object, so concurrently running simulations may
// interleave lines but never corrupt them.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace respin::obs {

/// False when the build compiled the probes out (-DRESPIN_OBS=OFF).
inline constexpr bool kCompiledIn =
#ifdef RESPIN_OBS_DISABLE
    false;
#else
    true;
#endif

/// One structured trace record: a kind plus ordered typed fields.
class Event {
 public:
  struct Field {
    enum class Type : std::uint8_t { kStr, kInt, kFloat };
    std::string key;
    Type type = Type::kInt;
    std::string str_value;
    std::int64_t int_value = 0;
    double float_value = 0.0;
  };

  explicit Event(std::string kind) : kind_(std::move(kind)) {}

  Event& str(std::string_view key, std::string_view value);
  Event& i64(std::string_view key, std::int64_t value);
  Event& f64(std::string_view key, double value);

  const std::string& kind() const { return kind_; }
  const std::vector<Field>& fields() const { return fields_; }

 private:
  std::string kind_;
  std::vector<Field> fields_;
};

/// Serializes an event as a single-line JSON object:
/// {"event":"<kind>","k1":v1,...}. Non-finite floats render as null
/// (JSON has no inf/nan); strings are escaped per RFC 8259.
std::string to_json(const Event& event);

/// Destination for trace events. Implementations must be safe to call
/// from multiple threads (simulations fan out over the exec pool).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const Event& event) = 0;
};

/// Counts events and discards their content. Used by tests and by the
/// bench_throughput tracing-overhead guard.
class CountingSink : public TraceSink {
 public:
  void record(const Event&) override {
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> count_{0};
};

/// Writes one JSON object per line to a stream, under a mutex so whole
/// lines never interleave.
class JsonlWriter : public TraceSink {
 public:
  explicit JsonlWriter(std::ostream& os) : os_(os) {}
  void record(const Event& event) override;

 private:
  std::mutex mu_;
  std::ostream& os_;
};

/// Process-wide sink for emitters that have no configuration channel of
/// their own (the exec thread pool's timing probes). Null by default:
/// with no sink installed every probe is a relaxed load and a branch.
TraceSink* global_sink();
void set_global_sink(TraceSink* sink);

/// RAII wall-clock probe: on destruction emits
/// {"event":"probe","name":<name>,"wall_us":<elapsed>, ...extras}
/// to the global sink. The clock is only read when a sink is installed
/// at construction time. BasicScopedProbe<false> is the compiled-out
/// variant: an empty type whose every member is a constexpr no-op.
template <bool Enabled>
class BasicScopedProbe;

template <>
class BasicScopedProbe<false> {
 public:
  explicit constexpr BasicScopedProbe(const char*) {}
  constexpr void add(const char*, std::int64_t) {}
};

template <>
class BasicScopedProbe<true> {
 public:
  explicit BasicScopedProbe(const char* name);
  ~BasicScopedProbe();

  BasicScopedProbe(const BasicScopedProbe&) = delete;
  BasicScopedProbe& operator=(const BasicScopedProbe&) = delete;

  /// Attaches an extra integer field to the emitted probe event.
  void add(const char* key, std::int64_t value);

 private:
  const char* name_;
  TraceSink* sink_;  ///< Captured once; null disables the probe.
  std::int64_t start_ns_ = 0;
  std::vector<Event::Field> extras_;
};

using ScopedProbe = BasicScopedProbe<kCompiledIn>;

}  // namespace respin::obs
