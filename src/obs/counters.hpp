// Named counter registries for metrics export.
//
// A CounterSet is an ordered list of (name, value) pairs — the canonical
// flat form of everything a simulation can report. Components export into
// one through collect_counters()-style hooks under a dotted-prefix
// taxonomy ("dl1.reads_serviced", "core3.busy_cycles"); the golden-stats
// harness then compares whole sets by name.
//
// Values are doubles. Every integer counter in the simulator fits double's
// 53-bit exact-integer range (cycle counts are capped at 4e8; event counts
// follow), and format_value() prints integers without a fractional part
// and everything else with round-trip precision, so text form is lossless.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace respin::obs {

struct Counter {
  std::string name;
  double value = 0.0;
};

class CounterSet {
 public:
  /// Appends a counter. Names should be unique within a set; find()
  /// returns the first match.
  void add(std::string name, double value);
  void add(std::string name, std::uint64_t value) {
    add(std::move(name), static_cast<double>(value));
  }
  void add(std::string name, std::int64_t value) {
    add(std::move(name), static_cast<double>(value));
  }

  const std::vector<Counter>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  /// Pointer to the value of `name`, or nullptr when absent.
  const double* find(std::string_view name) const;

 private:
  std::vector<Counter> items_;
};

/// Round-trip-exact text form: values that are exactly representable
/// integers print without a fractional part; everything else prints the
/// std::to_chars shortest form that parses back bit-identically. Locale
/// independent by construction.
std::string format_value(double value);

/// Inverse of format_value (std::from_chars; both forms parse exactly,
/// including "inf"/"nan"). Malformed text parses as 0.
double parse_value(const std::string& text);

}  // namespace respin::obs
