// Minimal JSON document model for the serving protocol and result
// serialization: a Value tree, a strict RFC 8259 parser, and a compact
// single-line writer.
//
// Numbers keep their decimal lexeme alongside the parsed double, so
// 64-bit integers (seeds) and shortest-round-trip doubles survive a
// serialize -> parse cycle bit-exactly: doubles are formatted with
// obs::format_value (std::to_chars shortest form, locale-independent)
// and re-parsed with std::from_chars, and as_u64()/as_i64() re-parse the
// original digits instead of bouncing through double. This is the same
// text layer the golden-stats CSVs use, which is what makes a JSONL
// results store byte-stable and a served SimResult bit-identical to a
// locally computed one (docs/serving.md).
//
// The parser is strict and hostile-input safe: typed Error with a byte
// offset on any malformation, a nesting-depth cap against stack
// exhaustion, full \uXXXX escape handling including surrogate pairs.
// Exercised by tests/json_test.cpp under the ASan+UBSan CI job.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace respin::obs::json {

/// Thrown on malformed input; `offset` is the byte position of the
/// failure in the parsed text.
class Error : public std::runtime_error {
 public:
  Error(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_ = 0;
};

class Value;
/// Object members in insertion order (canonical keys depend on a stable
/// field order, so no sorting or hashing here).
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Value() = default;  ///< null

  // Named constructors (no implicit conversions: const char* would
  // otherwise silently become bool).
  static Value null() { return Value(); }
  static Value boolean(bool b);
  static Value number(double v);
  static Value number(std::uint64_t v);
  static Value number(std::int64_t v);
  static Value number(std::uint32_t v) {
    return number(static_cast<std::uint64_t>(v));
  }
  static Value str(std::string s);
  static Value array(Array items = {});
  static Value object(Object members = {});
  /// Parser backdoor: adopts `lexeme` as the number text verbatim. The
  /// caller guarantees it is a valid JSON number.
  static Value number_from_lexeme(std::string lexeme);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed accessors; each throws Error (offset 0) on a kind mismatch so
  // protocol handlers get a typed bad_request instead of UB.
  bool as_bool() const;
  /// The double value (from_chars of the lexeme; shortest-form doubles
  /// round-trip bit-identically).
  double as_double() const;
  /// Exact unsigned 64-bit parse of the number lexeme; throws when the
  /// lexeme is negative, fractional, or out of range.
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Number lexeme exactly as parsed / formatted ("" for non-numbers).
  const std::string& number_text() const { return text_; }

  // Object helpers.
  /// Member lookup (first match); nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// Appends a member (builder-style; keys are not deduplicated).
  Value& set(std::string key, Value value);

  /// Compact single-line serialization. Parsing dump() output yields an
  /// equal tree with identical number lexemes.
  std::string dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string text_;  ///< Number lexeme, or string payload.
  Array array_;
  Object object_;
};

/// Parses one JSON document; trailing non-whitespace is an error. Throws
/// Error on malformed input or nesting beyond kMaxDepth.
inline constexpr std::size_t kMaxDepth = 64;
Value parse(std::string_view text);

/// Escapes `s` per RFC 8259 (quote, backslash, control characters).
std::string escape(std::string_view s);

}  // namespace respin::obs::json
