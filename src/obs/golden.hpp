// Golden-stats tables: a serializable (run, counter) -> value matrix plus
// a differ that reports drift by name.
//
// The on-disk form is CSV — `run,counter,value` — with `#` comment lines
// for provenance (generator command, grid description). `run` is an
// opaque row key; the simulator uses "CONFIG/benchmark". Values use
// obs::format_value, so the file round-trips bit-exactly and a golden
// regenerated from unchanged code is byte-stable under git.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/counters.hpp"

namespace respin::obs {

/// One run's worth of counters, keyed by an opaque run id.
struct MetricsRow {
  std::string run;
  CounterSet counters;
};

/// Writes `# <comment line>` preamble lines (split on '\n'), a header,
/// and one CSV row per counter.
void write_metrics_csv(std::ostream& os, const std::vector<MetricsRow>& rows,
                       const std::string& preamble = "");

/// Parses write_metrics_csv output (comments and header are skipped).
/// Rows regroup by run id in first-appearance order.
std::vector<MetricsRow> read_metrics_csv(std::istream& is);

/// Result of comparing a live metrics table against a golden one. Each
/// drift line names the run, the counter, and both values — the
/// human-readable report a failing regression test prints.
struct GoldenDiff {
  std::vector<std::string> drifts;

  bool ok() const { return drifts.empty(); }
  std::size_t count() const { return drifts.size(); }

  /// Multi-line report; "" when ok().
  std::string report() const;
};

/// Compares `live` against `golden` by (run, counter) name. Values must
/// match exactly in format_value() text form — the simulator is
/// deterministic, so any inequality is a real behaviour change. Missing
/// or extra runs/counters are drifts too.
GoldenDiff diff_metrics(const std::vector<MetricsRow>& golden,
                        const std::vector<MetricsRow>& live);

}  // namespace respin::obs
