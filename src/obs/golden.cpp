#include "obs/golden.hpp"

#include <istream>
#include <map>
#include <ostream>
#include <sstream>

namespace respin::obs {

void write_metrics_csv(std::ostream& os, const std::vector<MetricsRow>& rows,
                       const std::string& preamble) {
  if (!preamble.empty()) {
    std::istringstream lines(preamble);
    std::string line;
    while (std::getline(lines, line)) os << "# " << line << '\n';
  }
  os << "run,counter,value\n";
  for (const MetricsRow& row : rows) {
    for (const Counter& c : row.counters.items()) {
      os << row.run << ',' << c.name << ',' << format_value(c.value) << '\n';
    }
  }
}

std::vector<MetricsRow> read_metrics_csv(std::istream& is) {
  std::vector<MetricsRow> rows;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line.front() == '#') continue;
    const std::size_t first = line.find(',');
    const std::size_t second =
        first == std::string::npos ? std::string::npos
                                   : line.find(',', first + 1);
    if (second == std::string::npos) continue;
    const std::string run = line.substr(0, first);
    if (run == "run") continue;  // Header.
    std::string counter = line.substr(first + 1, second - first - 1);
    const double value = parse_value(line.substr(second + 1));
    if (rows.empty() || rows.back().run != run) {
      bool found = false;
      for (MetricsRow& existing : rows) {
        if (existing.run == run) {
          existing.counters.add(std::move(counter), value);
          found = true;
          break;
        }
      }
      if (found) continue;
      rows.push_back(MetricsRow{run, {}});
    }
    rows.back().counters.add(std::move(counter), value);
  }
  return rows;
}

std::string GoldenDiff::report() const {
  std::string out;
  for (const std::string& drift : drifts) {
    out += drift;
    out.push_back('\n');
  }
  return out;
}

GoldenDiff diff_metrics(const std::vector<MetricsRow>& golden,
                        const std::vector<MetricsRow>& live) {
  GoldenDiff diff;
  std::map<std::string, const MetricsRow*> live_by_run;
  for (const MetricsRow& row : live) live_by_run[row.run] = &row;

  for (const MetricsRow& gold : golden) {
    const auto it = live_by_run.find(gold.run);
    if (it == live_by_run.end()) {
      diff.drifts.push_back(gold.run + ": run missing from live results");
      continue;
    }
    const MetricsRow& now = *it->second;
    live_by_run.erase(it);
    for (const Counter& c : gold.counters.items()) {
      const double* value = now.counters.find(c.name);
      if (value == nullptr) {
        diff.drifts.push_back(gold.run + ": counter " + c.name +
                              " missing from live results (golden " +
                              format_value(c.value) + ")");
        continue;
      }
      // Text-form comparison: exact for every representable value, and
      // NaN-safe (both sides print "nan").
      const std::string want = format_value(c.value);
      const std::string got = format_value(*value);
      if (want != got) {
        diff.drifts.push_back(gold.run + ": counter " + c.name +
                              " drifted: golden " + want + ", live " + got);
      }
    }
    for (const Counter& c : now.counters.items()) {
      if (gold.counters.find(c.name) == nullptr) {
        diff.drifts.push_back(gold.run + ": counter " + c.name +
                              " is new (live " + format_value(c.value) +
                              "); regenerate goldens");
      }
    }
  }
  for (const auto& [run, row] : live_by_run) {
    (void)row;
    diff.drifts.push_back(run + ": run not pinned by goldens; regenerate");
  }
  return diff;
}

}  // namespace respin::obs
