#include "obs/json.hpp"

#include <charconv>
#include <cstdio>

#include "obs/counters.hpp"

namespace respin::obs::json {

namespace {

[[noreturn]] void kind_error(const char* wanted, Value::Kind got) {
  static const char* const names[] = {"null",   "bool",  "number",
                                      "string", "array", "object"};
  throw Error(std::string("expected ") + wanted + ", got " +
                  names[static_cast<int>(got)],
              0);
}

}  // namespace

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double value) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.text_ = format_value(value);
  return v;
}

Value Value::number(std::uint64_t value) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.text_ = std::to_string(value);
  return v;
}

Value Value::number(std::int64_t value) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.text_ = std::to_string(value);
  return v;
}

Value Value::number_from_lexeme(std::string lexeme) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.text_ = std::move(lexeme);
  return v;
}

Value Value::str(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.text_ = std::move(s);
  return v;
}

Value Value::array(Array items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::object(Object members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double Value::as_double() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return parse_value(text_);
}

std::uint64_t Value::as_u64() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  std::uint64_t value = 0;
  const char* begin = text_.data();
  const char* end = begin + text_.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    throw Error("number '" + text_ + "' is not an exact uint64", 0);
  }
  return value;
}

std::int64_t Value::as_i64() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  std::int64_t value = 0;
  const char* begin = text_.data();
  const char* end = begin + text_.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    throw Error("number '" + text_ + "' is not an exact int64", 0);
  }
  return value;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return text_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value& Value::set(std::string key, Value value) {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void dump_to(const Value& v, std::string& out);

void dump_to(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Kind::kNumber: {
      // inf/nan have no JSON form; the simulator never stores them (EPI of
      // an empty epoch is recomputed, not serialized), so map them to null
      // like obs::to_json does for events.
      const std::string& t = v.number_text();
      out += (t == "inf" || t == "-inf" || t == "nan" || t == "-nan")
                 ? "null"
                 : t;
      break;
    }
    case Value::Kind::kString:
      out += '"';
      out += escape(v.as_string());
      out += '"';
      break;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& item : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_to(item, out);
      }
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        dump_to(value, out);
      }
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw Error(message, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value parse_value(std::size_t depth) {
    if (depth >= kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value::str(parse_string());
      case 't':
        if (consume_word("true")) return Value::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_word("false")) return Value::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_word("null")) return Value::null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object(std::size_t depth) {
    expect('{');
    Value v = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == '}') return v;
      if (sep != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(std::size_t depth) {
    expect('[');
    Array items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char sep = peek();
      ++pos_;
      if (sep == ']') return Value::array(std::move(items));
      if (sep != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: --pos_; fail("invalid escape character");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        --pos_;
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("high surrogate without low surrogate");
      }
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unexpected low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
      pos_ = start;
      fail("invalid value");
    }
    // Leading zero may not be followed by more digits (RFC 8259).
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        text_[pos_ + 1] >= '0' && text_[pos_ + 1] <= '9') {
      fail("leading zero in number");
    }
    auto digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail("digit required after decimal point");
      }
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !(text_[pos_] >= '0' && text_[pos_] <= '9')) {
        fail("digit required in exponent");
      }
      digits();
    }
    return Value::number_from_lexeme(
        std::string(text_.substr(start, pos_ - start)));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace respin::obs::json
