#include "obs/counters.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace respin::obs {

void CounterSet::add(std::string name, double value) {
  items_.push_back(Counter{std::move(name), value});
}

const double* CounterSet::find(std::string_view name) const {
  for (const Counter& c : items_) {
    if (c.name == name) return &c.value;
  }
  return nullptr;
}

std::string format_value(double value) {
  // 2^53: the largest magnitude below which every integer is exact.
  constexpr double kExactIntegerLimit = 9007199254740992.0;
  if (std::isfinite(value) && std::nearbyint(value) == value &&
      std::fabs(value) < kExactIntegerLimit) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

double parse_value(const std::string& text) {
  return std::strtod(text.c_str(), nullptr);
}

}  // namespace respin::obs
