#include "obs/counters.hpp"

#include <charconv>
#include <cmath>

namespace respin::obs {

void CounterSet::add(std::string name, double value) {
  items_.push_back(Counter{std::move(name), value});
}

const double* CounterSet::find(std::string_view name) const {
  for (const Counter& c : items_) {
    if (c.name == name) return &c.value;
  }
  return nullptr;
}

// std::to_chars/std::from_chars throughout: locale-independent (snprintf %g
// and strtod honor the C locale's decimal separator, so a library calling
// setlocale would corrupt golden files) and shortest-round-trip.
std::string format_value(double value) {
  // 2^53: the largest magnitude below which every integer is exact.
  constexpr double kExactIntegerLimit = 9007199254740992.0;
  char buf[40];
  if (std::isfinite(value) && std::nearbyint(value) == value &&
      std::fabs(value) < kExactIntegerLimit) {
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof buf, static_cast<long long>(value));
    return std::string(buf, end);
  }
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  return std::string(buf, end);
}

double parse_value(const std::string& text) {
  double value = 0.0;
  std::from_chars(text.data(), text.data() + text.size(), value);
  return value;
}

}  // namespace respin::obs
