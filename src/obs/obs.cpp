#include "obs/obs.hpp"

#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace respin::obs {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

// std::to_chars, not snprintf %g: the output must be valid JSON even if a
// linked library switches the C locale to a comma-decimal one.
void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, end);
}

std::atomic<TraceSink*> g_sink{nullptr};

}  // namespace

Event& Event::str(std::string_view key, std::string_view value) {
  Field f;
  f.key = std::string(key);
  f.type = Field::Type::kStr;
  f.str_value = std::string(value);
  fields_.push_back(std::move(f));
  return *this;
}

Event& Event::i64(std::string_view key, std::int64_t value) {
  Field f;
  f.key = std::string(key);
  f.type = Field::Type::kInt;
  f.int_value = value;
  fields_.push_back(std::move(f));
  return *this;
}

Event& Event::f64(std::string_view key, double value) {
  Field f;
  f.key = std::string(key);
  f.type = Field::Type::kFloat;
  f.float_value = value;
  fields_.push_back(std::move(f));
  return *this;
}

std::string to_json(const Event& event) {
  std::string out = "{\"event\":";
  append_escaped(out, event.kind());
  for (const Event::Field& f : event.fields()) {
    out.push_back(',');
    append_escaped(out, f.key);
    out.push_back(':');
    switch (f.type) {
      case Event::Field::Type::kStr: append_escaped(out, f.str_value); break;
      case Event::Field::Type::kInt: out += std::to_string(f.int_value); break;
      case Event::Field::Type::kFloat: append_double(out, f.float_value); break;
    }
  }
  out.push_back('}');
  return out;
}

void JsonlWriter::record(const Event& event) {
  const std::string line = to_json(event);
  const std::lock_guard<std::mutex> lock(mu_);
  os_ << line << '\n';
}

TraceSink* global_sink() { return g_sink.load(std::memory_order_acquire); }

void set_global_sink(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

BasicScopedProbe<true>::BasicScopedProbe(const char* name)
    : name_(name), sink_(global_sink()) {
  if (sink_ != nullptr) {
    start_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now().time_since_epoch())
                    .count();
  }
}

void BasicScopedProbe<true>::add(const char* key, std::int64_t value) {
  if (sink_ == nullptr) return;
  Event::Field f;
  f.key = key;
  f.type = Event::Field::Type::kInt;
  f.int_value = value;
  extras_.push_back(std::move(f));
}

BasicScopedProbe<true>::~BasicScopedProbe() {
  if (sink_ == nullptr) return;
  const std::int64_t end_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  Event event("probe");
  event.str("name", name_);
  event.f64("wall_us", static_cast<double>(end_ns - start_ns_) * 1e-3);
  for (Event::Field& f : extras_) event.i64(f.key, f.int_value);
  sink_->record(event);
}

}  // namespace respin::obs
