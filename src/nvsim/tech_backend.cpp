#include "nvsim/tech_backend.hpp"

#include <cmath>

#include "tech/technology.hpp"
#include "util/require.hpp"

namespace respin::nvsim {

namespace {

constexpr double kAnchorCapacitySram = 16.0 * 1024.0;   // 16 KB.
constexpr double kAnchorCapacityNvm = 256.0 * 1024.0;   // 256 KB.
constexpr double kAnchorBlock = 32.0;

double capacity_scale(double capacity, double anchor, double exponent) {
  return std::pow(capacity / anchor, exponent);
}

/// Technology-independent scale factors shared by every backend. The
/// arithmetic (and its order) is identical to the pre-refactor monolithic
/// evaluate(): the golden grid pins SRAM and STT-RAM bit-for-bit.
struct Scales {
  double per_bank_capacity = 0.0;
  double total_mb = 0.0;
  double block_scale = 1.0;
  double assoc_scale = 1.0;
  double volt_energy = 1.0;
};

Scales scales_of(const ArrayConfig& config, const ArrayModelParams& params) {
  Scales s;
  s.per_bank_capacity =
      static_cast<double>(config.capacity_bytes) / config.bank_count;
  s.total_mb =
      static_cast<double>(config.capacity_bytes) / (1024.0 * 1024.0);
  s.block_scale =
      std::pow(static_cast<double>(config.block_bytes) / kAnchorBlock,
               params.energy_block_exponent);
  // Highly associative arrays burn extra tag/compare energy; mild penalty.
  s.assoc_scale =
      1.0 + 0.03 * (static_cast<double>(config.associativity) - 2.0);
  s.volt_energy =
      (config.vdd / params.nominal_vdd) * (config.vdd / params.nominal_vdd);
  return s;
}

util::Picoseconds round_ps(double ps) {
  return static_cast<util::Picoseconds>(ps + 0.5);
}

// ---- SRAM --------------------------------------------------------------

class SramBackend final : public TechBackend {
 public:
  MemTech tech() const override { return MemTech::kSram; }
  const char* name() const override { return "SRAM"; }
  TechTraits traits() const override {
    TechTraits t;
    t.static_cell_faults = true;  // Gaussian-Vccmin cell maps.
    return t;
  }

  ArrayFigures evaluate(const ArrayConfig& config,
                        const ArrayModelParams& params) const override {
    const Scales s = scales_of(config, params);
    ArrayFigures out;
    const double geom =
        capacity_scale(s.per_bank_capacity, kAnchorCapacitySram,
                       params.latency_capacity_exponent);
    const double volt_latency = tech::subnominal_latency_scale(
        params.sram_latency_volt_k, params.nominal_vdd, config.vdd);
    out.read_latency =
        round_ps(params.sram_base_read_ps * geom * volt_latency);
    out.write_latency = out.read_latency;  // 6T SRAM: symmetric access.

    const double energy =
        params.sram_base_energy_pj *
        capacity_scale(s.per_bank_capacity, kAnchorCapacitySram,
                       params.energy_capacity_exponent) *
        s.block_scale * s.assoc_scale * s.volt_energy;
    out.read_energy = energy;
    out.write_energy = energy;

    out.leakage_power = params.sram_leakage_w_per_mb * s.total_mb *
                        (config.vdd / params.nominal_vdd);
    out.area_mm2 = params.sram_area_mm2_per_mb * s.total_mb;
    return out;
  }

  std::vector<TechAnchor> anchors(
      const ArrayModelParams& params) const override {
    (void)params;
    // Paper Table III, all three SRAM rows. The 16 KB rows are the 16-bank
    // 256 KB array (latency is per-bank).
    const ArrayConfig banked{MemTech::kSram, 256 * 1024, 32, 2, 1.0, 16};
    ArrayConfig banked_low = banked;
    banked_low.vdd = 0.65;
    const ArrayConfig flat{MemTech::kSram, 256 * 1024, 32, 2, 1.0, 1};
    return {
        {"sram-16KBx16-1.00V", banked, 211.9, 211.9, 6.102, 6.102, 0.881,
         0.9176},
        {"sram-16KBx16-0.65V", banked_low, 1336.5, 1336.5, 2.5781, 2.5781,
         0.57265, 0.9176},
        {"sram-256KB-1.00V", flat, 533.95, 533.95, 42.497, 42.497, 0.881,
         0.9176},
    };
  }
};

// ---- STT-RAM -----------------------------------------------------------

class SttRamBackend final : public TechBackend {
 public:
  MemTech tech() const override { return MemTech::kSttRam; }
  const char* name() const override { return "STT-RAM"; }
  TechTraits traits() const override {
    TechTraits t;
    t.write_retry_faults = true;  // Stochastic MTJ switching + retries.
    t.pipelined_reads = true;     // Paper §II pipelines the STT read.
    t.non_volatile = true;
    return t;
  }

  ArrayFigures evaluate(const ArrayConfig& config,
                        const ArrayModelParams& params) const override {
    const Scales s = scales_of(config, params);
    ArrayFigures out;
    const double geom =
        capacity_scale(s.per_bank_capacity, kAnchorCapacityNvm,
                       params.latency_capacity_exponent);
    // STT-RAM sensing degrades only mildly below nominal (current sensing),
    // but the paper never operates it below nominal; keep the read path
    // voltage-flat and let validate() guard the validity range.
    out.read_latency = round_ps(params.stt_read_ps_256k * geom);
    // MTJ write time is cell-limited, not geometry-limited: the 5.2 ns pulse
    // dominates; only a small peripheral term scales with bank size.
    const double write_ps =
        params.stt_write_ps_256k +
        0.15 * params.stt_read_ps_256k * (geom - 1.0);
    out.write_latency = round_ps(std::max(write_ps, 0.0));

    const double read_energy =
        params.stt_read_energy_pj_256k *
        capacity_scale(s.per_bank_capacity, kAnchorCapacityNvm,
                       params.energy_capacity_exponent) *
        s.block_scale * s.assoc_scale * s.volt_energy;
    out.read_energy = read_energy;
    out.write_energy = read_energy * params.stt_write_energy_factor;

    out.leakage_power = params.sram_leakage_w_per_mb * s.total_mb *
                        (config.vdd / params.nominal_vdd) *
                        params.stt_leakage_ratio;
    out.area_mm2 =
        params.sram_area_mm2_per_mb * s.total_mb * params.stt_area_ratio;
    return out;
  }

  std::vector<TechAnchor> anchors(
      const ArrayModelParams& params) const override {
    (void)params;
    const ArrayConfig anchor{MemTech::kSttRam, 256 * 1024, 32, 2, 1.0, 1};
    return {
        {"stt-256KB-1.00V", anchor, 588.2, 5208.0, 29.32, 87.96, 0.114,
         0.2451},
    };
  }
};

// ---- PCM ---------------------------------------------------------------

class PcmBackend final : public TechBackend {
 public:
  MemTech tech() const override { return MemTech::kPcm; }
  const char* name() const override { return "PCM"; }
  TechTraits traits() const override {
    TechTraits t;
    // Write wear reuses the capped-geometric retry machinery at an
    // elevated per-attempt failure rate (see docs/technologies.md).
    t.write_retry_faults = true;
    t.write_fail_multiplier = 4.0;
    t.non_volatile = true;
    return t;
  }

  ArrayFigures evaluate(const ArrayConfig& config,
                        const ArrayModelParams& params) const override {
    const Scales s = scales_of(config, params);
    ArrayFigures out;
    const double geom =
        capacity_scale(s.per_bank_capacity, kAnchorCapacityNvm,
                       params.latency_capacity_exponent);
    // Resistance sensing is voltage-flat like the MTJ read, just slower.
    out.read_latency = round_ps(params.pcm_read_ps_256k * geom);
    // The SET/RESET pulse is cell-limited — same structure as the STT
    // write, with a ~10x longer pulse (crystallization time).
    const double write_ps =
        params.pcm_write_ps_256k +
        0.15 * params.pcm_read_ps_256k * (geom - 1.0);
    out.write_latency = round_ps(std::max(write_ps, 0.0));

    const double read_energy =
        params.pcm_read_energy_pj_256k *
        capacity_scale(s.per_bank_capacity, kAnchorCapacityNvm,
                       params.energy_capacity_exponent) *
        s.block_scale * s.assoc_scale * s.volt_energy;
    out.read_energy = read_energy;
    out.write_energy = read_energy * params.pcm_write_energy_factor;

    out.leakage_power = params.sram_leakage_w_per_mb * s.total_mb *
                        (config.vdd / params.nominal_vdd) *
                        params.pcm_leakage_ratio;
    out.area_mm2 =
        params.sram_area_mm2_per_mb * s.total_mb * params.pcm_area_ratio;
    return out;
  }

  std::vector<TechAnchor> anchors(
      const ArrayModelParams& params) const override {
    (void)params;
    const ArrayConfig anchor{MemTech::kPcm, 256 * 1024, 32, 2, 1.0, 1};
    return {
        {"pcm-256KB-1.00V", anchor, 1029.0, 52080.0, 58.64, 469.12, 0.07048,
         0.18352},
    };
  }
};

// ---- eDRAM -------------------------------------------------------------

class EdramBackend final : public TechBackend {
 public:
  MemTech tech() const override { return MemTech::kEdram; }
  const char* name() const override { return "eDRAM"; }
  TechTraits traits() const override {
    TechTraits t;
    // Retention failure at a lowered rail maps onto the static cell-map
    // machinery: a cell whose retention margin is gone behaves like a
    // stuck SRAM cell. The retention margin sits below the SRAM noise
    // margin, hence the negative Vccmin shift.
    t.static_cell_faults = true;
    t.vccmin_shift_v = -0.05;
    return t;
  }

  ArrayFigures evaluate(const ArrayConfig& config,
                        const ArrayModelParams& params) const override {
    const Scales s = scales_of(config, params);
    ArrayFigures out;
    const double geom =
        capacity_scale(s.per_bank_capacity, kAnchorCapacityNvm,
                       params.latency_capacity_exponent);
    // 1T1C sensing: destructive read + restore, symmetric and slower than
    // SRAM, voltage-flat (the Vdd dependence shows up as refresh below).
    out.read_latency = round_ps(params.edram_read_ps_256k * geom);
    out.write_latency = out.read_latency;

    const double energy =
        params.edram_read_energy_pj_256k *
        capacity_scale(s.per_bank_capacity, kAnchorCapacityNvm,
                       params.energy_capacity_exponent) *
        s.block_scale * s.assoc_scale * s.volt_energy;
    out.read_energy = energy;
    out.write_energy = energy;

    // Always-on power = cell/peripheral leakage (linear in Vdd, like the
    // other backends) + the refresh tax: refresh rate is the reciprocal of
    // retention time, which collapses exponentially below nominal Vdd.
    // Both terms are linear in capacity (conformance: leakage linearity).
    const double refresh_w =
        params.edram_refresh_w_per_mb * s.total_mb /
        tech::retention_scale(params.edram_retention_volt_k,
                              params.nominal_vdd, config.vdd);
    out.leakage_power = params.sram_leakage_w_per_mb * s.total_mb *
                            (config.vdd / params.nominal_vdd) *
                            params.edram_leakage_ratio +
                        refresh_w;
    out.area_mm2 =
        params.sram_area_mm2_per_mb * s.total_mb * params.edram_area_ratio;
    return out;
  }

  std::vector<TechAnchor> anchors(
      const ArrayModelParams& params) const override {
    (void)params;
    const ArrayConfig anchor{MemTech::kEdram, 256 * 1024, 32, 2, 1.0, 1};
    // Leakage anchor = 0.2 * 0.881 (cell/peripheral) + 0.30/4 (refresh).
    return {
        {"edram-256KB-1.00V", anchor, 750.0, 750.0, 33.93, 33.93, 0.2512,
         0.32116},
    };
  }
};

}  // namespace

TechnologyRegistry::TechnologyRegistry() {
  backends_.push_back(std::make_unique<SramBackend>());
  backends_.push_back(std::make_unique<SttRamBackend>());
  backends_.push_back(std::make_unique<PcmBackend>());
  backends_.push_back(std::make_unique<EdramBackend>());
  view_.reserve(backends_.size());
  for (const auto& b : backends_) view_.push_back(b.get());
}

const TechnologyRegistry& TechnologyRegistry::instance() {
  static const TechnologyRegistry registry;
  return registry;
}

const TechBackend& TechnologyRegistry::backend(MemTech tech) const {
  for (const TechBackend* b : view_) {
    if (b->tech() == tech) return *b;
  }
  RESPIN_REQUIRE(false, "memory technology has no registered backend");
  throw std::logic_error("unreachable");
}

const TechBackend* TechnologyRegistry::find(const std::string& name) const {
  for (const TechBackend* b : view_) {
    if (name == b->name()) return b;
  }
  return nullptr;
}

}  // namespace respin::nvsim
