// Pluggable memory-technology backends.
//
// A TechBackend packages everything the rest of the simulator needs to
// know about one memory-cell technology:
//
//   * evaluate()  — the analytical latency/energy/leakage/area model
//                   (anchor points + scaling laws + Vdd laws);
//   * anchors()   — the calibration anchor points as data, so the shared
//                   conformance suite (tests/tech_backend_conformance_test)
//                   can hold every backend to the same contract;
//   * traits()    — per-technology fault-model and pipelining hooks the
//                   configuration layer and ClusterSim consult instead of
//                   hard-coding `tech == kSttRam` style tests.
//
// The four built-in backends (SRAM, STT-RAM, PCM, eDRAM) register in the
// process-wide TechnologyRegistry; SRAM and STT-RAM reproduce the original
// hard-coded model bit-for-bit (the golden grid pins this). Adding a
// technology means writing one backend class, registering it, and passing
// the conformance suite — see docs/technologies.md for the checklist.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nvsim/array_model.hpp"

namespace respin::nvsim {

/// One calibration anchor: a concrete configuration and the figures the
/// backend must reproduce for it (to four significant digits — the
/// conformance suite allows integer-rounding slack on the latencies).
struct TechAnchor {
  const char* label = "";
  ArrayConfig config;
  double read_ps = 0.0;
  double write_ps = 0.0;
  double read_pj = 0.0;
  double write_pj = 0.0;
  double leakage_w = 0.0;
  double area_mm2 = 0.0;
};

/// Per-technology hooks for the fault model (src/fault) and the shared
/// cache controller. These replace scattered `tech == k...` tests: the
/// configuration layer and ClusterSim consult the backend instead.
struct TechTraits {
  /// Cells fail statically below a voltage margin: the injector builds
  /// per-(set,way) cell maps from the Gaussian-Vccmin model. SRAM's
  /// Vccmin cliff; eDRAM maps retention failure onto the same machinery
  /// via `vccmin_shift_v`.
  bool static_cell_faults = false;
  /// Writes fail stochastically and are retried (capped-geometric draws).
  /// STT-RAM's thermally activated MTJ switching; PCM reuses the same
  /// machinery at an elevated rate (`write_fail_multiplier`) to model
  /// write wear.
  bool write_retry_faults = false;
  /// Multiplier on the plan's per-attempt write-failure probability
  /// (PCM wear; 1.0 for STT-RAM).
  double write_fail_multiplier = 1.0;
  /// Additive shift, volts, on the plan's mean cell Vccmin (eDRAM's
  /// retention margin differs from the SRAM noise margin; 0 for SRAM).
  double vccmin_shift_v = 0.0;
  /// The shared controller pipelines reads to one reference cycle
  /// (paper §II pipelines the STT-RAM read); otherwise occupancy is
  /// derived from the array's read latency.
  bool pipelined_reads = false;
  /// Cells hold state without power (drives nothing yet; documented for
  /// the checkpoint/power-gating items on the roadmap).
  bool non_volatile = false;
};

/// Interface one memory technology implements. Stateless: all calibration
/// flows through ArrayModelParams so tests can perturb constants.
class TechBackend {
 public:
  virtual ~TechBackend() = default;
  virtual MemTech tech() const = 0;
  /// Printable name; round-trips through parse_mem_tech().
  virtual const char* name() const = 0;
  virtual TechTraits traits() const = 0;
  /// The analytical model. `config` has already passed validate().
  virtual ArrayFigures evaluate(const ArrayConfig& config,
                                const ArrayModelParams& params) const = 0;
  /// Calibration anchors the conformance suite checks evaluate() against.
  virtual std::vector<TechAnchor> anchors(
      const ArrayModelParams& params) const = 0;
};

/// Process-wide registry of technology backends. Construction registers
/// the four built-ins; lookup by enum is O(1), by name linear (names are
/// only parsed at the CLI boundary).
class TechnologyRegistry {
 public:
  static const TechnologyRegistry& instance();

  /// The backend for `tech`; every MemTech value has one.
  const TechBackend& backend(MemTech tech) const;
  /// Lookup by printable name; nullptr when unknown.
  const TechBackend* find(const std::string& name) const;
  /// Every registered backend, in MemTech declaration order.
  const std::vector<const TechBackend*>& all() const { return view_; }

 private:
  TechnologyRegistry();
  std::vector<std::unique_ptr<TechBackend>> backends_;
  std::vector<const TechBackend*> view_;
};

}  // namespace respin::nvsim
