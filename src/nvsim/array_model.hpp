// Analytical memory-array model (NVSim + CACTI substitute).
//
// The paper extracted cache latency/energy/area/leakage from NVSim combined
// with CACTI. Those tools are not redistributable, so this module implements
// an analytical model with the same structure — geometry-driven latency,
// capacity-power-law energy, linear-in-Vdd leakage — calibrated so that it
// reproduces the paper's Table III anchor points exactly:
//
//   SRAM 16KB x 16 @0.65V : rd/wr 1337 ps, 2.578 pJ, 573 mW, 0.9176 mm2
//   SRAM 16KB x 16 @1.00V : rd/wr 211.9 ps, 6.102 pJ, 881 mW, 0.9176 mm2
//   SRAM 256KB     @1.00V : rd/wr 533.6 ps, 42.41 pJ, 881 mW, 0.9176 mm2
//   STT  256KB     @1.00V : rd 588.2 / wr 5208 ps, 29.32 pJ, 114 mW, 0.2451 mm2
//
// Scaling laws inferred from (and consistent with) those anchors:
//   latency ∝ capacity^(1/3)           (533.6 / 211.9 = 16^(1/3))
//   energy  ∝ capacity^0.7 · Vdd²      (42.41 / 6.102 = 16^0.7; 0.65² = 0.4225)
//   leakage ∝ capacity · Vdd           (573 / 881 = 0.65)
//   SRAM latency degrades exponentially below nominal Vdd
//                                      (1337 / 211.9 at ΔV = 0.35)
//
// Each technology is a pluggable backend object (see tech_backend.hpp);
// the free evaluate() below dispatches through the TechnologyRegistry, so
// PCM and eDRAM (analytically calibrated, see docs/technologies.md) slot
// in beside the two paper technologies without touching any caller.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace respin::nvsim {

/// Memory cell technology for an on-chip array. Each value is backed by a
/// TechBackend registered in the TechnologyRegistry (tech_backend.hpp).
enum class MemTech { kSram, kSttRam, kPcm, kEdram };

/// Returns a printable name ("SRAM" / "STT-RAM" / "PCM" / "eDRAM").
const char* to_string(MemTech tech);

/// Parses a technology name as printed by to_string (case-sensitive);
/// throws InvalidArrayConfig on unknown names.
MemTech parse_mem_tech(const std::string& name);

/// Physical configuration of one cache data array.
struct ArrayConfig {
  MemTech tech = MemTech::kSram;
  std::uint64_t capacity_bytes = 0;  ///< Total data capacity.
  std::uint32_t block_bytes = 32;    ///< Line size (affects energy/access).
  std::uint32_t associativity = 2;
  double vdd = 1.0;                  ///< Supply voltage of the array rail.
  std::uint32_t bank_count = 1;      ///< Banks; latency is per-bank.

  /// Validating factory: returns the config after validate() has accepted
  /// it, so construction sites can make malformed geometry (zero capacity,
  /// zero associativity, ...) fail loudly at build time instead of
  /// surfacing as a division hazard downstream.
  static ArrayConfig validated(ArrayConfig config);
};

/// Typed error for nonsensical array configurations. Derives
/// std::invalid_argument (itself a std::logic_error), so existing callers
/// that catch std::logic_error keep working.
class InvalidArrayConfig : public std::invalid_argument {
 public:
  explicit InvalidArrayConfig(const std::string& what)
      : std::invalid_argument("nvsim: invalid array config: " + what) {}
};

/// Derived timing, energy and area figures for an array.
struct ArrayFigures {
  util::Picoseconds read_latency = 0;
  util::Picoseconds write_latency = 0;
  util::Picojoules read_energy = 0.0;   ///< Per access (one block).
  util::Picojoules write_energy = 0.0;  ///< Per access (one block).
  util::Watts leakage_power = 0.0;      ///< Whole array, always-on.
  double area_mm2 = 0.0;
};

/// Calibration constants; the defaults reproduce Table III (see above).
/// PCM and eDRAM have no Table III row: their anchors are analytic,
/// derived from published device ratios (see docs/technologies.md).
struct ArrayModelParams {
  // SRAM anchors at 16 KB, 1.0 V, 32 B block.
  double sram_base_read_ps = 211.9;
  double sram_base_energy_pj = 6.102;
  double sram_leakage_w_per_mb = 0.881 / 0.25;  ///< 881 mW per 256 KB.
  double sram_area_mm2_per_mb = 0.9176 / 0.25;
  /// exp(k·(Vnom - V)) latency degradation below nominal for SRAM
  /// (sense margin loss); k fits the 0.65 V anchor: ln(1337/211.9)/0.35.
  double sram_latency_volt_k = 5.262;

  // STT-RAM anchors at 256 KB, 1.0 V.
  double stt_read_ps_256k = 588.2;
  double stt_write_ps_256k = 5208.0;
  double stt_read_energy_pj_256k = 29.32;
  double stt_write_energy_factor = 3.0;   ///< wr energy = factor · rd energy.
  double stt_leakage_ratio = 114.0 / 881.0;  ///< vs SRAM at same size/Vdd.
  double stt_area_ratio = 0.2451 / 0.9176;   ///< MTJ density advantage.

  // PCM anchors at 256 KB, 1.0 V. Reads sense resistance (slower than the
  // MTJ), writes melt/crystallize the cell: a ~10x slower, much more
  // energetic pulse than STT-RAM's, and the cell wears out — the write
  // fault model runs at an elevated failure rate (TechTraits).
  double pcm_read_ps_256k = 1029.0;          ///< ~1.75x the STT read.
  double pcm_write_ps_256k = 52080.0;        ///< ~10x the STT write pulse.
  double pcm_read_energy_pj_256k = 58.64;    ///< ~2x the STT read energy.
  double pcm_write_energy_factor = 8.0;      ///< SET/RESET pulse energy.
  double pcm_leakage_ratio = 0.08;           ///< vs SRAM at same size/Vdd.
  double pcm_area_ratio = 0.2;               ///< Densest of the four.

  // eDRAM anchors at 256 KB, 1.0 V. 1T1C cells: denser and lower-leakage
  // than SRAM but slower to sense, and the stored charge decays — the
  // array pays a refresh-power tax that grows as retention collapses at
  // lowered Vdd (tech::retention_scale).
  double edram_read_ps_256k = 750.0;         ///< ~1.4x the SRAM 256 KB read.
  double edram_read_energy_pj_256k = 33.93;  ///< ~0.8x the SRAM 256 KB read.
  double edram_leakage_ratio = 0.2;          ///< Cell/peripheral, vs SRAM.
  double edram_refresh_w_per_mb = 0.30;      ///< Refresh power at nominal.
  double edram_retention_volt_k = 3.0;       ///< Retention ∝ exp(k·(V-Vnom)).
  double edram_area_ratio = 0.35;

  // Shared scaling exponents.
  double latency_capacity_exponent = 1.0 / 3.0;
  double energy_capacity_exponent = 0.7;
  double energy_block_exponent = 0.6;  ///< Energy vs line size (wider reads).

  double nominal_vdd = 1.0;
  double min_vdd = 0.3;  ///< Below this the model refuses to evaluate.
};

/// Throws InvalidArrayConfig on nonsensical configurations: zero capacity,
/// block size or associativity (division hazards in the set/geometry
/// math), zero banks, or Vdd below params.min_vdd.
void validate(const ArrayConfig& config,
              const ArrayModelParams& params = ArrayModelParams{});

/// Evaluates the analytical model for one array configuration by
/// dispatching to the technology's registered backend.
///
/// Latency is per-bank (banking divides capacity before the geometry term);
/// leakage and area cover all banks. Throws InvalidArrayConfig (a
/// std::logic_error) on nonsensical configurations — see validate().
ArrayFigures evaluate(const ArrayConfig& config,
                      const ArrayModelParams& params = ArrayModelParams{});

/// Convenience: a one-line summary of a configuration ("SRAM 256KB @1.00V").
std::string describe(const ArrayConfig& config);

/// SECDED (Hamming + overall parity) check bits protecting `data_bits`:
/// the smallest r with 2^r >= data_bits + r + 1, plus one. 8 for a 64-bit
/// word. The fault model counts these cells in its per-word failure math
/// (a stuck check bit consumes correction capability like a data bit).
std::uint32_t secded_check_bits(std::uint32_t data_bits);

}  // namespace respin::nvsim
