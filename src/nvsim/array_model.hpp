// Analytical SRAM / STT-RAM array model (NVSim + CACTI substitute).
//
// The paper extracted cache latency/energy/area/leakage from NVSim combined
// with CACTI. Those tools are not redistributable, so this module implements
// an analytical model with the same structure — geometry-driven latency,
// capacity-power-law energy, linear-in-Vdd leakage — calibrated so that it
// reproduces the paper's Table III anchor points exactly:
//
//   SRAM 16KB x 16 @0.65V : rd/wr 1337 ps, 2.578 pJ, 573 mW, 0.9176 mm2
//   SRAM 16KB x 16 @1.00V : rd/wr 211.9 ps, 6.102 pJ, 881 mW, 0.9176 mm2
//   SRAM 256KB     @1.00V : rd/wr 533.6 ps, 42.41 pJ, 881 mW, 0.9176 mm2
//   STT  256KB     @1.00V : rd 588.2 / wr 5208 ps, 29.32 pJ, 114 mW, 0.2451 mm2
//
// Scaling laws inferred from (and consistent with) those anchors:
//   latency ∝ capacity^(1/3)           (533.6 / 211.9 = 16^(1/3))
//   energy  ∝ capacity^0.7 · Vdd²      (42.41 / 6.102 = 16^0.7; 0.65² = 0.4225)
//   leakage ∝ capacity · Vdd           (573 / 881 = 0.65)
//   SRAM latency degrades exponentially below nominal Vdd
//                                      (1337 / 211.9 at ΔV = 0.35)
#pragma once

#include <cstdint>
#include <string>

#include "util/units.hpp"

namespace respin::nvsim {

/// Memory cell technology for an on-chip array.
enum class MemTech { kSram, kSttRam };

/// Returns a printable name ("SRAM" / "STT-RAM").
const char* to_string(MemTech tech);

/// Physical configuration of one cache data array.
struct ArrayConfig {
  MemTech tech = MemTech::kSram;
  std::uint64_t capacity_bytes = 0;  ///< Total data capacity.
  std::uint32_t block_bytes = 32;    ///< Line size (affects energy/access).
  std::uint32_t associativity = 2;
  double vdd = 1.0;                  ///< Supply voltage of the array rail.
  std::uint32_t bank_count = 1;      ///< Banks; latency is per-bank.
};

/// Derived timing, energy and area figures for an array.
struct ArrayFigures {
  util::Picoseconds read_latency = 0;
  util::Picoseconds write_latency = 0;
  util::Picojoules read_energy = 0.0;   ///< Per access (one block).
  util::Picojoules write_energy = 0.0;  ///< Per access (one block).
  util::Watts leakage_power = 0.0;      ///< Whole array, always-on.
  double area_mm2 = 0.0;
};

/// Calibration constants; the defaults reproduce Table III (see above).
struct ArrayModelParams {
  // SRAM anchors at 16 KB, 1.0 V, 32 B block.
  double sram_base_read_ps = 211.9;
  double sram_base_energy_pj = 6.102;
  double sram_leakage_w_per_mb = 0.881 / 0.25;  ///< 881 mW per 256 KB.
  double sram_area_mm2_per_mb = 0.9176 / 0.25;
  /// exp(k·(Vnom - V)) latency degradation below nominal for SRAM
  /// (sense margin loss); k fits the 0.65 V anchor: ln(1337/211.9)/0.35.
  double sram_latency_volt_k = 5.262;

  // STT-RAM anchors at 256 KB, 1.0 V.
  double stt_read_ps_256k = 588.2;
  double stt_write_ps_256k = 5208.0;
  double stt_read_energy_pj_256k = 29.32;
  double stt_write_energy_factor = 3.0;   ///< wr energy = factor · rd energy.
  double stt_leakage_ratio = 114.0 / 881.0;  ///< vs SRAM at same size/Vdd.
  double stt_area_ratio = 0.2451 / 0.9176;   ///< MTJ density advantage.

  // Shared scaling exponents.
  double latency_capacity_exponent = 1.0 / 3.0;
  double energy_capacity_exponent = 0.7;
  double energy_block_exponent = 0.6;  ///< Energy vs line size (wider reads).

  double nominal_vdd = 1.0;
  double min_vdd = 0.3;  ///< Below this the model refuses to evaluate.
};

/// Evaluates the analytical model for one array configuration.
///
/// Latency is per-bank (banking divides capacity before the geometry term);
/// leakage and area cover all banks. Throws std::logic_error on nonsensical
/// configurations (zero capacity, Vdd below min_vdd, associativity of 0).
ArrayFigures evaluate(const ArrayConfig& config,
                      const ArrayModelParams& params = ArrayModelParams{});

/// Convenience: a one-line summary of a configuration ("SRAM 256KB @1.00V").
std::string describe(const ArrayConfig& config);

/// SECDED (Hamming + overall parity) check bits protecting `data_bits`:
/// the smallest r with 2^r >= data_bits + r + 1, plus one. 8 for a 64-bit
/// word. The fault model counts these cells in its per-word failure math
/// (a stuck check bit consumes correction capability like a data bit).
std::uint32_t secded_check_bits(std::uint32_t data_bits);

}  // namespace respin::nvsim
