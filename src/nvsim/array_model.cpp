#include "nvsim/array_model.hpp"

#include <cmath>
#include <sstream>

#include "util/require.hpp"

namespace respin::nvsim {

const char* to_string(MemTech tech) {
  switch (tech) {
    case MemTech::kSram:
      return "SRAM";
    case MemTech::kSttRam:
      return "STT-RAM";
  }
  return "?";
}

namespace {

constexpr double kAnchorCapacitySram = 16.0 * 1024.0;   // 16 KB.
constexpr double kAnchorCapacityStt = 256.0 * 1024.0;   // 256 KB.
constexpr double kAnchorBlock = 32.0;

double capacity_scale(double capacity, double anchor, double exponent) {
  return std::pow(capacity / anchor, exponent);
}

}  // namespace

ArrayFigures evaluate(const ArrayConfig& config,
                      const ArrayModelParams& params) {
  RESPIN_REQUIRE(config.capacity_bytes > 0, "array capacity must be > 0");
  RESPIN_REQUIRE(config.block_bytes > 0, "block size must be > 0");
  RESPIN_REQUIRE(config.associativity > 0, "associativity must be > 0");
  RESPIN_REQUIRE(config.bank_count > 0, "bank count must be > 0");
  RESPIN_REQUIRE(config.vdd >= params.min_vdd,
                 "array Vdd below model validity range");

  const double per_bank_capacity =
      static_cast<double>(config.capacity_bytes) / config.bank_count;
  const double total_mb =
      static_cast<double>(config.capacity_bytes) / (1024.0 * 1024.0);
  const double block_scale =
      std::pow(static_cast<double>(config.block_bytes) / kAnchorBlock,
               params.energy_block_exponent);
  // Highly associative arrays burn extra tag/compare energy; mild penalty.
  const double assoc_scale =
      1.0 + 0.03 * (static_cast<double>(config.associativity) - 2.0);
  const double volt_energy =
      (config.vdd / params.nominal_vdd) * (config.vdd / params.nominal_vdd);

  ArrayFigures out;
  if (config.tech == MemTech::kSram) {
    const double geom = capacity_scale(per_bank_capacity, kAnchorCapacitySram,
                                       params.latency_capacity_exponent);
    const double volt_latency =
        std::exp(params.sram_latency_volt_k *
                 (params.nominal_vdd - config.vdd));
    const double latency_ps =
        params.sram_base_read_ps * geom * volt_latency;
    out.read_latency = static_cast<util::Picoseconds>(latency_ps + 0.5);
    out.write_latency = out.read_latency;  // 6T SRAM: symmetric access.

    const double energy =
        params.sram_base_energy_pj *
        capacity_scale(per_bank_capacity, kAnchorCapacitySram,
                       params.energy_capacity_exponent) *
        block_scale * assoc_scale * volt_energy;
    out.read_energy = energy;
    out.write_energy = energy;

    out.leakage_power = params.sram_leakage_w_per_mb * total_mb *
                        (config.vdd / params.nominal_vdd);
    out.area_mm2 = params.sram_area_mm2_per_mb * total_mb;
  } else {
    const double geom = capacity_scale(per_bank_capacity, kAnchorCapacityStt,
                                       params.latency_capacity_exponent);
    // STT-RAM sensing degrades only mildly below nominal (current sensing),
    // but the paper never operates it below nominal; keep the read path
    // voltage-flat and let RESPIN_REQUIRE guard the validity range.
    out.read_latency = static_cast<util::Picoseconds>(
        params.stt_read_ps_256k * geom + 0.5);
    // MTJ write time is cell-limited, not geometry-limited: the 5.2 ns pulse
    // dominates; only a small peripheral term scales with bank size.
    const double write_ps =
        params.stt_write_ps_256k +
        0.15 * params.stt_read_ps_256k * (geom - 1.0);
    out.write_latency =
        static_cast<util::Picoseconds>(std::max(write_ps, 0.0) + 0.5);

    const double read_energy =
        params.stt_read_energy_pj_256k *
        capacity_scale(per_bank_capacity, kAnchorCapacityStt,
                       params.energy_capacity_exponent) *
        block_scale * assoc_scale * volt_energy;
    out.read_energy = read_energy;
    out.write_energy = read_energy * params.stt_write_energy_factor;

    out.leakage_power = params.sram_leakage_w_per_mb * total_mb *
                        (config.vdd / params.nominal_vdd) *
                        params.stt_leakage_ratio;
    out.area_mm2 =
        params.sram_area_mm2_per_mb * total_mb * params.stt_area_ratio;
  }
  return out;
}

std::string describe(const ArrayConfig& config) {
  std::ostringstream os;
  const auto kb = config.capacity_bytes / 1024;
  os << to_string(config.tech) << " ";
  if (kb >= 1024 && kb % 1024 == 0) {
    os << (kb / 1024) << "MB";
  } else {
    os << kb << "KB";
  }
  if (config.bank_count > 1) os << "x" << config.bank_count << "banks";
  os << " @" << config.vdd << "V";
  return os.str();
}

std::uint32_t secded_check_bits(std::uint32_t data_bits) {
  RESPIN_REQUIRE(data_bits > 0, "SECDED word must hold at least one bit");
  std::uint32_t r = 0;
  while ((1ull << r) < std::uint64_t{data_bits} + r + 1) ++r;
  return r + 1;  // + overall parity for double-error detection.
}

}  // namespace respin::nvsim
