#include "nvsim/array_model.hpp"

#include <sstream>

#include "nvsim/tech_backend.hpp"
#include "util/require.hpp"

namespace respin::nvsim {

const char* to_string(MemTech tech) {
  switch (tech) {
    case MemTech::kSram:
      return "SRAM";
    case MemTech::kSttRam:
      return "STT-RAM";
    case MemTech::kPcm:
      return "PCM";
    case MemTech::kEdram:
      return "eDRAM";
  }
  return "?";
}

MemTech parse_mem_tech(const std::string& name) {
  const TechBackend* backend = TechnologyRegistry::instance().find(name);
  if (backend == nullptr) {
    throw InvalidArrayConfig("unknown memory technology '" + name + "'");
  }
  return backend->tech();
}

void validate(const ArrayConfig& config, const ArrayModelParams& params) {
  if (config.capacity_bytes == 0) {
    throw InvalidArrayConfig("array capacity must be > 0");
  }
  if (config.block_bytes == 0) {
    throw InvalidArrayConfig("block size must be > 0");
  }
  if (config.associativity == 0) {
    throw InvalidArrayConfig("associativity must be > 0");
  }
  if (config.bank_count == 0) {
    throw InvalidArrayConfig("bank count must be > 0");
  }
  if (!(config.vdd >= params.min_vdd)) {
    throw InvalidArrayConfig("array Vdd below model validity range");
  }
}

ArrayConfig ArrayConfig::validated(ArrayConfig config) {
  validate(config);
  return config;
}

ArrayFigures evaluate(const ArrayConfig& config,
                      const ArrayModelParams& params) {
  validate(config, params);
  return TechnologyRegistry::instance().backend(config.tech).evaluate(config,
                                                                      params);
}

std::string describe(const ArrayConfig& config) {
  std::ostringstream os;
  const auto kb = config.capacity_bytes / 1024;
  os << to_string(config.tech) << " ";
  if (kb >= 1024 && kb % 1024 == 0) {
    os << (kb / 1024) << "MB";
  } else {
    os << kb << "KB";
  }
  if (config.bank_count > 1) os << "x" << config.bank_count << "banks";
  os << " @" << config.vdd << "V";
  return os.str();
}

std::uint32_t secded_check_bits(std::uint32_t data_bits) {
  RESPIN_REQUIRE(data_bits > 0, "SECDED word must hold at least one bit");
  std::uint32_t r = 0;
  while ((1ull << r) < std::uint64_t{data_bits} + r + 1) ++r;
  return r + 1;  // + overall parity for double-error detection.
}

}  // namespace respin::nvsim
