// Process technology and voltage-scaling models.
//
// Respin's chip uses two externally regulated voltage rails (paper §II):
//   * core rail  : near-threshold Vdd (0.40 V)
//   * cache rail : nominal Vdd (1.00 V) for STT-RAM / shared SRAM, or a
//                  0.65 V "safe SRAM" rail for the private-SRAM NT baseline.
//
// Frequency follows the alpha-power law   f ∝ (Vdd - Vth)^alpha / Vdd,
// dynamic energy per operation scales as Vdd², and leakage power scales
// roughly linearly in Vdd with a sub-threshold correction — the same
// first-order models used by the paper's toolchain (McPAT/VARIUS).
#pragma once

#include "util/units.hpp"

namespace respin::tech {

/// Static process parameters for the modeled 22 nm node.
struct TechnologyParams {
  double nominal_vdd = 1.00;        ///< Volts; "high" rail.
  double nt_core_vdd = 0.40;        ///< Volts; near-threshold core rail.
  double sram_safe_vdd = 0.65;      ///< Volts; minimum reliable SRAM rail.
  double vth_mean = 0.30;           ///< Volts; mean threshold voltage.
  double vth_sigma_ratio = 0.05;    ///< sigma(Vth)/mean(Vth) (VARIUS-style).
  double alpha = 1.3;               ///< Alpha-power-law velocity saturation.
  /// Core-logic leakage: P_leak ∝ Vdd^exponent, near-linear (matching the
  /// paper's "leakage power only scales linearly" and, independently, the
  /// Table III SRAM anchors). Fitted jointly with the core calibration so
  /// the Fig. 9 suite-level energy ratios (SH-STT -23%, HP-SRAM-CMP +40%)
  /// reproduce; cache arrays use the nvsim model's own linear law.
  double leakage_vdd_exponent = 1.015;
  /// Frequency (Hz) of a nominal-Vth critical path at nominal Vdd.
  double nominal_frequency_hz = 2.5e9;

  /// Returns the default parameter set used throughout the paper repro.
  static TechnologyParams ipdps2017();
};

/// Maximum stable clock frequency (Hz) for a critical path with threshold
/// voltage `vth`, supplied at `vdd`, in technology `tech`.
/// Returns 0 when vdd <= vth (the circuit does not switch).
double max_frequency_hz(const TechnologyParams& tech, double vdd, double vth);

/// Dynamic-energy multiplier relative to nominal Vdd (Vdd² scaling).
double dynamic_energy_scale(const TechnologyParams& tech, double vdd);

/// Leakage-power multiplier relative to nominal Vdd.
double leakage_power_scale(const TechnologyParams& tech, double vdd);

// ---- Shared voltage laws for memory-cell technologies ------------------
// The nvsim technology backends consume these so every backend expresses
// its Vdd dependence through the same two first-order laws: exponential
// degradation of a margin-limited path below nominal (SRAM sense margin),
// and exponential retention loss below nominal (eDRAM cell charge).

/// exp(k · (Vnom - Vdd)): multiplier on a margin-limited access path as
/// the rail drops below nominal. 1.0 at nominal, growing exponentially
/// below it (SRAM's sense-margin latency cliff).
double subnominal_latency_scale(double k, double nominal_vdd, double vdd);

/// exp(k · (Vdd - Vnom)): retention-time multiplier of a charge-storage
/// cell versus the rail. 1.0 at nominal, collapsing exponentially below it
/// — its reciprocal is the refresh-rate (and refresh-power) tax an eDRAM
/// array pays for running at a lowered Vdd.
double retention_scale(double k, double nominal_vdd, double vdd);

/// A named voltage rail.
struct VoltageDomain {
  const char* name;
  double vdd;
};

/// Level shifter inserted on every low-to-high voltage domain crossing
/// (paper §II; delay from Dreslinski et al. [15]). Down-shifts are free.
struct LevelShifter {
  util::Picoseconds up_shift_delay = util::ns(0.75);
  util::Picojoules energy_per_crossing = 0.08;  // pJ; small vs cache access.
};

/// Per-cluster PLL: generates the fast cache reference clock; each core
/// divides it by an integer multiplier so every request aligns with cache
/// cycle boundaries (paper §II).
struct ClusterClocking {
  util::Picoseconds cache_period = util::ns(0.4);  ///< 2.5 GHz reference.
  int min_core_multiplier = 4;                     ///< 1.6 ns fastest core.
  int max_core_multiplier = 6;                     ///< 2.4 ns slowest core.

  /// Quantizes a core's maximum frequency to the smallest usable integer
  /// multiplier of the cache period (rounding the period up — a core can
  /// always run slower than its maximum, never faster).
  int multiplier_for_max_frequency(double max_hz) const;

  util::Picoseconds core_period(int multiplier) const {
    return cache_period * multiplier;
  }
};

}  // namespace respin::tech
