#include "tech/technology.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace respin::tech {

TechnologyParams TechnologyParams::ipdps2017() { return TechnologyParams{}; }

double max_frequency_hz(const TechnologyParams& tech, double vdd, double vth) {
  RESPIN_REQUIRE(vdd > 0.0, "vdd must be positive");
  if (vdd <= vth) return 0.0;
  // Alpha-power law, normalized so a nominal-Vth path at nominal Vdd runs at
  // tech.nominal_frequency_hz.
  auto drive = [&](double v, double t) {
    return std::pow(v - t, tech.alpha) / v;
  };
  const double nominal = drive(tech.nominal_vdd, tech.vth_mean);
  return tech.nominal_frequency_hz * drive(vdd, vth) / nominal;
}

double dynamic_energy_scale(const TechnologyParams& tech, double vdd) {
  const double ratio = vdd / tech.nominal_vdd;
  return ratio * ratio;
}

double leakage_power_scale(const TechnologyParams& tech, double vdd) {
  const double ratio = vdd / tech.nominal_vdd;
  return std::pow(ratio, tech.leakage_vdd_exponent);
}

double subnominal_latency_scale(double k, double nominal_vdd, double vdd) {
  return std::exp(k * (nominal_vdd - vdd));
}

double retention_scale(double k, double nominal_vdd, double vdd) {
  return std::exp(k * (vdd - nominal_vdd));
}

int ClusterClocking::multiplier_for_max_frequency(double max_hz) const {
  RESPIN_REQUIRE(max_hz > 0.0, "core max frequency must be positive");
  const double min_period_ps = 1e12 / max_hz;
  // Round the period up to the next integer multiple of the cache period.
  const auto cache_ps = static_cast<double>(cache_period);
  int multiplier = static_cast<int>(std::ceil(min_period_ps / cache_ps));
  multiplier = std::clamp(multiplier, min_core_multiplier, max_core_multiplier);
  return multiplier;
}

}  // namespace respin::tech
