#include "serve/router.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/config.hpp"
#include "core/serde.hpp"
#include "util/require.hpp"
#include "workload/workload.hpp"

namespace respin::serve {

namespace obsj = respin::obs::json;

namespace {

obsj::Value ok_response(const char* op) {
  obsj::Value v = obsj::Value::object();
  v.set("ok", obsj::Value::boolean(true));
  v.set("op", obsj::Value::str(op));
  return v;
}

obsj::Value error_response(const char* op, const char* kind,
                           const std::string& message) {
  obsj::Value v = obsj::Value::object();
  v.set("ok", obsj::Value::boolean(false));
  if (op != nullptr) v.set("op", obsj::Value::str(op));
  obsj::Value error = obsj::Value::object();
  error.set("kind", obsj::Value::str(kind));
  error.set("message", obsj::Value::str(message));
  v.set("error", std::move(error));
  return v;
}

void require_known_benchmark(const std::string& name) {
  const std::vector<std::string> names = workload::benchmark_names();
  RESPIN_REQUIRE(std::find(names.begin(), names.end(), name) != names.end(),
                 "unknown benchmark '" + name + "'");
}

obsj::Value number_u64(std::uint64_t n) { return obsj::Value::number(n); }

}  // namespace

// --- TcpWorker ------------------------------------------------------------

TcpWorker::TcpWorker(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port) {}

std::string TcpWorker::name() const {
  return host_ + ":" + std::to_string(port_);
}

LineClient TcpWorker::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!idle_.empty()) {
    LineClient client = std::move(idle_.back());
    idle_.pop_back();
    return client;
  }
  return LineClient(host_, port_);
}

void TcpWorker::release(LineClient client) {
  std::lock_guard<std::mutex> lock(mu_);
  idle_.push_back(std::move(client));
}

std::string TcpWorker::call(const std::string& line) {
  LineClient client = acquire();
  try {
    std::string response = client.roundtrip(line);
    release(std::move(client));
    return response;
  } catch (const std::exception&) {
    // Stale pooled connection (worker restarted): one fresh redial. The
    // protocol is idempotent, so re-sending the same request is safe.
  }
  LineClient fresh(host_, port_);
  std::string response = fresh.roundtrip(line);  // Throws to the caller.
  release(std::move(fresh));
  return response;
}

// --- Router ---------------------------------------------------------------

/// Counts a request as active for drain() while it is being handled.
struct Router::ActiveGuard {
  explicit ActiveGuard(Router& router) : router_(router) {
    std::lock_guard<std::mutex> lock(router_.mu_);
    ++router_.active_;
  }
  ~ActiveGuard() {
    {
      std::lock_guard<std::mutex> lock(router_.mu_);
      --router_.active_;
    }
    router_.idle_cv_.notify_all();
  }
  Router& router_;
};

Router::Router(const RouterConfig& config,
               std::vector<std::unique_ptr<WorkerBackend>> workers)
    : config_(config), workers_(std::move(workers)) {
  if (workers_.empty()) {
    throw std::logic_error("router needs at least one worker");
  }
  if (config_.backlog == 0) config_.backlog = 1;
  cost_model_.seed_from_store(config_.cost_seed_path);
}

Router::~Router() { drain(); }

void Router::begin_drain() { draining_.store(true, std::memory_order_release); }

void Router::drain() {
  begin_drain();
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return active_ == 0; });
}

std::size_t Router::shard_of(const std::string& key) const {
  return static_cast<std::size_t>(core::key_hash(key) % workers_.size());
}

std::string Router::handle_line(const std::string& line, const Emit& emit) {
  ActiveGuard guard(*this);
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  obsj::Value request;
  try {
    request = obsj::parse(line);
  } catch (const obsj::Error& e) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response(nullptr, "parse_error", e.what()).dump();
  }
  obsj::Value response;
  try {
    response = handle_request(request, line, emit);
  } catch (const std::exception& e) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    response = error_response(nullptr, "bad_request", e.what());
  }
  // Echo the client's correlation id — unless the response came back from
  // a worker that already echoed it (Value::set appends; a second set
  // would emit a duplicate member).
  if (const obsj::Value* id = request.find("id")) {
    if (response.find("id") == nullptr) response.set("id", *id);
  }
  return response.dump();
}

obsj::Value Router::handle_request(const obsj::Value& request,
                                   const std::string& line, const Emit& emit) {
  const obsj::Value* op_field = request.find("op");
  if (op_field == nullptr) {
    throw std::logic_error(
        "missing 'op' (valid: ping, version, run, sweep, get, list, pareto, "
        "stats, merge, compact, shutdown)");
  }
  const std::string& op = op_field->as_string();
  if (op == "ping") return ok_response("ping");
  if (op == "version") {
    obsj::Value v = ok_response("version");
    v.set("version", obsj::Value::str(config_.version));
    v.set("workers", number_u64(workers_.size()));
    return v;
  }
  if (op == "run" || op == "get") {
    std::string key;
    if (op == "get") {
      if (const obsj::Value* k = request.find("key")) key = k->as_string();
    }
    if (key.empty()) {
      key = core::canonical_key(core::request_spec_from_json(request));
    }
    if (op == "run" && draining()) {
      return error_response("run", "draining",
                            "router is draining; not accepting new work");
    }
    return forward_keyed(op == "run" ? "run" : "get", key, line);
  }
  if (op == "sweep") return do_sweep(request, emit);
  if (op == "list") return do_list();
  if (op == "pareto") return do_pareto(request);
  if (op == "stats") return do_stats();
  if (op == "merge" || op == "compact") {
    if (op == "merge" && request.find("path") == nullptr) {
      throw std::logic_error("merge needs a 'path' (JSONL store log to merge)");
    }
    // Replication: every worker absorbs the log / compacts its own store.
    obsj::Value v = ok_response(op == "merge" ? "merge" : "compact");
    v.set("workers", fan_out(line));
    return v;
  }
  if (op == "shutdown") {
    if (config_.forward_shutdown) {
      for (auto& worker : workers_) {
        try {
          (void)worker->call("{\"op\":\"shutdown\"}");
        } catch (const std::exception&) {
          worker_errors_.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    begin_drain();
    obsj::Value v = ok_response("shutdown");
    v.set("draining", obsj::Value::boolean(true));
    return v;
  }
  throw std::logic_error(
      "unknown op '" + op +
      "' (valid: ping, version, run, sweep, get, list, pareto, stats, "
      "merge, compact, shutdown)");
}

obsj::Value Router::forward_keyed(const char* op, const std::string& key,
                                  const std::string& line) {
  const std::size_t shard = shard_of(key);
  std::size_t served_by = shard;
  std::string wire;
  try {
    forwarded_.fetch_add(1, std::memory_order_relaxed);
    wire = workers_[shard]->call(line);
  } catch (const std::exception& primary) {
    worker_errors_.fetch_add(1, std::memory_order_relaxed);
    if (workers_.size() < 2) {
      return error_response(op, "worker_unavailable", primary.what());
    }
    // Failover: any worker can compute any key (determinism contract);
    // the result just lands in the wrong shard's store until a merge.
    served_by = (shard + 1) % workers_.size();
    try {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      wire = workers_[served_by]->call(line);
    } catch (const std::exception& secondary) {
      worker_errors_.fetch_add(1, std::memory_order_relaxed);
      return error_response(op, "worker_unavailable", secondary.what());
    }
  }
  obsj::Value response;
  try {
    response = obsj::parse(wire);
  } catch (const obsj::Error& e) {
    return error_response(op, "worker_protocol_error", e.what());
  }
  response.set("shard", number_u64(shard));
  response.set("worker", obsj::Value::str(workers_[served_by]->name()));
  return response;
}

obsj::Value Router::do_sweep(const obsj::Value& request, const Emit& emit) {
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  if (draining()) {
    return error_response("sweep", "draining",
                          "router is draining; not accepting new work");
  }
  const core::RequestSpec base = core::request_spec_from_json(request);
  RESPIN_REQUIRE(base.trace_file.empty(),
                 "sweep supports catalog benchmarks only");

  // Matrix axes, expanded exactly like a worker's own sweep so keys (and
  // therefore shard ownership) match between tiers.
  std::vector<core::ConfigId> configs;
  if (const obsj::Value* list = request.find("configs")) {
    for (const obsj::Value& name : list->as_array()) {
      configs.push_back(core::parse_config_id(name.as_string()));
    }
  } else {
    configs = core::all_config_ids();
  }
  std::vector<std::string> benchmarks;
  if (const obsj::Value* list = request.find("benchmarks")) {
    for (const obsj::Value& name : list->as_array()) {
      require_known_benchmark(name.as_string());
      benchmarks.push_back(name.as_string());
    }
  } else {
    benchmarks = workload::benchmark_names();
  }
  RESPIN_REQUIRE(!configs.empty() && !benchmarks.empty(),
                 "sweep needs at least one config and one benchmark");

  struct Cell {
    std::string key;
    std::string line;       ///< The forwarded `run` request line.
    std::string config;     ///< core::to_string name, for the cost model.
    std::string benchmark;
    double predicted = 0.0;
    std::size_t index = 0;  ///< Matrix order, the deterministic tiebreak.
  };
  std::vector<std::vector<Cell>> queues(workers_.size());
  std::size_t total = 0;
  for (const core::ConfigId config : configs) {
    for (const std::string& benchmark : benchmarks) {
      core::RequestSpec spec = base;
      spec.config = config;
      spec.benchmark = benchmark;
      Cell cell;
      cell.key = core::canonical_key(spec);
      obsj::Value run_request = core::request_spec_to_json(spec);
      run_request.set("op", obsj::Value::str("run"));
      cell.line = run_request.dump();
      cell.config = core::to_string(config);
      cell.benchmark = benchmark;
      cell.predicted = cost_model_.predict(cell.config, cell.benchmark);
      cell.index = total++;
      queues[shard_of(cell.key)].push_back(std::move(cell));
    }
  }
  sweep_cells_total_.fetch_add(total, std::memory_order_relaxed);

  // Longest-expected-first within each shard (LPT list scheduling): the
  // expensive cells start while there is still short work to pack behind
  // them, which bounds the shard's makespan. Matrix order breaks ties so
  // dispatch is deterministic.
  for (std::vector<Cell>& queue : queues) {
    std::sort(queue.begin(), queue.end(), [](const Cell& a, const Cell& b) {
      if (a.predicted != b.predicted) return a.predicted > b.predicted;
      return a.index < b.index;
    });
  }

  const obsj::Value* id = request.find("id");
  std::atomic<std::size_t> done{0};
  struct ShardTally {
    std::atomic<std::size_t> ran{0};
    std::atomic<std::size_t> cached{0};
    std::atomic<std::size_t> failed{0};
  };
  std::vector<ShardTally> tallies(workers_.size());
  std::mutex emit_mu;  // Serializes event composition, not transport.

  const auto run_cell = [&](std::size_t shard, const Cell& cell) {
    const char* source = "error";
    bool ok = false;
    try {
      const std::string wire = workers_[shard]->call(cell.line);
      const obsj::Value response = obsj::parse(wire);
      const obsj::Value* ok_field = response.find("ok");
      ok = ok_field != nullptr && ok_field->as_bool();
      if (ok) {
        source = "sim";
        if (const obsj::Value* s = response.find("source")) {
          const std::string& from = s->as_string();
          if (from == "cache" || from == "store") source = "cached";
        }
        if (const obsj::Value* result = response.find("result")) {
          if (const obsj::Value* cycles = result->find("cycles")) {
            cost_model_.observe(cell.config, cell.benchmark,
                                static_cast<double>(cycles->as_u64()));
          }
        }
      }
    } catch (const std::exception&) {
      // Transport failure. Sweep cells do NOT fail over: a cell must land
      // in its owner shard's store or resume-after-restart would leave
      // stray replicas and inexact shard state. The client re-sweeps.
      worker_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!ok) {
      tallies[shard].failed.fetch_add(1, std::memory_order_relaxed);
      sweep_cells_failed_.fetch_add(1, std::memory_order_relaxed);
    } else if (source == std::string("cached")) {
      tallies[shard].cached.fetch_add(1, std::memory_order_relaxed);
      sweep_cells_cached_.fetch_add(1, std::memory_order_relaxed);
    } else {
      tallies[shard].ran.fetch_add(1, std::memory_order_relaxed);
      sweep_cells_run_.fetch_add(1, std::memory_order_relaxed);
    }
    const std::size_t now_done =
        done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (emit) {
      obsj::Value event;
      {
        std::lock_guard<std::mutex> lock(emit_mu);
        event = obsj::Value::object();
        event.set("event", obsj::Value::str("sweep_progress"));
        if (id != nullptr) event.set("id", *id);
        event.set("done", number_u64(now_done));
        event.set("total", number_u64(total));
        event.set("key", obsj::Value::str(cell.key));
        event.set("config", obsj::Value::str(cell.config));
        event.set("benchmark", obsj::Value::str(cell.benchmark));
        event.set("shard", number_u64(shard));
        event.set("worker", obsj::Value::str(workers_[shard]->name()));
        event.set("ok", obsj::Value::boolean(ok));
        event.set("source", obsj::Value::str(source));
      }
      progress_events_.fetch_add(1, std::memory_order_relaxed);
      emit(event.dump());
    }
  };

  // Dispatch: up to `backlog` lanes per worker, every worker in parallel.
  // Lanes pull from their shard's sorted queue via a shared cursor.
  std::vector<std::thread> lanes;
  std::vector<std::atomic<std::size_t>> cursors(workers_.size());
  for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
    cursors[shard].store(0);
    const std::size_t lane_count =
        std::min(config_.backlog, queues[shard].size());
    for (std::size_t lane = 0; lane < lane_count; ++lane) {
      lanes.emplace_back([&, shard] {
        for (;;) {
          const std::size_t i =
              cursors[shard].fetch_add(1, std::memory_order_relaxed);
          if (i >= queues[shard].size()) return;
          run_cell(shard, queues[shard][i]);
        }
      });
    }
  }
  for (std::thread& lane : lanes) lane.join();

  std::size_t ran = 0, cached = 0, failed = 0;
  obsj::Array per_worker;
  for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
    const std::size_t w_ran = tallies[shard].ran.load();
    const std::size_t w_cached = tallies[shard].cached.load();
    const std::size_t w_failed = tallies[shard].failed.load();
    ran += w_ran;
    cached += w_cached;
    failed += w_failed;
    obsj::Value w = obsj::Value::object();
    w.set("worker", obsj::Value::str(workers_[shard]->name()));
    w.set("shard", number_u64(shard));
    w.set("cells", number_u64(queues[shard].size()));
    w.set("ran", number_u64(w_ran));
    w.set("cached", number_u64(w_cached));
    w.set("failed", number_u64(w_failed));
    per_worker.push_back(std::move(w));
  }

  obsj::Value v = ok_response("sweep");
  v.set("cells", number_u64(total));
  v.set("ran", number_u64(ran));
  v.set("cached", number_u64(cached));
  v.set("failed", number_u64(failed));
  v.set("workers", obsj::Value::array(std::move(per_worker)));
  return v;
}

obsj::Value Router::fan_out(const std::string& line) {
  obsj::Array responses;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    obsj::Value entry = obsj::Value::object();
    entry.set("worker", obsj::Value::str(workers_[i]->name()));
    entry.set("shard", number_u64(i));
    try {
      entry.set("response", obsj::parse(workers_[i]->call(line)));
    } catch (const std::exception& e) {
      worker_errors_.fetch_add(1, std::memory_order_relaxed);
      entry.set("response",
                error_response(nullptr, "worker_unavailable", e.what()));
    }
    responses.push_back(std::move(entry));
  }
  return obsj::Value::array(std::move(responses));
}

obsj::Value Router::do_list() {
  // Union of the workers' stores, deduplicated by key (failover can leave
  // a key replicated) and sorted for a deterministic listing.
  struct Run {
    std::string key;
    obsj::Value run;
  };
  std::vector<Run> runs;
  for (auto& worker : workers_) {
    std::string wire;
    try {
      wire = worker->call("{\"op\":\"list\"}");
    } catch (const std::exception&) {
      worker_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const obsj::Value response = obsj::parse(wire);
    const obsj::Value* list = response.find("runs");
    if (list == nullptr) continue;
    for (const obsj::Value& run : list->as_array()) {
      if (const obsj::Value* key = run.find("key")) {
        runs.push_back(Run{key->as_string(), run});
      }
    }
  }
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.key < b.key; });
  runs.erase(std::unique(runs.begin(), runs.end(),
                         [](const Run& a, const Run& b) {
                           return a.key == b.key;
                         }),
             runs.end());
  obsj::Value v = ok_response("list");
  obsj::Array items;
  items.reserve(runs.size());
  for (Run& run : runs) items.push_back(std::move(run.run));
  v.set("count", number_u64(items.size()));
  v.set("runs", obsj::Value::array(std::move(items)));
  return v;
}

obsj::Value Router::do_pareto(const obsj::Value& request) {
  std::string metric_x = "energy_pj";
  std::string metric_y = "cycles";
  if (const obsj::Value* x = request.find("x")) metric_x = x->as_string();
  if (const obsj::Value* y = request.find("y")) metric_y = y->as_string();
  obsj::Value query = obsj::Value::object();
  query.set("op", obsj::Value::str("pareto"));
  query.set("x", obsj::Value::str(metric_x));
  query.set("y", obsj::Value::str(metric_y));
  const std::string line = query.dump();

  // Each worker returns its shard-local frontier; the global frontier is
  // a subset of their union, so recomputing dominance over the union is
  // exact without shipping whole stores.
  struct Point {
    double x;
    double y;
    std::string key;
    obsj::Value point;
  };
  std::vector<Point> points;
  for (auto& worker : workers_) {
    std::string wire;
    try {
      wire = worker->call(line);
    } catch (const std::exception&) {
      worker_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const obsj::Value response = obsj::parse(wire);
    const obsj::Value* ok_field = response.find("ok");
    if (ok_field == nullptr || !ok_field->as_bool()) {
      // Metric errors must not be swallowed into an empty frontier.
      return response;
    }
    const obsj::Value* list = response.find("points");
    if (list == nullptr) continue;
    for (const obsj::Value& point : list->as_array()) {
      Point p;
      p.x = point.find("x")->as_double();
      p.y = point.find("y")->as_double();
      p.key = point.find("key")->as_string();
      p.point = point;
      points.push_back(std::move(p));
    }
  }
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    return a.key < b.key;
  });
  points.erase(std::unique(points.begin(), points.end(),
                           [](const Point& a, const Point& b) {
                             return a.key == b.key;
                           }),
               points.end());
  std::vector<Point> frontier;
  for (const Point& candidate : points) {
    bool dominated = false;
    for (const Point& other : points) {
      if (other.x <= candidate.x && other.y <= candidate.y &&
          (other.x < candidate.x || other.y < candidate.y)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  obsj::Value v = ok_response("pareto");
  v.set("x", obsj::Value::str(metric_x));
  v.set("y", obsj::Value::str(metric_y));
  obsj::Array out;
  out.reserve(frontier.size());
  for (Point& p : frontier) out.push_back(std::move(p.point));
  v.set("count", number_u64(out.size()));
  v.set("points", obsj::Value::array(std::move(out)));
  return v;
}

obsj::Value Router::do_stats() {
  obsj::Value v = ok_response("stats");
  obsj::Value counters_v = obsj::Value::object();
  const obs::CounterSet set = counters();
  for (const obs::Counter& c : set.items()) {
    counters_v.set(c.name, obsj::Value::number(c.value));
  }
  v.set("counters", std::move(counters_v));
  // Per-worker stats ride along so one query shows tier-wide queue
  // health (serve.backlog, serve.queue_wait_ms.*) next to routing state.
  v.set("workers", fan_out("{\"op\":\"stats\"}"));
  return v;
}

obs::CounterSet Router::counters() const {
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  obs::CounterSet set;
  set.add("router.workers", static_cast<std::uint64_t>(workers_.size()));
  set.add("router.requests_total", load(requests_total_));
  set.add("router.protocol_errors", load(protocol_errors_));
  set.add("router.forwarded", load(forwarded_));
  set.add("router.failovers", load(failovers_));
  set.add("router.worker_errors", load(worker_errors_));
  set.add("router.sweeps", load(sweeps_));
  set.add("router.sweep_cells_total", load(sweep_cells_total_));
  set.add("router.sweep_cells_run", load(sweep_cells_run_));
  set.add("router.sweep_cells_cached", load(sweep_cells_cached_));
  set.add("router.sweep_cells_failed", load(sweep_cells_failed_));
  set.add("router.progress_events", load(progress_events_));
  set.add("router.backlog_limit",
          static_cast<std::uint64_t>(config_.backlog));
  set.add("router.cost_observations",
          static_cast<std::uint64_t>(cost_model_.observations()));
  set.add("router.draining", std::uint64_t{draining() ? 1u : 0u});
  {
    std::lock_guard<std::mutex> lock(mu_);
    set.add("router.active_requests", static_cast<std::uint64_t>(active_));
  }
  return set;
}

}  // namespace respin::serve
