// Durable results store for the serving daemon: an append-only JSONL file
// of (canonical key, SimResult) records with an in-memory index and
// design-space queries (fetch, list, Pareto frontier).
//
// Durability model: put() appends one self-contained JSON line and
// flushes before returning, so every completed simulation is a committed
// checkpoint — killing the daemon mid-sweep loses at most the cells still
// in flight, and a restarted daemon resumes from exactly the completed
// set (load() tolerates a torn trailing line from a crash mid-append).
// Because keys are canonical and results deterministic, replaying a line
// is idempotent: duplicate keys collapse to the newest record.
//
// Replication model (the sharded serving tier): every record carries a
// (generation, sequence) stamp. A store bumps its generation each time it
// is opened for append and stamps puts with a per-generation sequence, so
// "newest" is a total order independent of the order lines are read —
// merging two logs (merge_from, or the router's merge op fanned out to
// its workers) is idempotent and order-independent: for a duplicate key
// the record with the larger (gen, seq) wins, ties broken by serialized
// record text (identical for deterministic results). Legacy stamp-less
// lines load as generation 0 with their line index as sequence, which
// preserves the old later-line-wins semantics. compact() rewrites the log
// to one line per key (atomic rename), dropping superseded history.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/serde.hpp"

namespace respin::serve {

/// One stored run: the canonical request key, its result, and the
/// newest-wins stamp.
struct StoreEntry {
  std::string key;
  std::string hash;  ///< core::key_hash_hex(key), precomputed for queries.
  core::SimResult result;
  std::uint64_t gen = 0;  ///< Store generation that wrote the record.
  std::uint64_t seq = 0;  ///< Append sequence within that generation.
};

/// True when `a` supersedes `b` for the same key: larger (gen, seq),
/// ties broken by serialized result text so the outcome never depends on
/// which log was read first.
bool entry_newer(const StoreEntry& a, const StoreEntry& b);

/// Reads a JSONL store log without opening it for append (no generation
/// bump, no header write): newest-wins deduplicated entries in first-seen
/// key order. Malformed lines are skipped; `skipped` (when non-null)
/// receives their count. Used by read-only consumers (the router's cost
/// model seed).
std::vector<StoreEntry> load_store_entries(const std::string& path,
                                           std::size_t* skipped = nullptr);

/// What a merge did, summed over the merged log's records.
struct StoreMergeStats {
  std::size_t scanned = 0;     ///< Valid records read from the source.
  std::size_t inserted = 0;    ///< New keys added.
  std::size_t superseded = 0;  ///< Existing keys replaced by newer stamps.
  std::size_t ignored = 0;     ///< Records older than (or equal to) ours.
  std::size_t skipped_lines = 0;  ///< Malformed source lines.
};

/// One Pareto query answer point.
struct ParetoPoint {
  std::string key;
  std::string hash;
  std::string config;
  std::string benchmark;
  double x = 0.0;
  double y = 0.0;
};

class ResultStore {
 public:
  /// Opens (creating if missing) the JSONL store at `path`, loads every
  /// valid record, bumps the store generation past everything seen, and
  /// appends a generation header; an empty path makes an ephemeral
  /// in-memory store. Throws std::runtime_error when the file cannot be
  /// opened for append.
  explicit ResultStore(const std::string& path);

  /// Copy of the result stored for `key` (copied under the lock — put()
  /// from worker threads may run concurrently), or nullopt.
  std::optional<core::SimResult> get(const std::string& key) const;

  /// True when `key` has a stored result (sweep resume check).
  bool contains(const std::string& key) const;

  /// Records (key -> result), appending to the backing file and flushing
  /// before returning (the checkpoint contract). Re-putting a key replaces
  /// the in-memory entry and appends a superseding line.
  void put(const std::string& key, const core::SimResult& result);

  /// Merges another JSONL store log into this one: for each record, keep
  /// whichever of (theirs, ours) has the newer (gen, seq) stamp. Accepted
  /// records are appended with their *original* stamps, so re-merging the
  /// same log is a no-op and merge order does not change the outcome.
  /// Throws std::runtime_error when `path` cannot be read.
  StoreMergeStats merge_from(const std::string& path);

  /// Rewrites the backing file to one line per key (newest records only,
  /// atomic rename), dropping superseded history and stale headers.
  /// Returns the number of records kept. No-op (returns size()) for an
  /// ephemeral store.
  std::size_t compact();

  /// Brief listing of every stored run, in insertion order.
  struct Brief {
    std::string key;
    std::string hash;
    std::string config;
    std::string benchmark;
  };
  std::vector<Brief> list() const;

  /// Pareto frontier minimizing (metric_x, metric_y) over every stored
  /// result (core::result_metric names). A point survives iff no other
  /// point is <= on both axes and < on one. Returned sorted by x then y.
  /// Throws std::logic_error on unknown metric names.
  std::vector<ParetoPoint> pareto(std::string_view metric_x,
                                  std::string_view metric_y) const;

  std::size_t size() const;
  /// Records recovered from disk at construction.
  std::size_t loaded() const { return loaded_; }
  /// Malformed lines skipped at load (a torn tail counts here).
  std::size_t skipped_lines() const { return skipped_lines_; }
  /// This store's write generation (larger than any loaded record's).
  std::uint64_t generation() const { return generation_; }
  const std::string& path() const { return path_; }

 private:
  /// Inserts or newest-wins-replaces `entry` in the in-memory index.
  /// Returns +1 inserted, 0 replaced, -1 ignored (ours is newer).
  int absorb(StoreEntry entry);
  void append_record(const StoreEntry& entry);

  mutable std::mutex mu_;
  std::string path_;
  std::ofstream out_;
  /// key -> index into entries_ (entries are never erased; a replaced key
  /// updates its entry in place).
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<StoreEntry> entries_;
  std::uint64_t generation_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t loaded_ = 0;
  std::size_t skipped_lines_ = 0;
};

}  // namespace respin::serve
