// Durable results store for the serving daemon: an append-only JSONL file
// of (canonical key, SimResult) records with an in-memory index and
// design-space queries (fetch, list, Pareto frontier).
//
// Durability model: put() appends one self-contained JSON line and
// flushes before returning, so every completed simulation is a committed
// checkpoint — killing the daemon mid-sweep loses at most the cells still
// in flight, and a restarted daemon resumes from exactly the completed
// set (load() tolerates a torn trailing line from a crash mid-append).
// Because keys are canonical and results deterministic, replaying a line
// is idempotent: duplicate keys collapse to the newest record.
#pragma once

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/serde.hpp"

namespace respin::serve {

/// One stored run: the canonical request key and its result.
struct StoreEntry {
  std::string key;
  std::string hash;  ///< core::key_hash_hex(key), precomputed for queries.
  core::SimResult result;
};

/// One Pareto query answer point.
struct ParetoPoint {
  std::string key;
  std::string hash;
  std::string config;
  std::string benchmark;
  double x = 0.0;
  double y = 0.0;
};

class ResultStore {
 public:
  /// Opens (creating if missing) the JSONL store at `path` and loads every
  /// valid record; an empty path makes an ephemeral in-memory store.
  /// Throws std::runtime_error when the file cannot be opened for append.
  explicit ResultStore(const std::string& path);

  /// Copy of the result stored for `key` (copied under the lock — put()
  /// from worker threads may run concurrently), or nullopt.
  std::optional<core::SimResult> get(const std::string& key) const;

  /// True when `key` has a stored result (sweep resume check).
  bool contains(const std::string& key) const;

  /// Records (key -> result), appending to the backing file and flushing
  /// before returning (the checkpoint contract). Re-putting a key replaces
  /// the in-memory entry and appends a superseding line.
  void put(const std::string& key, const core::SimResult& result);

  /// Brief listing of every stored run, in insertion order.
  struct Brief {
    std::string key;
    std::string hash;
    std::string config;
    std::string benchmark;
  };
  std::vector<Brief> list() const;

  /// Pareto frontier minimizing (metric_x, metric_y) over every stored
  /// result (core::result_metric names). A point survives iff no other
  /// point is <= on both axes and < on one. Returned sorted by x then y.
  /// Throws std::logic_error on unknown metric names.
  std::vector<ParetoPoint> pareto(std::string_view metric_x,
                                  std::string_view metric_y) const;

  std::size_t size() const;
  /// Records recovered from disk at construction.
  std::size_t loaded() const { return loaded_; }
  /// Malformed lines skipped at load (a torn tail counts here).
  std::size_t skipped_lines() const { return skipped_lines_; }
  const std::string& path() const { return path_; }

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::ofstream out_;
  /// key -> index into entries_ (entries are never erased; a replaced key
  /// updates its entry in place).
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<StoreEntry> entries_;
  std::size_t loaded_ = 0;
  std::size_t skipped_lines_ = 0;
};

}  // namespace respin::serve
