#include "serve/store.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace respin::serve {

namespace obsj = respin::obs::json;

ResultStore::ResultStore(const std::string& path) : path_(path) {
  if (path_.empty()) return;
  // Load pass: every well-formed {"key":...,"result":{...}} line becomes
  // an entry; anything else (torn tail from a crash mid-append, stray
  // text) is counted and skipped — the store must never refuse to start
  // because its last write was interrupted.
  {
    std::ifstream in(path_);
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        const obsj::Value record = obsj::parse(line);
        const obsj::Value* key = record.find("key");
        const obsj::Value* result = record.find("result");
        if (key == nullptr || result == nullptr) {
          ++skipped_lines_;
          continue;
        }
        StoreEntry entry;
        entry.key = key->as_string();
        entry.hash = core::key_hash_hex(entry.key);
        entry.result = core::result_from_json(*result);
        auto [it, inserted] = index_.try_emplace(entry.key, entries_.size());
        if (inserted) {
          entries_.push_back(std::move(entry));
        } else {
          entries_[it->second] = std::move(entry);  // Newest record wins.
        }
        ++loaded_;
      } catch (const std::exception&) {
        ++skipped_lines_;
      }
    }
  }
  out_.open(path_, std::ios::app);
  if (!out_) {
    throw std::runtime_error("cannot open results store for append: " +
                             path_);
  }
}

std::optional<core::SimResult> ResultStore::get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second].result;
}

bool ResultStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.find(key) != index_.end();
}

void ResultStore::put(const std::string& key, const core::SimResult& result) {
  StoreEntry entry;
  entry.key = key;
  entry.hash = core::key_hash_hex(key);
  entry.result = result;

  std::lock_guard<std::mutex> lock(mu_);
  if (out_.is_open()) {
    obsj::Value record = obsj::Value::object();
    record.set("key", obsj::Value::str(key));
    record.set("hash", obsj::Value::str(entry.hash));
    record.set("result", core::result_to_json(result));
    out_ << record.dump() << '\n';
    out_.flush();  // The checkpoint contract: visible before put returns.
  }
  auto [it, inserted] = index_.try_emplace(entry.key, entries_.size());
  if (inserted) {
    entries_.push_back(std::move(entry));
  } else {
    entries_[it->second] = std::move(entry);
  }
}

std::vector<ResultStore::Brief> ResultStore::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Brief> out;
  out.reserve(entries_.size());
  for (const StoreEntry& e : entries_) {
    out.push_back(Brief{e.key, e.hash, e.result.config_name,
                        e.result.benchmark});
  }
  return out;
}

std::vector<ParetoPoint> ResultStore::pareto(std::string_view metric_x,
                                             std::string_view metric_y) const {
  std::vector<ParetoPoint> points;
  {
    std::lock_guard<std::mutex> lock(mu_);
    points.reserve(entries_.size());
    for (const StoreEntry& e : entries_) {
      ParetoPoint p;
      p.key = e.key;
      p.hash = e.hash;
      p.config = e.result.config_name;
      p.benchmark = e.result.benchmark;
      p.x = core::result_metric(e.result, metric_x);
      p.y = core::result_metric(e.result, metric_y);
      points.push_back(std::move(p));
    }
  }
  // O(n^2) dominance scan; store sizes are design-space sized (thousands),
  // not traffic sized.
  std::vector<ParetoPoint> frontier;
  for (const ParetoPoint& candidate : points) {
    bool dominated = false;
    for (const ParetoPoint& other : points) {
      if (other.x <= candidate.x && other.y <= candidate.y &&
          (other.x < candidate.x || other.y < candidate.y)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.x != b.x) return a.x < b.x;
              if (a.y != b.y) return a.y < b.y;
              return a.key < b.key;
            });
  return frontier;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace respin::serve
