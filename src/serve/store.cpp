#include "serve/store.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

namespace respin::serve {

namespace obsj = respin::obs::json;

namespace {

/// Per-line outcome of scanning a store log.
struct ScanStats {
  std::size_t skipped = 0;
  std::uint64_t max_gen = 0;
};

/// Streams every valid record line of `path` into `on_record` in file
/// order. A generation header line ({"respin_store":1,"gen":G}) only
/// feeds max_gen; anything malformed or unrecognized (torn tail from a
/// crash mid-append, stray text) is counted and skipped — a store must
/// never refuse to start because its last write was interrupted.
template <typename F>
ScanStats scan_log(std::istream& in, F&& on_record) {
  ScanStats stats;
  std::string line;
  std::uint64_t line_index = 0;
  while (in && std::getline(in, line)) {
    ++line_index;
    if (line.empty()) continue;
    try {
      const obsj::Value record = obsj::parse(line);
      if (const obsj::Value* header = record.find("respin_store")) {
        (void)header->as_u64();  // Version field; v1 is the only version.
        if (const obsj::Value* gen = record.find("gen")) {
          stats.max_gen = std::max(stats.max_gen, gen->as_u64());
        }
        continue;
      }
      const obsj::Value* key = record.find("key");
      const obsj::Value* result = record.find("result");
      if (key == nullptr || result == nullptr) {
        ++stats.skipped;
        continue;
      }
      StoreEntry entry;
      entry.key = key->as_string();
      entry.hash = core::key_hash_hex(entry.key);
      entry.result = core::result_from_json(*result);
      // Legacy stamp-less lines: generation 0, line index as sequence,
      // which reproduces the old later-line-wins load order.
      entry.gen = 0;
      entry.seq = line_index;
      if (const obsj::Value* gen = record.find("gen")) {
        entry.gen = gen->as_u64();
      }
      if (const obsj::Value* seq = record.find("seq")) {
        entry.seq = seq->as_u64();
      }
      stats.max_gen = std::max(stats.max_gen, entry.gen);
      on_record(std::move(entry));
    } catch (const std::exception&) {
      ++stats.skipped;
    }
  }
  return stats;
}

}  // namespace

bool entry_newer(const StoreEntry& a, const StoreEntry& b) {
  if (a.gen != b.gen) return a.gen > b.gen;
  if (a.seq != b.seq) return a.seq > b.seq;
  // Equal stamps: deterministic text tiebreak so merge outcomes never
  // depend on read order. Identical results compare equal (not newer).
  return core::result_to_json(a.result).dump() >
         core::result_to_json(b.result).dump();
}

std::vector<StoreEntry> load_store_entries(const std::string& path,
                                           std::size_t* skipped) {
  std::vector<StoreEntry> entries;
  std::unordered_map<std::string, std::size_t> index;
  std::ifstream in(path);
  const ScanStats stats = scan_log(in, [&](StoreEntry entry) {
    auto [it, inserted] = index.try_emplace(entry.key, entries.size());
    if (inserted) {
      entries.push_back(std::move(entry));
    } else if (entry_newer(entry, entries[it->second])) {
      entries[it->second] = std::move(entry);
    }
  });
  if (skipped != nullptr) *skipped = stats.skipped;
  return entries;
}

ResultStore::ResultStore(const std::string& path) : path_(path) {
  if (path_.empty()) return;
  {
    std::ifstream in(path_);
    const ScanStats stats = scan_log(in, [&](StoreEntry entry) {
      ++loaded_;
      absorb(std::move(entry));
    });
    skipped_lines_ = stats.skipped;
    generation_ = stats.max_gen + 1;
  }
  out_.open(path_, std::ios::app);
  if (!out_) {
    throw std::runtime_error("cannot open results store for append: " +
                             path_);
  }
  // Generation header: records this open's stamp so a future open (or a
  // merge reading this log) orders its writes after ours even if no
  // record was ever appended.
  obsj::Value header = obsj::Value::object();
  header.set("respin_store", obsj::Value::number(std::uint64_t{1}));
  header.set("gen", obsj::Value::number(generation_));
  out_ << header.dump() << '\n';
  out_.flush();
}

int ResultStore::absorb(StoreEntry entry) {
  auto [it, inserted] = index_.try_emplace(entry.key, entries_.size());
  if (inserted) {
    entries_.push_back(std::move(entry));
    return 1;
  }
  if (entry_newer(entry, entries_[it->second])) {
    entries_[it->second] = std::move(entry);
    return 0;
  }
  return -1;
}

void ResultStore::append_record(const StoreEntry& entry) {
  if (!out_.is_open()) return;
  obsj::Value record = obsj::Value::object();
  record.set("key", obsj::Value::str(entry.key));
  record.set("hash", obsj::Value::str(entry.hash));
  record.set("gen", obsj::Value::number(entry.gen));
  record.set("seq", obsj::Value::number(entry.seq));
  record.set("result", core::result_to_json(entry.result));
  out_ << record.dump() << '\n';
  out_.flush();  // The checkpoint contract: visible before put returns.
}

std::optional<core::SimResult> ResultStore::get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return entries_[it->second].result;
}

bool ResultStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.find(key) != index_.end();
}

void ResultStore::put(const std::string& key, const core::SimResult& result) {
  StoreEntry entry;
  entry.key = key;
  entry.hash = core::key_hash_hex(key);
  entry.result = result;

  std::lock_guard<std::mutex> lock(mu_);
  entry.gen = generation_;
  entry.seq = next_seq_++;
  append_record(entry);
  absorb(std::move(entry));
}

StoreMergeStats ResultStore::merge_from(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read store log to merge: " + path);
  }
  StoreMergeStats stats;
  std::lock_guard<std::mutex> lock(mu_);
  const ScanStats scan = scan_log(in, [&](StoreEntry entry) {
    ++stats.scanned;
    // Accepted records keep their original stamps (append before absorb
    // moves the entry away): re-merging the same log finds equal stamps
    // and ignores every record, so merges are idempotent, and the
    // newest-wins total order makes them order-independent.
    const StoreEntry* existing = nullptr;
    const auto it = index_.find(entry.key);
    if (it != index_.end()) existing = &entries_[it->second];
    if (existing == nullptr) {
      append_record(entry);
      absorb(std::move(entry));
      ++stats.inserted;
    } else if (entry_newer(entry, *existing)) {
      append_record(entry);
      absorb(std::move(entry));
      ++stats.superseded;
    } else {
      ++stats.ignored;
    }
  });
  stats.skipped_lines = scan.skipped;
  // Writes must keep outranking everything we just absorbed.
  if (scan.max_gen >= generation_) {
    generation_ = scan.max_gen + 1;
    next_seq_ = 0;
  }
  return stats;
}

std::size_t ResultStore::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  if (path_.empty()) return entries_.size();
  const std::string tmp = path_ + ".compact.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open compaction temp file: " + tmp);
    }
    obsj::Value header = obsj::Value::object();
    header.set("respin_store", obsj::Value::number(std::uint64_t{1}));
    header.set("gen", obsj::Value::number(generation_));
    out << header.dump() << '\n';
    for (const StoreEntry& entry : entries_) {
      obsj::Value record = obsj::Value::object();
      record.set("key", obsj::Value::str(entry.key));
      record.set("hash", obsj::Value::str(entry.hash));
      record.set("gen", obsj::Value::number(entry.gen));
      record.set("seq", obsj::Value::number(entry.seq));
      record.set("result", core::result_to_json(entry.result));
      out << record.dump() << '\n';
    }
    out.flush();
    if (!out) {
      throw std::runtime_error("compaction write failed: " + tmp);
    }
  }
  out_.close();
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    // Reopen the original log; the store must stay writable either way.
    out_.open(path_, std::ios::app);
    throw std::runtime_error("compaction rename failed for: " + path_);
  }
  out_.open(path_, std::ios::app);
  if (!out_) {
    throw std::runtime_error("cannot reopen results store after compaction: " +
                             path_);
  }
  return entries_.size();
}

std::vector<ResultStore::Brief> ResultStore::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Brief> out;
  out.reserve(entries_.size());
  for (const StoreEntry& e : entries_) {
    out.push_back(Brief{e.key, e.hash, e.result.config_name,
                        e.result.benchmark});
  }
  return out;
}

std::vector<ParetoPoint> ResultStore::pareto(std::string_view metric_x,
                                             std::string_view metric_y) const {
  std::vector<ParetoPoint> points;
  {
    std::lock_guard<std::mutex> lock(mu_);
    points.reserve(entries_.size());
    for (const StoreEntry& e : entries_) {
      ParetoPoint p;
      p.key = e.key;
      p.hash = e.hash;
      p.config = e.result.config_name;
      p.benchmark = e.result.benchmark;
      p.x = core::result_metric(e.result, metric_x);
      p.y = core::result_metric(e.result, metric_y);
      points.push_back(std::move(p));
    }
  }
  // O(n^2) dominance scan; store sizes are design-space sized (thousands),
  // not traffic sized.
  std::vector<ParetoPoint> frontier;
  for (const ParetoPoint& candidate : points) {
    bool dominated = false;
    for (const ParetoPoint& other : points) {
      if (other.x <= candidate.x && other.y <= candidate.y &&
          (other.x < candidate.x || other.y < candidate.y)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) frontier.push_back(candidate);
  }
  std::sort(frontier.begin(), frontier.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.x != b.x) return a.x < b.x;
              if (a.y != b.y) return a.y < b.y;
              return a.key < b.key;
            });
  return frontier;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace respin::serve
