// In-memory LRU result cache for the serving daemon.
//
// Keys are canonical request keys (core::canonical_key), values are
// shared immutable results, so a hit is a pointer copy — no SimResult
// deep copy on the hot serving path. Deterministic simulations make the
// cache trivially coherent: a key's value can never change, only age
// out. Not thread-safe by itself; the Server serializes access under its
// own mutex (cache operations are O(1) map+list updates, far off the
// simulation critical path).
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/cluster_sim.hpp"

namespace respin::serve {

class LruCache {
 public:
  /// `capacity` 0 disables caching entirely (every get misses).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Shared result for `key` (moved to most-recently-used), or nullptr.
  std::shared_ptr<const core::SimResult> get(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
  /// when the cache is full.
  void put(const std::string& key,
           std::shared_ptr<const core::SimResult> value) {
    if (capacity_ == 0) return;
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->value = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      index_.erase(order_.back().key);
      order_.pop_back();
    }
    order_.push_front(Entry{key, std::move(value)});
    index_[key] = order_.begin();
  }

  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const core::SimResult> value;
  };

  std::size_t capacity_;
  std::list<Entry> order_;  ///< Front = most recently used.
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace respin::serve
