// The transport-independent serving interface.
//
// Both tiers of the serving stack — the worker daemon (serve::Server) and
// the sharding front end (serve::Router) — speak the same line protocol:
// one JSON object per line in, one terminal JSON object per line out,
// with optional intermediate event lines (the router's incremental sweep
// progress) emitted through the `Emit` callback before the terminal
// response. The TCP and stdio front ends in serve/net.hpp drive any
// LineService; tests drive implementations directly.
#pragma once

#include <functional>
#include <string>

namespace respin::serve {

/// Emits one intermediate event line to the client (without trailing
/// newline). Must be safe to call from multiple threads: a streaming
/// sweep reports cells from every dispatch thread.
using Emit = std::function<void(const std::string&)>;

class LineService {
 public:
  virtual ~LineService() = default;

  /// Handles one protocol request line, returning the terminal response
  /// line (without trailing newline). Intermediate event lines (sweep
  /// progress) go through `emit` as they happen; a null emit suppresses
  /// them. Never throws: malformed input becomes a typed error response.
  /// Safe to call from many threads.
  virtual std::string handle_line(const std::string& line,
                                  const Emit& emit) = 0;

  /// Convenience for non-streaming callers.
  std::string handle_line(const std::string& line) {
    return handle_line(line, Emit());
  }

  /// Stops admitting work; queued and in-flight requests finish.
  virtual void begin_drain() = 0;
  virtual bool draining() const = 0;
  /// begin_drain() plus blocking until every accepted request retired.
  virtual void drain() = 0;
};

}  // namespace respin::serve
