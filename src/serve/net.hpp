// Transport front ends for the serving daemon.
//
// Both front ends speak the same protocol — one JSON object per line in,
// one per line out — and delegate every request to Server::handle_line().
//
// serve_stdio() is the transport used by tests and CI: it reads requests
// from an istream and writes responses to an ostream, exiting at EOF or
// after a `shutdown` op has been served and the server drained.
//
// serve_tcp() is the daemon path: it binds a listening socket (port 0 =
// kernel-assigned), prints "respin_serve: listening on port N" so a
// scripted client can parse the bound port, and accepts connections until
// SIGTERM/SIGINT arrives (self-pipe trick) or a client sends `shutdown`.
// Shutdown is graceful: stop accepting, finish in-flight simulations
// (Server::drain), close client connections, join connection threads.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "serve/server.hpp"

namespace respin::serve {

/// Serves line requests from `in` to `out`. Returns the number of request
/// lines handled. Stops at EOF, or — once a `shutdown` op flips the server
/// into draining — after the drain completes.
std::size_t serve_stdio(Server& server, std::istream& in, std::ostream& out);

/// Runs the TCP accept loop on `port` (0 = kernel-assigned) until a
/// termination signal or a `shutdown` op. `log` receives the one-line
/// "listening on port N" banner and lifecycle messages. Returns 0 on a
/// graceful shutdown, non-zero when the socket could not be set up.
int serve_tcp(Server& server, std::uint16_t port, std::ostream& log);

}  // namespace respin::serve
