// Transport front ends for the serving stack.
//
// Both front ends speak the same protocol — one JSON object per line in,
// one terminal JSON object per line out, with optional intermediate event
// lines — and delegate every request to LineService::handle_line(). The
// same transports serve both tiers: the worker daemon (serve::Server) and
// the sharding front end (serve::Router).
//
// serve_stdio() is the transport used by tests and CI: it reads requests
// from an istream and writes responses to an ostream, exiting at EOF or
// after a `shutdown` op has been served and the service drained.
//
// serve_tcp() is the daemon path: it binds a listening socket (port 0 =
// kernel-assigned), prints "<name>: listening on port N" so a scripted
// client can parse the bound port, and accepts connections until
// SIGTERM/SIGINT arrives (self-pipe trick) or a client sends `shutdown`.
// Shutdown is graceful: stop accepting, finish in-flight work
// (LineService::drain), close client connections, join connection
// threads. Intermediate event lines emitted while a request is being
// handled are written to the same stream/socket under a write lock, so
// streamed sweep progress interleaves with (never tears) response lines.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "serve/service.hpp"

namespace respin::serve {

/// Serves line requests from `in` to `out`. Returns the number of request
/// lines handled. Stops at EOF, or — once a `shutdown` op flips the
/// service into draining — after the drain completes.
std::size_t serve_stdio(LineService& service, std::istream& in,
                        std::ostream& out);

/// Runs the TCP accept loop on `port` (0 = kernel-assigned) until a
/// termination signal or a `shutdown` op. `log` receives the one-line
/// "listening on port N" banner and lifecycle messages, each prefixed
/// with `name` (the daemon's argv[0] identity, e.g. "respin_serve" or
/// "respin_router"). Returns 0 on a graceful shutdown, non-zero when the
/// socket could not be set up.
int serve_tcp(LineService& service, std::uint16_t port, std::ostream& log,
              const std::string& name = "respin_serve");

}  // namespace respin::serve
