// Blocking line-protocol client for the serving stack.
//
// LineClient dials a loopback worker daemon and speaks the wire protocol
// from the client side: send one JSON line, read the one response line.
// The router's TCP worker backend and the scale bench are the consumers.
// Connections are lazy (dialed on first use) and sticky; a transport
// failure mid-roundtrip closes the socket so the next call redials — the
// caller decides whether to retry (safe: the protocol is idempotent, a
// re-sent `run` coalesces onto the cache/store/in-flight table).
//
// Not thread-safe: one LineClient is one connection with one read buffer.
// Concurrent callers hold one client each (serve/router.cpp pools them).
#pragma once

#include <cstdint>
#include <string>

namespace respin::serve {

class LineClient {
 public:
  /// Remembers the endpoint; does not connect yet.
  LineClient(std::string host, std::uint16_t port);
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;
  LineClient(LineClient&& other) noexcept;
  LineClient& operator=(LineClient&& other) noexcept;

  /// Sends `line` (newline appended) and returns the next response line
  /// (without the newline), dialing first when not connected. Throws
  /// std::runtime_error on connect/send/receive failure, with the socket
  /// closed so a retry redials. The worker tier sends exactly one line
  /// per request, so request/response matching is positional.
  std::string roundtrip(const std::string& line);

  bool connected() const { return fd_ >= 0; }
  void close();

  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }

 private:
  void connect();
  std::string read_line();

  std::string host_;
  std::uint16_t port_ = 0;
  int fd_ = -1;
  std::string buffer_;  ///< Bytes received past the last returned line.
};

}  // namespace respin::serve
