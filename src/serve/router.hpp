// The sharding front end of the serving tier.
//
// A Router speaks the exact worker line protocol (docs/serving.md) and
// owns a fixed roster of N workers. Every cacheable request has a
// canonical key; its owning shard is key_hash(key) % N, so each worker's
// LRU cache, single-flight table, and results store stay hot for a
// disjoint key-slice — routing is what makes the worker-side caching
// composable across processes.
//
// Ops:
//  - run/get: forwarded verbatim to the key's owner. If the owner's
//    transport fails, the request fails over to the next worker (counted;
//    the result lands in the wrong shard's store, which a later `merge`
//    reconciles).
//  - sweep: the matrix is expanded cell-by-cell (identically to a
//    worker's own expansion, so keys match), cells are grouped by owner
//    shard, and each shard's queue is dispatched longest-expected-first
//    (CostModel prediction; LPT list scheduling cuts sweep makespan)
//    through a bounded number of lanes per worker. Cells never fail over
//    — shard-pure stores are what make kill/restart resume exact. Each
//    completed cell emits a `sweep_progress` event line through the
//    transport's Emit callback.
//  - list/pareto/stats/merge/compact/shutdown: fanned out to every
//    worker and the answers merged (frontier recomputed over the union).
//  - ping/version: answered locally.
//
// The router holds no store and no cache: state lives in the workers, so
// a router restart loses nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "serve/client.hpp"
#include "serve/cost_model.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace respin::serve {

/// One worker the router can call: send a request line, get the response
/// line. call() must be thread-safe — sweep lanes call concurrently.
/// Throws std::runtime_error on transport failure (never on a protocol
/// error; those come back as error response lines).
class WorkerBackend {
 public:
  virtual ~WorkerBackend() = default;
  /// Stable display name ("local:0", "127.0.0.1:7171") for stats and
  /// progress events.
  virtual std::string name() const = 0;
  virtual std::string call(const std::string& line) = 0;
};

/// In-process worker: wraps a serve::Server directly. The deterministic
/// backend tests and benches route through (no sockets, no processes).
class LocalWorker : public WorkerBackend {
 public:
  LocalWorker(std::string name, Server& server)
      : name_(std::move(name)), server_(server) {}
  std::string name() const override { return name_; }
  std::string call(const std::string& line) override {
    return server_.handle_line(line);
  }

 private:
  std::string name_;
  Server& server_;
};

/// Out-of-process worker over loopback TCP. Keeps a pool of sticky
/// connections (one per concurrent caller); a transport failure redials
/// once and retries the request — safe, the protocol is idempotent.
class TcpWorker : public WorkerBackend {
 public:
  TcpWorker(std::string host, std::uint16_t port);
  std::string name() const override;
  std::string call(const std::string& line) override;

 private:
  LineClient acquire();
  void release(LineClient client);

  std::string host_;
  std::uint16_t port_;
  std::mutex mu_;
  std::vector<LineClient> idle_;
};

struct RouterConfig {
  /// Reported by the `version` op.
  std::string version = "respin_router (unversioned)";
  /// Sweep dispatch lanes per worker: how many cells one worker is asked
  /// to chew concurrently. Bounded so a router-side sweep cannot flood a
  /// worker's admission queue.
  std::size_t backlog = 2;
  /// Optional JSONL store log that seeds the cost model before the first
  /// sweep (a previous run's merged store, typically).
  std::string cost_seed_path;
  /// Forward `shutdown` to every worker before draining the router
  /// itself (the single-operator topology: one shutdown stops the tier).
  bool forward_shutdown = true;
};

class Router : public LineService {
 public:
  Router(const RouterConfig& config,
         std::vector<std::unique_ptr<WorkerBackend>> workers);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  using LineService::handle_line;
  std::string handle_line(const std::string& line, const Emit& emit) override;

  void begin_drain() override;
  bool draining() const override {
    return draining_.load(std::memory_order_acquire);
  }
  /// begin_drain() plus blocking until every active request returned.
  void drain() override;

  /// router.* counters (docs/observability.md): forwards, failovers,
  /// sweep cells by outcome, cost-model observations.
  obs::CounterSet counters() const;

  std::size_t worker_count() const { return workers_.size(); }
  /// The owning worker index for a canonical key.
  std::size_t shard_of(const std::string& key) const;

  const CostModel& cost_model() const { return cost_model_; }

 private:
  struct ActiveGuard;

  obs::json::Value handle_request(const obs::json::Value& request,
                                  const std::string& line, const Emit& emit);
  obs::json::Value forward_keyed(const char* op, const std::string& key,
                                 const std::string& line);
  obs::json::Value do_sweep(const obs::json::Value& request, const Emit& emit);
  obs::json::Value do_list();
  obs::json::Value do_pareto(const obs::json::Value& request);
  obs::json::Value do_stats();
  /// Sends `line` to every worker, collecting each parsed response (or a
  /// transport-error response) into a per-worker array.
  obs::json::Value fan_out(const std::string& line);

  RouterConfig config_;
  std::vector<std::unique_ptr<WorkerBackend>> workers_;
  CostModel cost_model_;

  std::atomic<bool> draining_{false};
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;

  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> worker_errors_{0};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> sweep_cells_total_{0};
  std::atomic<std::uint64_t> sweep_cells_run_{0};
  std::atomic<std::uint64_t> sweep_cells_cached_{0};
  std::atomic<std::uint64_t> sweep_cells_failed_{0};
  std::atomic<std::uint64_t> progress_events_{0};
};

}  // namespace respin::serve
