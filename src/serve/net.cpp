#include "serve/net.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <istream>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

namespace respin::serve {

std::size_t serve_stdio(LineService& service, std::istream& in,
                        std::ostream& out) {
  std::size_t handled = 0;
  std::string line;
  // Streamed event lines may arrive from the service's dispatch threads
  // while handle_line() blocks; serialize writes so lines never tear.
  std::mutex write_mu;
  const Emit emit = [&](const std::string& event) {
    std::lock_guard<std::mutex> lock(write_mu);
    out << event << '\n';
    out.flush();
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::string response = service.handle_line(line, emit);
    {
      std::lock_guard<std::mutex> lock(write_mu);
      out << response << '\n';
      out.flush();
    }
    ++handled;
    if (service.draining()) break;
  }
  service.drain();
  return handled;
}

namespace {

/// Write end of the self-pipe; the signal handler's only side effect.
std::atomic<int> g_signal_pipe_wr{-1};

extern "C" void handle_termination_signal(int) {
  const int fd = g_signal_pipe_wr.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

/// Open client connections, so shutdown can unblock their reader threads.
class ConnectionRegistry {
 public:
  void add(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    fds_.push_back(fd);
  }
  void remove(int fd) {
    std::lock_guard<std::mutex> lock(mu_);
    fds_.erase(std::remove(fds_.begin(), fds_.end(), fd), fds_.end());
  }
  void shutdown_all() {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : fds_) ::shutdown(fd, SHUT_RDWR);
  }

 private:
  std::mutex mu_;
  std::vector<int> fds_;
};

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// One connection: newline-framed requests in, one terminal response line
/// each, intermediate event lines interleaved under the write lock.
void serve_connection(LineService& service, ConnectionRegistry& registry,
                      int fd) {
  std::string buffer;
  char chunk[4096];
  std::mutex write_mu;
  const Emit emit = [&](const std::string& event) {
    std::lock_guard<std::mutex> lock(write_mu);
    // A dead client just drops events; the terminal send notices.
    (void)send_all(fd, event + "\n");
  };
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const std::string response = service.handle_line(line, emit);
      bool ok = false;
      {
        std::lock_guard<std::mutex> lock(write_mu);
        ok = send_all(fd, response + "\n");
      }
      if (!ok) {
        start = buffer.size();
        break;
      }
    }
    buffer.erase(0, start);
  }
  registry.remove(fd);
  ::close(fd);
}

}  // namespace

int serve_tcp(LineService& service, std::uint16_t port, std::ostream& log,
              const std::string& name) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    log << name << ": socket() failed: " << std::strerror(errno) << '\n';
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    log << name << ": bind(" << port << ") failed: " << std::strerror(errno)
        << '\n';
    ::close(listen_fd);
    return 1;
  }
  if (::listen(listen_fd, 16) != 0) {
    log << name << ": listen() failed: " << std::strerror(errno) << '\n';
    ::close(listen_fd);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  const std::uint16_t bound_port = ntohs(addr.sin_port);

  // Self-pipe: the signal handler writes one byte; poll() below watches
  // the read end, so SIGTERM interrupts accept() deterministically.
  int signal_pipe[2] = {-1, -1};
  if (::pipe(signal_pipe) != 0) {
    log << name << ": pipe() failed: " << std::strerror(errno) << '\n';
    ::close(listen_fd);
    return 1;
  }
  g_signal_pipe_wr.store(signal_pipe[1], std::memory_order_relaxed);
  struct sigaction action {};
  action.sa_handler = handle_termination_signal;
  ::sigemptyset(&action.sa_mask);
  struct sigaction old_term {}, old_int {};
  ::sigaction(SIGTERM, &action, &old_term);
  ::sigaction(SIGINT, &action, &old_int);

  log << name << ": listening on port " << bound_port << '\n';
  log.flush();

  ConnectionRegistry registry;
  std::vector<std::thread> connections;
  bool signalled = false;
  for (;;) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {signal_pipe[0], POLLIN, 0}};
    // Finite timeout so a `shutdown` op served on a connection thread is
    // noticed even while no new connection arrives.
    const int ready = ::poll(fds, 2, 200);
    if (service.draining()) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      signalled = true;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int client_fd = ::accept(listen_fd, nullptr, nullptr);
      if (client_fd < 0) continue;
      registry.add(client_fd);
      connections.emplace_back(serve_connection, std::ref(service),
                               std::ref(registry), client_fd);
    }
  }

  log << name << ": "
      << (signalled ? "termination signal received" : "shutdown requested")
      << ", draining\n";
  log.flush();
  ::close(listen_fd);
  service.drain();  // Finish queued + in-flight work (checkpointed).
  registry.shutdown_all();
  for (std::thread& t : connections) t.join();

  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  g_signal_pipe_wr.store(-1, std::memory_order_relaxed);
  ::close(signal_pipe[0]);
  ::close(signal_pipe[1]);
  log << name << ": drained, exiting\n";
  log.flush();
  return 0;
}

}  // namespace respin::serve
