#include "serve/client.hpp"

#include <arpa/inet.h>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

namespace respin::serve {

LineClient::LineClient(std::string host, std::uint16_t port)
    : host_(std::move(host)), port_(port) {}

LineClient::~LineClient() { close(); }

LineClient::LineClient(LineClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      fd_(other.fd_),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

LineClient& LineClient::operator=(LineClient&& other) noexcept {
  if (this != &other) {
    close();
    host_ = std::move(other.host_);
    port_ = other.port_;
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

void LineClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void LineClient::connect() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket() failed: ") +
                             std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad worker address: " + host_);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("connect to " + host_ + ":" +
                             std::to_string(port_) + " failed: " + reason);
  }
  fd_ = fd;
  buffer_.clear();
}

std::string LineClient::read_line() {
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      close();
      throw std::runtime_error("worker " + host_ + ":" +
                               std::to_string(port_) +
                               " closed the connection mid-response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string LineClient::roundtrip(const std::string& line) {
  if (fd_ < 0) connect();
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      close();
      throw std::runtime_error("send to worker " + host_ + ":" +
                               std::to_string(port_) + " failed");
    }
    sent += static_cast<std::size_t>(n);
  }
  return read_line();
}

}  // namespace respin::serve
