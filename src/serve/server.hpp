// The simulation server: request admission, single-flight dedupe, result
// caching, batched execution on the exec thread pool, sweep jobs with
// checkpoint/resume, and the query surface over the results store.
//
// Protocol: one JSON object per line in, one JSON object per line out
// (docs/serving.md). handle_line() is the transport-independent entry
// point — the TCP and stdio front ends in serve/net.hpp call it from
// their connection threads, and tests drive it directly.
//
// Execution model: a `run` request resolves in order against (1) the LRU
// result cache, (2) the durable results store, (3) the in-flight table —
// identical concurrent requests coalesce onto one simulation
// (single-flight) — and only then (4) enters the bounded admission queue.
// A dedicated scheduler thread drains the queue in batches and fans each
// batch out over the process-wide exec::ThreadPool, so the daemon's
// simulation concurrency equals the simulator's own --threads width.
// Rejections are typed (`overloaded`, `draining`) and immediate; waiting
// requests honour a per-request deadline (`timeout`) while the
// simulation itself keeps running and still lands in the cache/store.
//
// Sweeps (`sweep` op) expand a config x benchmark matrix into cells, skip
// every cell already checkpointed in the store, and run the missing ones
// with per-cell store checkpoints — killing the daemon mid-sweep and
// resubmitting the sweep completes only the missing cells.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/serde.hpp"
#include "obs/counters.hpp"
#include "serve/cache.hpp"
#include "serve/service.hpp"
#include "serve/store.hpp"

namespace respin::serve {

struct ServerConfig {
  /// JSONL results-store path; empty = ephemeral (no checkpoint/resume).
  std::string store_path;
  /// LRU result-cache entries (0 disables the cache; the store still
  /// answers repeats when persistent).
  std::size_t cache_capacity = 1024;
  /// Admission bound: maximum queued-but-not-yet-running unique
  /// simulations. Submissions beyond it get a typed `overloaded` reject.
  std::size_t queue_depth = 256;
  /// Default wait deadline for `run` requests, milliseconds; 0 = wait
  /// indefinitely. A request's own "deadline_ms" field overrides it.
  std::int64_t default_deadline_ms = 0;
  /// Reported by the `version` op (daemon provenance string).
  std::string version = "respin_serve (unversioned)";
};

/// Histogram of milliseconds spent queued before execution, exported as
/// serve.queue_wait_ms.* counters — the queue-health signal a sharded
/// tier is balanced by (docs/serving.md). Buckets are cumulative
/// less-than-or-equal thresholds plus an overflow bucket.
class QueueWaitHistogram {
 public:
  static constexpr std::array<double, 6> kBucketsMs = {1, 4, 16, 64, 256,
                                                      1024};

  void record(double wait_ms);
  /// Appends queue_wait_ms.le_*/inf/count/sum_ms under `prefix`.
  void export_counters(obs::CounterSet& set, const std::string& prefix) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketsMs.size() + 1> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};  ///< Microseconds: exact sums.
};

class Server : public LineService {
 public:
  explicit Server(const ServerConfig& config);
  /// Drains and joins the scheduler.
  ~Server() override;

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  using LineService::handle_line;
  /// Handles one protocol request line, returning the response line
  /// (without trailing newline). Never throws: malformed input becomes a
  /// typed error response. Safe to call from many threads. The worker
  /// tier never emits intermediate events; `emit` is unused (streamed
  /// sweep progress is the router's job).
  std::string handle_line(const std::string& line, const Emit& emit) override;

  /// Stops admitting work; queued and in-flight simulations finish.
  /// Idempotent. The SIGTERM path and the `shutdown` op land here.
  void begin_drain() override;
  bool draining() const override {
    return draining_.load(std::memory_order_acquire);
  }
  /// begin_drain() plus blocking until the scheduler has retired every
  /// accepted job.
  void drain() override;

  /// Live service counters (serve.* taxonomy, docs/observability.md):
  /// queue depth, in-flight sims, cache hit/miss, coalesced requests,
  /// rejects, sweep cells — exported by the `stats` op, the daemon's
  /// --metrics dump, and the tests.
  obs::CounterSet counters() const;

  const ResultStore& store() const { return store_; }

 private:
  struct Flight;
  struct Job;

  obs::json::Value handle_request(const obs::json::Value& request);
  obs::json::Value do_run(const obs::json::Value& request);
  obs::json::Value do_sweep(const obs::json::Value& request);
  obs::json::Value do_get(const obs::json::Value& request);
  obs::json::Value do_list() const;
  obs::json::Value do_pareto(const obs::json::Value& request) const;
  obs::json::Value do_stats() const;
  obs::json::Value do_merge(const obs::json::Value& request);
  obs::json::Value do_compact();

  /// Executes one simulation, stores + caches the result, and completes
  /// `flight`. Exceptions are captured into the flight (a failed cell
  /// must never strand its waiters or skip the rest of a batch).
  void execute_job(const Job& job);
  void scheduler_main();

  ServerConfig config_;
  ResultStore store_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;  ///< Scheduler wake-up.
  std::condition_variable idle_cv_;   ///< drain() completion.
  LruCache cache_;
  std::deque<Job> queue_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;
  std::size_t running_ = 0;  ///< Jobs handed to the pool, not yet retired.
  bool stop_ = false;

  std::atomic<bool> draining_{false};

  // serve.* counters. Relaxed atomics: each is a statistic, not a
  // synchronization point.
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> run_requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> store_hits_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> sims_run_{0};
  std::atomic<std::uint64_t> sims_failed_{0};
  std::atomic<std::uint64_t> rejected_overload_{0};
  std::atomic<std::uint64_t> rejected_draining_{0};
  std::atomic<std::uint64_t> deadline_timeouts_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> max_batch_{0};
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> sweep_cells_total_{0};
  std::atomic<std::uint64_t> sweep_cells_run_{0};
  std::atomic<std::uint64_t> sweep_cells_resumed_{0};
  std::atomic<std::uint64_t> sweep_cells_failed_{0};
  std::atomic<std::uint64_t> store_merges_{0};
  std::atomic<std::uint64_t> store_compactions_{0};

  QueueWaitHistogram queue_wait_;

  std::thread scheduler_;
};

}  // namespace respin::serve
