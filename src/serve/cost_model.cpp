#include "serve/cost_model.hpp"

#include "serve/store.hpp"

namespace respin::serve {

namespace {

std::string pair_key(const std::string& config, const std::string& benchmark) {
  return config + ' ' + benchmark;
}

}  // namespace

std::size_t CostModel::seed_from_store(const std::string& path) {
  if (path.empty()) return 0;
  std::size_t absorbed = 0;
  for (const StoreEntry& entry : load_store_entries(path)) {
    observe(entry.result.config_name, entry.result.benchmark,
            static_cast<double>(entry.result.cycles));
    ++absorbed;
  }
  return absorbed;
}

void CostModel::observe(const std::string& config, const std::string& benchmark,
                        double cycles) {
  std::lock_guard<std::mutex> lock(mu_);
  pair_[pair_key(config, benchmark)].add(cycles);
  config_[config].add(cycles);
  benchmark_[benchmark].add(cycles);
  global_.add(cycles);
}

double CostModel::predict(const std::string& config,
                          const std::string& benchmark) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = pair_.find(pair_key(config, benchmark));
      it != pair_.end()) {
    return it->second.value();
  }
  const auto bench_it = benchmark_.find(benchmark);
  const auto config_it = config_.find(config);
  if (bench_it != benchmark_.end()) {
    // Benchmark mean, scaled by how expensive this config runs relative
    // to the global mean (configs multiply cost roughly uniformly across
    // benchmarks: more cores, slower memory, fault retries).
    if (config_it != config_.end() && global_.value() > 0.0) {
      return bench_it->second.value() *
             (config_it->second.value() / global_.value());
    }
    return bench_it->second.value();
  }
  if (config_it != config_.end()) return config_it->second.value();
  if (global_.n > 0) return global_.value();
  return 1.0;
}

std::size_t CostModel::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return global_.n;
}

}  // namespace respin::serve
