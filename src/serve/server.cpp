#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <iterator>

#include "exec/parallel.hpp"
#include "obs/obs.hpp"
#include "trace/fit/fit.hpp"
#include "trace/replay.hpp"
#include "util/require.hpp"
#include "workload/workload.hpp"

namespace respin::serve {

namespace obsj = obs::json;

/// One queued-or-running unique simulation; every coalesced waiter holds
/// the same Flight and wakes when it completes.
struct Server::Flight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::shared_ptr<const core::SimResult> result;  ///< Null on failure.
  std::string error;
};

struct Server::Job {
  std::string key;
  core::RequestSpec spec;
  std::shared_ptr<Flight> flight;
  std::chrono::steady_clock::time_point enqueued;
};

void QueueWaitHistogram::record(double wait_ms) {
  std::size_t bucket = kBucketsMs.size();  // Overflow by default.
  for (std::size_t i = 0; i < kBucketsMs.size(); ++i) {
    if (wait_ms <= kBucketsMs[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(static_cast<std::uint64_t>(wait_ms * 1000.0),
                    std::memory_order_relaxed);
}

void QueueWaitHistogram::export_counters(obs::CounterSet& set,
                                         const std::string& prefix) const {
  // Cumulative buckets (Prometheus-style le_*): each includes everything
  // below it, so a reader can take quantiles without re-summing.
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketsMs.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    set.add(prefix + ".le_" +
                std::to_string(static_cast<std::uint64_t>(kBucketsMs[i])),
            cumulative);
  }
  set.add(prefix + ".count", count_.load(std::memory_order_relaxed));
  set.add(prefix + ".sum_ms",
          static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
              1000.0);
}

namespace {

/// Executes one request: catalog benchmark, trace replay when the
/// workload reference is a trace file, or profile synthesis when it is a
/// fitted-profile file.
core::SimResult run_request(const core::RequestSpec& spec) {
  if (!spec.trace_file.empty()) {
    const trace::TraceData data = trace::load_trace(spec.trace_file);
    trace::ReplayOptions options;
    options.size = spec.options.size;
    options.cycle_skip = spec.options.cycle_skip;
    options.oracle_stride = spec.options.oracle_stride;
    return trace::replay_trace(spec.config, data, options);
  }
  if (!spec.profile_file.empty()) {
    auto profile = std::make_shared<const workload::WorkloadProfile>(
        trace::fit::load_profile(spec.profile_file));
    return trace::fit::run_profile(spec.config, std::move(profile),
                                   spec.options);
  }
  return core::run_experiment(spec.config, spec.benchmark, spec.options);
}

void require_known_benchmark(const std::string& name) {
  const std::vector<std::string> names = workload::benchmark_names();
  if (std::find(names.begin(), names.end(), name) == names.end()) {
    throw std::logic_error("unknown benchmark '" + name +
                           "' (see respin_sim --list-workloads)");
  }
}

obsj::Value ok_response(const char* op) {
  obsj::Value v = obsj::Value::object();
  v.set("ok", obsj::Value::boolean(true));
  v.set("op", obsj::Value::str(op));
  return v;
}

obsj::Value error_response(const char* op, const char* kind,
                           const std::string& message) {
  obsj::Value v = obsj::Value::object();
  v.set("ok", obsj::Value::boolean(false));
  if (op != nullptr) v.set("op", obsj::Value::str(op));
  obsj::Value error = obsj::Value::object();
  error.set("kind", obsj::Value::str(kind));
  error.set("message", obsj::Value::str(message));
  v.set("error", std::move(error));
  return v;
}

}  // namespace

Server::Server(const ServerConfig& config)
    : config_(config),
      store_(config.store_path),
      cache_(config.cache_capacity),
      scheduler_([this] { scheduler_main(); }) {}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  scheduler_.join();
}

void Server::begin_drain() {
  draining_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
}

void Server::drain() {
  begin_drain();
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

std::string Server::handle_line(const std::string& line, const Emit&) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  obsj::Value request;
  try {
    request = obsj::parse(line);
  } catch (const obsj::Error& e) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return error_response(nullptr, "parse_error", e.what()).dump();
  }
  obsj::Value response;
  try {
    response = handle_request(request);
  } catch (const std::exception& e) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    response = error_response(nullptr, "bad_request", e.what());
  }
  // Echo the client's correlation id, if any, so pipelined requests over
  // one connection can be matched to their responses.
  if (const obsj::Value* id = request.find("id")) {
    response.set("id", *id);
  }
  return response.dump();
}

obsj::Value Server::handle_request(const obsj::Value& request) {
  const obsj::Value* op_field = request.find("op");
  if (op_field == nullptr) {
    throw std::logic_error(
        "missing 'op' (valid: ping, version, run, sweep, get, list, pareto, "
        "stats, merge, compact, shutdown)");
  }
  const std::string& op = op_field->as_string();
  if (op == "ping") return ok_response("ping");
  if (op == "version") {
    obsj::Value v = ok_response("version");
    v.set("version", obsj::Value::str(config_.version));
    return v;
  }
  if (op == "run") return do_run(request);
  if (op == "sweep") return do_sweep(request);
  if (op == "get") return do_get(request);
  if (op == "list") return do_list();
  if (op == "pareto") return do_pareto(request);
  if (op == "stats") return do_stats();
  if (op == "merge") return do_merge(request);
  if (op == "compact") return do_compact();
  if (op == "shutdown") {
    begin_drain();
    obsj::Value v = ok_response("shutdown");
    v.set("draining", obsj::Value::boolean(true));
    return v;
  }
  throw std::logic_error(
      "unknown op '" + op +
      "' (valid: ping, version, run, sweep, get, list, pareto, stats, "
      "merge, compact, shutdown)");
}

obsj::Value Server::do_run(const obsj::Value& request) {
  run_requests_.fetch_add(1, std::memory_order_relaxed);
  core::RequestSpec spec = core::request_spec_from_json(request);
  if (spec.trace_file.empty() && spec.profile_file.empty()) {
    require_known_benchmark(spec.benchmark);
  }
  const std::string key = core::canonical_key(spec);

  std::int64_t deadline_ms = config_.default_deadline_ms;
  if (const obsj::Value* d = request.find("deadline_ms")) {
    deadline_ms = d->as_i64();
    RESPIN_REQUIRE(deadline_ms >= 0, "deadline_ms must be >= 0");
  }

  std::shared_ptr<const core::SimResult> result;
  std::shared_ptr<Flight> flight;
  const char* source = "sim";
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (auto hit = cache_.get(key)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      result = std::move(hit);
      source = "cache";
    } else if (auto stored = store_.get(key)) {
      // Cold cache but durable store (daemon restart): promote.
      store_hits_.fetch_add(1, std::memory_order_relaxed);
      result = std::make_shared<core::SimResult>(*std::move(stored));
      cache_.put(key, result);
      source = "store";
    } else if (const auto it = inflight_.find(key); it != inflight_.end()) {
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      flight = it->second;
      source = "coalesced";
    } else if (draining()) {
      rejected_draining_.fetch_add(1, std::memory_order_relaxed);
      return error_response("run", "draining",
                            "server is draining; not accepting new work");
    } else if (queue_.size() >= config_.queue_depth) {
      rejected_overload_.fetch_add(1, std::memory_order_relaxed);
      return error_response(
          "run", "overloaded",
          "admission queue is full (depth " +
              std::to_string(config_.queue_depth) + "); retry later");
    } else {
      flight = std::make_shared<Flight>();
      inflight_.emplace(key, flight);
      queue_.push_back(
          Job{key, std::move(spec), flight, std::chrono::steady_clock::now()});
      enqueued_.fetch_add(1, std::memory_order_relaxed);
      queue_cv_.notify_one();
    }
  }

  if (result == nullptr) {
    std::unique_lock<std::mutex> fl(flight->mu);
    if (deadline_ms > 0) {
      const bool done = flight->cv.wait_for(
          fl, std::chrono::milliseconds(deadline_ms),
          [&] { return flight->done; });
      if (!done) {
        deadline_timeouts_.fetch_add(1, std::memory_order_relaxed);
        obsj::Value v = error_response(
            "run", "timeout",
            "deadline of " + std::to_string(deadline_ms) +
                " ms elapsed; the simulation continues and will be cached");
        v.set("key", obsj::Value::str(key));
        return v;
      }
    } else {
      flight->cv.wait(fl, [&] { return flight->done; });
    }
    if (flight->result == nullptr) {
      return error_response("run", "run_failed", flight->error);
    }
    result = flight->result;
  }

  obsj::Value v = ok_response("run");
  v.set("key", obsj::Value::str(key));
  v.set("hash", obsj::Value::str(core::key_hash_hex(key)));
  v.set("source", obsj::Value::str(source));
  v.set("cached", obsj::Value::boolean(source == std::string("cache") ||
                                       source == std::string("store")));
  v.set("result", core::result_to_json(*result));
  return v;
}

obsj::Value Server::do_sweep(const obsj::Value& request) {
  sweeps_.fetch_add(1, std::memory_order_relaxed);
  if (draining()) {
    rejected_draining_.fetch_add(1, std::memory_order_relaxed);
    return error_response("sweep", "draining",
                          "server is draining; not accepting new work");
  }
  // Shared run options come from the same fields as a single run; the
  // matrix axes replace "config"/"benchmark".
  const core::RequestSpec base = core::request_spec_from_json(request);
  // A trace/profile workload pins the benchmark axis: the sweep runs the
  // one imported workload across the configuration axis.
  const bool file_workload =
      !base.trace_file.empty() || !base.profile_file.empty();
  RESPIN_REQUIRE(!file_workload || request.find("benchmarks") == nullptr,
                 "a trace_file/profile_file sweep fixes the workload; drop "
                 "the 'benchmarks' axis");

  std::vector<core::ConfigId> configs;
  if (const obsj::Value* list = request.find("configs")) {
    for (const obsj::Value& name : list->as_array()) {
      configs.push_back(core::parse_config_id(name.as_string()));
    }
  } else {
    configs = core::all_config_ids();
  }
  std::vector<std::string> benchmarks;
  if (file_workload) {
    benchmarks.push_back(std::string());  // Placeholder: one workload.
  } else if (const obsj::Value* list = request.find("benchmarks")) {
    for (const obsj::Value& name : list->as_array()) {
      require_known_benchmark(name.as_string());
      benchmarks.push_back(name.as_string());
    }
  } else {
    benchmarks = workload::benchmark_names();
  }
  RESPIN_REQUIRE(!configs.empty() && !benchmarks.empty(),
                 "sweep needs at least one config and one benchmark");

  // Expand the matrix into cells and resume: a cell already checkpointed
  // in the store is never re-simulated.
  struct Cell {
    core::RequestSpec spec;
    std::string key;
  };
  std::vector<Cell> missing;
  std::size_t resumed = 0;
  const std::size_t total = configs.size() * benchmarks.size();
  sweep_cells_total_.fetch_add(total, std::memory_order_relaxed);
  for (const core::ConfigId config : configs) {
    for (const std::string& benchmark : benchmarks) {
      Cell cell;
      cell.spec = base;
      cell.spec.config = config;
      if (!file_workload) cell.spec.benchmark = benchmark;
      cell.key = core::canonical_key(cell.spec);
      if (store_.contains(cell.key)) {
        ++resumed;
      } else {
        missing.push_back(std::move(cell));
      }
    }
  }
  sweep_cells_resumed_.fetch_add(resumed, std::memory_order_relaxed);

  // Run the missing cells as one pool fan-out, checkpointing each cell to
  // the store the moment it completes (the resume contract). A failed
  // cell is counted and reported but does not abort its siblings.
  const std::vector<int> outcomes =
      exec::parallel_map_n(missing.size(), [&](std::size_t i) -> int {
        const Cell& cell = missing[i];
        try {
          obs::ScopedProbe probe("serve.sweep_cell");
          auto result =
              std::make_shared<core::SimResult>(run_request(cell.spec));
          store_.put(cell.key, *result);
          {
            std::lock_guard<std::mutex> lock(mu_);
            cache_.put(cell.key, result);
          }
          sweep_cells_run_.fetch_add(1, std::memory_order_relaxed);
          return 1;
        } catch (const std::exception&) {
          sweep_cells_failed_.fetch_add(1, std::memory_order_relaxed);
          return 0;
        }
      });
  const std::size_t ran = static_cast<std::size_t>(
      std::count(outcomes.begin(), outcomes.end(), 1));

  obsj::Value v = ok_response("sweep");
  v.set("cells", obsj::Value::number(static_cast<std::uint64_t>(total)));
  v.set("ran", obsj::Value::number(static_cast<std::uint64_t>(ran)));
  v.set("resumed", obsj::Value::number(static_cast<std::uint64_t>(resumed)));
  v.set("failed", obsj::Value::number(
                      static_cast<std::uint64_t>(missing.size() - ran)));
  v.set("store_size",
        obsj::Value::number(static_cast<std::uint64_t>(store_.size())));
  return v;
}

obsj::Value Server::do_get(const obsj::Value& request) {
  std::string key;
  if (const obsj::Value* k = request.find("key")) {
    key = k->as_string();
  } else {
    key = core::canonical_key(core::request_spec_from_json(request));
  }
  const std::optional<core::SimResult> stored = store_.get(key);
  if (!stored.has_value()) {
    obsj::Value v = error_response("get", "not_found",
                                   "no stored result for this key");
    v.set("key", obsj::Value::str(key));
    return v;
  }
  obsj::Value v = ok_response("get");
  v.set("key", obsj::Value::str(key));
  v.set("hash", obsj::Value::str(core::key_hash_hex(key)));
  v.set("result", core::result_to_json(*stored));
  return v;
}

obsj::Value Server::do_list() const {
  obsj::Value v = ok_response("list");
  obsj::Array runs;
  for (const ResultStore::Brief& brief : store_.list()) {
    obsj::Value run = obsj::Value::object();
    run.set("key", obsj::Value::str(brief.key));
    run.set("hash", obsj::Value::str(brief.hash));
    run.set("config", obsj::Value::str(brief.config));
    run.set("benchmark", obsj::Value::str(brief.benchmark));
    runs.push_back(std::move(run));
  }
  v.set("count", obsj::Value::number(static_cast<std::uint64_t>(runs.size())));
  v.set("runs", obsj::Value::array(std::move(runs)));
  return v;
}

obsj::Value Server::do_pareto(const obsj::Value& request) const {
  std::string metric_x = "energy_pj";
  std::string metric_y = "cycles";
  if (const obsj::Value* x = request.find("x")) metric_x = x->as_string();
  if (const obsj::Value* y = request.find("y")) metric_y = y->as_string();
  const std::vector<ParetoPoint> frontier = store_.pareto(metric_x, metric_y);
  obsj::Value v = ok_response("pareto");
  v.set("x", obsj::Value::str(metric_x));
  v.set("y", obsj::Value::str(metric_y));
  obsj::Array points;
  points.reserve(frontier.size());
  for (const ParetoPoint& p : frontier) {
    obsj::Value point = obsj::Value::object();
    point.set("key", obsj::Value::str(p.key));
    point.set("hash", obsj::Value::str(p.hash));
    point.set("config", obsj::Value::str(p.config));
    point.set("benchmark", obsj::Value::str(p.benchmark));
    point.set("x", obsj::Value::number(p.x));
    point.set("y", obsj::Value::number(p.y));
    points.push_back(std::move(point));
  }
  v.set("count",
        obsj::Value::number(static_cast<std::uint64_t>(points.size())));
  v.set("points", obsj::Value::array(std::move(points)));
  return v;
}

obsj::Value Server::do_merge(const obsj::Value& request) {
  const obsj::Value* path = request.find("path");
  if (path == nullptr) {
    throw std::logic_error("merge needs a 'path' (JSONL store log to merge)");
  }
  const StoreMergeStats stats = store_.merge_from(path->as_string());
  store_merges_.fetch_add(1, std::memory_order_relaxed);
  obsj::Value v = ok_response("merge");
  v.set("path", *path);
  v.set("scanned",
        obsj::Value::number(static_cast<std::uint64_t>(stats.scanned)));
  v.set("inserted",
        obsj::Value::number(static_cast<std::uint64_t>(stats.inserted)));
  v.set("superseded",
        obsj::Value::number(static_cast<std::uint64_t>(stats.superseded)));
  v.set("ignored",
        obsj::Value::number(static_cast<std::uint64_t>(stats.ignored)));
  v.set("skipped_lines",
        obsj::Value::number(static_cast<std::uint64_t>(stats.skipped_lines)));
  v.set("store_size",
        obsj::Value::number(static_cast<std::uint64_t>(store_.size())));
  return v;
}

obsj::Value Server::do_compact() {
  const std::size_t kept = store_.compact();
  store_compactions_.fetch_add(1, std::memory_order_relaxed);
  obsj::Value v = ok_response("compact");
  v.set("records", obsj::Value::number(static_cast<std::uint64_t>(kept)));
  v.set("generation", obsj::Value::number(store_.generation()));
  return v;
}

obsj::Value Server::do_stats() const {
  obsj::Value v = ok_response("stats");
  obsj::Value counters_v = obsj::Value::object();
  const obs::CounterSet set = counters();
  for (const obs::Counter& c : set.items()) {
    counters_v.set(c.name, obsj::Value::number(c.value));
  }
  v.set("counters", std::move(counters_v));
  return v;
}

obs::CounterSet Server::counters() const {
  const auto load = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  obs::CounterSet set;
  set.add("serve.requests_total", load(requests_total_));
  set.add("serve.protocol_errors", load(protocol_errors_));
  set.add("serve.run_requests", load(run_requests_));
  set.add("serve.cache_hits", load(cache_hits_));
  set.add("serve.store_hits", load(store_hits_));
  set.add("serve.coalesced", load(coalesced_));
  set.add("serve.enqueued", load(enqueued_));
  set.add("serve.sims_run", load(sims_run_));
  set.add("serve.sims_failed", load(sims_failed_));
  set.add("serve.rejected_overload", load(rejected_overload_));
  set.add("serve.rejected_draining", load(rejected_draining_));
  set.add("serve.deadline_timeouts", load(deadline_timeouts_));
  set.add("serve.batches", load(batches_));
  set.add("serve.max_batch", load(max_batch_));
  set.add("serve.sweeps", load(sweeps_));
  set.add("serve.sweep_cells_total", load(sweep_cells_total_));
  set.add("serve.sweep_cells_run", load(sweep_cells_run_));
  set.add("serve.sweep_cells_resumed", load(sweep_cells_resumed_));
  set.add("serve.sweep_cells_failed", load(sweep_cells_failed_));
  set.add("serve.store_merges", load(store_merges_));
  set.add("serve.store_compactions", load(store_compactions_));
  set.add("serve.draining", std::uint64_t{draining() ? 1u : 0u});
  set.add("serve.store_size", static_cast<std::uint64_t>(store_.size()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    set.add("serve.queue_depth", static_cast<std::uint64_t>(queue_.size()));
    set.add("serve.running", static_cast<std::uint64_t>(running_));
    // Queued + handed to the pool: the per-worker load gauge the router's
    // sharding decisions are debugged against.
    set.add("serve.backlog",
            static_cast<std::uint64_t>(queue_.size() + running_));
    set.add("serve.inflight", static_cast<std::uint64_t>(inflight_.size()));
    set.add("serve.cache_size", static_cast<std::uint64_t>(cache_.size()));
  }
  queue_wait_.export_counters(set, "serve.queue_wait_ms");
  set.add("serve.cache_capacity",
          static_cast<std::uint64_t>(config_.cache_capacity));
  set.add("serve.queue_capacity",
          static_cast<std::uint64_t>(config_.queue_depth));
  return set;
}

void Server::execute_job(const Job& job) {
  queue_wait_.record(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - job.enqueued)
          .count());
  std::shared_ptr<core::SimResult> result;
  std::string error;
  try {
    obs::ScopedProbe probe("serve.sim");
    result = std::make_shared<core::SimResult>(run_request(job.spec));
    sims_run_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    error = e.what();
    sims_failed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (result != nullptr) {
    store_.put(job.key, *result);  // Checkpoint before anyone can observe.
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result != nullptr) cache_.put(job.key, result);
    inflight_.erase(job.key);
  }
  {
    std::lock_guard<std::mutex> fl(job.flight->mu);
    job.flight->result = result;
    job.flight->error = std::move(error);
    job.flight->done = true;
  }
  job.flight->cv.notify_all();
}

void Server::scheduler_main() {
  while (true) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      // Take everything that accumulated while the previous batch ran:
      // the natural batching window of a busy service.
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
      running_ += batch.size();
    }
    batches_.fetch_add(1, std::memory_order_relaxed);
    if (batch.size() > max_batch_.load(std::memory_order_relaxed)) {
      max_batch_.store(batch.size(), std::memory_order_relaxed);
    }
    {
      obs::ScopedProbe probe("serve.batch");
      probe.add("jobs", static_cast<std::int64_t>(batch.size()));
      exec::parallel_map_n(batch.size(), [&](std::size_t i) -> int {
        execute_job(batch[i]);
        return 0;
      });
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_ -= batch.size();
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace respin::serve
