// VARIUS-style process variation model.
//
// The paper uses VARIUS [23] to model within-die threshold-voltage (Vth)
// variation and derives per-core maximum frequencies from it. This module
// implements the same structure:
//
//   Vth(x, y) = mu + systematic(x, y) + random
//
// where `systematic` is a zero-mean Gaussian field with spherical spatial
// correlation (range phi, expressed as a fraction of the die edge) sampled
// on a grid, and `random` collapses to a small per-core Gaussian term (the
// per-gate random component averages out over a critical path).
//
// A core's maximum frequency is the alpha-power-law frequency of its
// *slowest* critical path, approximated by the worst Vth among the grid
// points covered by the core's footprint.
#pragma once

#include <cstdint>
#include <vector>

#include "tech/technology.hpp"

namespace respin::varius {

/// Parameters of the variation field.
struct VariationParams {
  std::uint32_t grid_size = 32;      ///< Grid points per die edge.
  double correlation_range = 0.5;    ///< phi, fraction of die edge.
  double systematic_fraction = 0.6;  ///< Share of Vth variance (VARIUS: ~50/50).
  std::uint64_t seed = 1;            ///< Die instance selector.
};

/// A sampled per-die Vth map plus per-core summaries.
class VariationMap {
 public:
  /// Samples a new die. `core_grid` is the number of cores per die edge
  /// (e.g. 8 for a 64-core CMP laid out 8x8).
  VariationMap(const tech::TechnologyParams& tech,
               const VariationParams& params, std::uint32_t core_grid);

  std::uint32_t core_count() const { return core_grid_ * core_grid_; }
  std::uint32_t core_grid() const { return core_grid_; }

  /// Worst (highest) Vth over the given core's footprint, in volts.
  double core_vth(std::uint32_t core_id) const;

  /// Maximum stable frequency (Hz) of the core at supply `vdd`.
  double core_max_frequency(std::uint32_t core_id, double vdd) const;

  /// Raw grid access (row-major), for tests and visualization.
  double grid_vth(std::uint32_t x, std::uint32_t y) const;
  std::uint32_t grid_size() const { return params_.grid_size; }

  const tech::TechnologyParams& technology() const { return tech_; }

 private:
  tech::TechnologyParams tech_;
  VariationParams params_;
  std::uint32_t core_grid_;
  std::vector<double> grid_;      // grid_size^2 Vth samples.
  std::vector<double> core_vth_;  // worst Vth per core.
};

/// Derives the per-core clock multipliers for one cluster: each core's
/// maximum frequency at `core_vdd` is quantized to an integer multiple of
/// the shared-cache period (paper §II). Returned in core-id order.
std::vector<int> cluster_multipliers(const VariationMap& map,
                                     const tech::ClusterClocking& clocking,
                                     double core_vdd,
                                     std::uint32_t first_core,
                                     std::uint32_t count);

/// Per-core worst-case Vth for one cluster, in core-id order — the hook
/// the fault model uses to modulate SRAM Vccmin by die position (a slow,
/// high-Vth region loses static noise margin first).
std::vector<double> cluster_vths(const VariationMap& map,
                                 std::uint32_t first_core,
                                 std::uint32_t count);

}  // namespace respin::varius
