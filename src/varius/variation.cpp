#include "varius/variation.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace respin::varius {

namespace {

// Spherical correlation: rho(d) = 1 - 1.5 (d/phi) + 0.5 (d/phi)^3 for
// d < phi, else 0 (the VARIUS choice).
double spherical_rho(double distance, double phi) {
  if (distance >= phi) return 0.0;
  const double r = distance / phi;
  return 1.0 - 1.5 * r + 0.5 * r * r * r;
}

// Samples a correlated Gaussian field by smoothing white noise with the
// spherical kernel and renormalizing to unit variance. This is an
// inexpensive stand-in for a Cholesky factorization of the full covariance
// matrix; it preserves the correlation range, which is what the frequency
// distribution depends on.
std::vector<double> correlated_field(std::uint32_t n, double phi_fraction,
                                     util::Rng& rng) {
  std::vector<double> white(static_cast<std::size_t>(n) * n);
  for (auto& w : white) w = rng.normal();

  const double phi = phi_fraction * static_cast<double>(n);
  const int radius = std::max(1, static_cast<int>(std::ceil(phi)));

  // Precompute the kernel once.
  std::vector<double> kernel;
  kernel.reserve(static_cast<std::size_t>(2 * radius + 1) *
                 (2 * radius + 1));
  for (int dy = -radius; dy <= radius; ++dy) {
    for (int dx = -radius; dx <= radius; ++dx) {
      const double d = std::sqrt(static_cast<double>(dx * dx + dy * dy));
      kernel.push_back(spherical_rho(d, phi));
    }
  }

  std::vector<double> field(white.size(), 0.0);
  double sum_sq = 0.0;
  for (std::uint32_t y = 0; y < n; ++y) {
    for (std::uint32_t x = 0; x < n; ++x) {
      double acc = 0.0;
      std::size_t k = 0;
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx, ++k) {
          const int sx = static_cast<int>(x) + dx;
          const int sy = static_cast<int>(y) + dy;
          if (sx < 0 || sy < 0 || sx >= static_cast<int>(n) ||
              sy >= static_cast<int>(n)) {
            continue;
          }
          acc += kernel[k] *
                 white[static_cast<std::size_t>(sy) * n +
                       static_cast<std::size_t>(sx)];
        }
      }
      field[static_cast<std::size_t>(y) * n + x] = acc;
      sum_sq += acc * acc;
    }
  }
  // Renormalize to unit variance.
  const double scale =
      1.0 / std::sqrt(std::max(sum_sq / static_cast<double>(field.size()),
                               1e-30));
  for (auto& f : field) f *= scale;
  return field;
}

}  // namespace

VariationMap::VariationMap(const tech::TechnologyParams& tech,
                           const VariationParams& params,
                           std::uint32_t core_grid)
    : tech_(tech), params_(params), core_grid_(core_grid) {
  RESPIN_REQUIRE(core_grid >= 1, "need at least one core");
  RESPIN_REQUIRE(params.grid_size >= core_grid,
                 "variation grid must be at least as fine as the core grid");
  RESPIN_REQUIRE(params.systematic_fraction >= 0.0 &&
                     params.systematic_fraction <= 1.0,
                 "systematic fraction must be in [0,1]");

  const std::uint32_t n = params.grid_size;
  util::Rng rng("varius.die", params.seed);
  const std::vector<double> systematic =
      correlated_field(n, params.correlation_range, rng);

  const double sigma_total = tech.vth_mean * tech.vth_sigma_ratio;
  const double sigma_sys =
      sigma_total * std::sqrt(params.systematic_fraction);
  const double sigma_rand =
      sigma_total * std::sqrt(1.0 - params.systematic_fraction);

  grid_.resize(systematic.size());
  for (std::size_t i = 0; i < grid_.size(); ++i) {
    grid_[i] = tech.vth_mean + sigma_sys * systematic[i] +
               sigma_rand * rng.normal();
  }

  // Per-core worst Vth over the core's footprint on the grid.
  core_vth_.resize(static_cast<std::size_t>(core_grid_) * core_grid_);
  const std::uint32_t cells = n / core_grid_;
  for (std::uint32_t cy = 0; cy < core_grid_; ++cy) {
    for (std::uint32_t cx = 0; cx < core_grid_; ++cx) {
      double worst = -1.0;
      for (std::uint32_t y = cy * cells; y < (cy + 1) * cells; ++y) {
        for (std::uint32_t x = cx * cells; x < (cx + 1) * cells; ++x) {
          worst = std::max(worst, grid_[static_cast<std::size_t>(y) * n + x]);
        }
      }
      core_vth_[static_cast<std::size_t>(cy) * core_grid_ + cx] = worst;
    }
  }
}

double VariationMap::core_vth(std::uint32_t core_id) const {
  RESPIN_REQUIRE(core_id < core_vth_.size(), "core id out of range");
  return core_vth_[core_id];
}

double VariationMap::core_max_frequency(std::uint32_t core_id,
                                        double vdd) const {
  return tech::max_frequency_hz(tech_, vdd, core_vth(core_id));
}

double VariationMap::grid_vth(std::uint32_t x, std::uint32_t y) const {
  RESPIN_REQUIRE(x < params_.grid_size && y < params_.grid_size,
                 "grid coordinate out of range");
  return grid_[static_cast<std::size_t>(y) * params_.grid_size + x];
}

std::vector<int> cluster_multipliers(const VariationMap& map,
                                     const tech::ClusterClocking& clocking,
                                     double core_vdd, std::uint32_t first_core,
                                     std::uint32_t count) {
  RESPIN_REQUIRE(first_core + count <= map.core_count(),
                 "cluster core range exceeds die");
  std::vector<int> multipliers;
  multipliers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const double fmax = map.core_max_frequency(first_core + i, core_vdd);
    multipliers.push_back(clocking.multiplier_for_max_frequency(fmax));
  }
  return multipliers;
}

std::vector<double> cluster_vths(const VariationMap& map,
                                 std::uint32_t first_core,
                                 std::uint32_t count) {
  RESPIN_REQUIRE(first_core + count <= map.core_count(),
                 "cluster core range exceeds die");
  std::vector<double> vths;
  vths.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    vths.push_back(map.core_vth(first_core + i));
  }
  return vths;
}

}  // namespace respin::varius
