// Shared vocabulary types for the memory hierarchy.
#pragma once

#include <cstdint>

namespace respin::mem {

/// Byte address in the simulated 64-bit physical address space.
using Addr = std::uint64_t;

/// Cache-line address: byte address divided by the line size.
using LineAddr = std::uint64_t;

/// Kind of memory access issued by a core.
enum class AccessType : std::uint8_t {
  kLoad,    ///< Data read.
  kStore,   ///< Data write.
  kIfetch,  ///< Instruction fetch.
};

/// MESI coherence states for the private-L1 baseline configurations.
enum class Mesi : std::uint8_t {
  kInvalid,
  kShared,
  kExclusive,
  kModified,
};

inline bool is_valid(Mesi state) { return state != Mesi::kInvalid; }
inline bool can_write(Mesi state) {
  return state == Mesi::kModified || state == Mesi::kExclusive;
}

/// Converts a byte address to a line address.
constexpr LineAddr line_of(Addr addr, std::uint32_t line_bytes) {
  return addr / line_bytes;
}

}  // namespace respin::mem
