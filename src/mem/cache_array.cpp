#include "mem/cache_array.hpp"

#include <bit>

#include "util/require.hpp"

namespace respin::mem {

namespace {
constexpr std::uint8_t kInvalidState =
    static_cast<std::uint8_t>(Mesi::kInvalid);
}  // namespace

CacheArray::CacheArray(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
                       std::uint32_t ways)
    : line_bytes_(line_bytes), ways_(ways) {
  RESPIN_REQUIRE(line_bytes > 0 && std::has_single_bit(line_bytes),
                 "line size must be a power of two");
  RESPIN_REQUIRE(ways > 0, "associativity must be positive");
  const std::uint64_t lines = capacity_bytes / line_bytes;
  RESPIN_REQUIRE(lines > 0 && lines % ways == 0,
                 "capacity must hold a whole number of sets");
  const std::uint64_t sets = lines / ways;
  set_count_ = static_cast<std::uint32_t>(sets);
  // Modulo indexing: set counts need not be powers of two (the 12 MB L3
  // slice of the medium configuration has 6144 sets); power-of-two counts
  // take the mask fast path.
  if (std::has_single_bit(sets)) set_mask_ = sets - 1;
  lines_.assign(lines, kNoLine);
  states_.assign(lines, kInvalidState);
  lru_.assign(lines, 0);
  lru_tick_.assign(set_count_, 0);
}

bool CacheArray::set_state(LineAddr line, Mesi state) {
  RESPIN_REQUIRE(state != Mesi::kInvalid,
                 "use invalidate() to drop a line, not set_state(I)");
  const std::size_t idx =
      find_in_set(static_cast<std::size_t>(set_index(line)) * ways_, line);
  if (idx != kNoWay) {
    states_[idx] = static_cast<std::uint8_t>(state);
    return true;
  }
  return false;
}

void CacheArray::set_way_partition(std::uint32_t sram_ways) {
  RESPIN_REQUIRE(sram_ways <= ways_,
                 "SRAM way class cannot exceed the associativity");
  sram_ways_ = sram_ways;
}

std::optional<Eviction> CacheArray::insert(LineAddr line, Mesi state,
                                           WayClassHint hint,
                                           bool* placed_sram) {
  RESPIN_REQUIRE(state != Mesi::kInvalid, "cannot insert an invalid line");
  RESPIN_REQUIRE(line != kNoLine,
                 "the all-ones line address is the invalid-way sentinel");
  if (placed_sram != nullptr) *placed_sram = false;
  const std::uint32_t set = set_index(line);
  const std::size_t set_base = static_cast<std::size_t>(set) * ways_;

  RESPIN_REQUIRE(find_in_set(set_base, line) == kNoWay,
                 "line already present");
  std::size_t victim = kNoWay;
  if (hint == WayClassHint::kPreferSram && hybrid()) {
    // Write-biased fill on a hybrid array: keep it out of the slow/wearing
    // NVM ways. Free usable SRAM way first, else the LRU SRAM way — even
    // when an NVM way is free, evicting from the SRAM class is the point.
    // Only when every SRAM way is disabled does the whole-set policy run.
    std::size_t lru_way = kNoWay;
    for (std::uint32_t w = 0; w < sram_ways_; ++w) {
      const std::size_t i = set_base + w;
      if (way_disabled(i)) continue;
      if (lines_[i] == kNoLine) {
        victim = i;
        break;
      }
      if (lru_way == kNoWay || lru_[i] < lru_[lru_way]) lru_way = i;
    }
    if (victim == kNoWay) victim = lru_way;
  }
  if (victim == kNoWay) {
    // Pick the victim: first invalid usable way, else min-LRU usable way.
    // Invalid ways carry the kNoLine tag, so the absence assertion and the
    // free-way search are both branchless tag scans (see find_in_set); the
    // LRU walk only runs when the set is full of valid usable ways.
    victim = find_in_set(set_base, kNoLine);
    if (victim != kNoWay && way_disabled(victim)) {
      // A disabled way also carries kNoLine; fall back to the precise walk.
      victim = kNoWay;
      for (std::uint32_t w = 0; w < ways_; ++w) {
        const std::size_t i = set_base + w;
        if (!way_disabled(i) && lines_[i] == kNoLine) {
          victim = i;
          break;
        }
      }
    }
    if (victim == kNoWay) {
      for (std::uint32_t w = 0; w < ways_; ++w) {
        const std::size_t i = set_base + w;
        if (way_disabled(i)) continue;
        if (victim == kNoWay || lru_[i] < lru_[victim]) victim = i;
      }
    }
  }
  // Every way of the set is disabled: the line cannot be cached. The
  // caller sees "no eviction" and simply misses again next time —
  // accesses bypass the dead set (callers that must know consult
  // can_insert() first).
  if (victim == kNoWay) return std::nullopt;
  if (placed_sram != nullptr && hybrid()) {
    *placed_sram = static_cast<std::uint32_t>(victim - set_base) < sram_ways_;
  }

  std::optional<Eviction> evicted;
  if (states_[victim] != kInvalidState) {
    evicted = Eviction{lines_[victim],
                       states_[victim] ==
                           static_cast<std::uint8_t>(Mesi::kModified)};
    ++stats_.evictions;
    if (evicted->dirty) ++stats_.writebacks;
  }
  lines_[victim] = line;
  states_[victim] = static_cast<std::uint8_t>(state);
  touch(set, victim);
  return evicted;
}

bool CacheArray::invalidate(LineAddr line, bool* was_dirty) {
  const std::size_t idx =
      find_in_set(static_cast<std::size_t>(set_index(line)) * ways_, line);
  if (idx != kNoWay) {
    if (was_dirty != nullptr) {
      *was_dirty =
          states_[idx] == static_cast<std::uint8_t>(Mesi::kModified);
    }
    states_[idx] = kInvalidState;
    lines_[idx] = kNoLine;
    ++stats_.invalidations;
    return true;
  }
  if (was_dirty != nullptr) *was_dirty = false;
  return false;
}

void CacheArray::flush() {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == static_cast<std::uint8_t>(Mesi::kModified)) {
      ++stats_.writebacks;
    }
    if (states_[i] != kInvalidState) ++stats_.invalidations;
    states_[i] = kInvalidState;
    lines_[i] = kNoLine;
  }
}

std::uint64_t CacheArray::resident_lines() const {
  std::uint64_t count = 0;
  for (const std::uint8_t s : states_) {
    if (s != kInvalidState) ++count;
  }
  return count;
}

void CacheArray::apply_fault_map(const std::vector<std::uint8_t>& map) {
  RESPIN_REQUIRE(map.size() == states_.size(),
                 "fault map must cover every way of the array");
  fault_ = map;
  for (std::size_t i = 0; i < fault_.size(); ++i) {
    if (way_disabled(i)) {
      states_[i] = kInvalidState;
      lines_[i] = kNoLine;
    }
  }
}

bool CacheArray::can_insert(LineAddr line) const {
  if (fault_.empty()) return true;
  const std::size_t set_base =
      static_cast<std::size_t>(set_index(line)) * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!way_disabled(set_base + w)) return true;
  }
  return false;
}

bool CacheArray::disable_line(LineAddr line) {
  const std::size_t idx =
      find_in_set(static_cast<std::size_t>(set_index(line)) * ways_, line);
  if (idx == kNoWay) return false;
  if (fault_.empty()) {
    fault_.assign(states_.size(),
                  static_cast<std::uint8_t>(fault::LineFault::kNone));
  }
  fault_[idx] = static_cast<std::uint8_t>(fault::LineFault::kDisabled);
  states_[idx] = kInvalidState;
  lines_[idx] = kNoLine;
  return true;
}

std::uint64_t CacheArray::disabled_ways() const {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < fault_.size(); ++i) {
    if (way_disabled(i)) ++count;
  }
  return count;
}

std::uint64_t CacheArray::correctable_ways() const {
  std::uint64_t count = 0;
  for (const std::uint8_t f : fault_) {
    if (f == static_cast<std::uint8_t>(fault::LineFault::kCorrectable)) {
      ++count;
    }
  }
  return count;
}

}  // namespace respin::mem
