#include "mem/cache_array.hpp"

#include <bit>

#include "util/require.hpp"

namespace respin::mem {

CacheArray::CacheArray(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
                       std::uint32_t ways)
    : line_bytes_(line_bytes), ways_(ways) {
  RESPIN_REQUIRE(line_bytes > 0 && std::has_single_bit(line_bytes),
                 "line size must be a power of two");
  RESPIN_REQUIRE(ways > 0, "associativity must be positive");
  const std::uint64_t lines = capacity_bytes / line_bytes;
  RESPIN_REQUIRE(lines > 0 && lines % ways == 0,
                 "capacity must hold a whole number of sets");
  const std::uint64_t sets = lines / ways;
  set_count_ = static_cast<std::uint32_t>(sets);
  ways_storage_.resize(lines);
  lru_tick_.assign(set_count_, 0);
}

std::uint32_t CacheArray::set_index(LineAddr line) const {
  // Modulo indexing: set counts need not be powers of two (the 12 MB L3
  // slice of the medium configuration has 6144 sets).
  return static_cast<std::uint32_t>(line % set_count_);
}

CacheArray::Way* CacheArray::find(LineAddr line) {
  const std::uint32_t set = set_index(line);
  Way* base = &ways_storage_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].state != Mesi::kInvalid && base[w].line == line) {
      return &base[w];
    }
  }
  return nullptr;
}

const CacheArray::Way* CacheArray::find(LineAddr line) const {
  return const_cast<CacheArray*>(this)->find(line);
}

void CacheArray::touch(std::uint32_t set, Way& way) {
  way.lru = ++lru_tick_[set];
}

std::optional<Mesi> CacheArray::access(LineAddr line, bool* corrected) {
  if (corrected != nullptr) *corrected = false;
  if (Way* way = find(line)) {
    touch(set_index(line), *way);
    ++stats_.hits;
    if (!fault_.empty()) {
      const auto idx = static_cast<std::size_t>(way - ways_storage_.data());
      if (fault_[idx] == static_cast<std::uint8_t>(fault::LineFault::kCorrectable)) {
        ++stats_.ecc_corrections;
        if (corrected != nullptr) *corrected = true;
      }
    }
    return way->state;
  }
  ++stats_.misses;
  return std::nullopt;
}

std::optional<Mesi> CacheArray::probe(LineAddr line) const {
  if (const Way* way = find(line)) return way->state;
  return std::nullopt;
}

bool CacheArray::set_state(LineAddr line, Mesi state) {
  RESPIN_REQUIRE(state != Mesi::kInvalid,
                 "use invalidate() to drop a line, not set_state(I)");
  if (Way* way = find(line)) {
    way->state = state;
    return true;
  }
  return false;
}

std::optional<Eviction> CacheArray::insert(LineAddr line, Mesi state) {
  RESPIN_REQUIRE(state != Mesi::kInvalid, "cannot insert an invalid line");
  RESPIN_REQUIRE(find(line) == nullptr, "line already present");
  const std::uint32_t set = set_index(line);
  const std::size_t set_base = static_cast<std::size_t>(set) * ways_;
  Way* base = &ways_storage_[set_base];

  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (way_disabled(set_base + w)) continue;
    if (base[w].state == Mesi::kInvalid) {
      victim = &base[w];
      break;
    }
    if (victim == nullptr || base[w].lru < victim->lru) victim = &base[w];
  }
  // Every way of the set is disabled: the line cannot be cached. The
  // caller sees "no eviction" and simply misses again next time —
  // accesses bypass the dead set (callers that must know consult
  // can_insert() first).
  if (victim == nullptr) return std::nullopt;

  std::optional<Eviction> evicted;
  if (victim->state != Mesi::kInvalid) {
    evicted = Eviction{victim->line, victim->state == Mesi::kModified};
    ++stats_.evictions;
    if (evicted->dirty) ++stats_.writebacks;
  }
  victim->line = line;
  victim->state = state;
  touch(set, *victim);
  return evicted;
}

bool CacheArray::invalidate(LineAddr line, bool* was_dirty) {
  if (Way* way = find(line)) {
    if (was_dirty != nullptr) *was_dirty = (way->state == Mesi::kModified);
    way->state = Mesi::kInvalid;
    ++stats_.invalidations;
    return true;
  }
  if (was_dirty != nullptr) *was_dirty = false;
  return false;
}

void CacheArray::flush() {
  for (Way& way : ways_storage_) {
    if (way.state == Mesi::kModified) ++stats_.writebacks;
    if (way.state != Mesi::kInvalid) ++stats_.invalidations;
    way.state = Mesi::kInvalid;
  }
}

std::uint64_t CacheArray::resident_lines() const {
  std::uint64_t count = 0;
  for (const Way& way : ways_storage_) {
    if (way.state != Mesi::kInvalid) ++count;
  }
  return count;
}

void CacheArray::apply_fault_map(const std::vector<std::uint8_t>& map) {
  RESPIN_REQUIRE(map.size() == ways_storage_.size(),
                 "fault map must cover every way of the array");
  fault_ = map;
  for (std::size_t i = 0; i < fault_.size(); ++i) {
    if (way_disabled(i)) ways_storage_[i].state = Mesi::kInvalid;
  }
}

bool CacheArray::can_insert(LineAddr line) const {
  if (fault_.empty()) return true;
  const std::size_t set_base =
      static_cast<std::size_t>(set_index(line)) * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (!way_disabled(set_base + w)) return true;
  }
  return false;
}

bool CacheArray::disable_line(LineAddr line) {
  Way* way = find(line);
  if (way == nullptr) return false;
  if (fault_.empty()) {
    fault_.assign(ways_storage_.size(),
                  static_cast<std::uint8_t>(fault::LineFault::kNone));
  }
  const auto idx = static_cast<std::size_t>(way - ways_storage_.data());
  fault_[idx] = static_cast<std::uint8_t>(fault::LineFault::kDisabled);
  way->state = Mesi::kInvalid;
  return true;
}

std::uint64_t CacheArray::disabled_ways() const {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < fault_.size(); ++i) {
    if (way_disabled(i)) ++count;
  }
  return count;
}

std::uint64_t CacheArray::correctable_ways() const {
  std::uint64_t count = 0;
  for (const std::uint8_t f : fault_) {
    if (f == static_cast<std::uint8_t>(fault::LineFault::kCorrectable)) {
      ++count;
    }
  }
  return count;
}

}  // namespace respin::mem
