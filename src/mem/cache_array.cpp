#include "mem/cache_array.hpp"

#include <bit>

#include "util/require.hpp"

namespace respin::mem {

CacheArray::CacheArray(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
                       std::uint32_t ways)
    : line_bytes_(line_bytes), ways_(ways) {
  RESPIN_REQUIRE(line_bytes > 0 && std::has_single_bit(line_bytes),
                 "line size must be a power of two");
  RESPIN_REQUIRE(ways > 0, "associativity must be positive");
  const std::uint64_t lines = capacity_bytes / line_bytes;
  RESPIN_REQUIRE(lines > 0 && lines % ways == 0,
                 "capacity must hold a whole number of sets");
  const std::uint64_t sets = lines / ways;
  set_count_ = static_cast<std::uint32_t>(sets);
  ways_storage_.resize(lines);
  lru_tick_.assign(set_count_, 0);
}

std::uint32_t CacheArray::set_index(LineAddr line) const {
  // Modulo indexing: set counts need not be powers of two (the 12 MB L3
  // slice of the medium configuration has 6144 sets).
  return static_cast<std::uint32_t>(line % set_count_);
}

CacheArray::Way* CacheArray::find(LineAddr line) {
  const std::uint32_t set = set_index(line);
  Way* base = &ways_storage_[static_cast<std::size_t>(set) * ways_];
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].state != Mesi::kInvalid && base[w].line == line) {
      return &base[w];
    }
  }
  return nullptr;
}

const CacheArray::Way* CacheArray::find(LineAddr line) const {
  return const_cast<CacheArray*>(this)->find(line);
}

void CacheArray::touch(std::uint32_t set, Way& way) {
  way.lru = ++lru_tick_[set];
}

std::optional<Mesi> CacheArray::access(LineAddr line) {
  if (Way* way = find(line)) {
    touch(set_index(line), *way);
    ++stats_.hits;
    return way->state;
  }
  ++stats_.misses;
  return std::nullopt;
}

std::optional<Mesi> CacheArray::probe(LineAddr line) const {
  if (const Way* way = find(line)) return way->state;
  return std::nullopt;
}

bool CacheArray::set_state(LineAddr line, Mesi state) {
  RESPIN_REQUIRE(state != Mesi::kInvalid,
                 "use invalidate() to drop a line, not set_state(I)");
  if (Way* way = find(line)) {
    way->state = state;
    return true;
  }
  return false;
}

std::optional<Eviction> CacheArray::insert(LineAddr line, Mesi state) {
  RESPIN_REQUIRE(state != Mesi::kInvalid, "cannot insert an invalid line");
  RESPIN_REQUIRE(find(line) == nullptr, "line already present");
  const std::uint32_t set = set_index(line);
  Way* base = &ways_storage_[static_cast<std::size_t>(set) * ways_];

  Way* victim = nullptr;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].state == Mesi::kInvalid) {
      victim = &base[w];
      break;
    }
    if (victim == nullptr || base[w].lru < victim->lru) victim = &base[w];
  }

  std::optional<Eviction> evicted;
  if (victim->state != Mesi::kInvalid) {
    evicted = Eviction{victim->line, victim->state == Mesi::kModified};
    ++stats_.evictions;
    if (evicted->dirty) ++stats_.writebacks;
  }
  victim->line = line;
  victim->state = state;
  touch(set, *victim);
  return evicted;
}

bool CacheArray::invalidate(LineAddr line, bool* was_dirty) {
  if (Way* way = find(line)) {
    if (was_dirty != nullptr) *was_dirty = (way->state == Mesi::kModified);
    way->state = Mesi::kInvalid;
    ++stats_.invalidations;
    return true;
  }
  if (was_dirty != nullptr) *was_dirty = false;
  return false;
}

void CacheArray::flush() {
  for (Way& way : ways_storage_) {
    if (way.state == Mesi::kModified) ++stats_.writebacks;
    if (way.state != Mesi::kInvalid) ++stats_.invalidations;
    way.state = Mesi::kInvalid;
  }
}

std::uint64_t CacheArray::resident_lines() const {
  std::uint64_t count = 0;
  for (const Way& way : ways_storage_) {
    if (way.state != Mesi::kInvalid) ++count;
  }
  return count;
}

}  // namespace respin::mem
