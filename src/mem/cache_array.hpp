// Set-associative cache tag array with true-LRU replacement.
//
// This models presence, state and replacement only — the simulator never
// stores data payloads. The array is a plain value type (contiguous
// storage, no internal pointers) so whole-cluster snapshots for the oracle
// consolidation study are a default copy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/cache_types.hpp"

namespace respin::mem {

/// Result of inserting a line: the victim that was evicted, if any.
struct Eviction {
  LineAddr line = 0;
  bool dirty = false;
};

/// Access/miss counters for one array.
struct CacheArrayStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t invalidations = 0;
};

class CacheArray {
 public:
  /// `capacity_bytes` must be a multiple of `line_bytes * ways`.
  CacheArray(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
             std::uint32_t ways);

  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t ways() const { return ways_; }
  std::uint32_t set_count() const { return set_count_; }
  std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(set_count_) * ways_ * line_bytes_;
  }

  /// Looks up a line. On hit, promotes it to MRU and returns its state;
  /// counts a hit. On miss, counts a miss and returns nullopt.
  std::optional<Mesi> access(LineAddr line);

  /// Looks up without touching LRU or counters (for coherence probes).
  std::optional<Mesi> probe(LineAddr line) const;

  /// Changes the state of a present line; returns false if absent.
  bool set_state(LineAddr line, Mesi state);

  /// Inserts a line in the given state, evicting the LRU way if the set is
  /// full. Returns the eviction, if one happened. The line must not already
  /// be present (callers access() first).
  std::optional<Eviction> insert(LineAddr line, Mesi state);

  /// Removes a line if present; returns true (and counts an invalidation)
  /// when it was. `was_dirty` reports whether the dropped copy was Modified.
  bool invalidate(LineAddr line, bool* was_dirty = nullptr);

  /// Drops every line (e.g. power-gating a private cache); counters keep
  /// accumulating. Dirty lines are counted as writebacks.
  void flush();

  /// Number of valid lines currently resident (O(capacity); tests only).
  std::uint64_t resident_lines() const;

  const CacheArrayStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheArrayStats{}; }

 private:
  struct Way {
    LineAddr line = 0;
    Mesi state = Mesi::kInvalid;
    std::uint32_t lru = 0;  // Higher = more recently used.
  };

  std::uint32_t set_index(LineAddr line) const;
  Way* find(LineAddr line);
  const Way* find(LineAddr line) const;
  void touch(std::uint32_t set, Way& way);

  std::uint32_t line_bytes_;
  std::uint32_t ways_;
  std::uint32_t set_count_;
  std::vector<Way> ways_storage_;       // set_count_ * ways_.
  std::vector<std::uint32_t> lru_tick_; // per-set monotonic counter.
  CacheArrayStats stats_;
};

}  // namespace respin::mem
