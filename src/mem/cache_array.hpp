// Set-associative cache tag array with true-LRU replacement.
//
// This models presence, state and replacement only — the simulator never
// stores data payloads. The array is a plain value type (contiguous
// storage, no internal pointers) so whole-cluster snapshots for the oracle
// consolidation study are a default copy.
//
// Metadata is laid out struct-of-arrays: tags, MESI states and LRU ticks
// live in separate contiguous vectors so the tag scan (the simulator's
// single hottest memory operation) touches one densely packed cache line
// per set and vectorizes, while cold metadata (fault classes, statistics)
// stays out of the scan entirely.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "mem/cache_types.hpp"

namespace respin::mem {

/// Result of inserting a line: the victim that was evicted, if any.
struct Eviction {
  LineAddr line = 0;
  bool dirty = false;
};

/// Victim-class steering hint for insert() on a hybrid array. Pure arrays
/// (no way partition) ignore the hint entirely.
enum class WayClassHint {
  kAny,         ///< Normal whole-set replacement policy.
  kPreferSram,  ///< Write-biased line: steer into the SRAM way class.
};

/// Access/miss counters for one array.
struct CacheArrayStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t ecc_corrections = 0;  ///< Hits on SECDED-corrected ways.
};

class CacheArray {
 public:
  /// `capacity_bytes` must be a multiple of `line_bytes * ways`.
  CacheArray(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
             std::uint32_t ways);

  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t ways() const { return ways_; }
  std::uint32_t set_count() const { return set_count_; }
  std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(set_count_) * ways_ * line_bytes_;
  }

  /// Looks up a line. On hit, promotes it to MRU and returns its state;
  /// counts a hit. On miss, counts a miss and returns nullopt. When
  /// `corrected` is non-null it reports whether the hit landed on a way
  /// the fault map marked SECDED-correctable (the owner charges the
  /// correction latency/energy); such hits also count ecc_corrections.
  /// When `sram_way` is non-null it reports whether the hit landed in the
  /// SRAM way class of a hybrid array (false on pure arrays — the owner
  /// charges per-technology access energy). Defined inline below: this is
  /// the simulator's hottest call.
  std::optional<Mesi> access(LineAddr line, bool* corrected = nullptr,
                             bool* sram_way = nullptr);

  /// Looks up without touching LRU or counters (for coherence probes).
  std::optional<Mesi> probe(LineAddr line) const {
    const std::size_t idx =
        find_in_set(static_cast<std::size_t>(set_index(line)) * ways_, line);
    if (idx != kNoWay) return static_cast<Mesi>(states_[idx]);
    return std::nullopt;
  }

  /// Changes the state of a present line; returns false if absent.
  /// (set_state(I) is rejected — defined out of line with the check.)
  bool set_state(LineAddr line, Mesi state);

  /// Inserts a line in the given state, evicting the LRU way if the set is
  /// full. Returns the eviction, if one happened. The line must not already
  /// be present (callers access() first). On a hybrid array a kPreferSram
  /// hint steers the fill into the SRAM way class (free SRAM way first,
  /// else the LRU SRAM way, falling back to the whole-set policy only when
  /// every SRAM way is disabled); pure arrays ignore the hint. When
  /// `placed_sram` is non-null it reports whether the line landed in the
  /// SRAM way class of a hybrid array.
  std::optional<Eviction> insert(LineAddr line, Mesi state,
                                 WayClassHint hint = WayClassHint::kAny,
                                 bool* placed_sram = nullptr);

  // ---- Hybrid SRAM+NVM way partition -------------------------------------
  // A hybrid array dedicates ways [0, sram_ways) of every set to SRAM cells
  // and the rest to the NVM technology. The partition only influences
  // insert() steering and the per-class reporting out-params; lookup,
  // replacement state and fault handling are class-blind, so an array with
  // no partition (the default) behaves bit-identically to a pure array.

  /// Declares ways [0, sram_ways) of every set to be the SRAM class.
  /// 0 (the default) and ways() both mean "pure" — no partition.
  void set_way_partition(std::uint32_t sram_ways);
  std::uint32_t sram_ways() const { return sram_ways_; }
  /// True when the array genuinely mixes two technologies.
  bool hybrid() const { return sram_ways_ > 0 && sram_ways_ < ways_; }

  /// Removes a line if present; returns true (and counts an invalidation)
  /// when it was. `was_dirty` reports whether the dropped copy was Modified.
  bool invalidate(LineAddr line, bool* was_dirty = nullptr);

  /// Drops every line (e.g. power-gating a private cache); counters keep
  /// accumulating. Dirty lines are counted as writebacks.
  void flush();

  /// Number of valid lines currently resident (O(capacity); tests only).
  std::uint64_t resident_lines() const;

  // ---- Fault injection (respin::fault) ----------------------------------
  // The map assigns each (set, way) a fault::LineFault class. Disabled
  // ways never hold a line again (insert skips them; a set whose ways are
  // all disabled rejects inserts entirely, so its lines bypass the cache);
  // correctable ways hit normally but report the correction. With no map
  // applied every path below is inert and behaviour is bit-identical to
  // the fault-free array.

  /// Applies a static cell-fault map (one byte per way, set-major, values
  /// from fault::LineFault). Must cover every way; resident lines on
  /// disabled ways are dropped silently (maps are applied at reset).
  void apply_fault_map(const std::vector<std::uint8_t>& map);

  /// Whether `line`'s set has at least one usable (non-disabled) way.
  bool can_insert(LineAddr line) const;

  /// Permanently disables the way currently holding `line` (write-retry
  /// exhaustion); the line is dropped. Returns false when absent.
  bool disable_line(LineAddr line);

  /// Ways disabled by the fault map or disable_line().
  std::uint64_t disabled_ways() const;
  /// Ways operating under per-access SECDED correction.
  std::uint64_t correctable_ways() const;
  /// Capacity excluding disabled ways — the "effective capacity" the
  /// voltage sweep experiment reports.
  std::uint64_t usable_capacity_bytes() const {
    return capacity_bytes() - disabled_ways() * line_bytes_;
  }

  const CacheArrayStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheArrayStats{}; }

 private:
  static constexpr std::size_t kNoWay = static_cast<std::size_t>(-1);
  /// Tag stored in invalid ways. insert() rejects it as a line address, so
  /// the tag array alone answers presence (see find_in_set).
  static constexpr LineAddr kNoLine = static_cast<LineAddr>(-1);

  std::uint32_t set_index(LineAddr line) const {
    // Power-of-two set counts (every L1/L2 shape) index with a mask; the
    // modulo path remains for shapes like the 6144-set 12 MB L3 slice.
    return set_mask_ != 0
               ? static_cast<std::uint32_t>(line & set_mask_)
               : static_cast<std::uint32_t>(line % set_count_);
  }
  /// Bitmask of ways whose tag equals `needle` (bit w = way w). The fixed
  /// trip count and lack of early exit let the vectorizer turn each
  /// instantiation into packed 64-bit compares; at most one bit is set
  /// because a line is resident in at most one way.
  template <std::uint32_t kWays>
  static std::uint64_t match_mask(const LineAddr* tags, LineAddr needle) {
    std::uint64_t mask = 0;
    for (std::uint32_t w = 0; w < kWays; ++w) {
      mask |= static_cast<std::uint64_t>(tags[w] == needle) << w;
    }
    return mask;
  }

  /// Global way index of `line` within its set, or kNoWay when absent.
  /// Invalid ways hold kNoLine (which insert() rejects as a real address),
  /// so the scan is a pure compare over at most `ways_` consecutive 8-byte
  /// tags — no state loads. The switch dispatches the real associativities
  /// (L1I 2, L1D 4, L2 8, L3 16) to branchless fixed-width scans.
  std::size_t find_in_set(std::size_t set_base, LineAddr line) const {
    const LineAddr* tags = lines_.data() + set_base;
    std::uint64_t mask;
    switch (ways_) {
      case 2:
        mask = match_mask<2>(tags, line);
        break;
      case 4:
        mask = match_mask<4>(tags, line);
        break;
      case 8:
        mask = match_mask<8>(tags, line);
        break;
      case 16:
        mask = match_mask<16>(tags, line);
        break;
      default:
        for (std::uint32_t w = 0; w < ways_; ++w) {
          if (tags[w] == line) return set_base + w;
        }
        return kNoWay;
    }
    return mask != 0
               ? set_base + static_cast<std::size_t>(std::countr_zero(mask))
               : kNoWay;
  }
  void touch(std::uint32_t set, std::size_t way_index) {
    lru_[way_index] = ++lru_tick_[set];
  }
  bool way_disabled(std::size_t way_index) const {
    return !fault_.empty() &&
           fault_[way_index] ==
               static_cast<std::uint8_t>(fault::LineFault::kDisabled);
  }

  std::uint32_t line_bytes_;
  std::uint32_t ways_;
  std::uint32_t sram_ways_ = 0;  ///< Hybrid way partition; 0 = pure array.
  std::uint32_t set_count_;
  std::uint64_t set_mask_ = 0;  ///< set_count_ - 1 when a power of two.
  // Hot metadata, struct-of-arrays (all sized set_count_ * ways_).
  std::vector<LineAddr> lines_;         ///< Tags; kNoLine iff state == I.
  std::vector<std::uint8_t> states_;    ///< Mesi per way.
  std::vector<std::uint32_t> lru_;      ///< Higher = more recently used.
  std::vector<std::uint32_t> lru_tick_; ///< Per-set monotonic counter.
  /// Per-way fault::LineFault classes; empty (the default) means
  /// fault-free and keeps every access on the original path.
  std::vector<std::uint8_t> fault_;
  CacheArrayStats stats_;
};

// Inline so the per-access call from PrivateL1System/Chip folds into the
// caller's loop: access() is the top entry in the simulator's profile and
// the out-of-line call (plus the embedded find_in_set call) was measurable.
inline std::optional<Mesi> CacheArray::access(LineAddr line, bool* corrected,
                                              bool* sram_way) {
  if (corrected != nullptr) *corrected = false;
  if (sram_way != nullptr) *sram_way = false;
  const std::uint32_t set = set_index(line);
  const std::size_t set_base = static_cast<std::size_t>(set) * ways_;
  const std::size_t idx = find_in_set(set_base, line);
  if (idx != kNoWay) {
    touch(set, idx);
    ++stats_.hits;
    if (!fault_.empty() &&
        fault_[idx] ==
            static_cast<std::uint8_t>(fault::LineFault::kCorrectable)) {
      ++stats_.ecc_corrections;
      if (corrected != nullptr) *corrected = true;
    }
    if (sram_way != nullptr && hybrid()) {
      *sram_way = static_cast<std::uint32_t>(idx - set_base) < sram_ways_;
    }
    return static_cast<Mesi>(states_[idx]);
  }
  ++stats_.misses;
  return std::nullopt;
}

}  // namespace respin::mem
