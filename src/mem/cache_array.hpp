// Set-associative cache tag array with true-LRU replacement.
//
// This models presence, state and replacement only — the simulator never
// stores data payloads. The array is a plain value type (contiguous
// storage, no internal pointers) so whole-cluster snapshots for the oracle
// consolidation study are a default copy.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "mem/cache_types.hpp"

namespace respin::mem {

/// Result of inserting a line: the victim that was evicted, if any.
struct Eviction {
  LineAddr line = 0;
  bool dirty = false;
};

/// Access/miss counters for one array.
struct CacheArrayStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t ecc_corrections = 0;  ///< Hits on SECDED-corrected ways.
};

class CacheArray {
 public:
  /// `capacity_bytes` must be a multiple of `line_bytes * ways`.
  CacheArray(std::uint64_t capacity_bytes, std::uint32_t line_bytes,
             std::uint32_t ways);

  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t ways() const { return ways_; }
  std::uint32_t set_count() const { return set_count_; }
  std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(set_count_) * ways_ * line_bytes_;
  }

  /// Looks up a line. On hit, promotes it to MRU and returns its state;
  /// counts a hit. On miss, counts a miss and returns nullopt. When
  /// `corrected` is non-null it reports whether the hit landed on a way
  /// the fault map marked SECDED-correctable (the owner charges the
  /// correction latency/energy); such hits also count ecc_corrections.
  std::optional<Mesi> access(LineAddr line, bool* corrected = nullptr);

  /// Looks up without touching LRU or counters (for coherence probes).
  std::optional<Mesi> probe(LineAddr line) const;

  /// Changes the state of a present line; returns false if absent.
  bool set_state(LineAddr line, Mesi state);

  /// Inserts a line in the given state, evicting the LRU way if the set is
  /// full. Returns the eviction, if one happened. The line must not already
  /// be present (callers access() first).
  std::optional<Eviction> insert(LineAddr line, Mesi state);

  /// Removes a line if present; returns true (and counts an invalidation)
  /// when it was. `was_dirty` reports whether the dropped copy was Modified.
  bool invalidate(LineAddr line, bool* was_dirty = nullptr);

  /// Drops every line (e.g. power-gating a private cache); counters keep
  /// accumulating. Dirty lines are counted as writebacks.
  void flush();

  /// Number of valid lines currently resident (O(capacity); tests only).
  std::uint64_t resident_lines() const;

  // ---- Fault injection (respin::fault) ----------------------------------
  // The map assigns each (set, way) a fault::LineFault class. Disabled
  // ways never hold a line again (insert skips them; a set whose ways are
  // all disabled rejects inserts entirely, so its lines bypass the cache);
  // correctable ways hit normally but report the correction. With no map
  // applied every path below is inert and behaviour is bit-identical to
  // the fault-free array.

  /// Applies a static cell-fault map (one byte per way, set-major, values
  /// from fault::LineFault). Must cover every way; resident lines on
  /// disabled ways are dropped silently (maps are applied at reset).
  void apply_fault_map(const std::vector<std::uint8_t>& map);

  /// Whether `line`'s set has at least one usable (non-disabled) way.
  bool can_insert(LineAddr line) const;

  /// Permanently disables the way currently holding `line` (write-retry
  /// exhaustion); the line is dropped. Returns false when absent.
  bool disable_line(LineAddr line);

  /// Ways disabled by the fault map or disable_line().
  std::uint64_t disabled_ways() const;
  /// Ways operating under per-access SECDED correction.
  std::uint64_t correctable_ways() const;
  /// Capacity excluding disabled ways — the "effective capacity" the
  /// voltage sweep experiment reports.
  std::uint64_t usable_capacity_bytes() const {
    return capacity_bytes() - disabled_ways() * line_bytes_;
  }

  const CacheArrayStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheArrayStats{}; }

 private:
  struct Way {
    LineAddr line = 0;
    Mesi state = Mesi::kInvalid;
    std::uint32_t lru = 0;  // Higher = more recently used.
  };

  std::uint32_t set_index(LineAddr line) const;
  Way* find(LineAddr line);
  const Way* find(LineAddr line) const;
  void touch(std::uint32_t set, Way& way);
  bool way_disabled(std::size_t way_index) const {
    return !fault_.empty() &&
           fault_[way_index] ==
               static_cast<std::uint8_t>(fault::LineFault::kDisabled);
  }

  std::uint32_t line_bytes_;
  std::uint32_t ways_;
  std::uint32_t set_count_;
  std::vector<Way> ways_storage_;       // set_count_ * ways_.
  std::vector<std::uint32_t> lru_tick_; // per-set monotonic counter.
  /// Per-way fault::LineFault classes; empty (the default) means
  /// fault-free and keeps every access on the original path.
  std::vector<std::uint8_t> fault_;
  CacheArrayStats stats_;
};

}  // namespace respin::mem
