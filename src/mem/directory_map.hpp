// Flat open-addressing map for the MESI full-map directory.
//
// The directory is the private-L1 configurations' hottest associative
// structure: every data miss, upgrade and eviction probes it. A
// node-based std::unordered_map pays a pointer chase plus an allocation
// per entry; this map stores 16-byte slots (line, sharers, dirty, used)
// in one contiguous power-of-two table with linear probing, so a lookup
// usually touches a single cache line. Deletion uses backward-shift
// compaction — no tombstones, so probe chains never grow stale.
//
// Iteration visits slots in table order, which is a deterministic
// function of the insertion/erase history (no pointers, no allocator
// state). Callers that mutate while iterating must not insert or erase
// mid-walk; for_each() plus a deferred erase list covers the directory's
// only whole-table walk (flush_core).
#pragma once

#include <cstdint>
#include <vector>

#include "mem/cache_types.hpp"
#include "util/require.hpp"

namespace respin::mem {

/// One directory entry: which cores hold the line, and whether exactly
/// one of them holds it Modified.
struct DirEntry {
  std::uint32_t sharers = 0;  ///< Bitmask over cores.
  bool dirty = false;         ///< Exactly one sharer holds M.
};

class DirectoryMap {
 public:
  DirectoryMap() { slots_.resize(kInitialCapacity); }

  std::size_t size() const { return size_; }

  /// Pointer to the entry for `line`, or nullptr when absent. The pointer
  /// is invalidated by any subsequent insert or erase.
  DirEntry* find(LineAddr line) {
    std::size_t i = home_of(line);
    while (slots_[i].used) {
      if (slots_[i].line == line) return &slots_[i].entry;
      i = (i + 1) & mask();
    }
    return nullptr;
  }
  const DirEntry* find(LineAddr line) const {
    return const_cast<DirectoryMap*>(this)->find(line);
  }

  /// Entry for `line`, default-constructed and inserted when absent.
  /// The reference is invalidated by any subsequent insert or erase.
  DirEntry& get_or_insert(LineAddr line) {
    if (DirEntry* found = find(line)) return *found;
    // Grow at 50% load: linear probing degrades sharply past that, and
    // the 16-byte slots make the extra headroom cheap (a 64-core run
    // tops out around a few hundred KB of table).
    if ((size_ + 1) * 2 > slots_.size()) grow();
    std::size_t i = home_of(line);
    while (slots_[i].used) i = (i + 1) & mask();
    slots_[i] = Slot{line, DirEntry{}, true};
    ++size_;
    return slots_[i].entry;
  }

  /// Removes `line` if present (backward-shift deletion).
  void erase(LineAddr line) {
    std::size_t i = home_of(line);
    while (slots_[i].used) {
      if (slots_[i].line == line) {
        erase_slot(i);
        return;
      }
      i = (i + 1) & mask();
    }
  }

  /// Calls f(line, entry&) for every entry, in table order. f must not
  /// insert into or erase from the map.
  template <typename F>
  void for_each(F&& f) {
    for (Slot& slot : slots_) {
      if (slot.used) f(slot.line, slot.entry);
    }
  }

 private:
  struct Slot {
    LineAddr line = 0;
    DirEntry entry;
    bool used = false;
  };

  static constexpr std::size_t kInitialCapacity = 1024;

  std::size_t mask() const { return slots_.size() - 1; }

  std::size_t home_of(LineAddr line) const {
    // SplitMix64 finalizer: line addresses are sequential per set, so the
    // low bits need thorough mixing before masking.
    std::uint64_t z = static_cast<std::uint64_t>(line) +
                      0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>((z ^ (z >> 31)) & mask());
  }

  void grow() {
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.resize(old.size() * 2);
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.used) get_or_insert(slot.line) = slot.entry;
    }
  }

  void erase_slot(std::size_t gap) {
    // Backward-shift: pull later cluster members whose home position is at
    // or before the gap into it, so lookups never cross an empty slot.
    std::size_t j = gap;
    while (true) {
      j = (j + 1) & mask();
      if (!slots_[j].used) break;
      const std::size_t home = home_of(slots_[j].line);
      if (((j - home) & mask()) >= ((j - gap) & mask())) {
        slots_[gap] = slots_[j];
        gap = j;
      }
    }
    slots_[gap].used = false;
    --size_;
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace respin::mem
