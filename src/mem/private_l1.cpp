#include "mem/private_l1.hpp"

#include <bit>

#include "util/require.hpp"

namespace respin::mem {

PrivateL1System::PrivateL1System(const PrivateL1Params& params)
    : params_(params) {
  RESPIN_REQUIRE(params.core_count >= 1 && params.core_count <= 32,
                 "directory sharer mask holds at most 32 cores");
  l1i_.reserve(params.core_count);
  l1d_.reserve(params.core_count);
  for (std::uint32_t c = 0; c < params.core_count; ++c) {
    l1i_.emplace_back(params.l1i_capacity_bytes, params.line_bytes,
                      params.l1i_ways);
    l1d_.emplace_back(params.l1d_capacity_bytes, params.line_bytes,
                      params.l1d_ways);
  }
}

PrivateAccessResult PrivateL1System::access(std::uint32_t core, Addr addr,
                                            AccessType type,
                                            Backside& backside,
                                            fault::FaultInjector* faults) {
  RESPIN_REQUIRE(core < params_.core_count, "core id out of range");
  switch (type) {
    case AccessType::kIfetch:
      return access_ifetch(core, addr, backside, faults);
    case AccessType::kLoad:
      return access_data(core, addr, /*store=*/false, backside, faults);
    case AccessType::kStore:
      return access_data(core, addr, /*store=*/true, backside, faults);
  }
  return {};
}

void PrivateL1System::apply_sram_fault_maps(
    fault::FaultInjector& injector, double vdd,
    const std::vector<double>& core_vth) {
  for (std::uint32_t c = 0; c < params_.core_count; ++c) {
    // Each array gets its own named RNG stream so the map is independent
    // of neighbouring arrays and of construction order.
    const double vth = c < core_vth.size() ? core_vth[c] : 0.0;
    const std::string tag = ".core" + std::to_string(c);
    l1i_[c].apply_fault_map(
        injector.sram_line_map("pl1i" + tag, l1i_[c].set_count(),
                               l1i_[c].ways(), params_.line_bytes, vdd, vth));
    l1d_[c].apply_fault_map(
        injector.sram_line_map("pl1d" + tag, l1d_[c].set_count(),
                               l1d_[c].ways(), params_.line_bytes, vdd, vth));
  }
}

void PrivateL1System::configure_faults(std::uint32_t ecc_correction_cycles,
                                       bool stt_write_faults,
                                       std::uint32_t retry_cycles) {
  ecc_correction_cycles_ = ecc_correction_cycles;
  stt_write_faults_ = stt_write_faults;
  stt_retry_cycles_ = retry_cycles;
}

std::uint32_t PrivateL1System::draw_write(fault::FaultInjector* faults,
                                          bool* exhausted) {
  *exhausted = false;
  if (!stt_write_faults_ || faults == nullptr) return 0;
  const std::uint32_t retries = faults->draw_write_retries(exhausted);
  l1_writes_ += retries;  // Every retry pulses the data array again.
  return retries * stt_retry_cycles_;
}

PrivateAccessResult PrivateL1System::access_ifetch(
    std::uint32_t core, Addr addr, Backside& backside,
    fault::FaultInjector* faults) {
  ++l1_reads_;
  const LineAddr line = line_of(addr, params_.line_bytes);
  bool corrected = false;
  if (l1i_[core].access(line, &corrected).has_value()) {
    if (corrected && faults != nullptr) {
      faults->note_correction();
      ++l1_reads_;  // Re-read after the syndrome fix.
      return {.l1_hit = true, .extra_cycles = ecc_correction_cycles_};
    }
    return {.l1_hit = true, .extra_cycles = 0};
  }
  const FillResult fill = backside.fill(addr);
  std::uint32_t extra = 0;
  if (l1i_[core].can_insert(line)) {
    ++l1_writes_;  // Line fill writes the L1I data array.
    bool exhausted = false;
    extra = draw_write(faults, &exhausted);
    // A fill whose write retries exhaust is dropped: the clean copy still
    // lives in the L2, so the fetch just misses again next time.
    if (!exhausted) {
      if (auto evicted = l1i_[core].insert(line, Mesi::kShared)) {
        (void)evicted;  // Instruction lines are never dirty.
      }
    }
  }
  return {.l1_hit = false, .extra_cycles = fill.latency_cycles + extra};
}

PrivateAccessResult PrivateL1System::access_data(std::uint32_t core, Addr addr,
                                                 bool store,
                                                 Backside& backside,
                                                 fault::FaultInjector* faults) {
  store ? ++l1_writes_ : ++l1_reads_;
  const LineAddr line = line_of(addr, params_.line_bytes);
  CacheArray& cache = l1d_[core];
  const std::uint32_t my_bit = 1u << core;

  bool corrected = false;
  if (auto state = cache.access(line, &corrected)) {
    std::uint32_t ecc_extra = 0;
    if (corrected && faults != nullptr) {
      faults->note_correction();
      ++l1_reads_;  // Re-read after the syndrome fix.
      ecc_extra = ecc_correction_cycles_;
    }
    if (!store) return {.l1_hit = true, .extra_cycles = ecc_extra};
    if (can_write(*state)) {
      cache.set_state(line, Mesi::kModified);
      if (DirEntry* entry = directory_.find(line)) entry->dirty = true;
      bool exhausted = false;
      const std::uint32_t retry_extra = draw_write(faults, &exhausted);
      if (exhausted) {
        // Repeated write failure on a resident cell: retire the way and
        // write the store's data through to the backside instead.
        cache.disable_line(line);
        faults->note_line_disabled();
        evict_data_line(core, line, /*dirty=*/true, backside);
      }
      return {.l1_hit = true, .extra_cycles = ecc_extra + retry_extra};
    }
    // Write hit on a Shared copy: upgrade through the directory, killing
    // every peer copy. This round trip is the coherence cost the shared-L1
    // design eliminates.
    ++coherence_.upgrades;
    ++coherence_.directory_lookups;
    std::uint32_t stall = params_.invalidation_cycles + ecc_extra;
    DirEntry* entry = directory_.find(line);
    RESPIN_REQUIRE(entry != nullptr, "shared line missing from directory");
    std::uint32_t peers = entry->sharers & ~my_bit;
    while (peers != 0) {
      const auto peer = static_cast<std::uint32_t>(std::countr_zero(peers));
      peers &= peers - 1;
      l1d_[peer].invalidate(line);
      ++coherence_.invalidations_sent;
    }
    entry->sharers = my_bit;
    entry->dirty = true;
    cache.set_state(line, Mesi::kModified);
    bool exhausted = false;
    stall += draw_write(faults, &exhausted);
    if (exhausted) {
      cache.disable_line(line);
      faults->note_line_disabled();
      evict_data_line(core, line, /*dirty=*/true, backside);
    }
    return {.l1_hit = true, .extra_cycles = stall};
  }

  // L1 miss: consult the directory (colocated with L2, so the L2 hit time
  // covers the directory lookup).
  ++coherence_.directory_lookups;
  std::uint32_t stall = 0;
  DirEntry* found = directory_.find(line);
  const bool had_peers = found != nullptr && (found->sharers & ~my_bit) != 0;
  if (had_peers) {
    DirEntry& entry = *found;
    if (entry.dirty) {
      // A peer holds M: intervene, pull the dirty copy.
      ++coherence_.interventions;
      stall += params_.intervention_cycles;
      std::uint32_t peers = entry.sharers & ~my_bit;
      while (peers != 0) {
        const auto peer = static_cast<std::uint32_t>(std::countr_zero(peers));
        peers &= peers - 1;
        if (store) {
          bool dirty = false;
          l1d_[peer].invalidate(line, &dirty);
          if (dirty) {
            ++coherence_.writebacks;
            backside.writeback(addr);
          }
          ++coherence_.invalidations_sent;
        } else {
          l1d_[peer].set_state(line, Mesi::kShared);
          ++coherence_.writebacks;  // M -> S forces a writeback copy to L2.
          backside.writeback(addr);
        }
      }
      entry.dirty = store;
      entry.sharers = store ? my_bit : (entry.sharers | my_bit);
    } else {
      // Clean copies elsewhere: data comes from L2; a store invalidates them.
      stall += backside.fill(addr).latency_cycles;
      if (store) {
        std::uint32_t peers = entry.sharers & ~my_bit;
        while (peers != 0) {
          const auto peer = static_cast<std::uint32_t>(std::countr_zero(peers));
          peers &= peers - 1;
          l1d_[peer].invalidate(line);
          ++coherence_.invalidations_sent;
        }
        stall += params_.invalidation_cycles;
        entry.sharers = my_bit;
        entry.dirty = true;
      } else {
        // A load joining clean sharers demotes any Exclusive peer copy.
        std::uint32_t peers = entry.sharers & ~my_bit;
        while (peers != 0) {
          const auto peer =
              static_cast<std::uint32_t>(std::countr_zero(peers));
          peers &= peers - 1;
          if (l1d_[peer].probe(line) == Mesi::kExclusive) {
            l1d_[peer].set_state(line, Mesi::kShared);
          }
        }
        entry.sharers |= my_bit;
      }
    }
  } else {
    // No peer copy: plain fill from the backside.
    stall += backside.fill(addr).latency_cycles;
    DirEntry& entry = directory_.get_or_insert(line);
    entry.sharers = my_bit;
    entry.dirty = store;
  }

  if (!cache.can_insert(line)) {
    // Every way of the target set is disabled: the line bypasses the L1.
    // Undo the directory membership recorded above (we hold no copy) and
    // write a store's data straight through.
    evict_data_line(core, line, /*dirty=*/store, backside);
    return {.l1_hit = false, .extra_cycles = stall};
  }
  ++l1_writes_;  // Line fill writes the L1D data array.
  bool exhausted = false;
  stall += draw_write(faults, &exhausted);
  if (exhausted) {
    // The allocate-fill's write retries exhausted: drop the fill. A store
    // miss writes its data through; a clean load copy still lives in L2.
    evict_data_line(core, line, /*dirty=*/store, backside);
    return {.l1_hit = false, .extra_cycles = stall};
  }
  // A load that found peer copies installs Shared (every branch above
  // leaves the peers' membership intact for loads); otherwise Exclusive.
  const Mesi install = store      ? Mesi::kModified
                       : had_peers ? Mesi::kShared
                                   : Mesi::kExclusive;
  if (auto evicted = cache.insert(line, install)) {
    evict_data_line(core, evicted->line, evicted->dirty, backside);
  }
  return {.l1_hit = false, .extra_cycles = stall};
}

void PrivateL1System::evict_data_line(std::uint32_t core, LineAddr line,
                                      bool dirty, Backside& backside) {
  if (DirEntry* entry = directory_.find(line)) {
    entry->sharers &= ~(1u << core);
    if (entry->sharers == 0) directory_.erase(line);
  }
  if (dirty) {
    ++coherence_.writebacks;
    backside.writeback(line * params_.line_bytes);
  }
}

void PrivateL1System::flush_core(std::uint32_t core, Backside& backside) {
  RESPIN_REQUIRE(core < params_.core_count, "core id out of range");
  // Walk the directory dropping this core's copies; dirty lines write
  // back. Emptied entries are erased after the walk (erasing mid-walk
  // would shift slots under the iteration).
  const std::uint32_t my_bit = 1u << core;
  std::vector<LineAddr> emptied;
  directory_.for_each([&](LineAddr line, DirEntry& entry) {
    if ((entry.sharers & my_bit) == 0) return;
    bool dirty = false;
    l1d_[core].invalidate(line, &dirty);
    if (dirty) {
      ++coherence_.writebacks;
      backside.writeback(line * params_.line_bytes);
      entry.dirty = false;
    }
    entry.sharers &= ~my_bit;
    if (entry.sharers == 0) emptied.push_back(line);
  });
  for (const LineAddr line : emptied) directory_.erase(line);
  l1d_[core].flush();
  l1i_[core].flush();
}

void PrivateL1System::collect_counters(obs::CounterSet& set,
                                       const std::string& prefix) const {
  set.add(prefix + ".l1_reads", l1_reads_);
  set.add(prefix + ".l1_writes", l1_writes_);
  set.add(prefix + ".upgrades", coherence_.upgrades);
  set.add(prefix + ".invalidations_sent", coherence_.invalidations_sent);
  set.add(prefix + ".interventions", coherence_.interventions);
  set.add(prefix + ".writebacks", coherence_.writebacks);
  set.add(prefix + ".directory_lookups", coherence_.directory_lookups);
  set.add(prefix + ".directory_lines",
          static_cast<std::uint64_t>(directory_.size()));
  for (std::uint32_t core = 0; core < params_.core_count; ++core) {
    const std::string core_prefix =
        prefix + ".core" + std::to_string(core);
    const CacheArrayStats& d = l1d_[core].stats();
    const CacheArrayStats& i = l1i_[core].stats();
    set.add(core_prefix + ".l1d_hits", d.hits);
    set.add(core_prefix + ".l1d_misses", d.misses);
    set.add(core_prefix + ".l1d_evictions", d.evictions);
    set.add(core_prefix + ".l1i_hits", i.hits);
    set.add(core_prefix + ".l1i_misses", i.misses);
  }
}

}  // namespace respin::mem
