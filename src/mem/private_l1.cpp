#include "mem/private_l1.hpp"

#include <bit>

#include "util/require.hpp"

namespace respin::mem {

PrivateL1System::PrivateL1System(const PrivateL1Params& params)
    : params_(params) {
  RESPIN_REQUIRE(params.core_count >= 1 && params.core_count <= 32,
                 "directory sharer mask holds at most 32 cores");
  l1i_.reserve(params.core_count);
  l1d_.reserve(params.core_count);
  for (std::uint32_t c = 0; c < params.core_count; ++c) {
    l1i_.emplace_back(params.l1i_capacity_bytes, params.line_bytes,
                      params.l1i_ways);
    l1d_.emplace_back(params.l1d_capacity_bytes, params.line_bytes,
                      params.l1d_ways);
  }
}

PrivateAccessResult PrivateL1System::access(std::uint32_t core, Addr addr,
                                            AccessType type,
                                            Backside& backside) {
  RESPIN_REQUIRE(core < params_.core_count, "core id out of range");
  switch (type) {
    case AccessType::kIfetch:
      return access_ifetch(core, addr, backside);
    case AccessType::kLoad:
      return access_data(core, addr, /*store=*/false, backside);
    case AccessType::kStore:
      return access_data(core, addr, /*store=*/true, backside);
  }
  return {};
}

PrivateAccessResult PrivateL1System::access_ifetch(std::uint32_t core,
                                                   Addr addr,
                                                   Backside& backside) {
  ++l1_reads_;
  const LineAddr line = line_of(addr, params_.line_bytes);
  if (l1i_[core].access(line).has_value()) {
    return {.l1_hit = true, .extra_cycles = 0};
  }
  const FillResult fill = backside.fill(addr);
  ++l1_writes_;  // Line fill writes the L1I data array.
  if (auto evicted = l1i_[core].insert(line, Mesi::kShared)) {
    (void)evicted;  // Instruction lines are never dirty.
  }
  return {.l1_hit = false, .extra_cycles = fill.latency_cycles};
}

PrivateAccessResult PrivateL1System::access_data(std::uint32_t core, Addr addr,
                                                 bool store,
                                                 Backside& backside) {
  store ? ++l1_writes_ : ++l1_reads_;
  const LineAddr line = line_of(addr, params_.line_bytes);
  CacheArray& cache = l1d_[core];
  const std::uint32_t my_bit = 1u << core;

  if (auto state = cache.access(line)) {
    if (!store) return {.l1_hit = true, .extra_cycles = 0};
    if (can_write(*state)) {
      cache.set_state(line, Mesi::kModified);
      auto it = directory_.find(line);
      if (it != directory_.end()) it->second.dirty = true;
      return {.l1_hit = true, .extra_cycles = 0};
    }
    // Write hit on a Shared copy: upgrade through the directory, killing
    // every peer copy. This round trip is the coherence cost the shared-L1
    // design eliminates.
    ++coherence_.upgrades;
    ++coherence_.directory_lookups;
    std::uint32_t stall = params_.invalidation_cycles;
    auto it = directory_.find(line);
    RESPIN_REQUIRE(it != directory_.end(), "shared line missing from directory");
    std::uint32_t peers = it->second.sharers & ~my_bit;
    while (peers != 0) {
      const auto peer = static_cast<std::uint32_t>(std::countr_zero(peers));
      peers &= peers - 1;
      l1d_[peer].invalidate(line);
      ++coherence_.invalidations_sent;
    }
    it->second.sharers = my_bit;
    it->second.dirty = true;
    cache.set_state(line, Mesi::kModified);
    return {.l1_hit = true, .extra_cycles = stall};
  }

  // L1 miss: consult the directory (colocated with L2, so the L2 hit time
  // covers the directory lookup).
  ++coherence_.directory_lookups;
  std::uint32_t stall = 0;
  auto it = directory_.find(line);
  if (it != directory_.end() && (it->second.sharers & ~my_bit) != 0) {
    DirEntry& entry = it->second;
    if (entry.dirty) {
      // A peer holds M: intervene, pull the dirty copy.
      ++coherence_.interventions;
      stall += params_.intervention_cycles;
      std::uint32_t peers = entry.sharers & ~my_bit;
      while (peers != 0) {
        const auto peer = static_cast<std::uint32_t>(std::countr_zero(peers));
        peers &= peers - 1;
        if (store) {
          bool dirty = false;
          l1d_[peer].invalidate(line, &dirty);
          if (dirty) {
            ++coherence_.writebacks;
            backside.writeback(addr);
          }
          ++coherence_.invalidations_sent;
        } else {
          l1d_[peer].set_state(line, Mesi::kShared);
          ++coherence_.writebacks;  // M -> S forces a writeback copy to L2.
          backside.writeback(addr);
        }
      }
      entry.dirty = store;
      entry.sharers = store ? my_bit : (entry.sharers | my_bit);
    } else {
      // Clean copies elsewhere: data comes from L2; a store invalidates them.
      stall += backside.fill(addr).latency_cycles;
      if (store) {
        std::uint32_t peers = entry.sharers & ~my_bit;
        while (peers != 0) {
          const auto peer = static_cast<std::uint32_t>(std::countr_zero(peers));
          peers &= peers - 1;
          l1d_[peer].invalidate(line);
          ++coherence_.invalidations_sent;
        }
        stall += params_.invalidation_cycles;
        entry.sharers = my_bit;
        entry.dirty = true;
      } else {
        // A load joining clean sharers demotes any Exclusive peer copy.
        std::uint32_t peers = entry.sharers & ~my_bit;
        while (peers != 0) {
          const auto peer =
              static_cast<std::uint32_t>(std::countr_zero(peers));
          peers &= peers - 1;
          if (l1d_[peer].probe(line) == Mesi::kExclusive) {
            l1d_[peer].set_state(line, Mesi::kShared);
          }
        }
        entry.sharers |= my_bit;
      }
    }
  } else {
    // No peer copy: plain fill from the backside.
    stall += backside.fill(addr).latency_cycles;
    DirEntry& entry = directory_[line];
    entry.sharers = my_bit;
    entry.dirty = store;
  }

  ++l1_writes_;  // Line fill writes the L1D data array.
  const Mesi install = store ? Mesi::kModified
                       : ((directory_[line].sharers & ~my_bit) != 0)
                           ? Mesi::kShared
                           : Mesi::kExclusive;
  if (auto evicted = cache.insert(line, install)) {
    evict_data_line(core, evicted->line, evicted->dirty, backside);
  }
  return {.l1_hit = false, .extra_cycles = stall};
}

void PrivateL1System::evict_data_line(std::uint32_t core, LineAddr line,
                                      bool dirty, Backside& backside) {
  auto it = directory_.find(line);
  if (it != directory_.end()) {
    it->second.sharers &= ~(1u << core);
    if (it->second.sharers == 0) directory_.erase(it);
  }
  if (dirty) {
    ++coherence_.writebacks;
    backside.writeback(line * params_.line_bytes);
  }
}

void PrivateL1System::flush_core(std::uint32_t core, Backside& backside) {
  RESPIN_REQUIRE(core < params_.core_count, "core id out of range");
  // Walk the directory dropping this core's copies; dirty lines write back.
  const std::uint32_t my_bit = 1u << core;
  for (auto it = directory_.begin(); it != directory_.end();) {
    if ((it->second.sharers & my_bit) != 0) {
      bool dirty = false;
      l1d_[core].invalidate(it->first, &dirty);
      if (dirty) {
        ++coherence_.writebacks;
        backside.writeback(it->first * params_.line_bytes);
        it->second.dirty = false;
      }
      it->second.sharers &= ~my_bit;
      if (it->second.sharers == 0) {
        it = directory_.erase(it);
        continue;
      }
    }
    ++it;
  }
  l1d_[core].flush();
  l1i_[core].flush();
}

void PrivateL1System::collect_counters(obs::CounterSet& set,
                                       const std::string& prefix) const {
  set.add(prefix + ".l1_reads", l1_reads_);
  set.add(prefix + ".l1_writes", l1_writes_);
  set.add(prefix + ".upgrades", coherence_.upgrades);
  set.add(prefix + ".invalidations_sent", coherence_.invalidations_sent);
  set.add(prefix + ".interventions", coherence_.interventions);
  set.add(prefix + ".writebacks", coherence_.writebacks);
  set.add(prefix + ".directory_lookups", coherence_.directory_lookups);
  set.add(prefix + ".directory_lines",
          static_cast<std::uint64_t>(directory_.size()));
  for (std::uint32_t core = 0; core < params_.core_count; ++core) {
    const std::string core_prefix =
        prefix + ".core" + std::to_string(core);
    const CacheArrayStats& d = l1d_[core].stats();
    const CacheArrayStats& i = l1i_[core].stats();
    set.add(core_prefix + ".l1d_hits", d.hits);
    set.add(core_prefix + ".l1d_misses", d.misses);
    set.add(core_prefix + ".l1d_evictions", d.evictions);
    set.add(core_prefix + ".l1i_hits", i.hits);
    set.add(core_prefix + ".l1i_misses", i.misses);
  }
}

}  // namespace respin::mem
