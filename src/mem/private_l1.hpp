// Private per-core L1 caches with a directory-based MESI protocol.
//
// This is the baseline organization (PR-SRAM-NT / HP-SRAM-CMP / PR-STT-CC in
// paper Table IV): every core owns a private L1I and L1D; a full-map
// directory colocated with the cluster L2 keeps the L1Ds coherent.
// Instruction lines are read-only, so L1I misses are plain fills.
//
// Latencies are charged in shared-cache cycles (0.4 ns) so results compose
// with the shared-L1 configurations; an L1 hit itself costs one *core*
// cycle and is accounted by the core model, not here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "mem/backside.hpp"
#include "mem/cache_array.hpp"
#include "mem/cache_types.hpp"
#include "mem/directory_map.hpp"
#include "obs/counters.hpp"

namespace respin::mem {

/// Geometry/timing knobs for the private hierarchy.
struct PrivateL1Params {
  std::uint64_t l1i_capacity_bytes = 16 * 1024;
  std::uint32_t l1i_ways = 2;
  std::uint64_t l1d_capacity_bytes = 16 * 1024;
  std::uint32_t l1d_ways = 4;
  std::uint32_t line_bytes = 32;
  std::uint32_t core_count = 16;
  /// Extra shared-cache cycles for one invalidation round (request to the
  /// directory fans out; acknowledgements return).
  std::uint32_t invalidation_cycles = 6;
  /// Extra cycles to pull a Modified line out of another core's L1.
  std::uint32_t intervention_cycles = 10;
};

/// Coherence-event counters (per cluster), used for energy and analysis.
struct CoherenceStats {
  std::uint64_t upgrades = 0;            ///< S -> M permission requests.
  std::uint64_t invalidations_sent = 0;  ///< Copies killed in peer L1s.
  std::uint64_t interventions = 0;       ///< Dirty peer copies fetched.
  std::uint64_t writebacks = 0;          ///< Dirty evictions to L2.
  std::uint64_t directory_lookups = 0;
};

/// What one access cost beyond the 1-core-cycle L1 pipeline.
struct PrivateAccessResult {
  bool l1_hit = false;
  std::uint32_t extra_cycles = 0;  ///< Shared-cache cycles of stall.
};

class PrivateL1System {
 public:
  /// The backside is passed per call (not stored) so that a simulator
  /// embedding both as value members stays default-copyable for the
  /// oracle's snapshot/replay machinery.
  explicit PrivateL1System(const PrivateL1Params& params);

  /// Performs one access by `core`. Drives MESI state transitions, the
  /// directory, and the backside; returns the stall beyond the L1 pipeline.
  /// `faults` (optional, non-owning — passed per call for the same
  /// copyability reason as the backside) supplies ECC-correction
  /// accounting and, when STT write faults are armed, the per-write retry
  /// draws; see docs/faults.md for the charging rules.
  PrivateAccessResult access(std::uint32_t core, Addr addr, AccessType type,
                             Backside& backside,
                             fault::FaultInjector* faults = nullptr);

  /// Applies per-array SRAM cell-fault maps from `injector` (stream names
  /// "pl1i.core<i>" / "pl1d.core<i>"); `core_vth[i]` modulates core i's
  /// region. Called once, before simulation starts.
  void apply_sram_fault_maps(fault::FaultInjector& injector, double vdd,
                             const std::vector<double>& core_vth);

  /// Arms the dynamic fault paths: ECC correction latency on hits to
  /// mapped-correctable lines, and (for STT arrays) per-write retry draws
  /// with `retry_cycles` charged per failed pulse.
  void configure_faults(std::uint32_t ecc_correction_cycles,
                        bool stt_write_faults, std::uint32_t retry_cycles);

  /// Flushes a core's L1s (power gating during consolidation in the
  /// private-cache configuration — this is exactly the "cold cache" cost
  /// the paper attributes to PR-STT-CC). Dirty lines write back.
  void flush_core(std::uint32_t core, Backside& backside);

  const CoherenceStats& coherence_stats() const { return coherence_; }
  const CacheArray& l1d(std::uint32_t core) const { return l1d_[core]; }
  const CacheArray& l1i(std::uint32_t core) const { return l1i_[core]; }

  /// Total L1 accesses (reads+writes) for energy accounting.
  std::uint64_t l1_reads() const { return l1_reads_; }
  std::uint64_t l1_writes() const { return l1_writes_; }

  /// Exports coherence counters and per-core L1 hit/miss statistics into
  /// `set` under `prefix` ("<prefix>.upgrades", "<prefix>.core3.l1d_hits",
  /// ...). Part of the respin::obs counter-registry taxonomy.
  void collect_counters(obs::CounterSet& set,
                        const std::string& prefix) const;

 private:
  PrivateAccessResult access_data(std::uint32_t core, Addr addr, bool store,
                                  Backside& backside,
                                  fault::FaultInjector* faults);
  PrivateAccessResult access_ifetch(std::uint32_t core, Addr addr,
                                    Backside& backside,
                                    fault::FaultInjector* faults);
  void evict_data_line(std::uint32_t core, LineAddr line, bool dirty,
                       Backside& backside);
  /// Draws the retry count for one array write (no-op unless STT write
  /// faults are armed). Returns the extra stall cycles; each retry is also
  /// charged as another l1_write for energy.
  std::uint32_t draw_write(fault::FaultInjector* faults, bool* exhausted);

  PrivateL1Params params_;
  std::vector<CacheArray> l1i_;
  std::vector<CacheArray> l1d_;
  DirectoryMap directory_;
  CoherenceStats coherence_;
  std::uint64_t l1_reads_ = 0;
  std::uint64_t l1_writes_ = 0;
  // Fault knobs (plain values so the system stays default-copyable).
  std::uint32_t ecc_correction_cycles_ = 0;
  bool stt_write_faults_ = false;
  std::uint32_t stt_retry_cycles_ = 0;
};

}  // namespace respin::mem
