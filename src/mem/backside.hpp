// Cluster backside: L2 slice, L3 slice and main memory.
//
// The paper's evaluation focuses on the L1 (private vs shared, SRAM vs
// STT-RAM) and on core consolidation; L2/L3/DRAM are conventional. The
// backside therefore uses full tag arrays (so capacity misses are real)
// with latency charged per level rather than cycle-by-cycle arbitration.
// Latency and energy parameters come from the nvsim model via the config
// layer, in shared-cache cycles (0.4 ns).
#pragma once

#include <cstdint>

#include "mem/cache_array.hpp"
#include "mem/cache_types.hpp"

namespace respin::mem {

/// Backside geometry and timing (all latencies in shared-cache cycles).
struct BacksideParams {
  std::uint64_t l2_capacity_bytes = 4ULL << 20;
  std::uint32_t l2_line_bytes = 64;
  std::uint32_t l2_ways = 8;
  std::uint32_t l2_hit_cycles = 8;

  std::uint64_t l3_capacity_bytes = 12ULL << 20;
  std::uint32_t l3_line_bytes = 128;
  std::uint32_t l3_ways = 16;
  std::uint32_t l3_hit_cycles = 24;

  std::uint32_t memory_cycles = 250;  ///< ~100 ns DRAM round trip.
};

/// Access counters for energy accounting.
struct BacksideStats {
  std::uint64_t l2_reads = 0;
  std::uint64_t l2_writes = 0;
  std::uint64_t l3_reads = 0;
  std::uint64_t l3_writes = 0;
  std::uint64_t memory_reads = 0;
  std::uint64_t memory_writes = 0;
};

/// Where a fill was ultimately serviced.
enum class FillSource : std::uint8_t { kL2, kL3, kMemory };

struct FillResult {
  std::uint32_t latency_cycles = 0;  ///< Shared-cache cycles beyond the L1.
  FillSource source = FillSource::kL2;
};

class Backside {
 public:
  explicit Backside(const BacksideParams& params);

  /// Services an L1 miss for the line containing `addr`. Walks L2 -> L3 ->
  /// memory, installing the line at each level on the way back (inclusive
  /// hierarchy; evicted dirty victims are written toward memory and show up
  /// in the stats, not in the latency — victim writebacks are off the
  /// critical path).
  FillResult fill(Addr addr);

  /// Absorbs a dirty writeback from an L1 (energy only; no stall).
  void writeback(Addr addr);

  const BacksideParams& params() const { return params_; }
  const BacksideStats& stats() const { return stats_; }
  const CacheArray& l2() const { return l2_; }
  const CacheArray& l3() const { return l3_; }
  void reset_stats() { stats_ = BacksideStats{}; }

 private:
  BacksideParams params_;
  CacheArray l2_;
  CacheArray l3_;
  BacksideStats stats_;
};

}  // namespace respin::mem
