#include "mem/backside.hpp"

namespace respin::mem {

Backside::Backside(const BacksideParams& params)
    : params_(params),
      l2_(params.l2_capacity_bytes, params.l2_line_bytes, params.l2_ways),
      l3_(params.l3_capacity_bytes, params.l3_line_bytes, params.l3_ways) {}

FillResult Backside::fill(Addr addr) {
  FillResult result;
  result.latency_cycles = params_.l2_hit_cycles;
  ++stats_.l2_reads;

  const LineAddr l2_line = line_of(addr, params_.l2_line_bytes);
  if (l2_.access(l2_line).has_value()) {
    result.source = FillSource::kL2;
    return result;
  }

  result.latency_cycles += params_.l3_hit_cycles;
  ++stats_.l3_reads;
  const LineAddr l3_line = line_of(addr, params_.l3_line_bytes);
  const bool l3_hit = l3_.access(l3_line).has_value();
  if (!l3_hit) {
    result.latency_cycles += params_.memory_cycles;
    ++stats_.memory_reads;
    if (auto evicted = l3_.insert(l3_line, Mesi::kExclusive)) {
      if (evicted->dirty) ++stats_.memory_writes;
    }
  }

  // Install into L2 on the way back.
  if (auto evicted = l2_.insert(l2_line, Mesi::kExclusive)) {
    if (evicted->dirty) {
      // Dirty L2 victim flows into L3 (write energy, off critical path).
      ++stats_.l3_writes;
      const LineAddr victim_l3 =
          line_of(evicted->line * params_.l2_line_bytes, params_.l3_line_bytes);
      l3_.set_state(victim_l3, Mesi::kModified);
    }
  }
  ++stats_.l2_writes;  // The fill itself writes the L2 data array.

  result.source = l3_hit ? FillSource::kL3 : FillSource::kMemory;
  return result;
}

void Backside::writeback(Addr addr) {
  ++stats_.l2_writes;
  const LineAddr l2_line = line_of(addr, params_.l2_line_bytes);
  if (!l2_.probe(l2_line).has_value()) {
    // Inclusion slipped (L2 victimized the parent); send toward L3.
    ++stats_.l3_writes;
    return;
  }
  l2_.set_state(l2_line, Mesi::kModified);
}

}  // namespace respin::mem
