// Environment-variable knobs shared by tests, benches and examples.
#pragma once

#include <string>

namespace respin::util {

/// Reads an integer environment variable, returning `fallback` when unset
/// or unparsable. Used for RESPIN_SIM_SCALE and similar tuning knobs.
long env_long(const std::string& name, long fallback);

/// Global simulation-scale multiplier (RESPIN_SIM_SCALE, default 1).
/// Bench workload lengths are multiplied by this; raise it for longer,
/// lower-variance runs on faster machines.
long sim_scale();

}  // namespace respin::util
