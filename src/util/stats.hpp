// Streaming statistics and histograms used for metrics collection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace respin::util {

/// Welford-style streaming mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStat& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Integer-bucketed histogram with a fixed number of buckets; values at or
/// above `bucket_count - 1` accumulate in the final (overflow) bucket.
class Histogram {
 public:
  explicit Histogram(std::size_t bucket_count);

  // Inline: the latency/arrival histograms are bumped from per-access
  // simulator paths.
  void add(std::uint64_t value, std::uint64_t weight = 1) {
    const std::size_t index = value < buckets_.size() - 1
                                  ? static_cast<std::size_t>(value)
                                  : buckets_.size() - 1;
    buckets_[index] += weight;
    total_ += weight;
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t bucket(std::size_t index) const;
  std::size_t bucket_count() const { return buckets_.size(); }

  /// Fraction of total mass in the given bucket; 0 when empty.
  double fraction(std::size_t index) const;

  /// Smallest value v such that at least `q` of the mass is at or below v.
  std::uint64_t quantile(double q) const;

  /// Weighted mean of the bucket indices.
  double mean() const;

  void merge(const Histogram& other);

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Geometric mean of a vector of positive values (used for normalized
/// execution-time summaries, where the arithmetic mean of ratios is biased).
double geometric_mean(const std::vector<double>& values);

/// Arithmetic mean; 0 for an empty vector.
double arithmetic_mean(const std::vector<double>& values);

}  // namespace respin::util
