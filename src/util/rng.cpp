#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace respin::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

Rng::Rng(std::string_view name, std::uint64_t index)
    : Rng(fnv1a(name) ^ (0x9e3779b97f4a7c15ULL * (index + 1))) {}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from zero so log() stays finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::uint64_t Rng::geometric(double p, std::uint64_t cap) {
  RESPIN_REQUIRE(p > 0.0 && p <= 1.0, "geometric needs p in (0,1]");
  if (p >= 1.0) return 0;
  return geometric_from_log(std::log1p(-p), cap);
}

std::uint64_t Rng::geometric_from_log(double log1p_neg_p, std::uint64_t cap) {
  // Inverse-transform sampling: floor(log(u) / log(1-p)).
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  const double draw = std::floor(std::log(u) / log1p_neg_p);
  if (draw >= static_cast<double>(cap)) return cap;
  return static_cast<std::uint64_t>(draw);
}

}  // namespace respin::util
