#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/require.hpp"

namespace respin::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

Rng::Rng(std::string_view name, std::uint64_t index)
    : Rng(fnv1a(name) ^ (0x9e3779b97f4a7c15ULL * (index + 1))) {}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  RESPIN_REQUIRE(bound > 0, "uniform_u64 bound must be positive");
  // Lemire's method would be faster; rejection keeps it simple and unbiased.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from zero so log() stays finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint64_t Rng::geometric(double p, std::uint64_t cap) {
  RESPIN_REQUIRE(p > 0.0 && p <= 1.0, "geometric needs p in (0,1]");
  if (p >= 1.0) return 0;
  // Inverse-transform sampling: floor(log(u) / log(1-p)).
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  const double draw = std::floor(std::log(u) / std::log1p(-p));
  if (draw >= static_cast<double>(cap)) return cap;
  return static_cast<std::uint64_t>(draw);
}

}  // namespace respin::util
