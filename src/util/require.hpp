// Invariant-checking macros.
//
// RESPIN_REQUIRE is always on (it guards configuration and protocol
// invariants whose violation would silently corrupt results); it throws
// std::logic_error so tests can assert on misuse.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace respin::util {

[[noreturn]] inline void require_failed(const char* expr, const char* file,
                                        int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": requirement failed: " << expr;
  if (!msg.empty()) os << " (" << msg << ")";
  throw std::logic_error(os.str());
}

}  // namespace respin::util

#define RESPIN_REQUIRE(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::respin::util::require_failed(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                     \
  } while (false)
