// Physical unit helpers used across the Respin simulator.
//
// Conventions (chosen so that every quantity used in the cycle-level
// simulator is an exact integer):
//   * time        : picoseconds, int64_t  (one shared-cache cycle = 400 ps)
//   * energy      : picojoules, double
//   * power       : watts, double
//   * capacity    : bytes, uint64_t
//   * frequency   : hertz, double (derived; periods are the ground truth)
#pragma once

#include <cstdint>

namespace respin::util {

/// Simulated time in picoseconds.
using Picoseconds = std::int64_t;

/// Energy in picojoules.
using Picojoules = double;

/// Power in watts.
using Watts = double;

inline constexpr Picoseconds kPsPerNs = 1000;

/// Converts a time expressed in nanoseconds to picoseconds.
constexpr Picoseconds ns(double nanoseconds) {
  return static_cast<Picoseconds>(nanoseconds * 1e3 + 0.5);
}

/// Converts picoseconds to (floating point) nanoseconds, for reporting.
constexpr double to_ns(Picoseconds ps) { return static_cast<double>(ps) / 1e3; }

/// Converts picoseconds to (floating point) seconds.
constexpr double to_seconds(Picoseconds ps) {
  return static_cast<double>(ps) * 1e-12;
}

/// Frequency (Hz) of a clock with the given period.
constexpr double frequency_hz(Picoseconds period_ps) {
  return 1e12 / static_cast<double>(period_ps);
}

/// Period (ps) of a clock with the given frequency in GHz.
constexpr Picoseconds period_from_ghz(double ghz) {
  return static_cast<Picoseconds>(1e3 / ghz + 0.5);
}

/// Energy (pJ) dissipated by `power` watts over `duration` picoseconds.
constexpr Picojoules leakage_energy(Watts power, Picoseconds duration) {
  // 1 W * 1 ps = 1 pJ.
  return power * static_cast<double>(duration);
}

/// Capacity literals.
constexpr std::uint64_t KiB(std::uint64_t n) { return n * 1024; }
constexpr std::uint64_t MiB(std::uint64_t n) { return n * 1024 * 1024; }

}  // namespace respin::util
