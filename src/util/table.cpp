#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/require.hpp"

namespace respin::util {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) {
  RESPIN_REQUIRE(!header.empty(), "table header cannot be empty");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  RESPIN_REQUIRE(row.size() == header_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
    return os.str();
  };

  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;
  const std::string rule(total, '-');

  std::ostringstream os;
  os << title_ << "\n" << rule << "\n" << render_row(header_) << rule << "\n";
  for (const auto& row : rows_) os << render_row(row);
  os << rule << "\n";
  return os.str();
}

std::string fixed(double value, int places) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", places, value);
  return buffer;
}

std::string percent(double ratio, int places) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%+.*f%%", places, ratio * 100.0);
  return buffer;
}

std::string scientific(double value, int places) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*e", places, value);
  return buffer;
}

std::string ascii_bar(double value, double maximum, int width) {
  if (maximum <= 0.0 || value <= 0.0 || width <= 0) return "";
  const int n = static_cast<int>(
      std::lround(std::min(1.0, value / maximum) * width));
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace respin::util
