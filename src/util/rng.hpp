// Deterministic random number generation.
//
// Every stochastic choice in the simulator draws from a named Xoshiro256**
// stream seeded by a (domain, index) pair via SplitMix64, so experiments
// regenerate bit-identically regardless of evaluation order or platform.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/require.hpp"

namespace respin::util {

/// SplitMix64: used only to expand seeds for Xoshiro.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a hash of a string, for turning stream names into seeds.
std::uint64_t fnv1a(std::string_view text);

/// Xoshiro256** PRNG (Blackman & Vigna). Small, fast, high quality.
class Rng {
 public:
  /// Seeds from a raw 64-bit value.
  explicit Rng(std::uint64_t seed);

  /// Seeds from a (name, index) pair; use one stream per logical purpose,
  /// e.g. Rng("varius.vth", core_id).
  Rng(std::string_view name, std::uint64_t index);

  // The draw primitives are defined inline: they sit on the simulator's
  // per-access hot path (workload generation, arbitration tie-breaks,
  // fault draws), where an out-of-line call costs more than the xoshiro
  // step itself.

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, bound) without modulo bias.
  std::uint64_t uniform_u64(std::uint64_t bound) {
    RESPIN_REQUIRE(bound > 0, "uniform_u64 bound must be positive");
    // Lemire's method would be faster; rejection keeps it simple and
    // unbiased.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Standard normal deviate (Box-Muller with caching).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Geometric-like draw: number of failures before the first success with
  /// success probability p (p in (0, 1]). Capped at `cap`.
  std::uint64_t geometric(double p, std::uint64_t cap);

  /// As geometric(p, cap) for p in (0, 1), with log1p(-p) precomputed by
  /// the caller. Bit-identical to geometric() for the same p — the
  /// division is unchanged, only the constant denominator is hoisted out
  /// of per-draw code (the workload draws one gap per memory access).
  std::uint64_t geometric_from_log(double log1p_neg_p, std::uint64_t cap);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace respin::util
