// Deterministic random number generation.
//
// Every stochastic choice in the simulator draws from a named Xoshiro256**
// stream seeded by a (domain, index) pair via SplitMix64, so experiments
// regenerate bit-identically regardless of evaluation order or platform.
#pragma once

#include <cstdint>
#include <string_view>

namespace respin::util {

/// SplitMix64: used only to expand seeds for Xoshiro.
std::uint64_t splitmix64(std::uint64_t& state);

/// FNV-1a hash of a string, for turning stream names into seeds.
std::uint64_t fnv1a(std::string_view text);

/// Xoshiro256** PRNG (Blackman & Vigna). Small, fast, high quality.
class Rng {
 public:
  /// Seeds from a raw 64-bit value.
  explicit Rng(std::uint64_t seed);

  /// Seeds from a (name, index) pair; use one stream per logical purpose,
  /// e.g. Rng("varius.vth", core_id).
  Rng(std::string_view name, std::uint64_t index);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound) without modulo bias.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Standard normal deviate (Box-Muller with caching).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Geometric-like draw: number of failures before the first success with
  /// success probability p (p in (0, 1]). Capped at `cap`.
  std::uint64_t geometric(double p, std::uint64_t cap);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace respin::util
