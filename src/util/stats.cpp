#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace respin::util {

void RunningStat::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Histogram::Histogram(std::size_t bucket_count) : buckets_(bucket_count, 0) {
  RESPIN_REQUIRE(bucket_count > 0, "histogram needs at least one bucket");
}

std::uint64_t Histogram::bucket(std::size_t index) const {
  RESPIN_REQUIRE(index < buckets_.size(), "histogram bucket out of range");
  return buckets_[index];
}

double Histogram::fraction(std::size_t index) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(bucket(index)) / static_cast<double>(total_);
}

std::uint64_t Histogram::quantile(double q) const {
  RESPIN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (total_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_)));
  std::uint64_t running = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    running += buckets_[i];
    if (running >= target) return i;
  }
  return buckets_.size() - 1;
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    weighted += static_cast<double>(i) * static_cast<double>(buckets_[i]);
  }
  return weighted / static_cast<double>(total_);
}

void Histogram::merge(const Histogram& other) {
  RESPIN_REQUIRE(other.buckets_.size() == buckets_.size(),
                 "histogram merge requires equal bucket counts");
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
}

double geometric_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) {
    RESPIN_REQUIRE(v > 0.0, "geometric mean needs positive values");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double arithmetic_mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace respin::util
