// Plain-text table rendering for benchmark harness output.
//
// Every bench binary prints its paper table/figure as an aligned text table
// so EXPERIMENTS.md can quote the output verbatim.
#pragma once

#include <string>
#include <vector>

namespace respin::util {

/// Column-aligned text table with a title and header row.
class TextTable {
 public:
  explicit TextTable(std::string title);

  /// Sets the header row; must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Adds a data row; its size must match the header.
  void add_row(std::vector<std::string> row);

  /// Renders the table (title, rule, header, rule, rows, rule).
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimal places.
std::string fixed(double value, int places);

/// Formats a ratio as a signed percentage, e.g. -0.112 -> "-11.2%".
std::string percent(double ratio, int places = 1);

/// Formats "1.2e-07" scientific-notation values (tail probabilities).
std::string scientific(double value, int places = 1);

/// Renders a horizontal ASCII bar of length proportional to value/maximum.
std::string ascii_bar(double value, double maximum, int width = 40);

}  // namespace respin::util
