#include "util/env.hpp"

#include <cstdlib>

namespace respin::util {

long env_long(const std::string& name, long fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || value <= 0) return fallback;
  return value;
}

long sim_scale() { return env_long("RESPIN_SIM_SCALE", 1); }

}  // namespace respin::util
