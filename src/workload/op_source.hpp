// Op-source abstraction: the interface the core model consumes.
//
// cpu::VirtualCore historically held a concrete workload::ThreadWorkload;
// lifting that dependency to this small interface decouples the simulator
// from the synthetic generator family, so the same ClusterSim can execute
// a synthetic benchmark, a recorded binary trace (respin::trace), or any
// future externally produced access stream.
//
// Two contracts matter:
//  - Determinism: a source must produce the same op/ifetch sequences every
//    time it is constructed from the same inputs. The simulator's
//    bit-identical-results guarantees (skip/no-skip, serial/parallel,
//    record/replay) all rest on this.
//  - Value semantics: OpStream deep-copies its source on copy. ClusterSim
//    is a plain value type — the oracle consolidation driver snapshots the
//    whole simulator, trial-runs an epoch, and rolls back — so a copied
//    stream must replay from the copied position without disturbing the
//    original.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "workload/workload.hpp"

namespace respin::workload {

/// Abstract per-thread operation stream (one application thread's ops plus
/// its instruction-fetch address stream).
class OpSource {
 public:
  virtual ~OpSource() = default;

  /// Produces the next operation. After kFinished, returns kFinished
  /// forever.
  virtual Op next() = 0;

  /// Next instruction-fetch target (called by the core model once per
  /// fetch group).
  virtual mem::Addr next_ifetch_addr() = 0;

  /// Deep copy, including the current stream position.
  virtual std::unique_ptr<OpSource> clone() const = 0;
};

/// Value-semantic handle around an OpSource: copying an OpStream clones
/// the source, so cpu::VirtualCore (and transitively ClusterSim) stays a
/// plain copyable value type.
class OpStream {
 public:
  OpStream() = default;
  explicit OpStream(std::unique_ptr<OpSource> source)
      : source_(std::move(source)) {}

  OpStream(const OpStream& other)
      : source_(other.source_ ? other.source_->clone() : nullptr) {}
  OpStream& operator=(const OpStream& other) {
    if (this != &other) {
      source_ = other.source_ ? other.source_->clone() : nullptr;
    }
    return *this;
  }
  OpStream(OpStream&&) noexcept = default;
  OpStream& operator=(OpStream&&) noexcept = default;

  Op next() { return source_->next(); }
  mem::Addr next_ifetch_addr() { return source_->next_ifetch_addr(); }

  explicit operator bool() const { return source_ != nullptr; }
  OpSource* source() { return source_.get(); }
  const OpSource* source() const { return source_.get(); }

 private:
  std::unique_ptr<OpSource> source_;
};

/// The synthetic generator behind the interface (the historical default).
class SyntheticOpSource final : public OpSource {
 public:
  explicit SyntheticOpSource(ThreadWorkload work) : work_(std::move(work)) {}

  Op next() override { return work_.next(); }
  mem::Addr next_ifetch_addr() override { return work_.next_ifetch_addr(); }
  std::unique_ptr<OpSource> clone() const override {
    return std::make_unique<SyntheticOpSource>(*this);
  }

  const ThreadWorkload& workload() const { return work_; }

 private:
  ThreadWorkload work_;
};

/// Builds one thread's stream. ClusterSim calls the factory once per
/// virtual core at construction with (thread_id, thread_count).
using OpSourceFactory =
    std::function<OpStream(std::uint32_t thread_id,
                           std::uint32_t thread_count)>;

/// Factory over the synthetic generator. `spec` is captured by reference
/// and must outlive every simulator built from the factory (ThreadWorkload
/// keeps a pointer into it) — the same lifetime rule the concrete
/// ClusterSim(spec) constructor has always had.
OpSourceFactory synthetic_factory(const WorkloadSpec& spec, double scale,
                                  std::uint64_t seed);

}  // namespace respin::workload
