// Profile-driven workload synthesis: an OpSource that regenerates a
// parameterized synthetic workload from a measured trace profile.
//
// respin::trace::fit measures a trace (any trace — recorded from the
// catalog or imported from a foreign format) into a WorkloadProfile:
// read/write mix, memory intensity, sharing, a per-thread reuse-distance
// histogram, and windowed phase structure. SynthFromProfile inverts that
// measurement: it emits an op stream whose fitted profile matches the
// input within documented tolerances (docs/traces.md, "Ingestion &
// synthesis"), deterministically from (profile, thread, thread_count,
// scale, seed) — the same purity contract ThreadWorkload has, so synth
// workloads capture, replay, snapshot and serve exactly like catalog
// benchmarks.
//
// Address generation is reuse-distance driven: each memory access draws a
// target stack-distance bucket from the profile histogram and re-touches
// the line at that recency depth (move-to-front over a bounded per-thread
// recency stack), so the synthesized stream reproduces the measured
// locality rather than just the miss ratio of one particular cache.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/op_source.hpp"
#include "workload/workload.hpp"

namespace respin::workload {

/// Reuse-distance histogram shape shared by fit and synthesis: bucket 0
/// holds distance 0 (immediate line re-touch), bucket b >= 1 holds
/// distances in [2^(b-1), 2^b), and the last bucket holds cold accesses
/// (first touch of a line). 20 buckets cover distances up to 256K
/// distinct 64-byte lines (16 MB of working set) before saturating.
inline constexpr std::size_t kReuseBuckets = 20;

/// Maps a reuse distance to its histogram bucket; pass kColdDistance for
/// a first touch.
inline constexpr std::uint64_t kColdDistance = ~std::uint64_t{0};
std::size_t reuse_bucket(std::uint64_t distance);

/// One phase of measured behaviour (a window of the source trace).
struct ProfilePhase {
  std::uint64_t instructions = 0;  ///< Per-thread instructions.
  double ipc = 1.0;                ///< Issue IPC for compute runs.
  double mem_fraction = 0.3;       ///< Memory ops per instruction.
  double store_fraction = 0.3;     ///< Stores among memory ops.
  double shared_fraction = 0.0;    ///< Accesses to cross-thread lines.
};

/// A fitted workload: everything synthesis needs, plus the aggregate
/// measurements tests and the CLI report. Built by trace::fit::fit_trace
/// or parsed from its JSON form.
struct WorkloadProfile {
  std::string name = "profile";
  std::uint32_t thread_count = 0;  ///< Threads the source trace ran.
  /// Distinct cross-thread (shared) lines measured; synthesis draws cold
  /// shared lines uniformly from a pool of this size so threads overlap.
  std::uint64_t shared_pool_lines = 0;
  /// Aggregated per-thread reuse-distance histogram (kReuseBuckets).
  std::vector<std::uint64_t> reuse_hist =
      std::vector<std::uint64_t>(kReuseBuckets, 0);
  /// Windowed phase structure, in stream order. Never empty after fit.
  std::vector<ProfilePhase> phases;

  // Aggregates over the whole trace (reporting + tolerance tests).
  std::uint64_t instructions = 0;  ///< Per-thread mean.
  std::uint64_t mem_ops = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t barriers = 0;      ///< Per-thread barrier count.
  double mem_fraction = 0.0;
  double store_fraction = 0.0;
  double shared_fraction = 0.0;
  double avg_ipc = 1.0;
};

/// Validates the fields synthesis depends on; throws std::logic_error
/// with a caller-printable message on nonsense (no phases, fractions
/// outside [0,1], histogram size mismatch, zero memory ops).
void validate(const WorkloadProfile& profile);

/// Deterministic per-thread op stream synthesized from a profile.
class SynthFromProfile final : public OpSource {
 public:
  /// `scale` multiplies every phase's instruction budget; `seed` selects
  /// the instance. Throws std::logic_error on an invalid profile.
  SynthFromProfile(std::shared_ptr<const WorkloadProfile> profile,
                   std::uint32_t thread_id, std::uint32_t thread_count,
                   double scale, std::uint64_t seed);

  Op next() override;
  mem::Addr next_ifetch_addr() override;
  std::unique_ptr<OpSource> clone() const override {
    return std::make_unique<SynthFromProfile>(*this);
  }

  std::uint64_t instructions_emitted() const { return instructions_emitted_; }

 private:
  const ProfilePhase& phase() const { return profile_->phases[phase_index_]; }
  void enter_phase(std::size_t index);
  mem::Addr data_address();

  std::shared_ptr<const WorkloadProfile> profile_;
  std::uint32_t thread_id_;
  double scale_;
  util::Rng rng_;
  util::Rng ifetch_rng_;

  /// Cumulative reuse-histogram weights for bucket draws.
  std::vector<std::uint64_t> reuse_cumulative_;
  std::uint64_t reuse_total_ = 0;

  /// Per-thread recency stack of line addresses (MRU at the back),
  /// bounded so pathological profiles cannot grow it without limit.
  std::vector<mem::Addr> recency_;
  mem::Addr next_private_line_ = 0;

  std::size_t phase_index_ = 0;
  std::uint64_t phase_budget_ = 0;
  double mem_gap_log_ = 0.0;
  std::uint64_t next_barrier_id_ = 0;
  bool pending_mem_ = false;
  bool finished_ = false;
  std::uint64_t instructions_emitted_ = 0;
  mem::Addr code_cursor_ = 0;
};

/// Factory over SynthFromProfile; the profile is shared by every stream
/// (and by clones), so the factory is safe to keep past the caller's
/// scope — serving holds these across async request execution.
OpSourceFactory synth_factory(std::shared_ptr<const WorkloadProfile> profile,
                              double scale, std::uint64_t seed);

}  // namespace respin::workload
