#include "workload/op_source.hpp"

namespace respin::workload {

OpSourceFactory synthetic_factory(const WorkloadSpec& spec, double scale,
                                  std::uint64_t seed) {
  return [&spec, scale, seed](std::uint32_t thread_id,
                              std::uint32_t thread_count) {
    return OpStream(std::make_unique<SyntheticOpSource>(
        ThreadWorkload(spec, thread_id, thread_count, scale, seed)));
  };
}

}  // namespace respin::workload
