#include "workload/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace respin::workload {

namespace {
constexpr mem::Addr kPrivateBase = 0x0000'0100'0000'0000ULL;
constexpr mem::Addr kPrivateStride = 0x0000'0000'1000'0000ULL;  // 256 MB apart.
constexpr mem::Addr kSharedBase = 0x0000'0200'0000'0000ULL;
constexpr mem::Addr kCodeBase = 0x0000'0300'0000'0000ULL;
constexpr double kResidualWork = 0.02;  ///< Work share of non-parallel threads.
}  // namespace

mem::Addr ThreadWorkload::private_base(std::uint32_t thread_id) {
  return kPrivateBase + kPrivateStride * thread_id;
}
mem::Addr ThreadWorkload::shared_base() { return kSharedBase; }
mem::Addr ThreadWorkload::code_base() { return kCodeBase; }

ThreadWorkload::ThreadWorkload(const WorkloadSpec& spec,
                               std::uint32_t thread_id,
                               std::uint32_t thread_count, double scale,
                               std::uint64_t seed)
    : spec_(&spec),
      thread_id_(thread_id),
      thread_count_(thread_count),
      scale_(scale),
      rng_("workload." + spec.name,
           seed * 1000003ULL + thread_id),
      ifetch_rng_("workload.ifetch." + spec.name,
                  seed * 1000003ULL + thread_id),
      code_cursor_(kCodeBase + 64 * thread_id) {
  RESPIN_REQUIRE(!spec.phases.empty(), "workload needs at least one phase");
  RESPIN_REQUIRE(thread_count >= 1 && thread_id < thread_count,
                 "bad thread id/count");
  RESPIN_REQUIRE(scale > 0.0, "scale must be positive");
  enter_phase(0);
}

const Phase& ThreadWorkload::phase() const {
  return spec_->phases[phase_index_ % spec_->phases.size()];
}

std::uint64_t ThreadWorkload::phase_work_for_thread(
    std::size_t phase_index) const {
  const Phase& p = spec_->phases[phase_index % spec_->phases.size()];
  const auto full = static_cast<std::uint64_t>(
      std::max(1.0, static_cast<double>(p.instructions) * scale_));
  const auto parallel_threads = static_cast<std::uint32_t>(std::max(
      1.0, std::ceil(p.parallel_fraction * static_cast<double>(thread_count_))));
  // Rotate which threads carry the work so consolidation sees migration.
  const std::uint32_t start =
      static_cast<std::uint32_t>((phase_index * 7) % thread_count_);
  const std::uint32_t my_slot =
      (thread_id_ + thread_count_ - start) % thread_count_;
  if (my_slot < parallel_threads) {
    // +-10% per-thread work jitter: real programs never partition work
    // exactly evenly, which both creates natural barrier slack and keeps
    // the consolidation study honest (a probed core's two threads are not
    // guaranteed to gate the phase).
    util::Rng jitter("workload.jitter." + spec_->name,
                     phase_index * 131071ULL + thread_id_);
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(full) *
                                      jitter.uniform(0.9, 1.1)));
  }
  return std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(static_cast<double>(full) * kResidualWork));
}

void ThreadWorkload::enter_phase(std::size_t index) {
  const std::size_t total_phases =
      spec_->phases.size() * static_cast<std::size_t>(spec_->repeat);
  if (index >= total_phases) {
    finished_ = true;
    return;
  }
  phase_index_ = index;
  phase_budget_ = phase_work_for_thread(index);
  const double mem = phase().mem_fraction;
  mem_gap_log_ = mem > 0.0 && mem < 1.0 ? std::log1p(-mem) : 0.0;
  barriers_left_ = phase().barriers;
  until_barrier_ = barriers_left_ > 0
                       ? phase_budget_ / (barriers_left_ + 1) + 1
                       : UINT64_MAX;
}

mem::Addr ThreadWorkload::data_address() {
  const Phase& p = phase();
  const bool shared = rng_.bernoulli(p.shared_fraction);
  std::uint64_t region_bytes;
  mem::Addr base;
  if (shared) {
    if (rng_.bernoulli(p.shared_hot_fraction)) {
      region_bytes = std::uint64_t{std::min(p.shared_hot_kb, p.shared_kb)} * 1024;
      base = kSharedBase;
    } else {
      region_bytes = std::uint64_t{p.shared_kb} * 1024;
      base = kSharedBase;
    }
  } else {
    if (rng_.bernoulli(p.hot_fraction)) {
      region_bytes = std::uint64_t{p.hot_kb} * 1024;
    } else {
      region_bytes = std::uint64_t{p.cold_kb} * 1024;
    }
    base = private_base(thread_id_);
  }
  region_bytes = std::max<std::uint64_t>(region_bytes, 64);
  const std::uint64_t words = region_bytes / 8;
  return base + 8 * rng_.uniform_u64(words);
}

Op ThreadWorkload::next() {
  if (finished_) return Op{};

  if (phase_budget_ == 0) {
    // Budget exhausted. Every thread must emit exactly the same barrier
    // sequence (spec.barriers in-phase + 1 end-of-phase), even when a
    // light thread's budget is smaller than the barrier count — flush any
    // remaining in-phase barriers back-to-back first.
    if (barriers_left_ > 0) {
      --barriers_left_;
      return Op{.kind = OpKind::kBarrier, .count = 0,
                .addr = next_barrier_id_++};
    }
    // End of phase: program-wide barrier, then the next phase (or done).
    const std::uint64_t id = next_barrier_id_++;
    enter_phase(phase_index_ + 1);
    return Op{.kind = OpKind::kBarrier, .count = 0, .addr = id};
  }

  if (until_barrier_ == 0) {
    --barriers_left_;
    until_barrier_ = barriers_left_ > 0
                         ? phase_budget_ / (barriers_left_ + 1) + 1
                         : UINT64_MAX;
    return Op{.kind = OpKind::kBarrier, .count = 0,
              .addr = next_barrier_id_++};
  }

  const Phase& p = phase();
  const std::uint64_t limit = std::min(phase_budget_, until_barrier_);

  if (p.mem_fraction <= 0.0) {
    const auto run = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        limit, 4096));
    phase_budget_ -= run;
    until_barrier_ -= run;
    instructions_emitted_ += run;
    return Op{.kind = OpKind::kCompute, .count = run, .addr = 0,
              .ipc = p.ipc};
  }

  // A compute run of geometric length separates consecutive memory
  // instructions; after emitting the run, the *next* operation must be the
  // memory instruction it precedes (pending_mem_), or the achieved memory
  // fraction would be one geometric mean short of the target.
  if (!pending_mem_) {
    const std::uint64_t gap =
        p.mem_fraction >= 1.0
            ? 0
            : rng_.geometric_from_log(mem_gap_log_, 4096);
    if (gap > 0) {
      const auto run =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(gap, limit));
      if (run > 0) {
        pending_mem_ = true;
        phase_budget_ -= run;
        until_barrier_ -= run;
        instructions_emitted_ += run;
        return Op{.kind = OpKind::kCompute, .count = run, .addr = 0,
                  .ipc = p.ipc};
      }
    }
  }
  pending_mem_ = false;

  // One memory instruction.
  phase_budget_ -= 1;
  if (until_barrier_ != UINT64_MAX) until_barrier_ -= 1;
  instructions_emitted_ += 1;
  const bool store = rng_.bernoulli(p.store_fraction);
  return Op{.kind = store ? OpKind::kStore : OpKind::kLoad,
            .count = 1,
            .addr = data_address()};
}

mem::Addr ThreadWorkload::next_ifetch_addr() {
  const std::uint64_t code_bytes = std::uint64_t{spec_->code_kb} * 1024;
  if (ifetch_rng_.bernoulli(0.12)) {
    code_cursor_ = kCodeBase + 32 * ifetch_rng_.uniform_u64(code_bytes / 32);
  } else {
    code_cursor_ += 32;
    if (code_cursor_ >= kCodeBase + code_bytes) code_cursor_ = kCodeBase;
  }
  return code_cursor_;
}

namespace {

// Shorthand phase builders keep the catalog readable.
Phase compute_phase(std::uint64_t instr, double ipc, double mem,
                    double shared, std::uint32_t barriers) {
  Phase p;
  p.instructions = instr;
  p.ipc = ipc;
  p.mem_fraction = mem;
  p.shared_fraction = shared;
  p.barriers = barriers;
  return p;
}

std::vector<WorkloadSpec> build_catalog() {
  std::vector<WorkloadSpec> catalog;

  {  // barnes: N-body tree walk; moderate sharing, a build phase with
     // reduced parallelism, force phases with good ILP.
    WorkloadSpec w{.name = "barnes", .phases = {}, .code_kb = 48, .repeat = 2};
    Phase build = compute_phase(60'000, 0.6, 0.35, 0.45, 1);
    build.parallel_fraction = 0.5;
    build.store_fraction = 0.45;
    Phase force = compute_phase(90'000, 1.1, 0.30, 0.20, 2);
    force.hot_kb = 14;
    Phase update = compute_phase(30'000, 1.0, 0.35, 0.10, 1);
    w.phases = {build, force, update};
    catalog.push_back(std::move(w));
  }
  {  // cholesky: supernodal factorization; irregular parallelism.
    WorkloadSpec w{.name = "cholesky", .phases = {}, .code_kb = 40,
                   .repeat = 2};
    Phase dense = compute_phase(60'000, 1.2, 0.30, 0.25, 1);
    Phase sparse = compute_phase(60'000, 0.7, 0.38, 0.30, 1);
    sparse.parallel_fraction = 0.6;
    w.phases = {dense, sparse};
    catalog.push_back(std::move(w));
  }
  {  // fft: compute butterflies separated by all-to-all transposes.
    WorkloadSpec w{.name = "fft", .phases = {}, .code_kb = 24, .repeat = 3};
    Phase butterfly = compute_phase(60'000, 1.25, 0.25, 0.05, 1);
    butterfly.hot_kb = 16;
    butterfly.parallel_fraction = 0.95;
    Phase transpose = compute_phase(25'000, 0.9, 0.50, 0.85, 1);
    transpose.store_fraction = 0.50;
    transpose.shared_kb = 512;
    transpose.shared_hot_fraction = 0.3;
    w.phases = {butterfly, transpose};
    catalog.push_back(std::move(w));
  }
  {  // lu: parallelism drains away in later stages — the greedy search's
     // worst case (paper Fig. 13).
    WorkloadSpec w{.name = "lu", .phases = {}, .code_kb = 20, .repeat = 1};
    for (double par : {1.0, 0.9, 0.75, 0.6, 0.45, 0.3, 0.2, 0.15}) {
      Phase stage = compute_phase(45'000, 1.0, 0.32, 0.25, 1);
      stage.parallel_fraction = par;
      w.phases.push_back(stage);
    }
    catalog.push_back(std::move(w));
  }
  {  // ocean: hundreds of barriers, memory-intensive grid sweeps.
    WorkloadSpec w{.name = "ocean", .phases = {}, .code_kb = 36, .repeat = 6};
    Phase red = compute_phase(30'000, 0.7, 0.42, 0.35, 12);
    red.shared_kb = 768;
    red.shared_hot_kb = 96;
    red.parallel_fraction = 0.85;  // Boundary rows leave some threads light.
    Phase black = compute_phase(30'000, 0.7, 0.42, 0.35, 12);
    black.shared_kb = 768;
    black.shared_hot_kb = 96;
    black.store_fraction = 0.42;
    black.parallel_fraction = 0.85;
    w.phases = {red, black};
    catalog.push_back(std::move(w));
  }
  {  // radiosity: task-parallel, high sharing, little synchronization.
    WorkloadSpec w{.name = "radiosity", .phases = {}, .code_kb = 56,
                   .repeat = 2};
    Phase gather = compute_phase(70'000, 0.9, 0.34, 0.45, 2);
    gather.parallel_fraction = 0.9;
    Phase shoot = compute_phase(45'000, 1.0, 0.30, 0.40, 1);
    shoot.parallel_fraction = 0.85;
    w.phases = {gather, shoot};
    catalog.push_back(std::move(w));
  }
  {  // radix: digit passes — local histogram then a memory-bound global
     // scatter; the most memory-bound code here (paper Figs. 12/14).
    WorkloadSpec w{.name = "radix", .phases = {}, .code_kb = 16, .repeat = 3};
    Phase histogram = compute_phase(30'000, 0.6, 0.42, 0.05, 1);
    histogram.parallel_fraction = 0.9;
    // Low *effective* IPC comes from memory stalls (permutation writes
    // miss everywhere), not from issue limits - that is what lets the
    // consolidation hardware multiplex threads through the stalls.
    Phase scatter = compute_phase(50'000, 1.2, 0.60, 0.55, 1);
    scatter.store_fraction = 0.60;
    scatter.cold_kb = 2048;
    scatter.hot_fraction = 0.25;
    scatter.shared_kb = 2048;
    scatter.shared_hot_fraction = 0.15;
    w.phases = {histogram, scatter};
    catalog.push_back(std::move(w));
  }
  {  // raytrace: shared read-mostly scene with heavy reuse; almost no
     // barriers. The paper's biggest shared-L1 winner.
    WorkloadSpec w{.name = "raytrace", .phases = {}, .code_kb = 64,
                   .repeat = 1};
    Phase trace = compute_phase(160'000, 0.9, 0.36, 0.60, 3);
    trace.store_fraction = 0.12;
    trace.parallel_fraction = 0.85;  // Ray work per tile is uneven.
    trace.shared_kb = 384;
    trace.shared_hot_kb = 64;
    trace.shared_hot_fraction = 0.85;
    Phase shade = compute_phase(45'000, 1.1, 0.30, 0.45, 1);
    shade.store_fraction = 0.15;
    w.phases = {trace, shade};
    catalog.push_back(std::move(w));
  }
  {  // water-nsquared: compute-dominated pairwise interactions.
    WorkloadSpec w{.name = "water-ns", .phases = {}, .code_kb = 28,
                   .repeat = 2};
    Phase forces = compute_phase(90'000, 1.3, 0.24, 0.15, 1);
    forces.parallel_fraction = 0.9;
    Phase update = compute_phase(30'000, 1.1, 0.30, 0.10, 1);
    w.phases = {forces, update};
    catalog.push_back(std::move(w));
  }
  {  // blackscholes: embarrassingly parallel, high ILP; never consolidates
     // far (paper Fig. 14: at least 6 cores stay active).
    WorkloadSpec w{.name = "blackscholes", .phases = {}, .code_kb = 12,
                   .repeat = 2};
    Phase price = compute_phase(140'000, 1.25, 0.20, 0.02, 3);
    price.hot_kb = 8;
    price.parallel_fraction = 0.95;
    Phase partition = compute_phase(35'000, 0.9, 0.30, 0.25, 1);
    partition.parallel_fraction = 0.3;
    w.phases = {price, partition};
    catalog.push_back(std::move(w));
  }
  {  // bodytrack: alternating parallel vision kernels and near-serial
     // model-update sections — consolidation's full dynamic range.
    WorkloadSpec w{.name = "bodytrack", .phases = {}, .code_kb = 52,
                   .repeat = 2};
    Phase kernels = compute_phase(90'000, 1.1, 0.30, 0.20, 1);
    Phase serial = compute_phase(50'000, 0.8, 0.30, 0.30, 1);
    serial.parallel_fraction = 0.15;
    w.phases = {kernels, serial};
    catalog.push_back(std::move(w));
  }
  {  // streamcluster: memory-bound distance computations, many barriers.
    WorkloadSpec w{.name = "streamcluster", .phases = {}, .code_kb = 20,
                   .repeat = 3};
    Phase dist = compute_phase(50'000, 1.0, 0.50, 0.30, 4);
    dist.cold_kb = 1024;
    dist.hot_fraction = 0.55;
    Phase recluster = compute_phase(35'000, 0.8, 0.35, 0.40, 2);
    recluster.parallel_fraction = 0.5;
    w.phases = {dist, recluster};
    catalog.push_back(std::move(w));
  }
  {  // swaptions: independent Monte-Carlo paths, compute-heavy.
    WorkloadSpec w{.name = "swaptions", .phases = {}, .code_kb = 16,
                   .repeat = 2};
    Phase sim = compute_phase(140'000, 1.2, 0.22, 0.03, 3);
    sim.hot_kb = 10;
    sim.parallel_fraction = 0.9;  // Swaption batches divide unevenly by 16.
    w.phases = {sim};
    catalog.push_back(std::move(w));
  }
  return catalog;
}

}  // namespace

const std::vector<WorkloadSpec>& benchmark_catalog() {
  static const std::vector<WorkloadSpec> catalog = build_catalog();
  return catalog;
}

const WorkloadSpec& benchmark(const std::string& name) {
  for (const auto& spec : benchmark_catalog()) {
    if (spec.name == name) return spec;
  }
  RESPIN_REQUIRE(false, "unknown benchmark: " + name);
  throw std::logic_error("unreachable");
}

std::vector<std::string> benchmark_names() {
  std::vector<std::string> names;
  for (const auto& spec : benchmark_catalog()) names.push_back(spec.name);
  return names;
}

}  // namespace respin::workload
