// Synthetic multi-threaded workload models (SPLASH2 / PARSEC substitute).
//
// The paper drives its SESC simulations with SPLASH2 (reference inputs) and
// PARSEC (simsmall). Running those binaries requires a full-system
// simulator; the architectural effects Respin measures, however, depend on
// workload *statistics*: instruction-level parallelism per phase, memory
// intensity, store ratio, shared-data fraction, working-set sizes,
// synchronization (barrier) rate, and work imbalance across threads. This
// module models each benchmark as a deterministic generator of those
// statistics, with per-benchmark parameters chosen from the benchmarks'
// published characterizations (e.g. `ocean` synchronizes through hundreds
// of barriers; `raytrace` re-reads a large shared scene; `radix` alternates
// compute-light permutation phases; `lu` loses parallelism in later
// stages).
//
// Every thread's operation stream regenerates bit-identically from
// (benchmark, thread, seed), which makes whole-simulation snapshots — used
// by the oracle consolidation study — trivially copyable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache_types.hpp"
#include "util/rng.hpp"

namespace respin::workload {

/// One execution phase, describing per-thread behaviour until the next
/// program-wide synchronization point.
struct Phase {
  std::uint64_t instructions = 100'000;  ///< Per full-work thread.
  double ipc = 1.0;             ///< Issue IPC cap for compute (<= 2.0).
  double mem_fraction = 0.3;    ///< Memory ops per instruction.
  double store_fraction = 0.3;  ///< Stores among memory ops.
  double shared_fraction = 0.2; ///< Data accesses to the shared region.
  std::uint32_t hot_kb = 12;    ///< Per-thread hot working set.
  std::uint32_t cold_kb = 256;  ///< Per-thread cold working set.
  double hot_fraction = 0.9;    ///< Accesses hitting the hot set.
  std::uint32_t shared_kb = 256;      ///< Shared-region size.
  double shared_hot_fraction = 0.8;   ///< Shared accesses to a hot subset.
  std::uint32_t shared_hot_kb = 48;   ///< Size of that hot subset.
  double parallel_fraction = 1.0;     ///< Threads with full work this phase.
  std::uint32_t barriers = 1;   ///< Barriers inside the phase (>=0); every
                                ///< phase additionally ends with a barrier.
};

/// A complete benchmark: named phase sequence plus code footprint.
struct WorkloadSpec {
  std::string name;
  std::vector<Phase> phases;
  std::uint32_t code_kb = 32;        ///< Instruction footprint.
  std::uint32_t repeat = 1;          ///< Phase-list repetitions.
};

/// Kinds of operations a thread emits.
enum class OpKind : std::uint8_t {
  kCompute,  ///< `count` arithmetic instructions at the phase IPC.
  kLoad,
  kStore,
  kBarrier,  ///< Program-wide barrier (id in `addr`).
  kFinished, ///< Thread ran out of work.
};

struct Op {
  OpKind kind = OpKind::kFinished;
  std::uint32_t count = 0;  ///< Instructions, for kCompute.
  mem::Addr addr = 0;       ///< Byte address (mem ops) or barrier id.
  double ipc = 1.0;         ///< Phase issue IPC (kCompute only).
};

/// Deterministic per-thread operation stream for one benchmark run.
class ThreadWorkload {
 public:
  /// `scale` multiplies every phase's instruction count (simulation-length
  /// knob); `seed` selects the run instance.
  ThreadWorkload(const WorkloadSpec& spec, std::uint32_t thread_id,
                 std::uint32_t thread_count, double scale, std::uint64_t seed);

  /// Produces the next operation. After kFinished, returns kFinished forever.
  Op next();

  /// Next instruction-fetch target (the core model calls this once per
  /// fetch group). Mostly sequential within the code footprint with
  /// occasional taken branches.
  mem::Addr next_ifetch_addr();

  bool finished() const { return finished_; }
  std::uint64_t instructions_emitted() const { return instructions_emitted_; }
  std::uint32_t thread_id() const { return thread_id_; }

  /// Address-space bases (exposed for tests).
  static mem::Addr private_base(std::uint32_t thread_id);
  static mem::Addr shared_base();
  static mem::Addr code_base();

 private:
  const Phase& phase() const;
  void enter_phase(std::size_t index);
  std::uint64_t phase_work_for_thread(std::size_t phase_index) const;
  mem::Addr data_address();

  const WorkloadSpec* spec_;
  std::uint32_t thread_id_;
  std::uint32_t thread_count_;
  double scale_;
  util::Rng rng_;
  util::Rng ifetch_rng_;

  std::size_t phase_index_ = 0;     ///< Global phase counter (repeats unrolled).
  std::uint64_t phase_budget_ = 0;  ///< Instructions left in this phase.
  std::uint64_t until_barrier_ = 0; ///< Instructions until the next barrier.
  std::uint32_t barriers_left_ = 0; ///< In-phase barriers still to emit.
  std::uint64_t next_barrier_id_ = 0;
  bool pending_mem_ = false;  ///< A compute gap was emitted; memory op due.
  /// log1p(-mem_fraction) for the current phase — the constant denominator
  /// of the per-memory-op geometric gap draw, hoisted out of next().
  double mem_gap_log_ = 0.0;
  bool finished_ = false;
  std::uint64_t instructions_emitted_ = 0;
  mem::Addr code_cursor_ = 0;
};

/// Returns the full benchmark catalog: 9 SPLASH2 + 4 PARSEC models, in the
/// paper's order.
const std::vector<WorkloadSpec>& benchmark_catalog();

/// Looks up a benchmark by name; throws std::logic_error if unknown.
const WorkloadSpec& benchmark(const std::string& name);

/// Names in catalog order (convenience for the bench harnesses).
std::vector<std::string> benchmark_names();

}  // namespace respin::workload
