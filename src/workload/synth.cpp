#include "workload/synth.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace respin::workload {

namespace {

/// Recency-stack bound: deeper reuse collapses into the deepest live
/// entry. 2^18 lines = 16 MB of tracked working set, past the last finite
/// histogram bucket, so the clamp never distorts a representable draw.
constexpr std::size_t kStackCap = std::size_t{1} << 18;
/// Overflow trim granularity (amortizes the front erase).
constexpr std::size_t kStackTrim = 4096;
/// Code window for the synthesized ifetch stream.
constexpr std::uint64_t kCodeBytes = 32 * 1024;
/// Largest single compute run (mirrors ThreadWorkload).
constexpr std::uint64_t kMaxComputeRun = 4096;

}  // namespace

std::size_t reuse_bucket(std::uint64_t distance) {
  if (distance == kColdDistance) return kReuseBuckets - 1;
  if (distance == 0) return 0;
  std::size_t bucket = 1;
  while (bucket + 1 < kReuseBuckets - 1 &&
         distance >= (std::uint64_t{1} << bucket)) {
    ++bucket;
  }
  return bucket;
}

void validate(const WorkloadProfile& profile) {
  RESPIN_REQUIRE(!profile.phases.empty(), "profile needs at least one phase");
  RESPIN_REQUIRE(profile.thread_count >= 1,
                 "profile thread_count must be positive");
  RESPIN_REQUIRE(profile.reuse_hist.size() == kReuseBuckets,
                 "profile reuse histogram must have " +
                     std::to_string(kReuseBuckets) + " buckets");
  RESPIN_REQUIRE(profile.mem_ops > 0, "profile holds no memory accesses");
  for (const ProfilePhase& p : profile.phases) {
    RESPIN_REQUIRE(p.instructions > 0, "profile phase with zero instructions");
    RESPIN_REQUIRE(p.ipc > 0.0 && p.ipc <= 2.0,
                   "profile phase IPC must be in (0, 2]");
    RESPIN_REQUIRE(p.mem_fraction >= 0.0 && p.mem_fraction <= 1.0,
                   "profile mem_fraction must be in [0, 1]");
    RESPIN_REQUIRE(p.store_fraction >= 0.0 && p.store_fraction <= 1.0,
                   "profile store_fraction must be in [0, 1]");
    RESPIN_REQUIRE(p.shared_fraction >= 0.0 && p.shared_fraction <= 1.0,
                   "profile shared_fraction must be in [0, 1]");
  }
}

SynthFromProfile::SynthFromProfile(
    std::shared_ptr<const WorkloadProfile> profile, std::uint32_t thread_id,
    std::uint32_t thread_count, double scale, std::uint64_t seed)
    : profile_(std::move(profile)),
      thread_id_(thread_id),
      scale_(scale),
      rng_("synth." + (profile_ ? profile_->name : std::string()),
           seed * 1000003ULL + thread_id),
      ifetch_rng_("synth.ifetch." + (profile_ ? profile_->name : std::string()),
                  seed * 1000003ULL + thread_id),
      code_cursor_(ThreadWorkload::code_base() + 64 * thread_id) {
  RESPIN_REQUIRE(profile_ != nullptr, "null profile");
  validate(*profile_);
  RESPIN_REQUIRE(thread_count >= 1 && thread_id < thread_count,
                 "bad thread id/count");
  RESPIN_REQUIRE(scale > 0.0, "scale must be positive");
  // Cumulative weights for the per-access reuse-bucket draw. A histogram
  // that is all-cold or all-hot still works: the draw degenerates to the
  // one populated bucket.
  reuse_cumulative_.reserve(kReuseBuckets);
  for (const std::uint64_t weight : profile_->reuse_hist) {
    reuse_total_ += weight;
    reuse_cumulative_.push_back(reuse_total_);
  }
  RESPIN_REQUIRE(reuse_total_ > 0, "profile reuse histogram is empty");
  enter_phase(0);
}

void SynthFromProfile::enter_phase(std::size_t index) {
  if (index >= profile_->phases.size()) {
    finished_ = true;
    return;
  }
  phase_index_ = index;
  phase_budget_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(phase().instructions) * scale_));
  const double mem = phase().mem_fraction;
  mem_gap_log_ = mem > 0.0 && mem < 1.0 ? std::log1p(-mem) : 0.0;
}

mem::Addr SynthFromProfile::data_address() {
  // Draw a target stack-distance bucket from the measured histogram.
  const std::uint64_t pick = rng_.uniform_u64(reuse_total_);
  std::size_t bucket = 0;
  while (reuse_cumulative_[bucket] <= pick) ++bucket;

  const std::size_t stack = recency_.size();
  const bool cold = bucket == kReuseBuckets - 1 || stack == 0;
  if (!cold) {
    // Distance range of the bucket, clamped into the live stack.
    std::uint64_t lo = bucket == 0 ? 0 : (std::uint64_t{1} << (bucket - 1));
    std::uint64_t hi =
        bucket == 0 ? 1 : (std::uint64_t{1} << bucket);  // Exclusive.
    lo = std::min<std::uint64_t>(lo, stack - 1);
    hi = std::min<std::uint64_t>(hi, stack);
    const std::uint64_t distance =
        lo + (hi > lo ? rng_.uniform_u64(hi - lo) : 0);
    const std::size_t index = stack - 1 - static_cast<std::size_t>(distance);
    const mem::Addr line = recency_[index];
    recency_.erase(recency_.begin() + static_cast<std::ptrdiff_t>(index));
    recency_.push_back(line);
    return line * 64;
  }

  // First touch: allocate from the shared pool (uniform, so threads
  // overlap on the same lines) or the thread's private sequence.
  mem::Addr line;
  const bool shared = profile_->shared_pool_lines > 0 &&
                      rng_.bernoulli(phase().shared_fraction);
  if (shared) {
    line = ThreadWorkload::shared_base() / 64 +
           rng_.uniform_u64(profile_->shared_pool_lines);
  } else {
    line = ThreadWorkload::private_base(thread_id_) / 64 + next_private_line_;
    ++next_private_line_;
  }
  // Keep stack entries distinct: a pool draw may hit a line that is
  // already resident (then this is a re-touch at its old depth, folded
  // into the tolerance budget), so drop the stale entry first.
  if (shared) {
    const auto it = std::find(recency_.begin(), recency_.end(), line);
    if (it != recency_.end()) recency_.erase(it);
  }
  recency_.push_back(line);
  if (recency_.size() > kStackCap + kStackTrim) {
    recency_.erase(recency_.begin(),
                   recency_.begin() + static_cast<std::ptrdiff_t>(
                                          recency_.size() - kStackCap));
  }
  return line * 64;
}

Op SynthFromProfile::next() {
  if (finished_) return Op{};

  if (phase_budget_ == 0) {
    // Phase boundary: every thread follows the same phase schedule, so a
    // program-wide barrier keeps the synthesized phase structure visible
    // to the governor exactly as the catalog generators do.
    const std::uint64_t id = next_barrier_id_++;
    enter_phase(phase_index_ + 1);
    return Op{.kind = OpKind::kBarrier, .count = 0, .addr = id};
  }

  const ProfilePhase& p = phase();
  if (p.mem_fraction <= 0.0) {
    const auto run = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(phase_budget_, kMaxComputeRun));
    phase_budget_ -= run;
    instructions_emitted_ += run;
    return Op{.kind = OpKind::kCompute, .count = run, .addr = 0, .ipc = p.ipc};
  }

  // Geometric compute gap before each memory access (same scheme as
  // ThreadWorkload, so mem_fraction is reproduced in expectation).
  if (!pending_mem_) {
    const std::uint64_t gap =
        p.mem_fraction >= 1.0
            ? 0
            : rng_.geometric_from_log(mem_gap_log_, kMaxComputeRun);
    if (gap > 0) {
      const auto run = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(gap, phase_budget_));
      if (run > 0) {
        pending_mem_ = true;
        phase_budget_ -= run;
        instructions_emitted_ += run;
        return Op{.kind = OpKind::kCompute, .count = run, .addr = 0,
                  .ipc = p.ipc};
      }
    }
  }
  pending_mem_ = false;

  phase_budget_ -= 1;
  instructions_emitted_ += 1;
  const bool store = rng_.bernoulli(p.store_fraction);
  return Op{.kind = store ? OpKind::kStore : OpKind::kLoad,
            .count = 1,
            .addr = data_address()};
}

mem::Addr SynthFromProfile::next_ifetch_addr() {
  const mem::Addr code_base = ThreadWorkload::code_base();
  if (ifetch_rng_.bernoulli(0.12)) {
    code_cursor_ = code_base + 32 * ifetch_rng_.uniform_u64(kCodeBytes / 32);
  } else {
    code_cursor_ += 32;
    if (code_cursor_ >= code_base + kCodeBytes) code_cursor_ = code_base;
  }
  return code_cursor_;
}

OpSourceFactory synth_factory(std::shared_ptr<const WorkloadProfile> profile,
                              double scale, std::uint64_t seed) {
  RESPIN_REQUIRE(profile != nullptr, "synth_factory needs a profile");
  validate(*profile);
  return [profile, scale, seed](std::uint32_t thread_id,
                                std::uint32_t thread_count) {
    return OpStream(std::make_unique<SynthFromProfile>(
        profile, thread_id, thread_count, scale, seed));
  };
}

}  // namespace respin::workload
