#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "nvsim/array_model.hpp"
#include "util/require.hpp"

namespace respin::fault {

namespace {

double clamp01(double p) { return std::clamp(p, 0.0, 1.0); }

/// Standard normal CDF via erfc (numerically stable in both tails).
double phi(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

}  // namespace

void validate(const FaultPlan& plan) {
  RESPIN_REQUIRE(plan.sram.vccmin_mean > 0.0 && plan.sram.vccmin_mean < 2.0,
                 "SRAM Vccmin mean must be a plausible voltage");
  RESPIN_REQUIRE(plan.sram.vccmin_sigma > 0.0,
                 "SRAM Vccmin sigma must be positive");
  RESPIN_REQUIRE(plan.sram.vth_coupling >= 0.0,
                 "Vth coupling must be non-negative");
  RESPIN_REQUIRE(plan.sram.vdd_override >= 0.0,
                 "fault-model Vdd override cannot be negative");
  RESPIN_REQUIRE(
      plan.stt.write_fail_prob >= 0.0 && plan.stt.write_fail_prob < 1.0,
      "STT write-failure probability must be in [0, 1)");
  RESPIN_REQUIRE(plan.ecc.word_bits > 0,
                 "ECC word must protect at least one bit");
}

double sram_bit_fail_probability(const SramFaultParams& params, double vdd,
                                 double vth_local, double vth_mean) {
  const double rail = params.vdd_override > 0.0 ? params.vdd_override : vdd;
  const double vccmin_eff =
      params.vccmin_mean + params.vth_coupling * (vth_local - vth_mean);
  return clamp01(phi((vccmin_eff - rail) / params.vccmin_sigma));
}

LineOutcomeProbs sram_line_outcome_probs(const SramFaultParams& params,
                                         const EccParams& ecc, double vdd,
                                         double vth_local, double vth_mean,
                                         std::uint32_t line_bytes) {
  const std::uint64_t line_bits = std::uint64_t{line_bytes} * 8;
  RESPIN_REQUIRE(line_bits % ecc.word_bits == 0,
                 "line must hold a whole number of ECC words");
  const std::uint64_t words = line_bits / ecc.word_bits;
  // Check bits are SRAM cells too: a fault there consumes the same SECDED
  // correction capability as a data-bit fault.
  const double cells_per_word = static_cast<double>(
      ecc.word_bits + nvsim::secded_check_bits(ecc.word_bits));

  const double p = sram_bit_fail_probability(params, vdd, vth_local, vth_mean);
  LineOutcomeProbs out;
  if (p <= 0.0) return out;
  if (p >= 1.0) {
    out.p_clean = 0.0;
    out.p_disabled = 1.0;
    return out;
  }
  const double p_word_clean = std::pow(1.0 - p, cells_per_word);
  const double p_word_one =
      cells_per_word * p * std::pow(1.0 - p, cells_per_word - 1.0);
  const double p_word_ok = clamp01(p_word_clean + p_word_one);
  const double p_usable = std::pow(p_word_ok, static_cast<double>(words));
  out.p_clean = std::pow(p_word_clean, static_cast<double>(words));
  out.p_correctable = clamp01(p_usable - out.p_clean);
  out.p_disabled = clamp01(1.0 - p_usable);
  return out;
}

FaultInjector::FaultInjector(const FaultPlan& plan, double vth_mean)
    : plan_(plan),
      vth_mean_(vth_mean),
      write_rng_("fault.stt.write", plan.seed) {
  validate(plan_);
}

std::vector<std::uint8_t> FaultInjector::sram_line_map(
    std::string_view array_name, std::uint32_t set_count, std::uint32_t ways,
    std::uint32_t line_bytes, double vdd, double vth_local) {
  const LineOutcomeProbs probs = sram_line_outcome_probs(
      plan_.sram, plan_.ecc, vdd, vth_local, vth_mean_, line_bytes);

  // One independent stream per array: maps do not depend on the order the
  // owner builds them in.
  util::Rng rng(std::string("fault.sram.") + std::string(array_name),
                plan_.seed);
  std::vector<std::uint8_t> map(static_cast<std::size_t>(set_count) * ways,
                                static_cast<std::uint8_t>(LineFault::kNone));
  for (auto& cell : map) {
    const double u = rng.uniform();
    if (u < probs.p_disabled) {
      cell = static_cast<std::uint8_t>(LineFault::kDisabled);
      ++stats_.sram_lines_disabled;
    } else if (u < probs.p_disabled + probs.p_correctable) {
      cell = static_cast<std::uint8_t>(LineFault::kCorrectable);
      ++stats_.sram_lines_correctable;
    }
    ++stats_.sram_lines_mapped;
  }
  return map;
}

std::uint32_t FaultInjector::draw_write_retries(bool* exhausted) {
  *exhausted = false;
  const double p_fail = plan_.stt.write_fail_prob;
  if (!plan_.enabled || p_fail <= 0.0) return 0;

  // Failed attempts before the first success, capped one past the retry
  // budget so the cap value itself is unambiguous exhaustion.
  const std::uint64_t budget = plan_.stt.max_write_retries;
  const std::uint64_t failures =
      write_rng_.geometric(1.0 - p_fail, budget + 1);
  std::uint32_t retries;
  if (failures > budget) {
    *exhausted = true;
    retries = static_cast<std::uint32_t>(budget);
  } else {
    retries = static_cast<std::uint32_t>(failures);
  }
  if (retries > 0 || *exhausted) ++stats_.stt_write_faults;
  stats_.stt_write_retries += retries;
  return retries;
}

}  // namespace respin::fault
