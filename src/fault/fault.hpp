// Deterministic fault-injection models for near-threshold caches.
//
// Respin's central reliability argument (paper §I-II) is that SRAM bit
// cells stop working as Vdd approaches their Vccmin while STT-RAM keeps
// its cells magnetic — so the cache rail cannot follow the core rail down
// unless the arrays are non-volatile. This module makes that argument
// simulable instead of asserted, with two first-order models:
//
//  * SRAM voltage-dependent cell failure. Each bit cell has a Vccmin
//    drawn from a Gaussian whose mean shifts with the local VARIUS Vth
//    (high-Vth cells lose static noise margin first); a cell whose Vccmin
//    exceeds the array rail is stuck. Lines are protected by SECDED ECC
//    per word: one faulty bit per protected word is correctable (at a
//    latency/energy cost per access), two or more disable the line/way —
//    the graceful-degradation path that shrinks effective capacity as the
//    rail drops.
//
//  * STT-RAM stochastic write failure. MTJ switching is thermally
//    activated, so each write attempt fails with a small probability; the
//    controller retries up to a budget (charging the write pulse again
//    each time) and disables the line when the budget is exhausted.
//
// Everything is seed-driven: the per-array cell maps and the per-write
// retry draws come from named util::Rng streams keyed on (plan seed,
// array name), so a run is reproducible from (seed, config) alone and is
// independent of host threading. With `enabled == false` (the default) no
// stream is ever created and the simulator is bit-identical to the
// fault-free golden grid. The determinism contract and the model
// equations are documented in docs/faults.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace respin::fault {

/// Fault class of one cache line (way) after applying the SRAM cell map.
/// Values are the wire format of CacheArray::apply_fault_map().
enum class LineFault : std::uint8_t {
  kNone = 0,         ///< No faulty cell; accesses are clean.
  kCorrectable = 1,  ///< Every protected word has <= 1 faulty bit: SECDED
                     ///< corrects each access at a latency/energy cost.
  kDisabled = 2,     ///< Some word has >= 2 faulty bits: beyond SECDED,
                     ///< the way is disabled (capacity degradation).
};

/// Voltage-dependent SRAM cell-failure model (paper's Vccmin argument).
struct SramFaultParams {
  /// Mean bit-cell Vccmin in volts at the technology's mean Vth. The
  /// default puts the 0.65 V "safe SRAM rail" of the paper at a 6-sigma
  /// margin: cell failures are ~1e-9 there and catastrophic at the 0.4 V
  /// core rail — exactly the cliff that motivates Respin.
  double vccmin_mean = 0.35;
  /// Per-cell Vccmin spread (sigma, volts) from random variation.
  double vccmin_sigma = 0.05;
  /// dVccmin/dVth coupling: a core region whose VARIUS Vth sits `dV`
  /// above the die mean sees its cell Vccmin distribution shifted up by
  /// `vth_coupling * dV` (slow transistors lose noise margin first).
  double vth_coupling = 1.0;
  /// Optional rail override, volts: when > 0 the SRAM fault model is
  /// evaluated at this voltage instead of the array's configured rail.
  /// This isolates the reliability model for "follow Vdd down" sweeps
  /// without re-deriving latency/energy at the lowered rail.
  double vdd_override = 0.0;
};

/// Stochastic STT-RAM write-failure model with a bounded retry budget.
struct SttFaultParams {
  /// Probability one write attempt fails to switch the MTJ.
  double write_fail_prob = 1e-4;
  /// Retries after the first failed attempt before giving up. Exhaustion
  /// disables the line (stores write through to the backside instead).
  std::uint32_t max_write_retries = 3;
  /// Extra cache cycles charged per retry (another write pulse).
  std::uint32_t retry_cycles = 13;
};

/// SECDED ECC correction model shared by both technologies.
struct EccParams {
  /// Data bits per protected word (check bits are derived, see
  /// nvsim::secded_check_bits; faults in check bits count too).
  std::uint32_t word_bits = 64;
  /// Extra cache cycles per corrected access (syndrome decode + fix).
  std::uint32_t correction_cycles = 2;
};

/// Complete, validated description of one fault-injection run. Threaded
/// through SimParams; (seed, plan, config) fully determines every
/// injected fault.
struct FaultPlan {
  bool enabled = false;
  /// Seed of every fault stream (cell maps and write draws). Independent
  /// of the workload/die seed so fault scenarios can be varied against a
  /// fixed architecture instance.
  std::uint64_t seed = 1;
  SramFaultParams sram;
  SttFaultParams stt;
  EccParams ecc;
};

/// Throws std::logic_error (via RESPIN_REQUIRE) when the plan is
/// malformed: probabilities outside [0, 1), non-positive sigma, a zero
/// ECC word, or a negative voltage. Called by ClusterSim before any
/// stream is seeded; exercised by the ASan+UBSan CI job.
void validate(const FaultPlan& plan);

/// P(one SRAM bit cell is stuck) at rail `vdd` for a cell population
/// whose local Vth sits `vth_local - vth_mean` above the die mean.
/// Gaussian tail: Phi((vccmin_eff - vdd) / sigma).
double sram_bit_fail_probability(const SramFaultParams& params, double vdd,
                                 double vth_local, double vth_mean);

/// Analytic per-line outcome probabilities for the SRAM model — the
/// closed form the seeded cell maps sample from, exposed for tests and
/// the voltage-vs-capacity experiment.
struct LineOutcomeProbs {
  double p_clean = 1.0;        ///< No faulty cell in the line.
  double p_correctable = 0.0;  ///< Usable, but some word needs SECDED.
  double p_disabled = 0.0;     ///< Some word exceeds SECDED.
};
LineOutcomeProbs sram_line_outcome_probs(const SramFaultParams& params,
                                         const EccParams& ecc, double vdd,
                                         double vth_local, double vth_mean,
                                         std::uint32_t line_bytes);

/// Everything the injector counts, surfaced through respin::obs as
/// "fault.*" counters and carried in SimResult.
struct FaultStats {
  // Static SRAM cell-map census (filled when maps are built).
  std::uint64_t sram_lines_mapped = 0;       ///< Lines classified.
  std::uint64_t sram_lines_correctable = 0;  ///< Injected, ECC-covered.
  std::uint64_t sram_lines_disabled = 0;     ///< Injected, beyond ECC.
  // Dynamic events.
  std::uint64_t ecc_corrections = 0;     ///< Accesses corrected by SECDED.
  std::uint64_t stt_write_faults = 0;    ///< Writes needing >= 1 retry.
  std::uint64_t stt_write_retries = 0;   ///< Total retry attempts.
  std::uint64_t stt_lines_disabled = 0;  ///< Retry budget exhausted.
};

/// Seeded fault source for one simulation. A plain value type: copying a
/// ClusterSim (the oracle's snapshot/replay machinery) copies the injector
/// mid-stream and both copies replay identically.
class FaultInjector {
 public:
  /// `vth_mean` is the die-mean threshold voltage the Vth coupling is
  /// relative to (tech::TechnologyParams::vth_mean). Validates the plan.
  FaultInjector(const FaultPlan& plan, double vth_mean);

  const FaultPlan& plan() const { return plan_; }

  /// Builds the static cell map for one SRAM array: one LineFault class
  /// per (set, way) in way-major set order, drawn from the stream named
  /// `array_name` so every array gets an independent, reproducible map.
  /// `vth_local` is the worst Vth over the cores the array serves.
  /// Accumulates the map census into stats().
  std::vector<std::uint8_t> sram_line_map(std::string_view array_name,
                                          std::uint32_t set_count,
                                          std::uint32_t ways,
                                          std::uint32_t line_bytes,
                                          double vdd, double vth_local);

  /// Draws the retry count for one STT-RAM write: 0 means the first
  /// attempt succeeded. At most plan().stt.max_write_retries; when even
  /// the last retry fails, `*exhausted` is set and the caller disables
  /// the line. Counts faults/retries into stats().
  std::uint32_t draw_write_retries(bool* exhausted);

  /// Records one SECDED correction performed by the owner.
  void note_correction() { ++stats_.ecc_corrections; }
  /// Records one line disabled after write-retry exhaustion.
  void note_line_disabled() { ++stats_.stt_lines_disabled; }

  const FaultStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  double vth_mean_ = 0.0;
  util::Rng write_rng_;
  FaultStats stats_;
};

}  // namespace respin::fault
