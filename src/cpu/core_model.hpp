// Core execution model: virtual cores (architectural thread contexts) and
// physical cores (execution resources with a clock, power state and a
// round-robin run queue of virtual cores).
//
// The paper's cores are dual-issue out-of-order (Table II); this model
// approximates them with an issue-rate abstraction: compute instructions
// retire at the workload phase's IPC (capped by the issue width), memory
// instructions block on the cache hierarchy, and barrier arrivals block on
// the cluster barrier. That abstraction preserves exactly the quantities
// the paper measures — memory-system pressure, stall time, and energy per
// instruction — without simulating a register-renamed pipeline.
//
// Everything here is a plain value type so a whole cluster snapshot (used
// by the oracle consolidation study) is a default copy.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.hpp"
#include "workload/op_source.hpp"
#include "workload/workload.hpp"

namespace respin::cpu {

/// Timing costs of the virtualization machinery (paper §III.D), expressed
/// in core cycles of the affected core.
struct CoreTimingParams {
  std::uint32_t issue_width = 2;
  /// Committed instructions between instruction fetches (one fetch group).
  std::uint32_t instructions_per_fetch = 8;
  /// Hardware context switch between virtual cores on one physical core:
  /// a register-bank swap, a few cycles.
  std::uint32_t context_switch_cycles = 2;
  /// Hardware context-switch quantum (instructions) when several virtual
  /// cores share a physical core; "much smaller than the typical OS
  /// context-switch interval".
  std::uint64_t hw_quantum_instructions = 2000;
  /// Migrating a virtual core to a different physical core: pipeline drain,
  /// PC + register-file transfer, and state rebuild on the target.
  std::uint32_t migration_cycles = 50;
  /// Stall after waking a power-gated core (voltage stabilization,
  /// 10-30 ns ~= 5-15 cycles at 500 MHz; we charge the midpoint).
  std::uint32_t power_on_stall_cycles = 10;
  /// OS-driven context switch (SH-STT-CC-OS): trap, scheduler, return.
  std::uint32_t os_switch_cycles = 500;
};

/// Why a virtual core is not currently retiring instructions.
enum class WaitState : std::uint8_t {
  kRunnable,      ///< Has work, will execute when scheduled.
  kMemory,        ///< Blocked on an outstanding cache/memory access.
  kBarrier,       ///< Blocked in the cluster barrier.
  kStoreBuffer,   ///< Store issued but the store path is full.
  kFinished,      ///< Workload exhausted.
};

/// One OS-visible virtual core executing one application thread. The op
/// stream is polymorphic (synthetic generator, recorded trace, ...); its
/// copy deep-clones, keeping VirtualCore a plain value type.
struct VirtualCore {
  explicit VirtualCore(workload::OpStream work_in)
      : work(std::move(work_in)) {}

  workload::OpStream work;

  WaitState state = WaitState::kRunnable;
  /// Absolute simulation time (cache cycles) when a kMemory wait resolves.
  std::int64_t mem_ready_cycle = 0;
  /// Whether waking from kMemory retires the blocking load (as opposed to
  /// an ifetch or migration wait, which retire nothing).
  bool mem_commit_pending = false;
  /// Barrier id being waited on (kBarrier state).
  std::uint64_t barrier_id = 0;

  // Current operation being executed.
  workload::Op op;
  bool has_op = false;
  std::uint32_t compute_remaining = 0;  ///< Instructions left in compute op.
  double issue_accumulator = 0.0;       ///< Fractional IPC bank.
  double current_ipc = 1.0;             ///< Phase IPC of the active op.

  std::uint64_t instructions = 0;       ///< Committed instructions.
  std::uint32_t until_fetch = 0;        ///< Instructions until next ifetch.
};

/// One physical core in the cluster.
struct PhysicalCore {
  int multiplier = 5;        ///< Core period in shared-cache cycles.
  bool powered_on = true;
  /// Virtual cores assigned to this physical core (round-robin schedule).
  std::vector<std::uint32_t> vcores;
  std::size_t run_index = 0;            ///< Which assigned vcore runs now.
  std::uint64_t quantum_remaining = 0;  ///< Instructions to next HW switch.
  // The next core-cycle boundary lives in ClusterSim::core_next_tick_ — a
  // contiguous per-cluster array — so the every-tick scan over all cores
  // stays inside one or two cache lines instead of striding these structs.
  std::int64_t stalled_until = 0;       ///< Migration / power-on stall.
  std::int64_t store_drain_free_at = 0; ///< Private store buffer backlog.
  std::int64_t os_next_switch = 0;      ///< OS-mode timeslice expiry.

  // Activity accounting (core cycles).
  std::uint64_t busy_cycles = 0;
  std::uint64_t idle_cycles = 0;

  bool has_runnable() const { return !vcores.empty(); }
};

}  // namespace respin::cpu
