// One-call experiment runner used by the bench harnesses, examples and
// integration tests: builds the configuration, constructs the simulator,
// dispatches oracle configurations to the oracle driver, and returns the
// finished SimResult.
#pragma once

#include <string>
#include <vector>

#include "core/cluster_sim.hpp"
#include "core/config.hpp"
#include "core/oracle.hpp"
#include "obs/obs.hpp"

namespace respin::core {

struct RunOptions {
  CacheSize size = CacheSize::kMedium;
  std::uint32_t cluster_cores = 16;
  double workload_scale = 1.0;
  std::uint64_t seed = 1;
  std::uint32_t oracle_stride = 2;
  /// Event-driven clock in ClusterSim (see SimParams::cycle_skip); off is
  /// the cycle-by-cycle reference path, results are identical.
  bool cycle_skip = true;
  /// Structured trace destination, threaded through to every ClusterSim
  /// (epoch/consolidation events) plus per-run completion records. Null
  /// disables tracing; results are bit-identical either way. The sink
  /// must be thread-safe: suites fan runs out over the exec pool.
  obs::TraceSink* trace = nullptr;
  /// Fault-injection plan, forwarded to every ClusterSim. Each run owns
  /// its injector, so fault runs stay deterministic in (seed, plan,
  /// config) no matter how the suite fans out over threads.
  fault::FaultPlan faults;
  /// Technology overrides (CLI --shared-tech / --private-tech /
  /// --hybrid-ways) applied on top of the named configuration's traits.
  TechOverride tech;
};

/// Runs `benchmark` on configuration `id` and returns the cluster-level
/// result (chip-level figures scale by clusters_per_chip; every
/// paper-figure comparison is a ratio, where the factor cancels).
SimResult run_experiment(ConfigId id, const std::string& benchmark,
                         const RunOptions& options = {});

/// Runs all 13 benchmarks on one configuration, fanned out over the
/// respin::exec thread pool. Results are in benchmark_names() order and
/// bit-identical to running each benchmark serially.
std::vector<SimResult> run_suite(ConfigId id, const RunOptions& options = {});

/// Runs the full (configuration x benchmark) grid in one parallel fan-out
/// — the shape of the paper's design-space sweeps. Returns one row per
/// configuration, in the given order, each row in `benchmarks` order;
/// every cell equals the corresponding run_experiment call.
std::vector<std::vector<SimResult>> run_matrix(
    const std::vector<ConfigId>& configs,
    const std::vector<std::string>& benchmarks,
    const RunOptions& options = {});

/// Geometric-mean ratio of (metric of `results` / metric of `baseline`),
/// matched by benchmark name. `metric` picks seconds or energy.
enum class Metric { kSeconds, kEnergyTotal };
double mean_ratio(const std::vector<SimResult>& results,
                  const std::vector<SimResult>& baseline, Metric metric);

}  // namespace respin::core
