// Canonical metric snapshots: the bridge between simulation results and
// the respin::obs counter registries.
//
// metrics_of() flattens a SimResult (or ChipResult) into a named
// CounterSet covering every statistic the paper's tables and figures
// derive from — timing, energy split, activity counts, shared-L1
// behaviour including full histograms, and the consolidation summary.
// The golden-stats harness pins exactly this set: if a counter here
// changes value, goldens_test fails and names it.
//
// The counter taxonomy is documented in docs/observability.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/chip.hpp"
#include "core/cluster_sim.hpp"
#include "core/experiment.hpp"
#include "obs/counters.hpp"
#include "obs/golden.hpp"

namespace respin::core {

/// Flattens one finished cluster run into named counters.
obs::CounterSet metrics_of(const SimResult& result);

/// Flattens a chip-level aggregate (per-cluster rows are not included;
/// pin them individually if needed).
obs::CounterSet metrics_of(const ChipResult& result);

/// Row form for golden tables: run id "CONFIG/benchmark".
obs::MetricsRow metrics_row(const SimResult& result);

/// Writes a metrics CSV (run,counter,value) for a result set — the
/// respin_sim --metrics and bench RESPIN_METRICS export format.
void write_metrics_csv(std::ostream& os,
                       const std::vector<SimResult>& results);

// ---- Golden-stats grid ---------------------------------------------------
// The pinned grid is every Table IV configuration crossed with four
// benchmarks of distinct phase structure, at a reduced workload scale so
// the regression check stays fast. scripts/update_goldens.sh regenerates
// tests/goldens/metrics.csv via the respin_goldens tool.

/// Benchmarks pinned by the goldens: ocean, radix, lu, fft.
const std::vector<std::string>& golden_benchmarks();

/// Run options the goldens are generated and checked with.
RunOptions golden_options();

/// Runs the full golden grid (all configs x golden_benchmarks(), fanned
/// out over the exec pool) and returns one row per run in grid order.
std::vector<obs::MetricsRow> golden_snapshot();

}  // namespace respin::core
