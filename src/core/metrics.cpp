#include "core/metrics.hpp"

#include <ostream>

#include "util/stats.hpp"

namespace respin::core {

namespace {

void add_histogram(obs::CounterSet& set, const std::string& prefix,
                   const util::Histogram& histogram) {
  set.add(prefix + ".total", histogram.total());
  for (std::size_t i = 0; i < histogram.bucket_count(); ++i) {
    set.add(prefix + ".bucket" + std::to_string(i), histogram.bucket(i));
  }
}

void add_energy(obs::CounterSet& set, const power::EnergyBreakdown& energy) {
  set.add("energy.core_dynamic_pj", energy.core_dynamic);
  set.add("energy.core_leakage_pj", energy.core_leakage);
  set.add("energy.cache_dynamic_pj", energy.cache_dynamic);
  set.add("energy.cache_leakage_pj", energy.cache_leakage);
  set.add("energy.dram_pj", energy.dram);
  set.add("energy.network_pj", energy.network);
  set.add("energy.total_pj", energy.total());
}

void add_counts(obs::CounterSet& set, const power::ActivityCounts& counts) {
  set.add("counts.instructions", counts.instructions);
  set.add("counts.core_busy_cycles", counts.core_busy_cycles);
  set.add("counts.core_idle_cycles", counts.core_idle_cycles);
  set.add("counts.l1_reads", counts.l1_reads);
  set.add("counts.l1_writes", counts.l1_writes);
  set.add("counts.l2_reads", counts.l2_reads);
  set.add("counts.l2_writes", counts.l2_writes);
  set.add("counts.l3_reads", counts.l3_reads);
  set.add("counts.l3_writes", counts.l3_writes);
  set.add("counts.dram_accesses", counts.dram_accesses);
  set.add("counts.coherence_messages", counts.coherence_messages);
  set.add("counts.level_shifter_crossings", counts.level_shifter_crossings);
  set.add("counts.core_on_ps", counts.core_on_ps);
}

}  // namespace

obs::CounterSet metrics_of(const SimResult& result) {
  obs::CounterSet set;
  set.add("sim.cycles", result.cycles);
  set.add("sim.seconds", result.seconds);
  set.add("sim.instructions", result.instructions);
  set.add("sim.hit_cycle_limit", result.hit_cycle_limit ? 1.0 : 0.0);
  add_counts(set, result.counts);
  add_energy(set, result.energy);
  set.add("derived.epi_pj", result.epi_pj());
  set.add("derived.watts", result.watts());
  set.add("dl1.read_hits", result.dl1_read_hits);
  set.add("dl1.read_misses", result.dl1_read_misses);
  set.add("dl1.half_misses", result.dl1_half_misses);
  set.add("dl1.store_rejections", result.dl1_store_rejections);
  set.add("dl1.cycles", result.dl1_cycles);
  add_histogram(set, "dl1.read_hit_latency", result.read_hit_latency);
  add_histogram(set, "dl1.arrivals", result.dl1_arrivals);
  set.add("consolidation.epochs", result.trace.size());
  set.add("consolidation.avg_active_cores", result.avg_active_cores);
  set.add("consolidation.min_active_cores",
          static_cast<std::uint64_t>(result.min_active_cores));
  set.add("consolidation.max_active_cores",
          static_cast<std::uint64_t>(result.max_active_cores));
  // Hybrid-technology counters appear only for a partitioned L1D: pure
  // configurations keep the pre-hybrid metric set byte-identical.
  if (result.hybrid_sram_ways > 0) {
    set.add("tech.l1_sram_ways",
            static_cast<std::uint64_t>(result.hybrid_sram_ways));
    set.add("tech.l1_nvm_ways",
            static_cast<std::uint64_t>(result.hybrid_nvm_ways));
    set.add("tech.l1_sram_reads", result.counts.l1_sram_reads);
    set.add("tech.l1_sram_writes", result.counts.l1_sram_writes);
  }
  // Fault counters appear only when injection ran: the fault-free metric
  // set (and hence the golden grid) is unchanged by the subsystem.
  if (result.faults_enabled) {
    set.add("fault.sram_lines_mapped", result.faults.sram_lines_mapped);
    set.add("fault.sram_lines_correctable",
            result.faults.sram_lines_correctable);
    set.add("fault.sram_lines_disabled", result.faults.sram_lines_disabled);
    set.add("fault.ecc_corrections", result.faults.ecc_corrections);
    set.add("fault.stt_write_faults", result.faults.stt_write_faults);
    set.add("fault.stt_write_retries", result.faults.stt_write_retries);
    set.add("fault.stt_lines_disabled", result.faults.stt_lines_disabled);
    set.add("fault.l1_disabled_ways", result.fault_l1_disabled_ways);
    set.add("fault.l1_correctable_ways", result.fault_l1_correctable_ways);
    set.add("fault.l1_usable_bytes", result.fault_l1_usable_bytes);
    set.add("fault.l1_total_bytes", result.fault_l1_total_bytes);
  }
  return set;
}

obs::CounterSet metrics_of(const ChipResult& result) {
  obs::CounterSet set;
  set.add("chip.clusters", result.clusters.size());
  set.add("chip.seconds", result.seconds);
  set.add("chip.instructions", result.instructions);
  add_energy(set, result.energy);
  set.add("derived.watts", result.watts());
  return set;
}

obs::MetricsRow metrics_row(const SimResult& result) {
  return obs::MetricsRow{result.config_name + "/" + result.benchmark,
                         metrics_of(result)};
}

void write_metrics_csv(std::ostream& os,
                       const std::vector<SimResult>& results) {
  std::vector<obs::MetricsRow> rows;
  rows.reserve(results.size());
  for (const SimResult& r : results) rows.push_back(metrics_row(r));
  obs::write_metrics_csv(os, rows);
}

const std::vector<std::string>& golden_benchmarks() {
  static const std::vector<std::string> benchmarks = {"ocean", "radix", "lu",
                                                      "fft"};
  return benchmarks;
}

RunOptions golden_options() {
  RunOptions options;
  // Short runs: the goldens pin behaviour, not paper-scale statistics.
  options.workload_scale = 0.05;
  options.seed = 1;
  return options;
}

std::vector<obs::MetricsRow> golden_snapshot() {
  const std::vector<ConfigId> configs = all_config_ids();
  const auto matrix = run_matrix(configs, golden_benchmarks(),
                                 golden_options());
  std::vector<obs::MetricsRow> rows;
  rows.reserve(configs.size() * golden_benchmarks().size());
  for (const auto& row : matrix) {
    for (const SimResult& r : row) rows.push_back(metrics_row(r));
  }
  return rows;
}

}  // namespace respin::core
