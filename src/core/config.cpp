#include "core/config.hpp"

#include <algorithm>
#include <cmath>

#include "nvsim/tech_backend.hpp"
#include "util/require.hpp"
#include "varius/variation.hpp"

namespace respin::core {

const char* to_string(ConfigId id) {
  switch (id) {
    case ConfigId::kPrSramNt: return "PR-SRAM-NT";
    case ConfigId::kHpSramCmp: return "HP-SRAM-CMP";
    case ConfigId::kShSramNom: return "SH-SRAM-Nom";
    case ConfigId::kShStt: return "SH-STT";
    case ConfigId::kShSttCc: return "SH-STT-CC";
    case ConfigId::kShSttCcOracle: return "SH-STT-CC-Oracle";
    case ConfigId::kPrSttCc: return "PR-STT-CC";
    case ConfigId::kShSttCcOs: return "SH-STT-CC-OS";
    case ConfigId::kShPcm: return "SH-PCM";
    case ConfigId::kShEdram: return "SH-EDRAM";
    case ConfigId::kShHybrid: return "SH-HYBRID-4+12";
  }
  return "?";
}

const char* to_string(CacheSize size) {
  switch (size) {
    case CacheSize::kSmall: return "small";
    case CacheSize::kMedium: return "medium";
    case CacheSize::kLarge: return "large";
  }
  return "?";
}

std::vector<ConfigId> all_config_ids() {
  return {ConfigId::kPrSramNt,   ConfigId::kHpSramCmp,
          ConfigId::kShSramNom,  ConfigId::kShStt,
          ConfigId::kShSttCc,    ConfigId::kShSttCcOracle,
          ConfigId::kPrSttCc,    ConfigId::kShSttCcOs,
          ConfigId::kShPcm,      ConfigId::kShEdram,
          ConfigId::kShHybrid};
}

ConfigId parse_config_id(const std::string& name) {
  for (ConfigId id : all_config_ids()) {
    if (name == to_string(id)) return id;
  }
  RESPIN_REQUIRE(false, "unknown configuration: " + name);
  throw std::logic_error("unreachable");
}

CacheSize parse_cache_size(const std::string& name) {
  for (CacheSize size :
       {CacheSize::kSmall, CacheSize::kMedium, CacheSize::kLarge}) {
    if (name == to_string(size)) return size;
  }
  RESPIN_REQUIRE(false, "unknown cache size class: " + name);
  throw std::logic_error("unreachable");
}

std::uint64_t chip_l2_bytes(CacheSize size) {
  switch (size) {
    case CacheSize::kSmall: return 8ULL << 20;
    case CacheSize::kMedium: return 16ULL << 20;
    case CacheSize::kLarge: return 32ULL << 20;
  }
  return 0;
}

std::uint64_t chip_l3_bytes(CacheSize size) {
  switch (size) {
    case CacheSize::kSmall: return 24ULL << 20;
    case CacheSize::kMedium: return 48ULL << 20;
    case CacheSize::kLarge: return 96ULL << 20;
  }
  return 0;
}

namespace {

constexpr std::uint32_t kChipCores = 64;

struct ConfigTraits {
  bool shared_l1;
  nvsim::MemTech tech;
  double cache_vdd;
  bool nominal_cores;
  GovernorKind governor;
};

ConfigTraits traits_of(ConfigId id, const tech::TechnologyParams& tp) {
  switch (id) {
    case ConfigId::kPrSramNt:
      return {false, nvsim::MemTech::kSram, tp.sram_safe_vdd, false,
              GovernorKind::kNone};
    case ConfigId::kHpSramCmp:
      return {false, nvsim::MemTech::kSram, tp.nominal_vdd, true,
              GovernorKind::kNone};
    case ConfigId::kShSramNom:
      return {true, nvsim::MemTech::kSram, tp.nominal_vdd, false,
              GovernorKind::kNone};
    case ConfigId::kShStt:
      return {true, nvsim::MemTech::kSttRam, tp.nominal_vdd, false,
              GovernorKind::kNone};
    case ConfigId::kShSttCc:
      return {true, nvsim::MemTech::kSttRam, tp.nominal_vdd, false,
              GovernorKind::kGreedy};
    case ConfigId::kShSttCcOracle:
      return {true, nvsim::MemTech::kSttRam, tp.nominal_vdd, false,
              GovernorKind::kOracle};
    case ConfigId::kPrSttCc:
      return {false, nvsim::MemTech::kSttRam, tp.nominal_vdd, false,
              GovernorKind::kGreedy};
    case ConfigId::kShSttCcOs:
      return {true, nvsim::MemTech::kSttRam, tp.nominal_vdd, false,
              GovernorKind::kOs};
    case ConfigId::kShPcm:
      return {true, nvsim::MemTech::kPcm, tp.nominal_vdd, false,
              GovernorKind::kNone};
    case ConfigId::kShEdram:
      return {true, nvsim::MemTech::kEdram, tp.nominal_vdd, false,
              GovernorKind::kNone};
    case ConfigId::kShHybrid:
      // Hybrid base technology is the NVM way class; the SRAM class and
      // the default 4+12 partition are applied in make_cluster_config.
      return {true, nvsim::MemTech::kSttRam, tp.nominal_vdd, false,
              GovernorKind::kNone};
  }
  RESPIN_REQUIRE(false, "unknown config id");
  throw std::logic_error("unreachable");
}

std::uint32_t cycles_for_ps(double ps, double cache_period_ps) {
  return static_cast<std::uint32_t>(std::ceil(ps / cache_period_ps));
}

}  // namespace

ClusterConfig make_cluster_config(ConfigId id, CacheSize size,
                                  std::uint32_t cluster_cores,
                                  std::uint64_t seed,
                                  const CoreCalibration& cal,
                                  std::uint32_t first_core,
                                  const TechOverride& tech_override) {
  RESPIN_REQUIRE(cluster_cores >= 2 && cluster_cores <= 32 &&
                     kChipCores % cluster_cores == 0,
                 "cluster size must divide the 64-core chip");
  RESPIN_REQUIRE(first_core + cluster_cores <= kChipCores,
                 "cluster footprint exceeds the 64-core die");

  const tech::TechnologyParams tp = tech::TechnologyParams::ipdps2017();
  const ConfigTraits tr = traits_of(id, tp);

  // --- Technology selection: named traits, then CLI/API overrides.
  nvsim::MemTech l1_tech = tr.tech;
  if (tr.shared_l1 && tech_override.shared_tech) {
    l1_tech = *tech_override.shared_tech;
  }
  if (!tr.shared_l1 && tech_override.private_tech) {
    l1_tech = *tech_override.private_tech;
  }

  ClusterConfig cfg;
  cfg.name = to_string(id);
  cfg.id = id;
  cfg.size_class = size;
  cfg.cluster_cores = cluster_cores;
  cfg.clusters_per_chip = kChipCores / cluster_cores;
  cfg.shared_l1 = tr.shared_l1;
  cfg.cache_vdd = tr.cache_vdd;

  // --- Hybrid L1D way partition. Degenerate requests (all-SRAM or
  // all-NVM) collapse to the equivalent pure configuration here, so the
  // simulator's pure path runs and the differential tests can pin
  // bit-identity against the genuinely pure configs.
  std::uint32_t sram_ways = tech_override.hybrid_sram_ways;
  std::uint32_t nvm_ways = tech_override.hybrid_nvm_ways;
  if (sram_ways == 0 && nvm_ways == 0 && id == ConfigId::kShHybrid) {
    sram_ways = 4;
    nvm_ways = 12;
  }
  if (sram_ways > 0 || nvm_ways > 0) {
    RESPIN_REQUIRE(tr.shared_l1,
                   "hybrid way partition requires a shared L1 configuration");
    if (nvm_ways == 0) {
      l1_tech = nvsim::MemTech::kSram;  // All ways SRAM: a pure SRAM L1.
      cfg.l1d_ways = sram_ways;
    } else if (sram_ways == 0) {
      cfg.l1d_ways = nvm_ways;          // All ways NVM: pure `l1_tech`.
    } else {
      RESPIN_REQUIRE(l1_tech != nvsim::MemTech::kSram,
                     "hybrid NVM way class requires a non-SRAM technology");
      cfg.l1d_ways = sram_ways + nvm_ways;
      cfg.hybrid_sram_ways = sram_ways;
      cfg.hybrid_nvm_ways = nvm_ways;
    }
  }
  cfg.cache_tech = l1_tech;
  cfg.core_vdd = tr.nominal_cores ? tp.nominal_vdd : tp.nt_core_vdd;
  cfg.governor = tr.governor;
  cfg.seed = seed;

  // --- Clocking: per-core multipliers from the VARIUS map. Core critical
  // paths carry a speed margin over the 0.4 ns array reference path.
  cfg.clocking = tech::ClusterClocking{};
  if (tr.nominal_cores) {
    cfg.clocking.min_core_multiplier = 1;
    cfg.clocking.max_core_multiplier = 2;
  }
  tech::TechnologyParams core_tech = tp;
  core_tech.nominal_frequency_hz *= cal.core_path_speedup;
  varius::VariationMap map(core_tech, varius::VariationParams{.seed = seed},
                           /*core_grid=*/8);
  cfg.multipliers = varius::cluster_multipliers(
      map, cfg.clocking, cfg.core_vdd, first_core, cluster_cores);
  cfg.core_vth = varius::cluster_vths(map, first_core, cluster_cores);
  cfg.vth_mean = tp.vth_mean;

  const auto cache_period = static_cast<double>(cfg.clocking.cache_period);

  // --- L1 organization and array figures.
  cfg.l1_shared_capacity = std::uint64_t{16 * 1024} * cluster_cores;
  const nvsim::ArrayConfig l1_shared_cfg{
      .tech = l1_tech,
      .capacity_bytes = cfg.l1_shared_capacity,
      .block_bytes = cfg.l1_line_bytes,
      .associativity = cfg.l1d_ways,
      .vdd = tr.cache_vdd,
      .bank_count = 1};
  const nvsim::ArrayConfig l1_private_cfg{
      .tech = l1_tech,
      .capacity_bytes = 16 * 1024,
      .block_bytes = cfg.l1_line_bytes,
      .associativity = cfg.l1d_ways,
      .vdd = tr.cache_vdd,
      .bank_count = 1};
  const nvsim::ArrayFigures l1_fig =
      nvsim::evaluate(tr.shared_l1 ? l1_shared_cfg : l1_private_cfg);

  // Hybrid sub-array figures: the L1D splits into an SRAM slice and an
  // NVM slice, each sized by its share of the ways. `l1_fig` above stays
  // the full-capacity NVM evaluation — it prices the L1I and the NVM-way
  // accesses; the SRAM slice prices SRAM-way hits/fills and its leakage.
  const bool hybrid_l1 = cfg.hybrid_sram_ways > 0;
  nvsim::ArrayFigures l1_sram_fig{};
  nvsim::ArrayFigures l1_nvm_slice_fig{};
  if (hybrid_l1) {
    nvsim::ArrayConfig sram_slice = l1_shared_cfg;
    sram_slice.tech = nvsim::MemTech::kSram;
    sram_slice.capacity_bytes =
        cfg.l1_shared_capacity * cfg.hybrid_sram_ways / cfg.l1d_ways;
    sram_slice.associativity = cfg.hybrid_sram_ways;
    l1_sram_fig = nvsim::evaluate(sram_slice);
    nvsim::ArrayConfig nvm_slice = l1_shared_cfg;
    nvm_slice.capacity_bytes =
        cfg.l1_shared_capacity * cfg.hybrid_nvm_ways / cfg.l1d_ways;
    nvm_slice.associativity = cfg.hybrid_nvm_ways;
    l1_nvm_slice_fig = nvsim::evaluate(nvm_slice);
  }

  // --- Shared controller occupancies. Pipelinable reads (the paper
  // pipelines the STT-RAM read into one 0.4 ns cache cycle, §II) take one
  // cycle; other technologies derive occupancy from the array's read
  // latency (SRAM at 533.6 ps takes two). A hybrid port is provisioned
  // for its slower way class.
  const auto& registry = nvsim::TechnologyRegistry::instance();
  const auto read_occupancy_of = [&](nvsim::MemTech t,
                                     const nvsim::ArrayFigures& fig) {
    return registry.backend(t).traits().pipelined_reads
               ? 1u
               : cycles_for_ps(static_cast<double>(fig.read_latency),
                               cache_period);
  };
  cfg.controller.core_count = cluster_cores;
  cfg.controller.request_delay_cycles = 2;
  cfg.controller.read_occupancy = read_occupancy_of(l1_tech, l1_fig);
  if (hybrid_l1) {
    cfg.controller.read_occupancy =
        std::max(cfg.controller.read_occupancy,
                 read_occupancy_of(nvsim::MemTech::kSram, l1_sram_fig));
  }
  // Writes are pipelined across subarrays: the 5.2 ns STT-RAM write pulse
  // is a *latency* (invisible to posted stores), not a throughput bound;
  // the write port accepts one write per reference cycle, like the read
  // port (paper Table I: 1 read + 1 write port at the 2.5 GHz clock).
  cfg.controller.write_occupancy = 1;
  cfg.controller.store_queue_depth = 16;

  // --- Private hierarchy geometry.
  cfg.private_l1.core_count = cluster_cores;
  cfg.private_l1.line_bytes = cfg.l1_line_bytes;
  cfg.private_l1.l1i_ways = cfg.l1i_ways;
  cfg.private_l1.l1d_ways = cfg.l1d_ways;
  {
    // Store-port occupancy in core cycles at the median multiplier.
    const int median_mult =
        (cfg.clocking.min_core_multiplier + cfg.clocking.max_core_multiplier +
         1) /
        2;
    const double core_period = cache_period * median_mult;
    cfg.private_store_cycles = static_cast<std::uint32_t>(std::ceil(
        static_cast<double>(l1_fig.write_latency) / core_period));
    if (cfg.private_store_cycles == 0) cfg.private_store_cycles = 1;
  }

  // --- Backside (L2 + L3 slices).
  const std::uint32_t l2_banks = 8;
  const std::uint32_t l3_banks = 8;
  cfg.backside.l2_capacity_bytes = chip_l2_bytes(size) / cfg.clusters_per_chip;
  cfg.backside.l3_capacity_bytes = chip_l3_bytes(size) / cfg.clusters_per_chip;
  const nvsim::ArrayConfig l2_cfg{.tech = l1_tech,
                                  .capacity_bytes =
                                      cfg.backside.l2_capacity_bytes,
                                  .block_bytes = cfg.backside.l2_line_bytes,
                                  .associativity = cfg.backside.l2_ways,
                                  .vdd = tr.cache_vdd,
                                  .bank_count = l2_banks};
  const nvsim::ArrayConfig l3_cfg{.tech = l1_tech,
                                  .capacity_bytes =
                                      cfg.backside.l3_capacity_bytes,
                                  .block_bytes = cfg.backside.l3_line_bytes,
                                  .associativity = cfg.backside.l3_ways,
                                  .vdd = tr.cache_vdd,
                                  .bank_count = l3_banks};
  const nvsim::ArrayFigures l2_fig = nvsim::evaluate(l2_cfg);
  const nvsim::ArrayFigures l3_fig = nvsim::evaluate(l3_cfg);
  cfg.backside.l2_hit_cycles =
      cycles_for_ps(static_cast<double>(l2_fig.read_latency), cache_period) +
      3;
  cfg.backside.l3_hit_cycles =
      cycles_for_ps(static_cast<double>(l3_fig.read_latency), cache_period) +
      8;
  cfg.backside.memory_cycles = 250;

  // --- Voltage-domain crossings.
  cfg.l1_crosses_domains = cfg.core_vdd < tr.cache_vdd - 1e-9;

  // --- Barrier cost model (analytic; see DESIGN.md §5).
  if (tr.shared_l1) {
    cfg.barrier_arrival_cycles = 2;
    cfg.barrier_release_cycles = 2;
    cfg.barrier_post_release_cycles = 0;
    cfg.barrier_arrival_messages = 0;
  } else {
    cfg.barrier_arrival_cycles = cfg.backside.l2_hit_cycles +
                                 cfg.private_l1.invalidation_cycles;
    cfg.barrier_release_cycles = cfg.backside.l2_hit_cycles;
    cfg.barrier_post_release_cycles = cfg.backside.l2_hit_cycles;
    cfg.barrier_arrival_messages = 3;
  }

  // --- Governor.
  cfg.governor_params = GovernorParams{};
  cfg.governor_params.min_active_cores = std::max(1u, cluster_cores / 4);
  // OS-driven consolidation (SH-STT-CC-OS). The paper uses 1 ms epochs and
  // timeslices against seconds-long SESC runs; our workloads are scaled
  // ~1000x shorter, so the OS granularity is scaled to keep the ratios:
  // epochs ~12x coarser than the hardware governor's 160K-instruction
  // epochs, timeslices spanning many barrier intervals.
  cfg.os_epoch_cycles = 600'000;   // ~240 us.
  cfg.os_quantum_cycles = 300'000; // ~120 us timeslice.

  // --- Power model.
  power::PowerModel& pm = cfg.power;
  pm.core_instruction_pj =
      cal.epi_nominal_pj * tech::dynamic_energy_scale(tp, cfg.core_vdd);
  pm.core_leakage_w =
      cal.leakage_nominal_w * tech::leakage_power_scale(tp, cfg.core_vdd);
  pm.core_count = cluster_cores;
  pm.l1_read_pj = l1_fig.read_energy;
  pm.l1_write_pj = l1_fig.write_energy;
  // Two L1 arrays (I + D) per cluster: shared pair or 2x per-core banks of
  // the same total capacity — leakage depends on capacity only.
  pm.l1_leakage_w = 2.0 * l1_fig.leakage_power;
  if (hybrid_l1) {
    // SRAM-way accesses are re-priced by the energy model (the counters
    // record how many L1D accesses landed in the SRAM class); leakage is
    // the pure-NVM L1I plus the two L1D slices.
    pm.l1_sram_read_pj = l1_sram_fig.read_energy;
    pm.l1_sram_write_pj = l1_sram_fig.write_energy;
    pm.l1_leakage_w = l1_fig.leakage_power + l1_sram_fig.leakage_power +
                      l1_nvm_slice_fig.leakage_power;
  }
  pm.l2_read_pj = l2_fig.read_energy;
  pm.l2_write_pj = l2_fig.write_energy;
  pm.l2_leakage_w = l2_fig.leakage_power;
  pm.l3_read_pj = l3_fig.read_energy;
  pm.l3_write_pj = l3_fig.write_energy;
  pm.l3_leakage_w = l3_fig.leakage_power;
  pm.dram_access_pj = cal.dram_access_pj;
  pm.coherence_message_pj = 10.0;
  pm.level_shifter_pj = 0.08;
  pm.uncore_w = cal.uncore_w;

  return cfg;
}

}  // namespace respin::core
