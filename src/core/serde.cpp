#include "core/serde.hpp"

#include <stdexcept>

#include "util/require.hpp"

namespace respin::core {

namespace obsj = obs::json;

namespace {

// ---- field helpers -------------------------------------------------------

const obsj::Value& require_field(const obsj::Value& object, const char* key) {
  const obsj::Value* v = object.find(key);
  if (v == nullptr) {
    throw obsj::Error(std::string("missing field '") + key + "'", 0);
  }
  return *v;
}

double f64_field(const obsj::Value& object, const char* key) {
  return require_field(object, key).as_double();
}

std::uint64_t u64_field(const obsj::Value& object, const char* key) {
  return require_field(object, key).as_u64();
}

std::int64_t i64_field(const obsj::Value& object, const char* key) {
  return require_field(object, key).as_i64();
}

std::uint32_t u32_field(const obsj::Value& object, const char* key) {
  const std::uint64_t v = u64_field(object, key);
  if (v > 0xFFFFFFFFull) {
    throw obsj::Error(std::string("field '") + key + "' exceeds uint32", 0);
  }
  return static_cast<std::uint32_t>(v);
}

// ---- histograms ----------------------------------------------------------

obsj::Value histogram_to_json(const util::Histogram& h) {
  obsj::Array buckets;
  buckets.reserve(h.bucket_count());
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    buckets.push_back(obsj::Value::number(h.bucket(i)));
  }
  return obsj::Value::array(std::move(buckets));
}

util::Histogram histogram_from_json(const obsj::Value& value,
                                    std::size_t expected_buckets) {
  const obsj::Array& buckets = value.as_array();
  if (buckets.size() != expected_buckets) {
    throw obsj::Error("histogram bucket count mismatch", 0);
  }
  util::Histogram h(expected_buckets);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t weight = buckets[i].as_u64();
    // add() maps index -> bucket exactly for every i < bucket_count, so
    // replaying (index, weight) reconstructs buckets and total verbatim.
    if (weight > 0) h.add(i, weight);
  }
  return h;
}

// ---- fault plan / tech override ------------------------------------------

obsj::Value fault_plan_to_json(const fault::FaultPlan& plan) {
  obsj::Value v = obsj::Value::object();
  v.set("seed", obsj::Value::number(plan.seed));
  obsj::Value sram = obsj::Value::object();
  sram.set("vccmin_mean", obsj::Value::number(plan.sram.vccmin_mean));
  sram.set("vccmin_sigma", obsj::Value::number(plan.sram.vccmin_sigma));
  sram.set("vth_coupling", obsj::Value::number(plan.sram.vth_coupling));
  sram.set("vdd_override", obsj::Value::number(plan.sram.vdd_override));
  v.set("sram", std::move(sram));
  obsj::Value stt = obsj::Value::object();
  stt.set("write_fail_prob", obsj::Value::number(plan.stt.write_fail_prob));
  stt.set("max_write_retries", obsj::Value::number(plan.stt.max_write_retries));
  stt.set("retry_cycles", obsj::Value::number(plan.stt.retry_cycles));
  v.set("stt", std::move(stt));
  obsj::Value ecc = obsj::Value::object();
  ecc.set("word_bits", obsj::Value::number(plan.ecc.word_bits));
  ecc.set("correction_cycles", obsj::Value::number(plan.ecc.correction_cycles));
  v.set("ecc", std::move(ecc));
  return v;
}

fault::FaultPlan fault_plan_from_json(const obsj::Value& value) {
  fault::FaultPlan plan;
  plan.enabled = true;
  if (const obsj::Value* seed = value.find("seed")) plan.seed = seed->as_u64();
  if (const obsj::Value* sram = value.find("sram")) {
    if (const auto* f = sram->find("vccmin_mean"))
      plan.sram.vccmin_mean = f->as_double();
    if (const auto* f = sram->find("vccmin_sigma"))
      plan.sram.vccmin_sigma = f->as_double();
    if (const auto* f = sram->find("vth_coupling"))
      plan.sram.vth_coupling = f->as_double();
    if (const auto* f = sram->find("vdd_override"))
      plan.sram.vdd_override = f->as_double();
  }
  if (const obsj::Value* stt = value.find("stt")) {
    if (const auto* f = stt->find("write_fail_prob"))
      plan.stt.write_fail_prob = f->as_double();
    if (const auto* f = stt->find("max_write_retries"))
      plan.stt.max_write_retries = static_cast<std::uint32_t>(f->as_u64());
    if (const auto* f = stt->find("retry_cycles"))
      plan.stt.retry_cycles = static_cast<std::uint32_t>(f->as_u64());
  }
  if (const obsj::Value* ecc = value.find("ecc")) {
    if (const auto* f = ecc->find("word_bits"))
      plan.ecc.word_bits = static_cast<std::uint32_t>(f->as_u64());
    if (const auto* f = ecc->find("correction_cycles"))
      plan.ecc.correction_cycles = static_cast<std::uint32_t>(f->as_u64());
  }
  return plan;
}

bool tech_override_set(const TechOverride& tech) {
  return tech.shared_tech.has_value() || tech.private_tech.has_value() ||
         tech.hybrid_sram_ways != 0 || tech.hybrid_nvm_ways != 0;
}

obsj::Value tech_override_to_json(const TechOverride& tech) {
  obsj::Value v = obsj::Value::object();
  if (tech.shared_tech) {
    v.set("shared_tech", obsj::Value::str(nvsim::to_string(*tech.shared_tech)));
  }
  if (tech.private_tech) {
    v.set("private_tech",
          obsj::Value::str(nvsim::to_string(*tech.private_tech)));
  }
  if (tech.hybrid_sram_ways != 0 || tech.hybrid_nvm_ways != 0) {
    v.set("hybrid_sram_ways", obsj::Value::number(tech.hybrid_sram_ways));
    v.set("hybrid_nvm_ways", obsj::Value::number(tech.hybrid_nvm_ways));
  }
  return v;
}

TechOverride tech_override_from_json(const obsj::Value& value) {
  TechOverride tech;
  if (const obsj::Value* t = value.find("shared_tech")) {
    tech.shared_tech = nvsim::parse_mem_tech(t->as_string());
  }
  if (const obsj::Value* t = value.find("private_tech")) {
    tech.private_tech = nvsim::parse_mem_tech(t->as_string());
  }
  if (const obsj::Value* t = value.find("hybrid_sram_ways")) {
    tech.hybrid_sram_ways = static_cast<std::uint32_t>(t->as_u64());
  }
  if (const obsj::Value* t = value.find("hybrid_nvm_ways")) {
    tech.hybrid_nvm_ways = static_cast<std::uint32_t>(t->as_u64());
  }
  return tech;
}

// ---- activity counts / energy --------------------------------------------

obsj::Value counts_to_json(const power::ActivityCounts& c) {
  obsj::Value v = obsj::Value::object();
  v.set("instructions", obsj::Value::number(c.instructions));
  v.set("core_busy_cycles", obsj::Value::number(c.core_busy_cycles));
  v.set("core_idle_cycles", obsj::Value::number(c.core_idle_cycles));
  v.set("l1_reads", obsj::Value::number(c.l1_reads));
  v.set("l1_writes", obsj::Value::number(c.l1_writes));
  v.set("l1_sram_reads", obsj::Value::number(c.l1_sram_reads));
  v.set("l1_sram_writes", obsj::Value::number(c.l1_sram_writes));
  v.set("l2_reads", obsj::Value::number(c.l2_reads));
  v.set("l2_writes", obsj::Value::number(c.l2_writes));
  v.set("l3_reads", obsj::Value::number(c.l3_reads));
  v.set("l3_writes", obsj::Value::number(c.l3_writes));
  v.set("dram_accesses", obsj::Value::number(c.dram_accesses));
  v.set("coherence_messages", obsj::Value::number(c.coherence_messages));
  v.set("level_shifter_crossings",
        obsj::Value::number(c.level_shifter_crossings));
  v.set("core_on_ps", obsj::Value::number(c.core_on_ps));
  return v;
}

power::ActivityCounts counts_from_json(const obsj::Value& v) {
  power::ActivityCounts c;
  c.instructions = u64_field(v, "instructions");
  c.core_busy_cycles = u64_field(v, "core_busy_cycles");
  c.core_idle_cycles = u64_field(v, "core_idle_cycles");
  c.l1_reads = u64_field(v, "l1_reads");
  c.l1_writes = u64_field(v, "l1_writes");
  c.l1_sram_reads = u64_field(v, "l1_sram_reads");
  c.l1_sram_writes = u64_field(v, "l1_sram_writes");
  c.l2_reads = u64_field(v, "l2_reads");
  c.l2_writes = u64_field(v, "l2_writes");
  c.l3_reads = u64_field(v, "l3_reads");
  c.l3_writes = u64_field(v, "l3_writes");
  c.dram_accesses = u64_field(v, "dram_accesses");
  c.coherence_messages = u64_field(v, "coherence_messages");
  c.level_shifter_crossings = u64_field(v, "level_shifter_crossings");
  c.core_on_ps = f64_field(v, "core_on_ps");
  return c;
}

obsj::Value energy_to_json(const power::EnergyBreakdown& e) {
  obsj::Value v = obsj::Value::object();
  v.set("core_dynamic", obsj::Value::number(e.core_dynamic));
  v.set("core_leakage", obsj::Value::number(e.core_leakage));
  v.set("cache_dynamic", obsj::Value::number(e.cache_dynamic));
  v.set("cache_leakage", obsj::Value::number(e.cache_leakage));
  v.set("dram", obsj::Value::number(e.dram));
  v.set("network", obsj::Value::number(e.network));
  return v;
}

power::EnergyBreakdown energy_from_json(const obsj::Value& v) {
  power::EnergyBreakdown e;
  e.core_dynamic = f64_field(v, "core_dynamic");
  e.core_leakage = f64_field(v, "core_leakage");
  e.cache_dynamic = f64_field(v, "cache_dynamic");
  e.cache_leakage = f64_field(v, "cache_leakage");
  e.dram = f64_field(v, "dram");
  e.network = f64_field(v, "network");
  return e;
}

obsj::Value fault_stats_to_json(const fault::FaultStats& f) {
  obsj::Value v = obsj::Value::object();
  v.set("sram_lines_mapped", obsj::Value::number(f.sram_lines_mapped));
  v.set("sram_lines_correctable",
        obsj::Value::number(f.sram_lines_correctable));
  v.set("sram_lines_disabled", obsj::Value::number(f.sram_lines_disabled));
  v.set("ecc_corrections", obsj::Value::number(f.ecc_corrections));
  v.set("stt_write_faults", obsj::Value::number(f.stt_write_faults));
  v.set("stt_write_retries", obsj::Value::number(f.stt_write_retries));
  v.set("stt_lines_disabled", obsj::Value::number(f.stt_lines_disabled));
  return v;
}

fault::FaultStats fault_stats_from_json(const obsj::Value& v) {
  fault::FaultStats f;
  f.sram_lines_mapped = u64_field(v, "sram_lines_mapped");
  f.sram_lines_correctable = u64_field(v, "sram_lines_correctable");
  f.sram_lines_disabled = u64_field(v, "sram_lines_disabled");
  f.ecc_corrections = u64_field(v, "ecc_corrections");
  f.stt_write_faults = u64_field(v, "stt_write_faults");
  f.stt_write_retries = u64_field(v, "stt_write_retries");
  f.stt_lines_disabled = u64_field(v, "stt_lines_disabled");
  return f;
}

}  // namespace

// ---- requests ------------------------------------------------------------

RequestSpec request_spec_from_json(const obsj::Value& request) {
  RequestSpec spec;
  if (const obsj::Value* v = request.find("config")) {
    spec.config = parse_config_id(v->as_string());
  }
  const obsj::Value* benchmark = request.find("benchmark");
  const obsj::Value* trace_file = request.find("trace_file");
  const obsj::Value* profile_file = request.find("profile_file");
  const int workload_refs = (benchmark != nullptr ? 1 : 0) +
                            (trace_file != nullptr ? 1 : 0) +
                            (profile_file != nullptr ? 1 : 0);
  if (workload_refs > 1) {
    throw std::logic_error(
        "request names more than one of 'benchmark', 'trace_file' and "
        "'profile_file'; pick one workload reference");
  }
  if (benchmark != nullptr) spec.benchmark = benchmark->as_string();
  if (trace_file != nullptr) spec.trace_file = trace_file->as_string();
  if (profile_file != nullptr) spec.profile_file = profile_file->as_string();
  if (const obsj::Value* v = request.find("size")) {
    spec.options.size = parse_cache_size(v->as_string());
  }
  if (const obsj::Value* v = request.find("cluster")) {
    spec.options.cluster_cores = static_cast<std::uint32_t>(v->as_u64());
  }
  if (const obsj::Value* v = request.find("scale")) {
    spec.options.workload_scale = v->as_double();
  }
  if (const obsj::Value* v = request.find("seed")) {
    spec.options.seed = v->as_u64();
  }
  if (const obsj::Value* v = request.find("oracle_stride")) {
    spec.options.oracle_stride = static_cast<std::uint32_t>(v->as_u64());
  }
  if (const obsj::Value* v = request.find("cycle_skip")) {
    // Honoured at execution time but excluded from the canonical key: the
    // determinism contract makes skip and no-skip results bit-identical.
    spec.options.cycle_skip = v->as_bool();
  }
  if (const obsj::Value* v = request.find("faults")) {
    spec.options.faults = fault_plan_from_json(*v);
    fault::validate(spec.options.faults);
  }
  if (const obsj::Value* v = request.find("tech")) {
    spec.options.tech = tech_override_from_json(*v);
  }
  if (!spec.trace_file.empty()) {
    // Trace replay takes scale/seed/threads from the trace header and has
    // no fault/tech plumbing; reject silently-ignored knobs.
    RESPIN_REQUIRE(!spec.options.faults.enabled,
                   "trace_file requests do not support fault plans");
    RESPIN_REQUIRE(!tech_override_set(spec.options.tech),
                   "trace_file requests do not support tech overrides");
  }
  return spec;
}

obsj::Value request_spec_to_json(const RequestSpec& spec) {
  // Field order is the canonical key order — append-only; bump "v" if an
  // existing field ever has to change meaning.
  obsj::Value v = obsj::Value::object();
  v.set("v", obsj::Value::number(std::uint64_t{1}));
  v.set("config", obsj::Value::str(to_string(spec.config)));
  if (!spec.trace_file.empty()) {
    v.set("trace_file", obsj::Value::str(spec.trace_file));
    v.set("size", obsj::Value::str(to_string(spec.options.size)));
    v.set("oracle_stride", obsj::Value::number(spec.options.oracle_stride));
    return v;
  }
  if (!spec.profile_file.empty()) {
    // A profile workload is synthesized at run time, so every knob that
    // feeds synthesis or the simulator participates in the key.
    v.set("profile_file", obsj::Value::str(spec.profile_file));
  } else {
    v.set("benchmark", obsj::Value::str(spec.benchmark));
  }
  v.set("size", obsj::Value::str(to_string(spec.options.size)));
  v.set("cluster", obsj::Value::number(spec.options.cluster_cores));
  v.set("scale", obsj::Value::number(spec.options.workload_scale));
  v.set("seed", obsj::Value::number(spec.options.seed));
  v.set("oracle_stride", obsj::Value::number(spec.options.oracle_stride));
  if (spec.options.faults.enabled) {
    v.set("faults", fault_plan_to_json(spec.options.faults));
  }
  if (tech_override_set(spec.options.tech)) {
    v.set("tech", tech_override_to_json(spec.options.tech));
  }
  return v;
}

std::string canonical_key(const RequestSpec& spec) {
  return request_spec_to_json(spec).dump();
}

std::uint64_t key_hash(std::string_view key) {
  std::uint64_t hash = 14695981039346656037ull;  // FNV offset basis.
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime.
  }
  return hash;
}

std::string key_hash_hex(std::string_view key) {
  static const char* digits = "0123456789abcdef";
  std::uint64_t hash = key_hash(key);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

// ---- results -------------------------------------------------------------

obsj::Value result_to_json(const SimResult& r) {
  obsj::Value v = obsj::Value::object();
  v.set("config", obsj::Value::str(r.config_name));
  v.set("benchmark", obsj::Value::str(r.benchmark));
  v.set("cycles", obsj::Value::number(r.cycles));
  v.set("seconds", obsj::Value::number(r.seconds));
  v.set("instructions", obsj::Value::number(r.instructions));
  v.set("hit_cycle_limit", obsj::Value::boolean(r.hit_cycle_limit));
  v.set("counts", counts_to_json(r.counts));
  v.set("energy", energy_to_json(r.energy));
  v.set("read_hit_latency", histogram_to_json(r.read_hit_latency));
  v.set("dl1_read_hits", obsj::Value::number(r.dl1_read_hits));
  v.set("dl1_read_misses", obsj::Value::number(r.dl1_read_misses));
  v.set("dl1_half_misses", obsj::Value::number(r.dl1_half_misses));
  v.set("dl1_store_rejections", obsj::Value::number(r.dl1_store_rejections));
  v.set("dl1_arrivals", histogram_to_json(r.dl1_arrivals));
  v.set("dl1_cycles", obsj::Value::number(r.dl1_cycles));
  obsj::Array trace;
  trace.reserve(r.trace.size());
  for (const ConsolidationSample& s : r.trace) {
    obsj::Array sample;
    sample.reserve(3);
    sample.push_back(obsj::Value::number(s.cycle));
    sample.push_back(obsj::Value::number(s.active_cores));
    sample.push_back(obsj::Value::number(s.epi_pj));
    trace.push_back(obsj::Value::array(std::move(sample)));
  }
  v.set("trace", obsj::Value::array(std::move(trace)));
  v.set("avg_active_cores", obsj::Value::number(r.avg_active_cores));
  v.set("min_active_cores", obsj::Value::number(r.min_active_cores));
  v.set("max_active_cores", obsj::Value::number(r.max_active_cores));
  v.set("hybrid_sram_ways", obsj::Value::number(r.hybrid_sram_ways));
  v.set("hybrid_nvm_ways", obsj::Value::number(r.hybrid_nvm_ways));
  v.set("faults_enabled", obsj::Value::boolean(r.faults_enabled));
  if (r.faults_enabled) {
    v.set("faults", fault_stats_to_json(r.faults));
    v.set("fault_l1_disabled_ways",
          obsj::Value::number(r.fault_l1_disabled_ways));
    v.set("fault_l1_correctable_ways",
          obsj::Value::number(r.fault_l1_correctable_ways));
    v.set("fault_l1_usable_bytes",
          obsj::Value::number(r.fault_l1_usable_bytes));
    v.set("fault_l1_total_bytes", obsj::Value::number(r.fault_l1_total_bytes));
  }
  return v;
}

SimResult result_from_json(const obsj::Value& v) {
  SimResult r;
  r.config_name = require_field(v, "config").as_string();
  r.benchmark = require_field(v, "benchmark").as_string();
  r.cycles = i64_field(v, "cycles");
  r.seconds = f64_field(v, "seconds");
  r.instructions = u64_field(v, "instructions");
  r.hit_cycle_limit = require_field(v, "hit_cycle_limit").as_bool();
  r.counts = counts_from_json(require_field(v, "counts"));
  r.energy = energy_from_json(require_field(v, "energy"));
  r.read_hit_latency = histogram_from_json(
      require_field(v, "read_hit_latency"), r.read_hit_latency.bucket_count());
  r.dl1_read_hits = u64_field(v, "dl1_read_hits");
  r.dl1_read_misses = u64_field(v, "dl1_read_misses");
  r.dl1_half_misses = u64_field(v, "dl1_half_misses");
  r.dl1_store_rejections = u64_field(v, "dl1_store_rejections");
  r.dl1_arrivals = histogram_from_json(require_field(v, "dl1_arrivals"),
                                       r.dl1_arrivals.bucket_count());
  r.dl1_cycles = u64_field(v, "dl1_cycles");
  for (const obsj::Value& sample : require_field(v, "trace").as_array()) {
    const obsj::Array& triple = sample.as_array();
    if (triple.size() != 3) {
      throw obsj::Error("consolidation sample is not a [cycle, cores, epi] "
                        "triple",
                        0);
    }
    ConsolidationSample s;
    s.cycle = triple[0].as_i64();
    s.active_cores = static_cast<std::uint32_t>(triple[1].as_u64());
    s.epi_pj = triple[2].as_double();
    r.trace.push_back(s);
  }
  r.avg_active_cores = f64_field(v, "avg_active_cores");
  r.min_active_cores = u32_field(v, "min_active_cores");
  r.max_active_cores = u32_field(v, "max_active_cores");
  r.hybrid_sram_ways = u32_field(v, "hybrid_sram_ways");
  r.hybrid_nvm_ways = u32_field(v, "hybrid_nvm_ways");
  r.faults_enabled = require_field(v, "faults_enabled").as_bool();
  if (r.faults_enabled) {
    r.faults = fault_stats_from_json(require_field(v, "faults"));
    r.fault_l1_disabled_ways = u64_field(v, "fault_l1_disabled_ways");
    r.fault_l1_correctable_ways = u64_field(v, "fault_l1_correctable_ways");
    r.fault_l1_usable_bytes = u64_field(v, "fault_l1_usable_bytes");
    r.fault_l1_total_bytes = u64_field(v, "fault_l1_total_bytes");
  }
  return r;
}

double result_metric(const SimResult& r, std::string_view name) {
  if (name == "cycles") return static_cast<double>(r.cycles);
  if (name == "seconds") return r.seconds;
  if (name == "instructions") return static_cast<double>(r.instructions);
  if (name == "energy_pj") return r.energy.total();
  if (name == "epi_pj") return r.epi_pj();
  if (name == "watts") return r.watts();
  if (name == "leakage_pj") return r.energy.leakage();
  if (name == "dynamic_pj") return r.energy.dynamic();
  if (name == "avg_active_cores") return r.avg_active_cores;
  throw std::logic_error("unknown metric '" + std::string(name) +
                         "' (valid: " + result_metric_names() + ")");
}

const char* result_metric_names() {
  return "cycles, seconds, instructions, energy_pj, epi_pj, watts, "
         "leakage_pj, dynamic_pj, avg_active_cores";
}

}  // namespace respin::core
