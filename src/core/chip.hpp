// Chip-level simulation: the full 64-core CMP as a set of clusters.
//
// The paper's chip is four identical 16-core clusters sharing an L3 (the
// L3 is physically distributed, one slice per cluster). Because clusters
// are architecturally independent in every evaluated configuration — the
// shared-L1 design removes intra-cluster coherence and the workloads run
// one 16-thread process per cluster — the chip simulation runs one
// ClusterSim per cluster, each on its own region of the VARIUS die (so
// different clusters really do get different core-frequency mixes), and
// aggregates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster_sim.hpp"
#include "core/config.hpp"
#include "core/experiment.hpp"

namespace respin::core {

/// Aggregated chip-level result.
struct ChipResult {
  std::string config_name;
  std::string benchmark;
  /// Chip execution time: the slowest cluster (they synchronize at program
  /// end).
  double seconds = 0.0;
  /// Total energy over all clusters, integrated to the chip finish time
  /// (early-finishing clusters keep leaking until the last one is done).
  power::EnergyBreakdown energy;
  std::uint64_t instructions = 0;
  /// Per-cluster results for variance analysis.
  std::vector<SimResult> clusters;

  double watts() const {
    return seconds > 0.0 ? energy.total() * 1e-12 / seconds : 0.0;
  }
};

/// Runs `benchmark` on every cluster of the chip for configuration `id`
/// and aggregates. Each cluster gets its own die region (its own core
/// frequency mix) but the same workload, mirroring the paper's
/// methodology of reporting chip-level power from per-cluster activity.
ChipResult run_chip(ConfigId id, const std::string& benchmark,
                    const RunOptions& options = {});

/// Builds the cluster configuration for cluster `cluster_index` of the
/// chip (selects the die region for the VARIUS multipliers).
ClusterConfig make_chip_cluster_config(ConfigId id, CacheSize size,
                                       std::uint32_t cluster_cores,
                                       std::uint32_t cluster_index,
                                       std::uint64_t seed,
                                       const TechOverride& tech = {});

}  // namespace respin::core
